#include "src/proc/launcher.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/api/plan/fold.hpp"
#include "src/common/buffer.hpp"
#include "src/proc/rendezvous.hpp"
#include "src/proc/report.hpp"

namespace sdsm::proc {

namespace {

using Clock = std::chrono::steady_clock;

std::string hex_encode(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

/// Last `max_bytes` of a worker's stderr log, for failure messages.
std::string log_tail(const std::string& path, std::size_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  const long start = size > static_cast<long>(max_bytes)
                         ? size - static_cast<long>(max_bytes)
                         : 0;
  std::fseek(f, start, SEEK_SET);
  std::string tail(static_cast<std::size_t>(size - start), '\0');
  const std::size_t got = std::fread(tail.data(), 1, tail.size(), f);
  tail.resize(got);
  std::fclose(f);
  return tail;
}

std::string describe_exit(int status) {
  char buf[64];
  if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof(buf), "exited with status %d",
                  WEXITSTATUS(status));
  } else if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof(buf), "killed by signal %d", WTERMSIG(status));
  } else {
    std::snprintf(buf, sizeof(buf), "ended with raw status 0x%x", status);
  }
  return buf;
}

struct Worker {
  pid_t pid = -1;
  bool done = false;
  int status = 0;
};

void kill_remaining(std::vector<Worker>& workers) {
  for (Worker& w : workers) {
    if (!w.done && w.pid > 0) ::kill(w.pid, SIGKILL);
  }
  for (Worker& w : workers) {
    if (!w.done && w.pid > 0) {
      ::waitpid(w.pid, &w.status, 0);
      w.done = true;
    }
  }
}

}  // namespace

std::string default_worker_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "sdsm_worker";
  buf[n] = '\0';
  std::string dir(buf);
  const std::size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return "sdsm_worker";
  return dir.substr(0, slash) + "/sdsm_worker";
}

LaunchResult run_job(const serve::JobRequest& req, const LaunchOptions& opt) {
  LaunchResult out;
  if (req.backend == api::Backend::kChaos) {
    out.error = "proc::run_job: CHAOS is not deployed multi-process "
                "(Tmk backends only)";
    return out;
  }
  if (opt.nprocs < 1) {
    out.error = "proc::run_job: nprocs must be >= 1";
    return out;
  }

  // --- Log/report directory.
  std::string log_dir = opt.log_dir;
  bool made_tmp = false;
  if (log_dir.empty()) {
    if (const char* env = std::getenv("SDSM_PROC_LOG_DIR")) log_dir = env;
  }
  if (log_dir.empty()) {
    char tmpl[] = "/tmp/sdsm-proc-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      out.error = "proc::run_job: mkdtemp failed";
      return out;
    }
    log_dir = tmpl;
    made_tmp = true;
  } else {
    ::mkdir(log_dir.c_str(), 0755);  // best effort; may already exist
  }

  // --- Rendezvous listener (node 0 inherits the fd).
  auto [listen_fd, port] = listen_loopback(opt.nprocs);
  if (listen_fd < 0) {
    out.error = "proc::run_job: cannot bind the rendezvous listener";
    return out;
  }

  // --- Job payload, shipped through argv as hex.
  Writer w;
  serve::encode(w, req);
  const std::string job_hex = hex_encode(w.bytes());

  const std::string worker =
      opt.worker_path.empty() ? default_worker_path() : opt.worker_path;
  // The worker's rendezvous deadline fires well before the launcher's, so
  // a missing peer produces a clean in-worker diagnostic, not a SIGKILL.
  const int rdv_timeout_ms =
      std::max(500, opt.timeout_seconds * 1000 / 2);

  std::vector<std::string> report_paths(opt.nprocs);
  out.log_paths.resize(opt.nprocs);
  std::vector<Worker> workers(opt.nprocs);
  for (std::uint32_t k = 0; k < opt.nprocs; ++k) {
    char name[64];
    std::snprintf(name, sizeof(name), "/worker-%u.log", k);
    out.log_paths[k] = log_dir + name;
    std::snprintf(name, sizeof(name), "/report-%u.bin", k);
    report_paths[k] = log_dir + name;

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(listen_fd);
      kill_remaining(workers);
      out.error = "proc::run_job: fork failed";
      return out;
    }
    if (pid == 0) {
      // Child: stderr/stdout -> per-worker log, then exec.
      const int log = ::open(out.log_paths[k].c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (log >= 0) {
        ::dup2(log, 1);
        ::dup2(log, 2);
        if (log > 2) ::close(log);
      }
      if (k != 0) ::close(listen_fd);
      for (const std::string& kv : opt.extra_env) {
        const std::size_t eq = kv.find('=');
        if (eq != std::string::npos) {
          ::setenv(kv.substr(0, eq).c_str(), kv.c_str() + eq + 1, 1);
        }
      }
      char arg_node[32], arg_nprocs[32], arg_port[32], arg_fd[32],
          arg_timeout[32];
      std::snprintf(arg_node, sizeof(arg_node), "--node=%u", k);
      std::snprintf(arg_nprocs, sizeof(arg_nprocs), "--nprocs=%u",
                    opt.nprocs);
      std::snprintf(arg_port, sizeof(arg_port), "--rendezvous-port=%u",
                    static_cast<unsigned>(port));
      std::snprintf(arg_fd, sizeof(arg_fd), "--rendezvous-fd=%d", listen_fd);
      std::snprintf(arg_timeout, sizeof(arg_timeout), "--timeout-ms=%d",
                    rdv_timeout_ms);
      const std::string arg_job = "--job=" + job_hex;
      const std::string arg_report = "--report=" + report_paths[k];
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(worker.c_str()));
      argv.push_back(arg_node);
      argv.push_back(arg_nprocs);
      argv.push_back(arg_port);
      if (k == 0) argv.push_back(arg_fd);
      argv.push_back(arg_timeout);
      argv.push_back(const_cast<char*>(arg_job.c_str()));
      argv.push_back(const_cast<char*>(arg_report.c_str()));
      argv.push_back(nullptr);
      ::execv(worker.c_str(), argv.data());
      std::fprintf(stderr, "sdsm_worker exec failed: %s: %s\n",
                   worker.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    workers[k].pid = pid;
  }
  ::close(listen_fd);

  // --- Exit monitor: every worker must exit 0 before the deadline.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(opt.timeout_seconds);
  std::uint32_t live = opt.nprocs;
  std::int32_t failed = -1;
  while (live > 0) {
    bool reaped = false;
    for (std::uint32_t k = 0; k < opt.nprocs; ++k) {
      Worker& wk = workers[k];
      if (wk.done) continue;
      const pid_t r = ::waitpid(wk.pid, &wk.status, WNOHANG);
      if (r == wk.pid) {
        wk.done = true;
        --live;
        reaped = true;
        if (wk.status != 0 && failed < 0) failed = static_cast<int>(k);
      }
    }
    if (failed >= 0) break;
    if (live == 0) break;
    if (Clock::now() >= deadline) {
      kill_remaining(workers);
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "proc::run_job: timeout after %d s waiting for %u "
                    "worker(s)",
                    opt.timeout_seconds, live);
      out.error = buf;
      return out;
    }
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (failed >= 0) {
    kill_remaining(workers);
    char buf[128];
    const std::string how = describe_exit(workers[failed].status);
    std::snprintf(buf, sizeof(buf), "proc::run_job: worker %d %s", failed,
                  how.c_str());
    out.error = buf;
    const std::string tail = log_tail(out.log_paths[failed], 4096);
    if (!tail.empty()) {
      out.error += "\n--- worker stderr (tail) ---\n" + tail;
    }
    return out;
  }

  // --- Fold the reports.  Checksums are summed in node order — the same
  // summation order the threaded result assembly uses — so the combined
  // value is bit-identical, not merely close.
  std::vector<WorkerReport> reps;
  reps.reserve(opt.nprocs);
  for (std::uint32_t k = 0; k < opt.nprocs; ++k) {
    std::optional<WorkerReport> rep = read_report_file(report_paths[k]);
    if (!rep.has_value()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "proc::run_job: worker %u exited 0 but left no report",
                    k);
      out.error = buf;
      return out;
    }
    if (!rep->ok) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "proc::run_job: worker %u failed: ", k);
      out.error = buf + rep->error;
      return out;
    }
    reps.push_back(std::move(*rep));
  }
  api::KernelResult& agg = out.result;
  agg = reps[0].result;
  // Per-node accounts fold through the same helper the in-process drivers
  // use (plan::fold_accounts), in worker/node order, so the aggregate is
  // bit-identical to a threaded run — one copy of that contract, not three.
  agg.checksum = 0;
  agg.refs = 0;
  agg.max_row = 0;
  std::vector<api::plan::NodeAccount> accounts;
  accounts.reserve(reps.size());
  double overhead_sum = 0;
  double diff_create_sum = 0, diff_apply_sum = 0;
  for (const WorkerReport& rep : reps) {
    const api::KernelResult& k = rep.result;
    // Globally uniform fields must agree across workers; disagreement
    // means the runs diverged and the "one result" would be a lie.
    if (k.steps_run != agg.steps_run || k.rebuilds != agg.rebuilds ||
        k.barriers_per_step != agg.barriers_per_step ||
        k.backend != agg.backend) {
      out.error = "proc::run_job: workers disagree on globally uniform "
                  "result fields (steps/rebuilds/barriers)";
      return out;
    }
    accounts.push_back({k.checksum, k.refs, k.max_row});
    overhead_sum += k.overhead_seconds;
    diff_create_sum += k.diff_create_seconds;
    diff_apply_sum += k.diff_apply_seconds;
    if (rep.node != reps[0].node) {
      agg.seconds = std::max(agg.seconds, k.seconds);
      agg.messages += k.messages;
      agg.bytes += k.bytes;
      api::plan::add_counters(agg.tmk, k.tmk);
    }
  }
  api::plan::fold_accounts(agg, accounts);
  agg.megabytes = static_cast<double>(agg.bytes) / 1e6;
  agg.overhead_seconds = overhead_sum / opt.nprocs;
  agg.diff_create_seconds = diff_create_sum / opt.nprocs;
  agg.diff_apply_seconds = diff_apply_sum / opt.nprocs;
  out.ok = true;

  if (made_tmp && !opt.keep_logs) {
    for (const std::string& p : out.log_paths) ::unlink(p.c_str());
    for (const std::string& p : report_paths) ::unlink(p.c_str());
    ::rmdir(log_dir.c_str());
    out.log_paths.clear();
  } else {
    for (const std::string& p : report_paths) ::unlink(p.c_str());
  }
  return out;
}

}  // namespace sdsm::proc
