#include "src/proc/report.hpp"

#include <cstdio>

namespace sdsm::proc {

namespace {
constexpr std::uint32_t kReportMagic = 0x5DD50010;
constexpr std::uint32_t kReportVersion = 2;
}  // namespace

void encode(Writer& w, const WorkerReport& r) {
  w.put(kReportMagic);
  w.put(kReportVersion);
  w.put<std::uint32_t>(r.node);
  w.put<std::uint8_t>(r.ok ? 1 : 0);
  w.put_string(r.error);
  const api::KernelResult& k = r.result;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(k.backend));
  w.put(k.checksum);
  w.put(k.seconds);
  w.put(k.messages);
  w.put(k.megabytes);
  w.put(k.bytes);
  w.put(k.overhead_seconds);
  w.put(k.diff_create_seconds);
  w.put(k.diff_apply_seconds);
  w.put(k.rebuilds);
  w.put(k.steps_run);
  w.put(k.refs);
  w.put(k.max_row);
  w.put(k.barriers_per_step);
  w.put(k.tmk.validate_calls);
  w.put(k.tmk.validate_recomputes);
  w.put(k.tmk.read_faults);
  w.put(k.tmk.pages_prefetched);
  w.put(k.tmk.twins_created);
  w.put(k.tmk.whole_pages);
  w.put(k.tmk.diff_bytes);
  w.put(k.tmk.cross_prefetch_posts);
  w.put(k.tmk.cross_prefetch_consumes);
  w.put(k.tmk.cross_prefetch_drains);
  w.put(k.tmk.replications);
  w.put(k.tmk.migrations);
  w.put(k.tmk.ghost_promotions);
}

WorkerReport decode_report(Reader& r) {
  WorkerReport out;
  SDSM_REQUIRE_MSG(r.get<std::uint32_t>() == kReportMagic &&
                       r.get<std::uint32_t>() == kReportVersion,
                   "WorkerReport: bad magic/version");
  out.node = r.get<std::uint32_t>();
  out.ok = r.get<std::uint8_t>() != 0;
  out.error = r.get_string();
  api::KernelResult& k = out.result;
  k.backend = static_cast<api::Backend>(r.get<std::uint8_t>());
  k.checksum = r.get<double>();
  k.seconds = r.get<double>();
  k.messages = r.get<std::uint64_t>();
  k.megabytes = r.get<double>();
  k.bytes = r.get<std::uint64_t>();
  k.overhead_seconds = r.get<double>();
  k.diff_create_seconds = r.get<double>();
  k.diff_apply_seconds = r.get<double>();
  k.rebuilds = r.get<std::int64_t>();
  k.steps_run = r.get<std::int64_t>();
  k.refs = r.get<std::uint64_t>();
  k.max_row = r.get<std::uint64_t>();
  k.barriers_per_step = r.get<double>();
  k.tmk.validate_calls = r.get<std::uint64_t>();
  k.tmk.validate_recomputes = r.get<std::uint64_t>();
  k.tmk.read_faults = r.get<std::uint64_t>();
  k.tmk.pages_prefetched = r.get<std::uint64_t>();
  k.tmk.twins_created = r.get<std::uint64_t>();
  k.tmk.whole_pages = r.get<std::uint64_t>();
  k.tmk.diff_bytes = r.get<std::uint64_t>();
  k.tmk.cross_prefetch_posts = r.get<std::uint64_t>();
  k.tmk.cross_prefetch_consumes = r.get<std::uint64_t>();
  k.tmk.cross_prefetch_drains = r.get<std::uint64_t>();
  k.tmk.replications = r.get<std::uint64_t>();
  k.tmk.migrations = r.get<std::uint64_t>();
  k.tmk.ghost_promotions = r.get<std::uint64_t>();
  return out;
}

bool write_report_file(const std::string& path, const WorkerReport& r) {
  Writer w;
  encode(w, r);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::vector<std::uint8_t>& bytes = w.bytes();
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<WorkerReport> read_report_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  Reader r(bytes);
  if (r.remaining() < 8) return std::nullopt;
  return decode_report(r);
}

}  // namespace sdsm::proc
