#include "src/proc/rendezvous.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/net/sockio.hpp"
#include "src/vm/page_region.hpp"

namespace sdsm::proc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kHelloMagic = 0x5DD50001;  // worker -> rendezvous
constexpr std::uint32_t kTableMagic = 0x5DD50002;  // rendezvous -> worker
constexpr std::uint32_t kMeshMagic = 0x5DD50003;   // mesh dial hello

/// {magic, node, mesh_port} — what a worker announces to the rendezvous.
struct Hello {
  std::uint32_t magic;
  std::uint32_t node;
  std::uint32_t mesh_port;
};

/// {magic, node} — what a mesh dialer announces to the accepting side.
struct MeshHello {
  std::uint32_t magic;
  std::uint32_t node;
};

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// poll() for readability until the deadline.  False on timeout/error.
bool wait_readable(int fd, Clock::time_point deadline) {
  for (;;) {
    struct pollfd p = {fd, POLLIN, 0};
    const int r = ::poll(&p, 1, remaining_ms(deadline));
    if (r > 0) return true;
    if (r == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

/// read_full with a pre-read poll so a silent peer cannot block past the
/// deadline.  (The payloads here are a few words; once readable they
/// arrive whole for all practical purposes.)
bool read_timed(int fd, void* data, std::size_t n, Clock::time_point deadline) {
  if (!wait_readable(fd, deadline)) return false;
  return net::read_full(fd, data, n);
}

int accept_timed(int listen_fd, Clock::time_point deadline) {
  if (!wait_readable(listen_fd, deadline)) return -1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno != EINTR) return -1;
  }
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
  }
}

void close_all(std::vector<int>& fds) {
  for (int& fd : fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

RendezvousResult fail(RendezvousResult r, std::string error) {
  close_all(r.peer_fds);
  r.ok = false;
  r.error = std::move(error);
  return r;
}

}  // namespace

std::pair<int, std::uint16_t> listen_loopback(std::uint32_t nprocs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {-1, 0};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // OS-assigned: no fixed port, no collision race
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, static_cast<int>(nprocs) + 1) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return {-1, 0};
  }
  return {fd, ntohs(addr.sin_port)};
}

RendezvousResult rendezvous(NodeId node, std::uint32_t nprocs,
                            std::uint16_t rendezvous_port,
                            int rendezvous_listen_fd, std::size_t region_bytes,
                            int timeout_ms) {
  RendezvousResult res;
  res.peer_fds.assign(nprocs, -1);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);

  // --- Phase 1: everyone binds its mesh listener first, so its port can
  // go into the table and early dialers simply queue in the backlog.
  auto [mesh_listen_fd, mesh_port] = listen_loopback(nprocs);
  if (mesh_listen_fd < 0) {
    return fail(std::move(res), "rendezvous: cannot bind mesh listener");
  }

  // --- Phase 2: agree on {arena base, port table} through the rendezvous.
  std::vector<std::uint32_t> ports(nprocs, 0);
  if (node == 0) {
    res.arena_base = reinterpret_cast<std::uint64_t>(
        vm::probe_arena_base(region_bytes));
    ports[0] = mesh_port;
    std::vector<int> hello_fds;
    std::uint32_t got = 0;
    for (; got + 1 < nprocs; ++got) {
      const int fd = accept_timed(rendezvous_listen_fd, deadline);
      Hello h{};
      if (fd < 0 || !read_timed(fd, &h, sizeof(h), deadline)) {
        if (fd >= 0) ::close(fd);
        close_all(hello_fds);
        ::close(mesh_listen_fd);
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "rendezvous timeout: got %u of %u worker hellos", got,
                      nprocs - 1);
        return fail(std::move(res), buf);
      }
      if (h.magic != kHelloMagic || h.node == 0 || h.node >= nprocs ||
          ports[h.node] != 0) {
        ::close(fd);
        close_all(hello_fds);
        ::close(mesh_listen_fd);
        return fail(std::move(res), "rendezvous: malformed worker hello");
      }
      ports[h.node] = h.mesh_port;
      hello_fds.push_back(fd);
    }
    // Everyone is present — publish the agreement.
    std::vector<std::uint8_t> table(sizeof(std::uint32_t) * 2 +
                                    sizeof(std::uint64_t) +
                                    sizeof(std::uint32_t) * nprocs);
    std::uint8_t* p = table.data();
    std::memcpy(p, &kTableMagic, 4); p += 4;
    std::memcpy(p, &res.arena_base, 8); p += 8;
    std::memcpy(p, &nprocs, 4); p += 4;
    std::memcpy(p, ports.data(), sizeof(std::uint32_t) * nprocs);
    for (const int fd : hello_fds) {
      net::write_full(fd, table.data(), table.size());
      ::close(fd);
    }
  } else {
    const int fd = connect_loopback(rendezvous_port);
    if (fd < 0) {
      ::close(mesh_listen_fd);
      return fail(std::move(res), "rendezvous: cannot reach the launcher");
    }
    const Hello h{kHelloMagic, node, mesh_port};
    std::uint32_t magic = 0, n = 0;
    std::uint64_t base = 0;
    if (!net::write_full(fd, &h, sizeof(h)) ||
        !read_timed(fd, &magic, 4, deadline) ||
        !read_timed(fd, &base, 8, deadline) ||
        !read_timed(fd, &n, 4, deadline) || magic != kTableMagic ||
        n != nprocs ||
        !read_timed(fd, ports.data(), sizeof(std::uint32_t) * nprocs,
                    deadline)) {
      ::close(fd);
      ::close(mesh_listen_fd);
      return fail(std::move(res),
                  "rendezvous timeout: no port table from node 0");
    }
    ::close(fd);
    res.arena_base = base;
  }

  // --- Phase 3: full mesh.  Dial every lower node, accept every higher.
  for (NodeId peer = 0; peer < node; ++peer) {
    const int fd = connect_loopback(static_cast<std::uint16_t>(ports[peer]));
    const MeshHello mh{kMeshMagic, node};
    if (fd < 0 || !net::write_full(fd, &mh, sizeof(mh))) {
      if (fd >= 0) ::close(fd);
      ::close(mesh_listen_fd);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "rendezvous: cannot dial node %u", peer);
      return fail(std::move(res), buf);
    }
    res.peer_fds[peer] = fd;
  }
  for (std::uint32_t i = node + 1; i < nprocs; ++i) {
    const int fd = accept_timed(mesh_listen_fd, deadline);
    MeshHello mh{};
    if (fd < 0 || !read_timed(fd, &mh, sizeof(mh), deadline)) {
      if (fd >= 0) ::close(fd);
      ::close(mesh_listen_fd);
      return fail(std::move(res),
                  "rendezvous timeout: mesh accept from higher nodes");
    }
    if (mh.magic != kMeshMagic || mh.node <= node || mh.node >= nprocs ||
        res.peer_fds[mh.node] != -1) {
      ::close(fd);
      ::close(mesh_listen_fd);
      return fail(std::move(res), "rendezvous: malformed mesh hello");
    }
    res.peer_fds[mh.node] = fd;
  }
  ::close(mesh_listen_fd);
  res.ok = true;
  return res;
}

}  // namespace sdsm::proc
