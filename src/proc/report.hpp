// Worker -> launcher result reporting (sdsm::proc).
//
// Each worker writes one small binary report file before exiting — its
// node's KernelResult plus an ok/error verdict — and the launcher folds
// the per-worker reports into one job-level KernelResult with the same
// aggregation the threaded backend applies across its in-process nodes
// (checksums summed in node order, integer message/byte counters summed,
// seconds maxed), so the combined figures are directly comparable —
// bit-exactly, for the deterministic ones — with a threaded run's.
//
// A file (rather than a pipe) keeps the failure paths simple: a worker
// that dies mid-run simply leaves no report, and the exit-status monitor,
// not the report channel, is what detects it.
#pragma once

#include <optional>
#include <string>

#include "src/api/kernel.hpp"
#include "src/common/buffer.hpp"
#include "src/common/types.hpp"

namespace sdsm::proc {

struct WorkerReport {
  NodeId node = 0;
  bool ok = false;
  std::string error;  ///< non-empty when !ok
  /// The local node's share of the job: checksum/messages/bytes/refs are
  /// this node's contributions, steps_run/rebuilds/barriers_per_step are
  /// globally uniform values every worker reports identically.
  api::KernelResult result;
};

void encode(Writer& w, const WorkerReport& r);
WorkerReport decode_report(Reader& r);

/// Atomic-enough file I/O for the report: write to `path` in one shot /
/// read and decode, nullopt when missing or malformed.
bool write_report_file(const std::string& path, const WorkerReport& r);
std::optional<WorkerReport> read_report_file(const std::string& path);

}  // namespace sdsm::proc
