// The process-mode bootstrap protocol (sdsm::proc).
//
// The launcher binds a localhost rendezvous listener on an ephemeral port
// before forking, and passes the port to every worker (node 0 inherits
// the listening fd itself).  Each worker then:
//
//   1. binds its own mesh listener on port 0 — the kernel assigns a free
//      port, killing the fixed-port collision races a preconfigured port
//      table would have;
//   2. workers 1..N-1 connect to the rendezvous and send a hello
//      {node id, mesh port}; node 0 collects all N-1 hellos, probes a
//      free arena base in its own address space, and answers every worker
//      with the agreed {arena base, mesh port table};
//   3. all workers build the full mesh from the table: node j dials every
//      node i < j (identifying itself with a one-word hello) and accepts
//      the N-1-j higher-numbered dialers on its mesh listener.
//
// Every blocking step (connect, accept, header read) honours one shared
// deadline, so a crashed or wedged peer turns into a clean
// "rendezvous timeout" error and a nonzero worker exit — which the
// launcher's exit monitor converts into a run failure naming the worker —
// instead of a hung ctest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::proc {

struct RendezvousResult {
  bool ok = false;
  std::string error;  ///< non-empty when !ok
  /// The base address every worker maps its region at
  /// (MAP_FIXED_NOREPLACE), chosen by node 0 so global addresses mean the
  /// same thing in every process.
  std::uint64_t arena_base = 0;
  /// Connected socket to each node's process; -1 at [node].  Ownership
  /// passes to the caller (normally straight into MeshTransport).
  std::vector<int> peer_fds;
};

/// Runs the worker side of the protocol.  `rendezvous_listen_fd` is the
/// inherited listening socket on node 0 and must be -1 elsewhere;
/// non-zero nodes dial `rendezvous_port` instead.  `region_bytes` sizes
/// node 0's arena-base probe.  On failure every socket opened along the
/// way is closed.
RendezvousResult rendezvous(NodeId node, std::uint32_t nprocs,
                            std::uint16_t rendezvous_port,
                            int rendezvous_listen_fd, std::size_t region_bytes,
                            int timeout_ms);

/// Binds a listening TCP socket on 127.0.0.1 with an OS-assigned port
/// (backlog sized for `nprocs` dialers).  Returns {fd, port}; fd is -1 on
/// failure.  Shared with the launcher, which creates the rendezvous
/// listener with it.
std::pair<int, std::uint16_t> listen_loopback(std::uint32_t nprocs);

}  // namespace sdsm::proc
