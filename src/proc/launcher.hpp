// sdsm::proc — real multi-process deployment of the Tmk backends.
//
// Where threads mode hosts every simulated node in one process, proc mode
// spawns one `sdsm_worker` process per node.  The launcher
//
//   1. binds the rendezvous listener (ephemeral port; node 0 inherits the
//      fd, the others get the port number on their command line),
//   2. fork/execs the workers with the job request hex-encoded in argv
//      (the same serve::encode codec the serving layer's control protocol
//      uses, so "a job" is one value everywhere),
//   3. monitors worker exits against a deadline — a crashed, wedged, or
//      rendezvous-timed-out worker fails the whole run with its node id,
//      exit status, and stderr log, never a hung ctest — and
//   4. folds the per-worker report files into one KernelResult.
//
// Workers talk to each other, not through the launcher: after the
// rendezvous they hold a full TCP mesh (MeshTransport) and the DSM
// protocol — page faults, diff fetches, locks, barriers — runs over it
// exactly as over the threaded socket fabric, frame-for-frame.  The
// aggregated result of a process-mode run is therefore bit-exact on
// checksums and exact on message/byte/barrier counts against a threaded
// kSocket run of the same job (asserted in tests/test_proc.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/kernel.hpp"
#include "src/serve/job.hpp"

namespace sdsm::proc {

struct LaunchOptions {
  std::uint32_t nprocs = 2;
  /// Worker binary; empty resolves to "sdsm_worker" next to the current
  /// executable (the build tree layout).
  std::string worker_path;
  /// Budget for the whole run.  Workers receive a slightly smaller
  /// rendezvous deadline, so a missing peer dies as a clean in-worker
  /// "rendezvous timeout" before the launcher's own deadline fires.
  int timeout_seconds = 120;
  /// Directory for per-worker stderr logs and report files; empty means
  /// $SDSM_PROC_LOG_DIR, or a fresh temp directory.  Logs are kept on
  /// failure (their paths land in LaunchResult and the error text).
  std::string log_dir;
  bool keep_logs = false;  ///< keep logs on success too
  /// Extra "NAME=VALUE" environment entries for the workers (the failure
  ///-path tests inject their SDSM_PROC_TEST_* hooks this way).
  std::vector<std::string> extra_env;
};

struct LaunchResult {
  bool ok = false;
  std::string error;  ///< names the failing worker + exit status + log tail
  /// Aggregated across workers: checksum summed in node order (bit-equal
  /// to the threaded loop's summation), messages/bytes/refs summed,
  /// seconds maxed, globally uniform fields (steps_run, rebuilds,
  /// barriers_per_step) taken from worker 0 after checking agreement.
  api::KernelResult result;
  std::vector<std::string> log_paths;  ///< per node, empty after cleanup
};

/// Runs one job across opt.nprocs spawned workers.  Tmk backends only —
/// CHAOS is rejected up front.
LaunchResult run_job(const serve::JobRequest& req, const LaunchOptions& opt);

/// The default worker path: "sdsm_worker" in the directory of the current
/// executable.  Exposed for diagnostics.
std::string default_worker_path();

}  // namespace sdsm::proc
