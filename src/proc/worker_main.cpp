// sdsm_worker — the per-node process of proc mode (one spawned instance
// per simulated node; see src/proc/launcher.hpp for the life cycle).
//
// The command line is launcher-generated, never typed by hand:
//   --node=K --nprocs=N --rendezvous-port=P [--rendezvous-fd=F]
//   --timeout-ms=T --job=<hex of serve::encode(JobRequest)>
//   --report=<path>
//
// Failure-path test hooks, injected through the environment by
// tests/test_proc.cpp (LaunchOptions::extra_env):
//   SDSM_PROC_TEST_STALL_NODE=K   node K sleeps forever before the
//                                 rendezvous (drives the timeout path)
//   SDSM_PROC_TEST_CRASH_NODE=K   node K exits 42 after the mesh is up,
//                                 while its peers are inside the run
//   SDSM_PROC_TEST_COLLIDE=K      node K pre-maps a page at the agreed
//                                 arena base, forcing the MAP_FIXED_
//                                 NOREPLACE collision diagnostic
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/api/tmk_backend.hpp"
#include "src/common/buffer.hpp"
#include "src/proc/mesh_transport.hpp"
#include "src/proc/rendezvous.hpp"
#include "src/proc/report.hpp"
#include "src/serve/workloads.hpp"

namespace {

using namespace sdsm;

constexpr int kExitBadArgs = 2;
constexpr int kExitRendezvous = 3;
constexpr int kExitBadJob = 4;

std::optional<std::string> arg_value(int argc, char** argv,
                                     const char* flag) {
  const std::size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out(s.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = nibble(s[2 * i]), lo = nibble(s[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out[i] = static_cast<std::uint8_t>(hi << 4 | lo);
  }
  return out;
}

/// True when env var `name` is set to this node's id.
bool hook_hits(const char* name, NodeId node) {
  const char* v = std::getenv(name);
  return v != nullptr && std::atol(v) == static_cast<long>(node);
}

[[noreturn]] void fail(const std::string& report_path, NodeId node,
                       const std::string& error, int code) {
  std::fprintf(stderr, "sdsm_worker: node %u: %s\n", node, error.c_str());
  if (!report_path.empty()) {
    sdsm::proc::WorkerReport rep;
    rep.node = node;
    rep.ok = false;
    rep.error = error;
    sdsm::proc::write_report_file(report_path, rep);
  }
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  const auto node_s = arg_value(argc, argv, "--node");
  const auto nprocs_s = arg_value(argc, argv, "--nprocs");
  const auto port_s = arg_value(argc, argv, "--rendezvous-port");
  const auto fd_s = arg_value(argc, argv, "--rendezvous-fd");
  const auto timeout_s = arg_value(argc, argv, "--timeout-ms");
  const auto job_s = arg_value(argc, argv, "--job");
  const auto report_s = arg_value(argc, argv, "--report");
  if (!node_s || !nprocs_s || !port_s || !job_s || !report_s) {
    std::fprintf(stderr,
                 "usage: sdsm_worker --node=K --nprocs=N "
                 "--rendezvous-port=P [--rendezvous-fd=F] --timeout-ms=T "
                 "--job=<hex> --report=<path>\n");
    return kExitBadArgs;
  }
  const NodeId node = static_cast<NodeId>(std::atol(node_s->c_str()));
  const auto nprocs =
      static_cast<std::uint32_t>(std::atol(nprocs_s->c_str()));
  const auto port =
      static_cast<std::uint16_t>(std::atol(port_s->c_str()));
  const int listen_fd = fd_s ? std::atoi(fd_s->c_str()) : -1;
  const int timeout_ms =
      timeout_s ? std::atoi(timeout_s->c_str()) : 30000;
  const std::string report_path = *report_s;
  if (nprocs < 1 || node >= nprocs) {
    fail(report_path, node, "bad --node/--nprocs", kExitBadArgs);
  }

  const auto job_bytes = hex_decode(*job_s);
  if (!job_bytes.has_value()) {
    fail(report_path, node, "malformed --job hex", kExitBadArgs);
  }
  Reader r(*job_bytes);
  const serve::JobRequest req = serve::decode_request(r);
  if (req.backend == api::Backend::kChaos) {
    fail(report_path, node,
         "CHAOS backend is not deployed multi-process (Tmk only)",
         kExitBadJob);
  }
  if (!serve::known_kernel(req.kernel)) {
    fail(report_path, node, "unknown kernel '" + req.kernel + "'",
         kExitBadJob);
  }

  if (hook_hits("SDSM_PROC_TEST_STALL_NODE", node)) {
    std::fprintf(stderr, "sdsm_worker: node %u: test hook: stalling before "
                         "rendezvous\n", node);
    for (;;) ::pause();
  }

  // Materialize the job exactly as the serving layer would, then force
  // the substrate knobs proc mode fixes: real sockets (run_impl checks
  // the runtime and options agree) and kProcesses bookkeeping.
  const serve::PreparedJob prepared = serve::prepare_job(req, nprocs);
  api::BackendOptions options = prepared.base_options;
  options.transport = net::TransportKind::kSocket;
  options.mode = DeployMode::kProcesses;
  options.round_schedule = req.schedule;
  options.cross_step_prefetch = req.cross_step_prefetch;
  options.coherence = req.coherence;
  options.diff_engine = req.diff_engine;
  options.exec_engine = req.exec;

  core::DsmConfig cfg = api::TmkBackend::dsm_config(nprocs, options);
  proc::RendezvousResult rdv = proc::rendezvous(
      node, nprocs, port, listen_fd, cfg.region_bytes, timeout_ms);
  if (!rdv.ok) {
    fail(report_path, node, rdv.error, kExitRendezvous);
  }

  if (hook_hits("SDSM_PROC_TEST_CRASH_NODE", node)) {
    std::fprintf(stderr, "sdsm_worker: node %u: test hook: crashing with "
                         "the mesh up\n", node);
    ::usleep(200 * 1000);  // let the peers get into the run first
    std::_Exit(42);
  }
  if (hook_hits("SDSM_PROC_TEST_COLLIDE", node)) {
    std::fprintf(stderr, "sdsm_worker: node %u: test hook: pre-mapping the "
                         "agreed arena base\n", node);
    ::mmap(reinterpret_cast<void*>(rdv.arena_base), 4096,
           PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED,
           -1, 0);
  }

  cfg.mode = DeployMode::kProcesses;
  cfg.local_node = node;
  cfg.arena_base = reinterpret_cast<void*>(rdv.arena_base);
  core::DsmRuntime rt(cfg, std::make_unique<proc::MeshTransport>(
                               nprocs, node, std::move(rdv.peer_fds)));

  api::TmkBackend backend(nprocs, req.backend, options);
  proc::WorkerReport rep;
  rep.node = node;
  rep.result = prepared.is_double3
                   ? backend.run_on(rt, prepared.spec3, nullptr)
                   : backend.run_on(rt, prepared.spec, nullptr);
  rep.ok = true;

  // Teardown alignment: a peer's convergence/checksum reads may still
  // fetch from this node after the kernel's last barrier, so every worker
  // crosses one more barrier before any service thread stops.
  rt.run([](core::DsmNode& n) { n.barrier(); });

  if (!proc::write_report_file(report_path, rep)) {
    fail(report_path, node, "cannot write report file", kExitBadArgs);
  }
  return 0;
}
