// Umbrella header for sdsm::proc, the multi-process deployment layer:
// include this to launch jobs across spawned worker processes
// (proc::run_job).  The building blocks — rendezvous, mesh transport,
// report codec — have their own headers for the worker binary and tests.
#pragma once

#include "src/proc/launcher.hpp"
