#include "src/proc/mesh_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include "src/common/assert.hpp"
#include "src/net/sockio.hpp"

namespace sdsm::proc {

MeshTransport::MeshTransport(std::uint32_t num_nodes, NodeId local,
                             std::vector<int> peer_fds)
    : ChannelTransport(num_nodes, net::WireModel{}),
      local_(local),
      peer_fds_(std::move(peer_fds)) {
  SDSM_REQUIRE(local_ < num_nodes);
  SDSM_REQUIRE(peer_fds_.size() == num_nodes);
  SDSM_REQUIRE_MSG(peer_fds_[local_] == -1,
                   "MeshTransport: the local node has no peer socket");
  send_mu_.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n == local_) continue;
    SDSM_REQUIRE_MSG(peer_fds_[n] >= 0,
                     "MeshTransport: missing peer socket");
    net::set_nodelay(peer_fds_[n]);
    send_mu_[n] = std::make_unique<std::mutex>();
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n == local_) continue;
    recv_threads_.emplace_back([this, n] { recv_loop(n); });
  }
}

MeshTransport::~MeshTransport() {
  // Shut the sockets down first so blocked recv_loop reads return, then
  // join and close.  Peers see EOF and wind down their matching threads.
  for (const int fd : peer_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : recv_threads_) t.join();
  for (const int fd : peer_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void MeshTransport::send(net::Port port, net::Message msg) {
  SDSM_REQUIRE(msg.dst < num_nodes());
  count_send(msg);
  if (msg.dst == local_) {
    deliver(port, std::move(msg), Clock::now());
    return;
  }
  const std::vector<std::uint8_t> frame = net::encode_frame(port, msg);
  std::lock_guard<std::mutex> g(*send_mu_[msg.dst]);
  // A failed write means the peer process is gone; the launcher notices
  // the exit and kills this run, so dropping the frame here is fine.
  net::write_full(peer_fds_[msg.dst], frame.data(), frame.size());
}

void MeshTransport::recv_loop(NodeId peer) {
  net::FrameHeader h;
  net::Message msg;
  while (net::read_frame(peer_fds_[peer], h, msg)) {
    SDSM_REQUIRE_MSG(msg.dst == local_,
                     "MeshTransport: inbound frame for a foreign node");
    deliver(static_cast<net::Port>(h.port), std::move(msg), Clock::now());
    msg = net::Message{};
  }
}

}  // namespace sdsm::proc
