// Cross-process net::Transport: one worker process per node, a full TCP
// mesh between them (TransportKind::kSocket on every worker's DsmConfig).
//
// Unlike SocketTransport's in-process switch topology — N nodes, one
// switch thread, all inside one address space — a MeshTransport instance
// lives in ONE worker process and carries exactly that process's node.
// peer_fds[n] is a connected localhost TCP socket to node n's process
// (built by the rendezvous, src/proc/rendezvous.hpp); frames to a remote
// node are written straight onto its socket, frames to the local node
// short-circuit through deliver() like every loopback send.  One receive
// thread per peer parses inbound frames — which by construction are all
// addressed to the local node — and hands them to the shared channel
// machinery, so recv/wait/poll semantics are identical to the other
// fabrics.
//
// The frame format is sockio.hpp's, byte-identical to SocketTransport's,
// and count_send applies the same accounting rules (loopback and control
// traffic excluded).  Each process therefore counts exactly the messages
// its node *sends*; summing the per-worker counters reproduces the
// threaded socket run's fabric totals exactly — the wire-parity claim
// tests/test_proc.cpp asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/channel_transport.hpp"

namespace sdsm::proc {

class MeshTransport final : public net::ChannelTransport {
 public:
  /// Takes ownership of `peer_fds` (size num_nodes; peer_fds[local] must
  /// be -1, every other entry a connected stream socket to that node's
  /// process) and starts one receive thread per peer.
  MeshTransport(std::uint32_t num_nodes, NodeId local,
                std::vector<int> peer_fds);
  ~MeshTransport() override;

  void send(net::Port port, net::Message msg) override;

  NodeId local_node() const { return local_; }

 private:
  void recv_loop(NodeId peer);

  const NodeId local_;
  std::vector<int> peer_fds_;
  std::vector<std::unique_ptr<std::mutex>> send_mu_;  ///< per peer fd
  std::vector<std::thread> recv_threads_;
};

}  // namespace sdsm::proc
