#include "src/coherence/heat.hpp"

#include <algorithm>

namespace sdsm::coherence {

void WriteCensus::fold(PageId page, NodeId writer, std::uint32_t bytes,
                       std::uint32_t epoch) {
  Entry& e = pages_[page];
  auto it = std::find_if(e.writers.begin(), e.writers.end(),
                         [&](const WriterScore& w) { return w.node == writer; });
  if (it == e.writers.end()) {
    e.writers.push_back(WriterScore{writer, bytes, 1, epoch});
    return;
  }
  WriterScore& w = *it;
  if (epoch == w.last_write) {
    // Second interval of the same epoch (a GC inner round): same-epoch
    // additions commute, so cross-node fold order is irrelevant.
    w.score += bytes;
    return;
  }
  w.streak = (epoch == w.last_write + 1) ? w.streak + 1 : 1;
  w.score = decayed64(w.score, epoch - w.last_write) + bytes;
  w.last_write = epoch;
}

void WriteCensus::prune(std::uint32_t epoch) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    auto& writers = it->second.writers;
    writers.erase(std::remove_if(writers.begin(), writers.end(),
                                 [&](const WriterScore& w) {
                                   return decayed64(w.score,
                                                    epoch - w.last_write) == 0;
                                 }),
                  writers.end());
    it = writers.empty() ? pages_.erase(it) : std::next(it);
  }
}

}  // namespace sdsm::coherence
