// Public knobs of the adaptive coherence engine.
//
// The engine watches per-page write traffic (a deterministic census folded
// from the interval write notices every node already exchanges) and, at
// each barrier rendezvous, classifies hot pages so the protocol can switch
// mechanism per page: read-mostly pages are REPLICATED (the writer pushes
// whole updates inside its write notices instead of letting every reader
// fault and fetch), multi-writer pages are MIGRATED to their dominant
// writer (a counted ownership transfer), and stable indirection regions
// are promoted to CHAOS-style ghost zones (validate skips re-scanning
// them).  CoherencePolicy::kStatic switches all of it off and must leave
// the protocol byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sdsm::coherence {

enum class CoherencePolicy : std::uint8_t {
  kStatic = 0,    ///< fixed invalidate+fetch protocol (the baseline)
  kAdaptive = 1,  ///< heat-driven replicate / migrate / ghost decisions
};

constexpr std::string_view coherence_policy_name(CoherencePolicy p) {
  return p == CoherencePolicy::kAdaptive ? "adaptive" : "static";
}

inline std::optional<CoherencePolicy> parse_coherence_policy(
    std::string_view s) {
  if (s == "static") return CoherencePolicy::kStatic;
  if (s == "adaptive") return CoherencePolicy::kAdaptive;
  return std::nullopt;
}

/// Thresholds of the policy engine.  Every node evaluates the same census
/// with the same tuning, so the values only need to be consistent across
/// the run — they are part of DsmConfig for that reason.
struct CoherenceTuning {
  /// Consecutive write epochs a sole writer must sustain before its page
  /// is replicated.  Below this, a page that is written once and then
  /// only read still pays one fetch round per reader.
  std::uint32_t repl_epochs = 2;

  /// Ownership hysteresis for migrated pages: a challenger takes the page
  /// only when challenger_score * den > incumbent_score * num.  The
  /// default 3/1 tolerates writers that alternate epoch-by-epoch (scores
  /// halve per idle epoch, so an alternating rival peaks below 3x) while
  /// a genuine hand-off overtakes the decaying incumbent within a couple
  /// of epochs.
  std::uint32_t migrate_num = 3;
  std::uint32_t migrate_den = 1;

  /// Epochs a schedule's indirection pages must stay untouched before the
  /// schedule is promoted to a ghost zone.
  std::uint32_t ghost_epochs = 3;
};

}  // namespace sdsm::coherence
