// Barrier-time classification for the adaptive coherence engine.
//
// Every node runs an identical PolicyEngine over an identical WriteCensus
// (see heat.hpp for why the census cannot diverge), so the per-page
// directory — which pages are replicated or migrated, and who owns them —
// is agreed upon by construction, with no directory traffic.  Decisions
// take effect through two hooks in the core protocol:
//
//  - should_inline(page): the writer of a classified page embeds its
//    encoded diff directly in the write notice, which already travels
//    with the barrier messages.  Readers apply those inline diffs at
//    barrier release instead of faulting and fetching.
//
//  - tick(): advances the epoch once per barrier, reclassifies, and
//    reports pages whose ownership just moved to the calling node so it
//    can issue the (counted) ownership-transfer fetch and serve future
//    readers as the page's home.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/coherence/coherence.hpp"
#include "src/coherence/heat.hpp"
#include "src/common/types.hpp"

namespace sdsm::coherence {

enum class PageClass : std::uint8_t {
  kNone = 0,        ///< default invalidate+fetch protocol
  kReplicated = 1,  ///< sole sustained writer pushes updates to readers
  kMigrated = 2,    ///< multi-writer page homed at its dominant writer
};

class PolicyEngine {
 public:
  PolicyEngine(NodeId self, CoherenceTuning tuning)
      : self_(self), tuning_(tuning) {}

  std::uint32_t epoch() const { return epoch_; }

  /// Folds one write notice into the census (own notices at interval
  /// close, foreign notices as their metas are first applied).
  void fold_write(PageId page, NodeId writer, std::uint32_t bytes) {
    census_.fold(page, writer, bytes, epoch_);
  }

  /// True when the current writer of `page` must inline its diff into the
  /// write notice.
  bool should_inline(PageId page) const {
    return dir_.find(page) != dir_.end();
  }

  PageClass page_class(PageId page) const {
    auto it = dir_.find(page);
    return it == dir_.end() ? PageClass::kNone : it->second.cls;
  }

  /// Owner of a classified page (the sole writer of a replicated page or
  /// the dominant writer of a migrated one).  kInvalidNode when none.
  NodeId owner(PageId page) const {
    auto it = dir_.find(page);
    return it == dir_.end() ? kInvalidNode : it->second.owner;
  }

  struct TickResult {
    std::uint32_t migrations = 0;     ///< migrated-page owner changes
    std::vector<PageId> newly_owned;  ///< pages this node just took over
  };

  /// Ends the epoch that the just-completed barrier closed and
  /// reclassifies every censused page.  Deterministic given the census.
  TickResult tick();

  void reset() {
    epoch_ = 0;
    census_.clear();
    dir_.clear();
  }

  static constexpr NodeId kInvalidNode = ~NodeId{0};

 private:
  struct DirEntry {
    PageClass cls = PageClass::kNone;
    NodeId owner = kInvalidNode;
  };

  NodeId self_;
  CoherenceTuning tuning_;
  std::uint32_t epoch_ = 0;
  WriteCensus census_;
  std::unordered_map<PageId, DirEntry> dir_;
};

}  // namespace sdsm::coherence
