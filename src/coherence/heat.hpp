// Heat accounting for the adaptive coherence engine.
//
// Two instruments live here:
//
//  - HeatTracker: stateless decay arithmetic for the per-page read/write
//    heat counters embedded in core::PageMeta.  The counters are bumped on
//    the existing fault/fetch paths (no syscalls, no messages) and decay
//    by one binary order of magnitude per epoch, applied lazily at the
//    next touch so idle pages cost nothing.
//
//  - WriteCensus: the per-page, per-writer score table the policy engine
//    classifies from.  It is folded exclusively from interval write
//    notices — data every node already receives at each barrier — using
//    integer arithmetic only, so all nodes reach an identical census (and
//    therefore identical decisions) with zero extra coordination.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::coherence {

/// Epoch-decay arithmetic for the u16 heat counters in PageMeta.  All
/// functions are pure; the caller owns the storage.
class HeatTracker {
 public:
  static constexpr std::uint16_t kMax = 0xffff;

  /// Value of a counter `elapsed` epochs after it was last materialized
  /// (halving per epoch).
  static constexpr std::uint16_t decayed(std::uint16_t heat,
                                         std::uint32_t elapsed) {
    return elapsed >= 16 ? std::uint16_t{0}
                         : static_cast<std::uint16_t>(heat >> elapsed);
  }

  /// Brings both counters of a page forward to epoch `now`.
  static void advance(std::uint16_t& read_heat, std::uint16_t& write_heat,
                      std::uint32_t& heat_epoch, std::uint32_t now) {
    if (now == heat_epoch) return;
    const std::uint32_t elapsed = now - heat_epoch;
    read_heat = decayed(read_heat, elapsed);
    write_heat = decayed(write_heat, elapsed);
    heat_epoch = now;
  }

  static void bump_read(std::uint16_t& read_heat, std::uint16_t& write_heat,
                        std::uint32_t& heat_epoch, std::uint32_t now) {
    advance(read_heat, write_heat, heat_epoch, now);
    if (read_heat < kMax) ++read_heat;
  }

  static void bump_write(std::uint16_t& read_heat, std::uint16_t& write_heat,
                         std::uint32_t& heat_epoch, std::uint32_t now) {
    advance(read_heat, write_heat, heat_epoch, now);
    if (write_heat < kMax) ++write_heat;
  }
};

/// Deterministic per-page write census.  Scores are encoded-diff byte
/// counts decayed by one shift per epoch; the decay is carried lazily in
/// `last_write` (a score is the value as of that epoch).  Folds for one
/// (page, writer) always happen in the same epoch on every node, and
/// within an epoch integer additions commute, so fold order cannot make
/// two nodes disagree.
class WriteCensus {
 public:
  struct WriterScore {
    NodeId node = 0;
    std::uint64_t score = 0;       ///< decayed bytes as of `last_write`
    std::uint32_t streak = 0;      ///< consecutive epochs with a write
    std::uint32_t last_write = 0;  ///< epoch of the most recent fold
  };
  struct Entry {
    std::vector<WriterScore> writers;
  };

  static constexpr std::uint64_t decayed64(std::uint64_t score,
                                           std::uint32_t elapsed) {
    return elapsed >= 64 ? 0 : score >> elapsed;
  }

  /// Records `bytes` of diff written to `page` by `writer` during `epoch`.
  void fold(PageId page, NodeId writer, std::uint32_t bytes,
            std::uint32_t epoch);

  /// Drops writers whose score has decayed to zero as of `epoch`, then
  /// drops pages with no writers left.  Called once per policy tick so
  /// the census stays proportional to the live working set.
  void prune(std::uint32_t epoch);

  const Entry* find(PageId page) const {
    auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<PageId, Entry>& pages() const { return pages_; }
  void clear() { pages_.clear(); }

 private:
  std::unordered_map<PageId, Entry> pages_;
};

}  // namespace sdsm::coherence
