#include "src/coherence/policy.hpp"

#include <algorithm>

namespace sdsm::coherence {

namespace {

std::uint64_t score_at(const WriteCensus::WriterScore& w, std::uint32_t epoch) {
  return WriteCensus::decayed64(w.score, epoch - w.last_write);
}

}  // namespace

PolicyEngine::TickResult PolicyEngine::tick() {
  ++epoch_;
  census_.prune(epoch_);
  TickResult out;

  // Pages whose writers all decayed away demote silently: the next reader
  // falls back to the plain invalidate+fetch path.
  for (auto it = dir_.begin(); it != dir_.end();) {
    it = census_.find(it->first) == nullptr ? dir_.erase(it) : std::next(it);
  }

  for (const auto& [page, entry] : census_.pages()) {
    const auto& ws = entry.writers;  // non-empty and score > 0 after prune
    const auto prev = dir_.find(page);
    DirEntry next;

    if (ws.size() == 1) {
      // Sole writer: replicate once the streak proves the page is not a
      // one-shot write.  An already-classified page stays with its
      // surviving writer until the score decays out of the census — that
      // keeps a replicated page replicated across epochs where the owner
      // happens not to write.
      const WriteCensus::WriterScore& w = ws.front();
      if (w.streak >= tuning_.repl_epochs || prev != dir_.end()) {
        next = DirEntry{PageClass::kReplicated, w.node};
      }
    } else {
      // Multi-writer: home the page at its dominant writer.  The
      // incumbent keeps the page unless a challenger clears the
      // hysteresis ratio, so writers that alternate epochs cannot
      // ping-pong ownership.
      const WriteCensus::WriterScore* best = &ws.front();
      std::uint64_t best_score = score_at(*best, epoch_);
      for (const WriteCensus::WriterScore& w : ws) {
        const std::uint64_t s = score_at(w, epoch_);
        if (s > best_score || (s == best_score && w.node < best->node)) {
          best = &w;
          best_score = s;
        }
      }
      NodeId owner = best->node;
      if (prev != dir_.end() && prev->second.cls == PageClass::kMigrated) {
        const NodeId inc = prev->second.owner;
        const auto inc_it =
            std::find_if(ws.begin(), ws.end(),
                         [&](const WriteCensus::WriterScore& w) {
                           return w.node == inc;
                         });
        if (inc_it != ws.end() &&
            best_score * tuning_.migrate_den <=
                score_at(*inc_it, epoch_) * tuning_.migrate_num) {
          owner = inc;
        }
      }
      next = DirEntry{PageClass::kMigrated, owner};
    }

    if (next.cls == PageClass::kNone) {
      if (prev != dir_.end()) dir_.erase(prev);
      continue;
    }
    const bool owner_moved =
        prev == dir_.end() || prev->second.owner != next.owner;
    if (next.cls == PageClass::kMigrated && owner_moved) {
      ++out.migrations;
      if (next.owner == self_) out.newly_owned.push_back(page);
    }
    dir_[page] = next;
  }

  // The census map iterates in an unspecified order; sort so the
  // ownership-transfer fetch is identical on every run.
  std::sort(out.newly_owned.begin(), out.newly_owned.end());
  return out;
}

}  // namespace sdsm::coherence
