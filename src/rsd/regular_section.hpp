// Regular section descriptors (RSDs) after Havlak & Kennedy: per-dimension
// triplets lower:upper:stride describing the sub-array a loop nest accesses,
// e.g. interaction_list[1:2:1, 1:n:1].  RSDs are the single currency between
// the compiler front-end (which derives them from subscript analysis) and
// the Validate run-time interface (which turns them into page sets).
//
// Bounds are inclusive and 0-based here; the mini-Fortran front-end converts
// from Fortran's 1-based form when it lowers to runtime plans.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace sdsm::rsd {

struct Dim {
  std::int64_t lower = 0;
  std::int64_t upper = -1;  ///< inclusive; upper < lower means empty
  std::int64_t stride = 1;  ///< must be positive

  std::int64_t count() const {
    if (upper < lower) return 0;
    return (upper - lower) / stride + 1;
  }
  bool contains(std::int64_t i) const {
    return i >= lower && i <= upper && (i - lower) % stride == 0;
  }
  bool operator==(const Dim&) const = default;
};

/// Maps a multi-index to a flat element index.  Fortran arrays are
/// column-major (the first subscript varies fastest), which matters for
/// which elements share a page.
struct ArrayLayout {
  std::vector<std::int64_t> extents;  ///< size of each dimension
  bool column_major = true;

  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (auto e : extents) n *= e;
    return n;
  }

  std::int64_t flatten(const std::vector<std::int64_t>& idx) const;
};

class RegularSection {
 public:
  RegularSection() = default;
  explicit RegularSection(std::vector<Dim> dims) : dims_(std::move(dims)) {}
  RegularSection(std::initializer_list<Dim> dims) : dims_(dims) {}

  /// Convenience: the dense 1-D section [lo, hi].
  static RegularSection dense1d(std::int64_t lo, std::int64_t hi) {
    return RegularSection({Dim{lo, hi, 1}});
  }

  std::size_t rank() const { return dims_.size(); }
  const Dim& dim(std::size_t d) const { return dims_[d]; }
  const std::vector<Dim>& dims() const { return dims_; }

  /// Total number of elements described.
  std::int64_t count() const;

  bool empty() const { return count() == 0; }

  bool contains(const std::vector<std::int64_t>& idx) const;

  /// True when this section contains every element of `other` (conservative:
  /// exact for equal strides, otherwise falls back to element membership for
  /// small sections and to false beyond that).
  bool contains_section(const RegularSection& other) const;

  /// Per-dimension intersection; empty result when disjoint in any
  /// dimension.  Exact when strides are equal; otherwise conservative
  /// (may over-approximate), which is the safe direction for prefetching.
  RegularSection intersect(const RegularSection& other) const;

  /// Invokes fn for every multi-index in the section, last dimension
  /// slowest when `layout.column_major` (Fortran order).
  void for_each(const std::function<void(const std::vector<std::int64_t>&)>& fn) const;

  /// Flat element indices of the section under `layout`, in iteration order.
  std::vector<std::int64_t> flat_indices(const ArrayLayout& layout) const;

  /// When the section maps to one contiguous run of flat element indices
  /// under `layout` (dense dims, full extents below the last partial
  /// dimension), returns the inclusive [first, last] flat range.  This is
  /// the common shape produced by the compiler (e.g. interaction_list
  /// [1:2, lo:hi] column-major) and enables O(1) page-set computation and
  /// tight Read_indices scan loops.
  std::optional<std::pair<std::int64_t, std::int64_t>> contiguous_flat_range(
      const ArrayLayout& layout) const;

  /// Allocation-free visitation of flat element indices in iteration order
  /// (first dimension fastest under column-major).  `fn(flat)` is called
  /// once per element; the flat index is maintained incrementally.
  template <typename Fn>
  void for_each_flat(const ArrayLayout& layout, Fn&& fn) const {
    if (empty()) return;
    const std::size_t n = dims_.size();
    SDSM_REQUIRE(layout.extents.size() == n);
    std::int64_t mult_buf[8];
    std::int64_t idx_buf[8];
    SDSM_REQUIRE(n <= 8);
    if (layout.column_major) {
      std::int64_t m = 1;
      for (std::size_t d = 0; d < n; ++d) {
        mult_buf[d] = m;
        m *= layout.extents[d];
      }
    } else {
      std::int64_t m = 1;
      for (std::size_t d = n; d-- > 0;) {
        mult_buf[d] = m;
        m *= layout.extents[d];
      }
    }
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < n; ++d) {
      idx_buf[d] = dims_[d].lower;
      flat += idx_buf[d] * mult_buf[d];
    }
    for (;;) {
      fn(flat);
      std::size_t d = 0;
      for (; d < n; ++d) {
        idx_buf[d] += dims_[d].stride;
        flat += dims_[d].stride * mult_buf[d];
        if (idx_buf[d] <= dims_[d].upper) break;
        flat -= (idx_buf[d] - dims_[d].lower) * mult_buf[d];
        idx_buf[d] = dims_[d].lower;
      }
      if (d == n) return;
    }
  }

  /// Sorted, deduplicated list of pages covered by the section's elements,
  /// for an array whose element 0 lives at byte offset `base` and whose
  /// elements are `elem_size` bytes.
  std::vector<PageId> pages(GlobalAddr base, std::size_t elem_size,
                            const ArrayLayout& layout,
                            std::size_t page_size) const;

  std::string to_string() const;

  bool operator==(const RegularSection&) const = default;

 private:
  std::vector<Dim> dims_;
};

/// Pages touched by the dense byte range [base, base+len).
std::vector<PageId> pages_of_range(GlobalAddr base, std::size_t len,
                                   std::size_t page_size);

}  // namespace sdsm::rsd
