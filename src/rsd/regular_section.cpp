#include "src/rsd/regular_section.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace sdsm::rsd {

std::int64_t ArrayLayout::flatten(const std::vector<std::int64_t>& idx) const {
  SDSM_REQUIRE(idx.size() == extents.size());
  std::int64_t flat = 0;
  if (column_major) {
    std::int64_t mult = 1;
    for (std::size_t d = 0; d < extents.size(); ++d) {
      SDSM_REQUIRE(idx[d] >= 0 && idx[d] < extents[d]);
      flat += idx[d] * mult;
      mult *= extents[d];
    }
  } else {
    std::int64_t mult = 1;
    for (std::size_t d = extents.size(); d-- > 0;) {
      SDSM_REQUIRE(idx[d] >= 0 && idx[d] < extents[d]);
      flat += idx[d] * mult;
      mult *= extents[d];
    }
  }
  return flat;
}

std::int64_t RegularSection::count() const {
  std::int64_t n = 1;
  for (const auto& d : dims_) n *= d.count();
  return dims_.empty() ? 0 : n;
}

bool RegularSection::contains(const std::vector<std::int64_t>& idx) const {
  SDSM_REQUIRE(idx.size() == dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (!dims_[d].contains(idx[d])) return false;
  }
  return true;
}

bool RegularSection::contains_section(const RegularSection& other) const {
  if (other.rank() != rank()) return false;
  if (other.empty()) return true;
  bool exact = true;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dim& a = dims_[d];
    const Dim& b = other.dims_[d];
    if (a.stride == b.stride ||
        (a.stride == 1)) {  // unit stride contains any aligned subsection
      if (b.lower < a.lower || b.upper > a.upper) return false;
      if (a.stride != 1 &&
          ((b.lower - a.lower) % a.stride != 0 || b.stride % a.stride != 0)) {
        exact = false;
      }
    } else {
      exact = false;
    }
  }
  if (exact) return true;
  // Fall back to explicit membership for small sections only.
  constexpr std::int64_t kExplicitLimit = 4096;
  if (other.count() > kExplicitLimit) return false;
  bool all = true;
  other.for_each([&](const std::vector<std::int64_t>& idx) {
    if (!contains(idx)) all = false;
  });
  return all;
}

RegularSection RegularSection::intersect(const RegularSection& other) const {
  SDSM_REQUIRE(other.rank() == rank());
  std::vector<Dim> out;
  out.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dim& a = dims_[d];
    const Dim& b = other.dims_[d];
    Dim r;
    r.lower = std::max(a.lower, b.lower);
    r.upper = std::min(a.upper, b.upper);
    if (a.stride == b.stride) {
      r.stride = a.stride;
      if (a.stride > 1 && (a.lower - b.lower) % a.stride != 0) {
        // Interleaved lattices never meet.
        r.upper = r.lower - 1;
      } else if (a.stride > 1 && r.upper >= r.lower) {
        // Align the lower bound to the common lattice.
        const std::int64_t misalign = (r.lower - a.lower) % a.stride;
        if (misalign != 0) r.lower += a.stride - misalign;
      }
    } else {
      // Conservative over-approximation: keep the bounds, use the finer
      // stride.  Over-approximating a prefetch set is safe (extra pages),
      // never incorrect.
      r.stride = std::gcd(a.stride, b.stride);
    }
    if (r.upper < r.lower) return RegularSection({Dim{0, -1, 1}});
    out.push_back(r);
  }
  return RegularSection(std::move(out));
}

void RegularSection::for_each(
    const std::function<void(const std::vector<std::int64_t>&)>& fn) const {
  if (empty()) return;
  std::vector<std::int64_t> idx(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) idx[d] = dims_[d].lower;
  for (;;) {
    fn(idx);
    // Advance first dimension fastest (Fortran order).
    std::size_t d = 0;
    for (; d < dims_.size(); ++d) {
      idx[d] += dims_[d].stride;
      if (idx[d] <= dims_[d].upper) break;
      idx[d] = dims_[d].lower;
    }
    if (d == dims_.size()) return;
  }
}

std::vector<std::int64_t> RegularSection::flat_indices(
    const ArrayLayout& layout) const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(count()));
  for_each([&](const std::vector<std::int64_t>& idx) {
    out.push_back(layout.flatten(idx));
  });
  return out;
}

std::optional<std::pair<std::int64_t, std::int64_t>>
RegularSection::contiguous_flat_range(const ArrayLayout& layout) const {
  if (empty()) return std::nullopt;
  const std::size_t n = dims_.size();
  if (layout.extents.size() != n) return std::nullopt;
  // Walk dimensions fastest-varying first; find the last dim with more
  // than one element.  Contiguity requires every faster dim to be full and
  // dense, and that last partial dim to be dense.
  std::size_t last_wide = 0;
  bool any_wide = false;
  auto fast_dim = [&](std::size_t k) {
    return layout.column_major ? k : n - 1 - k;
  };
  for (std::size_t k = 0; k < n; ++k) {
    if (dims_[fast_dim(k)].count() > 1) {
      last_wide = k;
      any_wide = true;
    }
  }
  if (any_wide) {
    for (std::size_t k = 0; k < last_wide; ++k) {
      const Dim& d = dims_[fast_dim(k)];
      if (d.stride != 1 || d.lower != 0 ||
          d.upper != layout.extents[fast_dim(k)] - 1) {
        return std::nullopt;
      }
    }
    if (dims_[fast_dim(last_wide)].stride != 1) return std::nullopt;
  }
  std::vector<std::int64_t> lo(n), hi(n);
  for (std::size_t d = 0; d < n; ++d) {
    lo[d] = dims_[d].lower;
    hi[d] = dims_[d].upper;
  }
  return std::make_pair(layout.flatten(lo), layout.flatten(hi));
}

std::vector<PageId> RegularSection::pages(GlobalAddr base,
                                          std::size_t elem_size,
                                          const ArrayLayout& layout,
                                          std::size_t page_size) const {
  if (const auto range = contiguous_flat_range(layout)) {
    const GlobalAddr lo =
        base + static_cast<GlobalAddr>(range->first) * elem_size;
    const GlobalAddr hi =
        base + static_cast<GlobalAddr>(range->second + 1) * elem_size - 1;
    std::vector<PageId> out;
    const auto first = static_cast<PageId>(lo / page_size);
    const auto last = static_cast<PageId>(hi / page_size);
    out.reserve(last - first + 1);
    for (PageId p = first; p <= last; ++p) out.push_back(p);
    return out;
  }
  std::vector<PageId> out;
  out.reserve(64);
  PageId last = kInvalidPage;
  for_each_flat(layout, [&](std::int64_t flat) {
    const GlobalAddr lo = base + static_cast<GlobalAddr>(flat) * elem_size;
    const GlobalAddr hi = lo + elem_size - 1;
    const auto first = static_cast<PageId>(lo / page_size);
    const auto second = static_cast<PageId>(hi / page_size);
    for (PageId p = first; p <= second; ++p) {
      if (p != last) {
        out.push_back(p);
        last = p;
      }
    }
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string RegularSection::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d > 0) os << ", ";
    os << dims_[d].lower << ':' << dims_[d].upper;
    if (dims_[d].stride != 1) os << ':' << dims_[d].stride;
  }
  os << ']';
  return os.str();
}

std::vector<PageId> pages_of_range(GlobalAddr base, std::size_t len,
                                   std::size_t page_size) {
  if (len == 0) return {};
  const auto first = static_cast<PageId>(base / page_size);
  const auto last = static_cast<PageId>((base + len - 1) / page_size);
  std::vector<PageId> out;
  out.reserve(last - first + 1);
  for (PageId p = first; p <= last; ++p) out.push_back(p);
  return out;
}

}  // namespace sdsm::rsd
