// RAII wrapper around an mmap region with per-page protection control.
// Each simulated node owns one PageRegion: its private view of the global
// shared address space.  The DSM protocol drives page state transitions
// through protect(); stray application accesses fault exactly as they would
// on a TreadMarks node.
//
// The region is backed by a memfd mapped twice: the *access* view (base()),
// whose protections the protocol manages, and a *mirror* view that is always
// readable and writable.  The runtime applies diffs and copies twins through
// the mirror, so protocol-internal data movement needs no protection flips —
// the same separation TreadMarks achieved with its unprotected runtime
// window, and essential here because all nodes share one process:
// mprotect() serializes on the address-space lock and broadcasts TLB
// shootdowns, so every avoided call matters.
#pragma once

#include <cstddef>
#include <span>

#include "src/common/types.hpp"

namespace sdsm::vm {

enum class Prot : std::uint8_t {
  kNone,       ///< PROT_NONE  - invalid page, any access faults
  kRead,       ///< PROT_READ  - valid page, writes fault (twin on demand)
  kReadWrite,  ///< PROT_READ|PROT_WRITE - dirty page
};

class PageRegion {
 public:
  /// Maps `bytes` (rounded up to a page multiple) of zero-filled memory with
  /// initial protection `initial`.  When `fixed_base` is non-null the
  /// access view is mapped exactly there with MAP_FIXED_NOREPLACE — the
  /// cross-process deployment maps every worker's arena at one
  /// rendezvous-agreed base so global addresses stay meaningful — and a
  /// collision with an existing mapping is a hard error with an explicit
  /// "arena base collision" diagnostic.
  explicit PageRegion(std::size_t bytes, Prot initial = Prot::kRead,
                      void* fixed_base = nullptr);
  ~PageRegion();

  PageRegion(const PageRegion&) = delete;
  PageRegion& operator=(const PageRegion&) = delete;

  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t num_pages() const { return size_ / page_size_; }

  bool contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + size_;
  }

  /// Page index of an address inside the region.
  PageId page_of(const void* addr) const;

  /// Start of page `page` within this region (the protection-managed view).
  std::byte* page_ptr(PageId page) const;

  /// Start of page `page` within the always-read-write mirror view.  Writes
  /// land in the same physical pages as base() but never fault.
  std::byte* mirror_ptr(PageId page) const;

  /// Changes protection of `count` pages starting at `first`.
  void protect(PageId first, std::size_t count, Prot prot);

  /// Changes protection of every page in `pages` (sorted, unique) with one
  /// mprotect call per contiguous run.
  void protect_pages(std::span<const PageId> pages, Prot prot);

  /// Returns the region to its freshly-mapped state: every page zero-filled
  /// and protected `prot`.  Implemented with FALLOC_FL_PUNCH_HOLE on the
  /// backing memfd so the physical pages are *released*, not memset — a warm
  /// server arena that ran a small job must not keep the whole region
  /// resident.
  void reset(Prot prot = Prot::kRead);

 private:
  std::byte* base_ = nullptr;
  std::byte* mirror_ = nullptr;
  std::size_t size_ = 0;
  std::size_t page_size_ = 0;
  int fd_ = -1;
};

/// System page size (cached).
std::size_t system_page_size();

/// Picks an address where a region of `bytes` can plausibly be mapped with
/// MAP_FIXED_NOREPLACE in *every* worker process of a job: probes a quiet
/// corner of the address space (clear of the heap, libraries, stacks, and
/// sanitizer shadow/allocator regions) in this process and returns the
/// address the kernel granted.  Used by the rendezvous leader to agree an
/// arena base; the probe mapping itself is released before returning.
void* probe_arena_base(std::size_t bytes);

}  // namespace sdsm::vm
