#include "src/vm/page_region.hpp"

#include <fcntl.h>
#include <linux/falloc.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/common/assert.hpp"

namespace sdsm::vm {

namespace {

int to_native(Prot prot) {
  switch (prot) {
    case Prot::kNone:
      return PROT_NONE;
    case Prot::kRead:
      return PROT_READ;
    case Prot::kReadWrite:
      return PROT_READ | PROT_WRITE;
  }
  SDSM_UNREACHABLE("bad Prot");
}

}  // namespace

std::size_t system_page_size() {
  static const std::size_t size = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return size;
}

PageRegion::PageRegion(std::size_t bytes, Prot initial, void* fixed_base)
    : page_size_(system_page_size()) {
  SDSM_REQUIRE(bytes > 0);
  size_ = (bytes + page_size_ - 1) / page_size_ * page_size_;
  const int fd = static_cast<int>(
      ::memfd_create("sdsm-region", MFD_CLOEXEC));
  SDSM_REQUIRE(fd >= 0);
  const int trc = ::ftruncate(fd, static_cast<off_t>(size_));
  SDSM_REQUIRE(trc == 0);
  int flags = MAP_SHARED;
  if (fixed_base != nullptr) flags |= MAP_FIXED_NOREPLACE;
  void* p = ::mmap(fixed_base, size_, to_native(initial), flags, fd, 0);
  if (fixed_base != nullptr && (p == MAP_FAILED || p != fixed_base)) {
    // MAP_FIXED_NOREPLACE fails (or on old kernels falls back to a hint)
    // when anything already occupies the range — the explicit diagnostic a
    // crashed-in-weird-ways worker must not bury.
    std::fprintf(stderr,
                 "sdsm: arena base collision: requested %p (%zu bytes) "
                 "already mapped in this process\n",
                 fixed_base, size_);
    if (p != MAP_FAILED) ::munmap(p, size_);
    ::close(fd);
    std::abort();
  }
  void* m = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED || m == MAP_FAILED) {
    std::perror("sdsm: mmap");
    SDSM_ASSERT(p != MAP_FAILED && m != MAP_FAILED);
  }
  // The fd stays open for the region's lifetime: reset() punches holes
  // through it to return physical pages to the kernel.
  fd_ = fd;
  base_ = static_cast<std::byte*>(p);
  mirror_ = static_cast<std::byte*>(m);
}

PageRegion::~PageRegion() {
  if (base_ != nullptr) ::munmap(base_, size_);
  if (mirror_ != nullptr) ::munmap(mirror_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void PageRegion::reset(Prot prot) {
  const int rc = ::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                             0, static_cast<off_t>(size_));
  if (rc != 0) {
    std::perror("sdsm: fallocate(PUNCH_HOLE)");
    SDSM_ASSERT(rc == 0);
  }
  protect(0, num_pages(), prot);
}

PageId PageRegion::page_of(const void* addr) const {
  SDSM_REQUIRE(contains(addr));
  const auto off =
      static_cast<std::size_t>(static_cast<const std::byte*>(addr) - base_);
  return static_cast<PageId>(off / page_size_);
}

std::byte* PageRegion::page_ptr(PageId page) const {
  SDSM_REQUIRE(page < num_pages());
  return base_ + static_cast<std::size_t>(page) * page_size_;
}

std::byte* PageRegion::mirror_ptr(PageId page) const {
  SDSM_REQUIRE(page < num_pages());
  return mirror_ + static_cast<std::size_t>(page) * page_size_;
}

void PageRegion::protect(PageId first, std::size_t count, Prot prot) {
  SDSM_REQUIRE(first + count <= num_pages());
  if (count == 0) return;
  const int rc =
      ::mprotect(page_ptr(first), count * page_size_, to_native(prot));
  if (rc != 0) {
    std::perror("sdsm: mprotect");
    SDSM_ASSERT(rc == 0);
  }
}

void* probe_arena_base(std::size_t bytes) {
  const std::size_t page = system_page_size();
  const std::size_t size = (bytes + page - 1) / page * page;
  // Hint high in the lower half of the 47-bit user space: above the
  // sanitizer allocator/shadow regions (ASan parks its allocator around
  // 0x6000'0000'0000) and far from the PIE image, heap, and library
  // arena.  Non-fixed, so the kernel slides to a free range if the hint
  // itself is taken; what it grants here is what the rendezvous
  // publishes, and every worker then maps it MAP_FIXED_NOREPLACE.
  void* hint = reinterpret_cast<void*>(0x6fdd00000000ull);
  void* p = ::mmap(hint, size, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  SDSM_REQUIRE(p != MAP_FAILED);
  ::munmap(p, size);
  return p;
}

void PageRegion::protect_pages(std::span<const PageId> pages, Prot prot) {
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    protect(pages[i], j - i, prot);
    i = j;
  }
}

}  // namespace sdsm::vm
