#include "src/vm/fault_dispatcher.hpp"

#include <signal.h>
#include <string.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <array>
#include <cstdint>
#include <mutex>

#include "src/common/assert.hpp"

namespace sdsm::vm {

namespace {

constexpr std::size_t kMaxRegions = 128;
constexpr int kMaxNestedFaults = 64;

thread_local int g_fault_depth = 0;

struct RegionEntry {
  // `lo` doubles as the occupancy flag: 0 means free.  Entries are written
  // under a mutex and read lock-free from the signal handler; the store
  // order below (handler first, then lo) makes a half-registered entry
  // invisible.
  std::atomic<std::uintptr_t> lo{0};
  std::atomic<std::uintptr_t> hi{0};
  FaultHandler handler;
};

[[noreturn]] void die_in_handler(const char* msg) {
  // write(2) is async-signal-safe, unlike fprintf.
  [[maybe_unused]] ssize_t n = ::write(STDERR_FILENO, msg, ::strlen(msg));
  ::abort();
}

}  // namespace

struct FaultDispatcher::Impl {
  std::mutex mu;  // serializes register/unregister
  std::array<RegionEntry, kMaxRegions> regions;
  std::atomic<bool> installed{false};
};

FaultDispatcher::Impl& FaultDispatcher::impl() {
  static Impl* impl = new Impl();  // leaked: must outlive all threads
  return *impl;
}

FaultDispatcher& FaultDispatcher::instance() {
  static FaultDispatcher dispatcher;
  return dispatcher;
}

void FaultDispatcher::register_region(void* base, std::size_t len,
                                      FaultHandler handler) {
  SDSM_REQUIRE(base != nullptr && len > 0);
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!im.installed.load(std::memory_order_acquire)) {
    struct sigaction sa;
    ::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(
        &FaultDispatcher::on_signal);
    // SA_NODEFER allows the nested faults described in the header comment;
    // SA_RESTART keeps interrupted syscalls in other code paths transparent.
    sa.sa_flags = SA_SIGINFO | SA_NODEFER | SA_RESTART;
    ::sigemptyset(&sa.sa_mask);
    SDSM_ASSERT(::sigaction(SIGSEGV, &sa, nullptr) == 0);
    im.installed.store(true, std::memory_order_release);
  }
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  for (auto& e : im.regions) {
    if (e.lo.load(std::memory_order_relaxed) == 0) {
      e.handler = std::move(handler);
      e.hi.store(lo + len, std::memory_order_relaxed);
      e.lo.store(lo, std::memory_order_release);
      return;
    }
  }
  SDSM_UNREACHABLE("fault dispatcher region table full");
}

void FaultDispatcher::unregister_region(void* base) {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.mu);
  const auto lo = reinterpret_cast<std::uintptr_t>(base);
  for (auto& e : im.regions) {
    if (e.lo.load(std::memory_order_relaxed) == lo) {
      e.lo.store(0, std::memory_order_release);
      e.hi.store(0, std::memory_order_relaxed);
      e.handler = nullptr;
      return;
    }
  }
  SDSM_UNREACHABLE("unregister of unknown region");
}

std::size_t FaultDispatcher::num_regions() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> g(im.mu);
  std::size_t n = 0;
  for (auto& e : im.regions) {
    if (e.lo.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

void FaultDispatcher::on_signal(int /*signo*/, void* info_v, void* ucontext_v) {
  auto* info = static_cast<siginfo_t*>(info_v);
  auto* addr = info->si_addr;
  const auto a = reinterpret_cast<std::uintptr_t>(addr);

  FaultAccess access = FaultAccess::kUnknown;
#if defined(__x86_64__)
  // Bit 1 of the page-fault error code distinguishes write (1) from read (0).
  // Real hardware always sets bit 0 (protection violation) for faults on
  // mprotect-ed pages, so err == 0 means the kernel (e.g. a sandboxed one)
  // did not populate the error code: report kUnknown and let the caller
  // fall back to protection-state escalation.
  auto* uc = static_cast<ucontext_t*>(ucontext_v);
  const auto err = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[REG_ERR]);
  if (err != 0) {
    access = (err & 0x2) != 0 ? FaultAccess::kWrite : FaultAccess::kRead;
  }
#else
  (void)ucontext_v;
#endif

  Impl& im = impl();
  for (auto& e : im.regions) {
    const auto lo = e.lo.load(std::memory_order_acquire);
    if (lo == 0 || a < lo) continue;
    if (a >= e.hi.load(std::memory_order_relaxed)) continue;
    if (++g_fault_depth > kMaxNestedFaults) {
      die_in_handler("sdsm: fault handler recursion limit exceeded\n");
    }
    e.handler(addr, access);
    --g_fault_depth;
    return;  // retry the faulting instruction
  }

  // Not one of ours: restore the default action and return, so the retried
  // access produces an ordinary crash with a usable core dump.
  ::signal(SIGSEGV, SIG_DFL);
  die_in_handler("sdsm: SIGSEGV outside registered DSM regions\n");
}

}  // namespace sdsm::vm
