// Process-wide SIGSEGV dispatcher.
//
// TreadMarks detects shared-memory accesses with virtual-memory protection:
// an invalid access raises SIGSEGV, and the handler runs the coherence
// protocol before retrying the faulting instruction.  This dispatcher
// reproduces that machinery for multiple simulated nodes inside one process:
// each node registers its PageRegion with a callback, and the signal handler
// routes the fault to the region containing the faulting address.
//
// Handler execution context: the callback runs on the faulting (compute)
// thread inside the signal handler.  It may allocate, take locks, and block
// on the message fabric — this is safe for the same reason it was safe in
// TreadMarks: faults are only ever raised by *application* accesses to
// shared data, never from inside the runtime's own critical sections, so no
// lock can be held by the interrupted code.  Nested faults (e.g. the handler
// reads a protected indirection-array page while computing a prefetch set)
// are supported via SA_NODEFER, with a depth guard against runaway
// recursion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sdsm::vm {

enum class FaultAccess : std::uint8_t {
  kRead,
  kWrite,
  kUnknown,  ///< architecture did not expose the access type
};

/// Resolves the fault so the access can be retried, or aborts.
using FaultHandler = std::function<void(void* addr, FaultAccess access)>;

class FaultDispatcher {
 public:
  static FaultDispatcher& instance();

  FaultDispatcher(const FaultDispatcher&) = delete;
  FaultDispatcher& operator=(const FaultDispatcher&) = delete;

  /// Registers [base, base+len) with a handler.  Installs the SIGSEGV action
  /// on first use.  The handler must stay valid until unregister_region.
  void register_region(void* base, std::size_t len, FaultHandler handler);

  /// Removes a previously registered region.
  void unregister_region(void* base);

  /// Number of currently registered regions (for tests).
  std::size_t num_regions() const;

 private:
  FaultDispatcher() = default;

  static void on_signal(int signo, void* info, void* ucontext);
  struct Impl;
  static Impl& impl();
};

}  // namespace sdsm::vm
