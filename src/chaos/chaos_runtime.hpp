// CHAOS-style message-passing runtime (Section 4 of the paper).
//
// Unlike the DSM runtime, there is no shared memory here: each node owns
// plain local arrays (its partition of the data, after remapping, plus a
// ghost region).  Nodes communicate through the same net::Transport fabric
// the DSM uses (in-process or socket, per the runtime's TransportKind), so
// message and byte counts are directly comparable — which is exactly the
// comparison Tables 1 and 2 make.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/buffer.hpp"
#include "src/common/types.hpp"
#include "src/chaos/exchange.hpp"
#include "src/net/transport.hpp"

namespace sdsm::chaos {

class ChaosRuntime;

/// Handle given to each node's compute function.  Implements ExchangeNode,
/// the fabric-agnostic surface the inspector/executor are written against.
class ChaosNode : public ExchangeNode {
 public:
  ChaosNode(ChaosRuntime& rt, NodeId id);

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override;

  /// All-to-all personalized exchange: sends to_peers[p] to node p (own slot
  /// ignored) and returns the payload received from every peer (own slot
  /// empty).  Every pair exchanges a message even when empty — the
  /// request-discovery phase of the inspector cannot know in advance who
  /// needs nothing.
  std::vector<std::vector<std::uint8_t>> all_to_all(
      std::vector<std::vector<std::uint8_t>> to_peers) override;

  /// Sparse exchange used by the executor: sends only the non-empty
  /// payloads; `recv_from[p]` says whether a message from p is expected
  /// (both sides know this from the communication schedule).
  std::vector<std::vector<std::uint8_t>> sparse_exchange(
      std::vector<std::vector<std::uint8_t>> to_peers,
      const std::vector<bool>& recv_from) override;

  /// Barrier over all chaos nodes (central counter at node 0).  When
  /// at_master is non-null, node 0 runs it after every arrival and before
  /// any release: a quiescent point where no other node can be sending —
  /// used for deterministic statistics snapshots.
  void barrier(const std::function<void()>& at_master = {});

 private:
  std::vector<std::vector<std::uint8_t>> exchange(
      std::vector<std::vector<std::uint8_t>> to_peers,
      const std::vector<bool>& recv_from, bool send_empty);

  ChaosRuntime& rt_;
  const NodeId id_;
  std::vector<std::deque<std::vector<std::uint8_t>>> stash_;
};

class ChaosRuntime {
 public:
  explicit ChaosRuntime(
      std::uint32_t num_nodes, net::WireModel wire = {},
      net::TransportKind transport = net::TransportKind::kInProc)
      : net_(net::make_transport(transport, num_nodes, wire)) {}

  std::uint32_t num_nodes() const { return net_->num_nodes(); }
  net::Transport& network() { return *net_; }

  std::uint64_t total_messages() { return net_->stats().messages(); }
  double total_megabytes() { return net_->stats().megabytes(); }
  /// Barrier arrivals summed over nodes (each global barrier counts once
  /// per node, at entry — so at a barrier's quiescent at_master point the
  /// barrier itself is fully counted).  Measured, like messages, so the
  /// bench's barriers_per_step column is never asserted by fiat.
  std::uint64_t total_barriers() const {
    return barriers_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    net_->stats().reset();
    barriers_.store(0, std::memory_order_relaxed);
  }

  /// Runs `body` on one thread per node and joins.
  void run(const std::function<void(ChaosNode&)>& body);

 private:
  friend class ChaosNode;
  std::unique_ptr<net::Transport> net_;
  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace sdsm::chaos
