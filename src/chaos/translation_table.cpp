#include "src/chaos/translation_table.hpp"

#include "src/partition/partition.hpp"

namespace sdsm::chaos {

TranslationTable TranslationTable::build(std::span<const NodeId> owner,
                                         std::uint32_t nprocs, TableKind kind,
                                         std::int64_t page_elems) {
  SDSM_REQUIRE(nprocs >= 1);
  SDSM_REQUIRE(page_elems >= 1);
  TranslationTable t;
  t.kind_ = kind;
  t.nprocs_ = nprocs;
  t.page_elems_ = page_elems;
  t.entries_.resize(owner.size());
  t.local_count_.assign(nprocs, 0);
  for (std::size_t i = 0; i < owner.size(); ++i) {
    const NodeId home = owner[i];
    SDSM_REQUIRE(home < nprocs);
    t.entries_[i].home = home;
    t.entries_[i].offset = static_cast<std::int32_t>(t.local_count_[home]++);
  }
  return t;
}

NodeId TranslationTable::entry_home(std::int64_t global) const {
  SDSM_REQUIRE(global >= 0 && global < size());
  switch (kind_) {
    case TableKind::kReplicated:
      return 0;  // unused: every node has the entry locally
    case TableKind::kDistributed:
      return part::block_owner(global, size(), nprocs_);
    case TableKind::kPaged:
      return static_cast<NodeId>((global / page_elems_) % nprocs_);
  }
  SDSM_UNREACHABLE("bad TableKind");
}

std::size_t TranslationTable::bytes_per_node(NodeId p) const {
  SDSM_REQUIRE(p < nprocs_);
  const std::size_t entry = sizeof(TableEntry);
  switch (kind_) {
    case TableKind::kReplicated:
      return static_cast<std::size_t>(size()) * entry;
    case TableKind::kDistributed: {
      const auto ranges = part::block_partition(size(), nprocs_);
      return static_cast<std::size_t>(ranges[p].size()) * entry;
    }
    case TableKind::kPaged: {
      const std::int64_t pages = (size() + page_elems_ - 1) / page_elems_;
      std::int64_t mine = 0;
      for (std::int64_t pg = 0; pg < pages; ++pg) {
        if (static_cast<NodeId>(pg % nprocs_) == p) ++mine;
      }
      return static_cast<std::size_t>(mine * page_elems_) * entry;
    }
  }
  SDSM_UNREACHABLE("bad TableKind");
}

}  // namespace sdsm::chaos
