// ExchangeNode: the minimal node-communication surface the inspector and
// executor need — who am I, how many peers, an all-to-all for the
// inspector's discovery phases, and a schedule-driven sparse exchange for
// the executor's gather/scatter.
//
// ChaosNode (src/chaos/chaos_runtime.hpp) is the message-passing
// implementation; plan::DsmExchange (src/api/plan/dsm_exchange.hpp) carries
// the same exchanges over a DSM fabric so a hybrid run can interleave
// inspector gathers with the page protocol on one transport.  Everything
// above this interface — build_schedule, localize_references, gather,
// scatter — is fabric-agnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::chaos {

class ExchangeNode {
 public:
  virtual ~ExchangeNode() = default;

  virtual NodeId id() const = 0;
  virtual std::uint32_t num_nodes() const = 0;

  /// All-to-all personalized exchange: sends to_peers[p] to node p (own
  /// slot ignored) and returns the payload received from every peer (own
  /// slot empty).  Every pair exchanges a message even when empty — the
  /// request-discovery phase of the inspector cannot know in advance who
  /// needs nothing.
  virtual std::vector<std::vector<std::uint8_t>> all_to_all(
      std::vector<std::vector<std::uint8_t>> to_peers) = 0;

  /// Sparse exchange used by the executor: sends only the non-empty
  /// payloads; `recv_from[p]` says whether a message from p is expected
  /// (both sides know this from the communication schedule).
  virtual std::vector<std::vector<std::uint8_t>> sparse_exchange(
      std::vector<std::vector<std::uint8_t>> to_peers,
      const std::vector<bool>& recv_from) = 0;
};

}  // namespace sdsm::chaos
