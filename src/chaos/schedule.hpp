// Communication schedules: the inspector's output, consumed by the
// executor's gather and scatter.
//
// A schedule is symmetric knowledge: after the inspector's request
// exchange, each node knows (a) which of its own local elements every peer
// needs (send side) and (b) into which ghost slot each incoming element
// lands (receive side).  Ghost slots extend the node's local array, exactly
// as CHAOS remaps off-processor data to the end of the local partition.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::chaos {

struct Schedule {
  /// send_elems[p]: local offsets of my elements that peer p gathers.
  std::vector<std::vector<std::int32_t>> send_elems;
  /// recv_ghost[p]: ghost slots (indices into the ghost region) receiving
  /// peer p's elements, in the order p sends them.
  std::vector<std::vector<std::int32_t>> recv_ghost;
  /// Ghost slot of each global element on this node, -1 when the element
  /// is local or unreferenced.  Sized like the data array, as CHAOS sizes
  /// its inspector tables — O(1) localization at executor speed.
  std::vector<std::int32_t> ghost_slot;
  std::int32_t num_ghosts = 0;

  std::int32_t ghost_of_global(std::int64_t g) const {
    return ghost_slot[static_cast<std::size_t>(g)];
  }

  /// True when peer p sends me anything during a gather.
  std::vector<bool> gather_recv_mask() const {
    std::vector<bool> mask(recv_ghost.size());
    for (std::size_t p = 0; p < recv_ghost.size(); ++p) {
      mask[p] = !recv_ghost[p].empty();
    }
    return mask;
  }

  /// True when peer p sends me anything during a scatter (the reverse
  /// direction: contributions to elements I own).
  std::vector<bool> scatter_recv_mask() const {
    std::vector<bool> mask(send_elems.size());
    for (std::size_t p = 0; p < send_elems.size(); ++p) {
      mask[p] = !send_elems[p].empty();
    }
    return mask;
  }
};

}  // namespace sdsm::chaos
