// Translation tables (Section 4): the mapping from global data-array
// elements to (home processor, local offset) produced by a partitioner.
//
// CHAOS stores this table replicated, distributed block-wise, or paged,
// trading memory for lookup communication.  All three variants are
// implemented.  The table contents are identical; what differs is *where*
// an entry lives, i.e. whether the inspector must send a message to read
// it.  The inspector (inspector.cpp) performs those messages; this class
// exposes entry_home() so callers know who must be asked.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace sdsm::chaos {

enum class TableKind : std::uint8_t {
  kReplicated,   ///< every node holds the full table; lookups are local
  kDistributed,  ///< entry i lives on the block-owner of index i
  kPaged,        ///< entries grouped into fixed-size pages, pages assigned
                 ///< round-robin
};

struct TableEntry {
  NodeId home = 0;          ///< processor owning the data element
  std::int32_t offset = 0;  ///< local offset after remapping
};

class TranslationTable {
 public:
  /// Builds the table from an owner map (element -> processor), assigning
  /// local offsets in ascending global order per owner (CHAOS remapping:
  /// elements owned by a processor become adjacent in its memory).
  static TranslationTable build(std::span<const NodeId> owner,
                                std::uint32_t nprocs, TableKind kind,
                                std::int64_t page_elems = 1024);

  TableKind kind() const { return kind_; }
  std::int64_t size() const { return static_cast<std::int64_t>(entries_.size()); }
  std::uint32_t nprocs() const { return nprocs_; }

  /// Full entry for a global index.  In a real deployment a kDistributed /
  /// kPaged table would require a message when entry_home() != caller; the
  /// inspector accounts for that traffic explicitly.
  TableEntry lookup(std::int64_t global) const {
    SDSM_REQUIRE(global >= 0 && global < size());
    return entries_[static_cast<std::size_t>(global)];
  }

  /// Which processor stores the table entry for `global`.
  NodeId entry_home(std::int64_t global) const;

  /// Number of data elements owned by processor p.
  std::int64_t local_count(NodeId p) const {
    SDSM_REQUIRE(p < nprocs_);
    return local_count_[p];
  }

  /// Approximate per-node memory footprint in bytes, used to reproduce the
  /// paper's observation that a replicated table for moldyn did not fit.
  std::size_t bytes_per_node(NodeId p) const;

 private:
  TableKind kind_ = TableKind::kReplicated;
  std::uint32_t nprocs_ = 1;
  std::int64_t page_elems_ = 1024;
  std::vector<TableEntry> entries_;
  std::vector<std::int64_t> local_count_;
};

}  // namespace sdsm::chaos
