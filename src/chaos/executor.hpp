// The executor (Section 4): schedule-driven gather and scatter.
//
// gather() pulls current values of off-processor elements into the ghost
// region before a computational loop; scatter() pushes accumulated
// contributions to ghost copies back to the owners, which combine them with
// a reduction operator.  Each participating pair exchanges exactly one
// message per direction — the communication aggregation that the paper's
// TreadMarks extension matches with Validate.
#pragma once

#include <span>

#include "src/chaos/exchange.hpp"
#include "src/chaos/schedule.hpp"
#include "src/common/buffer.hpp"

namespace sdsm::chaos {

/// Element type requirements: trivially copyable, and addable for scatter.
template <typename T>
concept GatherElement = std::is_trivially_copyable_v<T>;

/// Fills `ghosts` (ghost region of this node) with the current values of
/// remote elements, per schedule.  `local` is the node's owned partition.
template <GatherElement T>
void gather(ExchangeNode& node, const Schedule& sched, std::span<const T> local,
            std::span<T> ghosts) {
  const std::uint32_t nprocs = node.num_nodes();
  std::vector<std::vector<std::uint8_t>> out(nprocs);
  for (NodeId p = 0; p < nprocs; ++p) {
    if (p == node.id() || sched.send_elems[p].empty()) continue;
    Writer w;
    for (const std::int32_t off : sched.send_elems[p]) {
      w.put<T>(local[static_cast<std::size_t>(off)]);
    }
    out[p] = w.take();
  }
  auto in = node.sparse_exchange(std::move(out), sched.gather_recv_mask());
  for (NodeId p = 0; p < nprocs; ++p) {
    if (sched.recv_ghost[p].empty()) continue;
    Reader r(in[p]);
    for (const std::int32_t slot : sched.recv_ghost[p]) {
      ghosts[static_cast<std::size_t>(slot)] = r.get<T>();
    }
  }
}

/// Sends each ghost-slot contribution back to the owner, which merges it
/// into its local element with `combine` (e.g. addition for force
/// accumulation).  The mirror image of gather().
template <GatherElement T, typename Combine>
void scatter(ExchangeNode& node, const Schedule& sched, std::span<T> local,
             std::span<const T> ghosts, Combine combine) {
  const std::uint32_t nprocs = node.num_nodes();
  std::vector<std::vector<std::uint8_t>> out(nprocs);
  for (NodeId p = 0; p < nprocs; ++p) {
    if (p == node.id() || sched.recv_ghost[p].empty()) continue;
    Writer w;
    for (const std::int32_t slot : sched.recv_ghost[p]) {
      w.put<T>(ghosts[static_cast<std::size_t>(slot)]);
    }
    out[p] = w.take();
  }
  auto in = node.sparse_exchange(std::move(out), sched.scatter_recv_mask());
  for (NodeId p = 0; p < nprocs; ++p) {
    if (sched.send_elems[p].empty()) continue;
    Reader r(in[p]);
    for (const std::int32_t off : sched.send_elems[p]) {
      T contribution = r.get<T>();
      T& target = local[static_cast<std::size_t>(off)];
      target = combine(target, contribution);
    }
  }
}

}  // namespace sdsm::chaos
