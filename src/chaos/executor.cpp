// executor.hpp is a header-only template library; this TU anchors it and
// checks self-containment.
#include "src/chaos/executor.hpp"
