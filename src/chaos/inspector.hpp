// The inspector (Section 4): turns the indirection array into a
// communication schedule.
//
// Steps, as in CHAOS:
//   1. Duplicate elimination over the referenced global indices, using a
//      hash table sized proportionally to the data array.
//   2. Translation-table lookup for every distinct off-processor index.
//      With a non-replicated table this requires batched messages to the
//      processors storing the entries; that traffic is performed (and hence
//      counted) for real.
//   3. Request exchange: every node tells every producer which elements it
//      needs; the producer records the send list, the consumer assigns
//      ghost slots.
//
// The returned schedule is used by Executor::gather / Executor::scatter.
#pragma once

#include <cstdint>
#include <span>

#include "src/chaos/exchange.hpp"
#include "src/chaos/schedule.hpp"
#include "src/chaos/translation_table.hpp"

namespace sdsm::chaos {

struct InspectorStats {
  std::int64_t references = 0;        ///< raw indirection entries scanned
  std::int64_t distinct_remote = 0;   ///< after duplicate elimination
  std::int64_t table_lookups_sent = 0;  ///< remote translation lookups
  double seconds = 0;                 ///< wall time of this node's inspector
};

/// Builds the communication schedule for `node` given the global indices it
/// references (the values of its indirection-array section).
Schedule build_schedule(ExchangeNode& node, std::span<const std::int64_t> refs,
                        const TranslationTable& table,
                        InspectorStats* stats = nullptr);

/// Translates global references to local/ghost offsets so the executor loop
/// can run entirely on local indices: result[i] is the local offset when
/// the element is owned by `me`, or local_count + ghost slot otherwise.
std::vector<std::int32_t> localize_references(
    NodeId me, std::span<const std::int64_t> refs,
    const TranslationTable& table, const Schedule& schedule);

}  // namespace sdsm::chaos
