// schedule.hpp is header-only; this TU anchors it and checks
// self-containment.
#include "src/chaos/schedule.hpp"
