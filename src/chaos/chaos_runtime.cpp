#include "src/chaos/chaos_runtime.hpp"

namespace sdsm::chaos {

namespace {

// Message types local to the chaos fabric.
constexpr std::uint32_t kData = 1;
constexpr std::uint32_t kBarrierArrive = 2;
constexpr std::uint32_t kBarrierGo = 3;

}  // namespace

ChaosNode::ChaosNode(ChaosRuntime& rt, NodeId id)
    : rt_(rt), id_(id), stash_(rt.num_nodes()) {}

std::uint32_t ChaosNode::num_nodes() const { return rt_.num_nodes(); }

std::vector<std::vector<std::uint8_t>> ChaosNode::all_to_all(
    std::vector<std::vector<std::uint8_t>> to_peers) {
  std::vector<bool> recv_from(num_nodes(), true);
  recv_from[id_] = false;
  return exchange(std::move(to_peers), recv_from, /*send_empty=*/true);
}

std::vector<std::vector<std::uint8_t>> ChaosNode::sparse_exchange(
    std::vector<std::vector<std::uint8_t>> to_peers,
    const std::vector<bool>& recv_from) {
  return exchange(std::move(to_peers), recv_from, /*send_empty=*/false);
}

std::vector<std::vector<std::uint8_t>> ChaosNode::exchange(
    std::vector<std::vector<std::uint8_t>> to_peers,
    const std::vector<bool>& recv_from, bool send_empty) {
  SDSM_REQUIRE(to_peers.size() == num_nodes());
  SDSM_REQUIRE(recv_from.size() == num_nodes());
  // Split phase: every per-owner payload goes on the wire before any
  // reply is drained, so all peers' service work overlaps.
  for (NodeId p = 0; p < num_nodes(); ++p) {
    if (p == id_) continue;
    // Whether to send is decided by *my* payload (the peer's receive mask
    // mirrors it by schedule symmetry); all_to_all sends even empty
    // payloads because receivers cannot know who has nothing for them.
    if (to_peers[p].empty() && !send_empty) continue;
    net::Message m;
    m.type = kData;
    m.src = id_;
    m.dst = p;
    m.payload = std::move(to_peers[p]);
    rt_.net_->send(net::Port::kService, std::move(m));
  }

  // Drain in arrival order, so a slow peer never delays consuming the
  // fast peers' payloads.  Per-peer FIFO still holds: at most one payload
  // per peer belongs to this exchange; anything beyond that (a fast
  // peer's next-phase traffic) is stashed for the next call, and the
  // stash is always served before the wire.
  std::vector<std::vector<std::uint8_t>> from_peers(num_nodes());
  std::vector<bool> expected(num_nodes(), false);
  std::uint32_t need = 0;
  for (NodeId p = 0; p < num_nodes(); ++p) {
    if (p == id_ || !recv_from[p]) continue;
    if (!stash_[p].empty()) {
      from_peers[p] = std::move(stash_[p].front());
      stash_[p].pop_front();
    } else {
      expected[p] = true;
      ++need;
    }
  }
  while (need > 0) {
    net::Message m = rt_.net_->recv(net::Port::kService, id_);
    SDSM_ASSERT(m.type == kData);
    if (expected[m.src]) {
      from_peers[m.src] = std::move(m.payload);
      expected[m.src] = false;
      --need;
    } else {
      stash_[m.src].push_back(std::move(m.payload));
    }
  }
  return from_peers;
}

void ChaosNode::barrier(const std::function<void()>& at_master) {
  rt_.barriers_.fetch_add(1, std::memory_order_relaxed);
  // Central counting barrier on node 0, using the reply port so that data
  // exchanges in flight on the service port are undisturbed.
  if (id_ == 0) {
    for (std::uint32_t i = 1; i < num_nodes(); ++i) {
      net::Message m = rt_.net_->recv(net::Port::kReply, 0);
      SDSM_ASSERT(m.type == kBarrierArrive);
    }
    if (at_master) at_master();
    for (NodeId p = 1; p < num_nodes(); ++p) {
      net::Message go;
      go.type = kBarrierGo;
      go.src = 0;
      go.dst = p;
      rt_.net_->send(net::Port::kReply, std::move(go));
    }
  } else {
    net::Message m;
    m.type = kBarrierArrive;
    m.src = id_;
    m.dst = 0;
    rt_.net_->send(net::Port::kReply, std::move(m));
    net::Message go = rt_.net_->recv(net::Port::kReply, id_);
    SDSM_ASSERT(go.type == kBarrierGo);
  }
}

void ChaosRuntime::run(const std::function<void(ChaosNode&)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(num_nodes());
  for (NodeId n = 0; n < num_nodes(); ++n) {
    workers.emplace_back([this, n, &body] {
      ChaosNode node(*this, n);
      body(node);
    });
  }
  for (auto& t : workers) t.join();
}

}  // namespace sdsm::chaos
