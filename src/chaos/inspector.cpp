#include "src/chaos/inspector.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/buffer.hpp"
#include "src/common/timer.hpp"

namespace sdsm::chaos {

Schedule build_schedule(ExchangeNode& node, std::span<const std::int64_t> refs,
                        const TranslationTable& table, InspectorStats* stats) {
  const Timer timer;
  const NodeId me = node.id();
  const std::uint32_t nprocs = node.num_nodes();

  // Step 1: duplicate elimination.  CHAOS uses a hash table whose size is
  // proportional to the data array; with dense global indices that is a
  // direct-mapped marker array — one probe per reference.
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(table.size()), 0);
  std::vector<std::int64_t> distinct;
  distinct.reserve(refs.size() / 4 + 16);
  for (const std::int64_t g : refs) {
    if (!seen[static_cast<std::size_t>(g)]) {
      seen[static_cast<std::size_t>(g)] = 1;
      distinct.push_back(g);
    }
  }

  // Step 2: translation.  Entries stored remotely are fetched with one
  // batched lookup message per storing processor (request + reply pairs).
  std::int64_t lookups_sent = 0;
  if (table.kind() != TableKind::kReplicated) {
    std::vector<std::vector<std::uint8_t>> ask(nprocs);
    std::vector<Writer> writers(nprocs);
    for (const std::int64_t g : distinct) {
      const NodeId h = table.entry_home(g);
      if (h != me) {
        writers[h].put<std::int64_t>(g);
        ++lookups_sent;
      }
    }
    for (NodeId p = 0; p < nprocs; ++p) ask[p] = writers[p].take();
    // Round A: send the index lists to the entry homes.
    auto asked = node.all_to_all(std::move(ask));
    // Round B: each home answers with the entries (home, offset per index).
    std::vector<Writer> answers(nprocs);
    for (NodeId p = 0; p < nprocs; ++p) {
      if (p == me) continue;
      Reader r(asked[p]);
      while (!r.done()) {
        const auto g = r.get<std::int64_t>();
        const TableEntry e = table.lookup(g);
        answers[p].put<std::int64_t>(g);
        answers[p].put<std::uint32_t>(e.home);
        answers[p].put<std::int32_t>(e.offset);
      }
    }
    std::vector<std::vector<std::uint8_t>> reply(nprocs);
    for (NodeId p = 0; p < nprocs; ++p) reply[p] = answers[p].take();
    auto replies = node.all_to_all(std::move(reply));
    // The replies carry exactly what table.lookup() returns, so the
    // simulation simply discards them; the traffic has been accounted.
    (void)replies;
  }

  // Step 3: request exchange.  Group my distinct remote references by data
  // owner, assign ghost slots deterministically (ascending global index),
  // and tell each owner what I need.
  Schedule sched;
  sched.send_elems.resize(nprocs);
  sched.recv_ghost.resize(nprocs);

  std::vector<std::vector<std::int64_t>> need(nprocs);
  for (const std::int64_t g : distinct) {
    const TableEntry e = table.lookup(g);
    if (e.home != me) need[e.home].push_back(g);
  }
  std::int64_t distinct_remote = 0;
  sched.ghost_slot.assign(static_cast<std::size_t>(table.size()), -1);
  for (NodeId p = 0; p < nprocs; ++p) {
    std::sort(need[p].begin(), need[p].end());
    distinct_remote += static_cast<std::int64_t>(need[p].size());
    for (const std::int64_t g : need[p]) {
      sched.ghost_slot[static_cast<std::size_t>(g)] = sched.num_ghosts;
      sched.recv_ghost[p].push_back(sched.num_ghosts);
      ++sched.num_ghosts;
    }
  }

  std::vector<std::vector<std::uint8_t>> requests(nprocs);
  for (NodeId p = 0; p < nprocs; ++p) {
    Writer w;
    w.put_span<std::int64_t>(need[p]);
    requests[p] = w.take();
  }
  auto incoming = node.all_to_all(std::move(requests));
  for (NodeId p = 0; p < nprocs; ++p) {
    if (p == me) continue;
    Reader r(incoming[p]);
    const auto wanted = r.get_vector<std::int64_t>();
    sched.send_elems[p].reserve(wanted.size());
    for (const std::int64_t g : wanted) {
      const TableEntry e = table.lookup(g);
      SDSM_ASSERT(e.home == me);
      sched.send_elems[p].push_back(e.offset);
    }
  }

  if (stats != nullptr) {
    stats->references = static_cast<std::int64_t>(refs.size());
    stats->distinct_remote = distinct_remote;
    stats->table_lookups_sent = lookups_sent;
    stats->seconds = timer.elapsed_s();
  }
  return sched;
}

std::vector<std::int32_t> localize_references(
    NodeId me, std::span<const std::int64_t> refs,
    const TranslationTable& table, const Schedule& schedule) {
  const std::int64_t local = table.local_count(me);
  std::vector<std::int32_t> out;
  out.reserve(refs.size());
  for (const std::int64_t g : refs) {
    const TableEntry e = table.lookup(g);
    if (e.home == me) {
      out.push_back(e.offset);
    } else {
      const std::int32_t slot = schedule.ghost_of_global(g);
      SDSM_ASSERT(slot >= 0);
      out.push_back(static_cast<std::int32_t>(local) + slot);
    }
  }
  return out;
}

}  // namespace sdsm::chaos
