// Message representation for the in-process fabric.
//
// The fabric plays the role of the IBM SP2 high-performance switch in the
// paper: a reliable, FIFO-per-pair transport between nodes.  Message `type`
// values are owned by the layers above (core DSM protocol, CHAOS executor);
// the fabric itself interprets only kControlStop, which shuts down a
// service loop.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::net {

/// Reserved message type that asks a service loop to exit.
inline constexpr std::uint32_t kControlStop = 0xFFFFFFFFu;

/// Reserved message type for the quiescence fence (DsmNode::quiesce_fence):
/// a control-plane rendezvous that, like kControlStop, is not traffic on the
/// switch and is excluded from the message/byte accounting.
inline constexpr std::uint32_t kControlSync = 0xFFFFFFFEu;

/// Each node owns two logical ports, mirroring TreadMarks' split between the
/// request socket (served by the SIGIO handler / our service thread) and the
/// reply path consumed by the faulting compute thread.
enum class Port : std::uint8_t {
  kService = 0,  ///< incoming requests, consumed by the service thread
  kReply = 1,    ///< incoming replies, consumed by the compute thread
};

inline constexpr int kNumPorts = 2;

struct Message {
  std::uint32_t type = 0;
  NodeId src = 0;
  NodeId dst = 0;
  /// Correlates a reply with its request.  Unique per requesting node.
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;

  std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace sdsm::net
