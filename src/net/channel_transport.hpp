// Shared delivery machinery for Transport implementations.
//
// Both concrete fabrics end up with the same receive-side shape: per
// (node, port) FIFO queues consumed by at most one thread each, blocking
// receive with a brief adaptive spin, and reply matching by request id for
// the split-phase wait/poll path.  ChannelTransport implements all of
// that; a concrete transport only decides how a sent message reaches
// deliver() — directly (in-process) or through real sockets (a demux
// thread per node).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "src/net/transport.hpp"

namespace sdsm::net {

class ChannelTransport : public Transport {
 public:
  std::uint32_t num_nodes() const override { return num_nodes_; }

  Message recv(Port port, NodeId node) override;
  std::optional<Message> try_recv(Port port, NodeId node) override;
  Message wait(const Ticket& t) override;
  std::optional<Message> poll(const Ticket& t) override;
  std::uint64_t next_request_id(NodeId node) override;

 protected:
  using Clock = std::chrono::steady_clock;

  ChannelTransport(std::uint32_t num_nodes, WireModel wire);

  /// Hands a message to the receive side of (msg.dst, port).  `at` is the
  /// delivery time: Clock::now() for real transports, now + modelled cost
  /// for the in-process fabric.  Thread-safe.
  void deliver(Port port, Message msg, Clock::time_point at);

  /// The message/byte accounting shared by every transport: each request
  /// and each reply counts as one message (the paper's metric), loopback
  /// and control traffic do not (a node's request to itself is a local
  /// function call, not traffic on the switch).
  void count_send(const Message& msg);

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    struct Entry {
      Message msg;
      Clock::time_point deliver_at;
    };
    std::deque<Entry> q;
    /// Lock-free arrival count, used by the spin phase of the receive
    /// paths (see spin_for_arrival).
    std::atomic<std::uint32_t> size{0};
  };

  Channel& channel(Port port, NodeId node);
  void spin_for_arrival(const Channel& ch) const;

  const std::uint32_t num_nodes_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [node * kNumPorts + port]
  struct alignas(64) RequestCounter {
    std::atomic<std::uint64_t> v{1};
  };
  std::vector<RequestCounter> next_request_;
};

}  // namespace sdsm::net
