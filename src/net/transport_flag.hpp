// Tiny argv helper so every bench and example exposes the same
// `--transport=inproc|socket` flag (see src/net/transport.hpp).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/net/transport.hpp"

namespace sdsm::net {

/// Extracts `--transport=KIND` (or `--transport KIND`) from argv;
/// `fallback` when the flag is absent.  Exits with a usage message on an
/// unrecognized value, so a typo cannot silently bench the wrong fabric.
inline TransportKind transport_from_args(
    int argc, char** argv, TransportKind fallback = TransportKind::kInProc) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    std::string_view value;
    if (arg.rfind("--transport=", 0) == 0) {
      value = arg.substr(sizeof("--transport=") - 1);
    } else if (arg == "--transport") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--transport needs a value (inproc|socket)\n");
        std::exit(2);
      }
      value = argv[++i];
    } else {
      continue;
    }
    if (const auto kind = parse_transport(value)) return *kind;
    std::fprintf(stderr,
                 "unknown --transport value '%.*s' (expected inproc|socket)\n",
                 static_cast<int>(value.size()), value.data());
    std::exit(2);
  }
  return fallback;
}

}  // namespace sdsm::net
