#include "src/net/network.hpp"

namespace sdsm::net {

InProcTransport::InProcTransport(std::uint32_t num_nodes, WireModel wire)
    : ChannelTransport(num_nodes, wire), jitter_state_(wire.jitter_seed) {}

InProcTransport::Clock::time_point InProcTransport::deliver_time(
    std::size_t payload_bytes) {
  if (!wire_.enabled()) return Clock::now();
  double jitter01 = 0.0;
  if (wire_.jitter_us > 0) {
    // SplitMix64 step under a lock; jitter is a test-only feature, so the
    // lock is acceptable and keeps the sequence reproducible.
    std::lock_guard<std::mutex> g(jitter_mu_);
    std::uint64_t z = (jitter_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    jitter01 = static_cast<double>((z ^ (z >> 31)) >> 11) * 0x1.0p-53;
  }
  return Clock::now() + wire_.cost(payload_bytes, jitter01);
}

void InProcTransport::send(Port port, Message msg) {
  SDSM_REQUIRE(msg.dst < num_nodes());
  count_send(msg);
  const auto at = deliver_time(msg.size_bytes());
  deliver(port, std::move(msg), at);
}

}  // namespace sdsm::net
