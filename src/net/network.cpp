#include "src/net/network.hpp"

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sdsm::net {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

/// Spin budget before blocking (~30-60us of pause loops).
constexpr int kSpinIters = 100000;

}  // namespace

Network::Network(std::uint32_t num_nodes, WireModel wire)
    : num_nodes_(num_nodes), wire_(wire), stats_(num_nodes),
      jitter_state_(wire.jitter_seed) {
  SDSM_REQUIRE(num_nodes >= 1);
  channels_.reserve(static_cast<std::size_t>(num_nodes) * kNumPorts);
  next_request_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (int p = 0; p < kNumPorts; ++p) {
      channels_.push_back(std::make_unique<Channel>());
    }
    next_request_.push_back(std::make_unique<std::atomic<std::uint64_t>>(1));
  }
}

Network::Channel& Network::channel(Port port, NodeId node) {
  SDSM_REQUIRE(node < num_nodes_);
  return *channels_[static_cast<std::size_t>(node) * kNumPorts +
                    static_cast<std::size_t>(port)];
}

Network::Clock::time_point Network::deliver_time(std::size_t payload_bytes) {
  if (!wire_.enabled()) return Clock::now();
  double jitter01 = 0.0;
  if (wire_.jitter_us > 0) {
    // SplitMix64 step under a lock; jitter is a test-only feature, so the
    // lock is acceptable and keeps the sequence reproducible.
    std::lock_guard<std::mutex> g(jitter_mu_);
    std::uint64_t z = (jitter_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    jitter01 = static_cast<double>((z ^ (z >> 31)) >> 11) * 0x1.0p-53;
  }
  return Clock::now() + wire_.cost(payload_bytes, jitter01);
}

void Network::send(Port port, Message msg) {
  SDSM_REQUIRE(msg.dst < num_nodes_);
  // Loopback traffic is not counted: on the real system a node's request to
  // itself is a local function call, not a message on the switch.
  if (msg.type != kControlStop && msg.src != msg.dst) {
    stats_.messages.add(1);
    stats_.bytes.add(msg.size_bytes());
    stats_.node_messages[msg.src]->add(1);
    stats_.node_bytes[msg.src]->add(msg.size_bytes());
  }
  Channel& ch = channel(port, msg.dst);
  const auto at = deliver_time(msg.size_bytes());
  {
    std::lock_guard<std::mutex> g(ch.mu);
    ch.q.push_back(Channel::Entry{std::move(msg), at});
    ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                  std::memory_order_release);
  }
  ch.cv.notify_all();
}

Message Network::recv(Port port, NodeId node) {
  Channel& ch = channel(port, node);
  for (int i = 0; i < kSpinIters; ++i) {
    if (ch.size.load(std::memory_order_acquire) != 0) break;
    cpu_pause();
  }
  std::unique_lock<std::mutex> lk(ch.mu);
  for (;;) {
    if (!ch.q.empty()) {
      const auto now = Clock::now();
      auto& front = ch.q.front();
      if (front.deliver_at <= now) {
        Message m = std::move(front.msg);
        ch.q.pop_front();
        ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                      std::memory_order_release);
        return m;
      }
      ch.cv.wait_until(lk, front.deliver_at);
    } else {
      ch.cv.wait(lk);
    }
  }
}

std::optional<Message> Network::try_recv(Port port, NodeId node) {
  Channel& ch = channel(port, node);
  std::lock_guard<std::mutex> g(ch.mu);
  if (ch.q.empty() || ch.q.front().deliver_at > Clock::now()) return std::nullopt;
  Message m = std::move(ch.q.front().msg);
  ch.q.pop_front();
  ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                std::memory_order_release);
  return m;
}

Message Network::recv_reply(NodeId node, std::uint64_t request_id) {
  Channel& ch = channel(Port::kReply, node);
  for (int i = 0; i < kSpinIters; ++i) {
    if (ch.size.load(std::memory_order_acquire) != 0) break;
    cpu_pause();
  }
  std::unique_lock<std::mutex> lk(ch.mu);
  for (;;) {
    const auto now = Clock::now();
    std::optional<Clock::time_point> earliest_pending;
    for (auto it = ch.q.begin(); it != ch.q.end(); ++it) {
      if (it->msg.request_id != request_id) continue;
      if (it->deliver_at <= now) {
        Message m = std::move(it->msg);
        ch.q.erase(it);
        ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                      std::memory_order_release);
        return m;
      }
      earliest_pending = it->deliver_at;
      break;  // entries for one request id arrive in order; wait for this one
    }
    if (earliest_pending) {
      ch.cv.wait_until(lk, *earliest_pending);
    } else {
      ch.cv.wait(lk);
    }
  }
}

std::uint64_t Network::next_request_id(NodeId node) {
  SDSM_REQUIRE(node < num_nodes_);
  return next_request_[node]->fetch_add(1, std::memory_order_relaxed);
}

void Network::stop_all_services() {
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    Message stop;
    stop.type = kControlStop;
    stop.src = n;
    stop.dst = n;
    send(Port::kService, std::move(stop));
  }
}

}  // namespace sdsm::net
