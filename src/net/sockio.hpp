// Shared low-level socket I/O for every localhost TCP fabric: the
// in-process SocketTransport's switch topology and the cross-process mesh
// (src/proc) speak the identical frame format through these helpers, so a
// frame written by one is parseable by the other.
//
// Frame layout (native byte order; all nodes share one architecture, as
// on the SP2):
//   u32 frame_len   bytes that follow this field (24 + payload size)
//   u32 type | u32 src | u32 dst | u32 port | u64 request_id
//   u8  payload[frame_len - 24]
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/net/message.hpp"

namespace sdsm::net {

/// Fixed-size frame header that follows the u32 length prefix.
struct FrameHeader {
  std::uint32_t type;
  std::uint32_t src;
  std::uint32_t dst;
  std::uint32_t port;
  std::uint64_t request_id;
};
static_assert(sizeof(FrameHeader) == 24);

/// Full write with EINTR retry; MSG_NOSIGNAL so a torn-down peer yields
/// EPIPE instead of killing the process.  Returns false on any error.
inline bool write_full(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Full read with EINTR retry.  Returns false on EOF or error.
inline bool read_full(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

inline void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Serializes a message as one contiguous length-prefixed frame.
inline std::vector<std::uint8_t> encode_frame(Port port, const Message& msg) {
  const std::uint32_t frame_len =
      static_cast<std::uint32_t>(sizeof(FrameHeader) + msg.payload.size());
  std::vector<std::uint8_t> frame(sizeof(frame_len) + frame_len);
  std::memcpy(frame.data(), &frame_len, sizeof(frame_len));
  const FrameHeader h{msg.type, msg.src, msg.dst,
                      static_cast<std::uint32_t>(port), msg.request_id};
  std::memcpy(frame.data() + sizeof(frame_len), &h, sizeof(h));
  if (!msg.payload.empty()) {
    std::memcpy(frame.data() + sizeof(frame_len) + sizeof(h),
                msg.payload.data(), msg.payload.size());
  }
  return frame;
}

/// Reads one frame from `fd` into (header, message).  Returns false on
/// EOF/error (clean teardown included).
inline bool read_frame(int fd, FrameHeader& h, Message& msg) {
  std::uint32_t frame_len = 0;
  if (!read_full(fd, &frame_len, sizeof(frame_len))) return false;
  if (frame_len < sizeof(FrameHeader)) return false;
  if (!read_full(fd, &h, sizeof(h))) return false;
  msg.type = h.type;
  msg.src = h.src;
  msg.dst = h.dst;
  msg.request_id = h.request_id;
  msg.payload.resize(frame_len - sizeof(FrameHeader));
  if (!msg.payload.empty() &&
      !read_full(fd, msg.payload.data(), msg.payload.size())) {
    return false;
  }
  return true;
}

}  // namespace sdsm::net
