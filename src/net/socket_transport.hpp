// Real-socket net::Transport: TCP over localhost with length-prefixed
// framing (TransportKind::kSocket).
//
// Topology mirrors the paper's SP2 switch: every node holds one TCP
// connection to a switch thread, which forwards frames to the destination
// node's connection; a per-node demux thread parses inbound frames and
// hands them to the shared channel machinery, so the receive-side
// semantics (FIFO per channel, reply matching, split-phase wait/poll) are
// identical to the in-process fabric.  What changes is the cost: every
// message pays real syscall, loopback-TCP, and scheduling latency, so the
// wire cost is *measured* rather than simulated — the WireModel passed at
// construction is deliberately ignored.
//
// Frame layout (native byte order; all nodes share one architecture, as
// on the SP2):
//   u32 frame_len   bytes that follow this field (24 + payload size)
//   u32 type | u32 src | u32 dst | u32 port | u64 request_id
//   u8  payload[frame_len - 24]
//
// Thread/safety contract: identical to the interface contract in
// transport.hpp.  send() performs a mutexed write on the sending node's
// socket; the SIGSEGV-handler argument holds because a compute thread
// never faults while inside fabric code, so it can never observe its own
// send mutex held.
#pragma once

#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/channel_transport.hpp"

namespace sdsm::net {

class SocketTransport final : public ChannelTransport {
 public:
  /// Establishes the localhost TCP mesh (one connection per node to the
  /// switch) and starts the switch + demux threads.  `wire` is accepted
  /// for interface uniformity and ignored: socket wire cost is real.
  explicit SocketTransport(std::uint32_t num_nodes, WireModel wire = {});
  ~SocketTransport() override;

  void send(Port port, Message msg) override;

 private:
  void switch_loop();
  void demux_loop(NodeId node);

  std::vector<int> node_fd_;    ///< node side of each connection
  std::vector<int> switch_fd_;  ///< switch side of each connection
  std::vector<std::unique_ptr<std::mutex>> send_mu_;  ///< per node_fd_ writes
  std::thread switch_thread_;
  std::vector<std::thread> demux_threads_;
};

}  // namespace sdsm::net
