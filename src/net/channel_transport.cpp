#include "src/net/channel_transport.hpp"

#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sdsm::net {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

/// Spin budget before blocking (~30-60us of pause loops).  Spinning is a
/// multi-core optimization — it shaves the O(100us) thread wake-up off the
/// request/response round trip when sender and receiver run in parallel.
/// On a single hardware thread it inverts: the receiver's spin burns the
/// very timeslice the sender needs to produce the message, so the budget
/// drops to zero and receivers block immediately.
int spin_iters() {
  static const int iters =
      std::thread::hardware_concurrency() > 1 ? 100000 : 0;
  return iters;
}

}  // namespace

ChannelTransport::ChannelTransport(std::uint32_t num_nodes, WireModel wire)
    : Transport(num_nodes, wire),
      num_nodes_(num_nodes),
      next_request_(num_nodes) {
  SDSM_REQUIRE(num_nodes >= 1);
  channels_.reserve(static_cast<std::size_t>(num_nodes) * kNumPorts);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (int p = 0; p < kNumPorts; ++p) {
      channels_.push_back(std::make_unique<Channel>());
    }
  }
}

ChannelTransport::Channel& ChannelTransport::channel(Port port, NodeId node) {
  SDSM_REQUIRE(node < num_nodes_);
  return *channels_[static_cast<std::size_t>(node) * kNumPorts +
                    static_cast<std::size_t>(port)];
}

void ChannelTransport::spin_for_arrival(const Channel& ch) const {
  for (int i = 0, n = spin_iters(); i < n; ++i) {
    if (ch.size.load(std::memory_order_acquire) != 0) return;
    cpu_pause();
  }
}

void ChannelTransport::count_send(const Message& msg) {
  if (msg.type >= kControlSync || msg.src == msg.dst) return;
  stats_.node_messages(msg.src).add(1);
  stats_.node_bytes(msg.src).add(msg.size_bytes());
}

void ChannelTransport::deliver(Port port, Message msg, Clock::time_point at) {
  Channel& ch = channel(port, msg.dst);
  {
    std::lock_guard<std::mutex> g(ch.mu);
    ch.q.push_back(Channel::Entry{std::move(msg), at});
    ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                  std::memory_order_release);
  }
  ch.cv.notify_all();
}

Message ChannelTransport::recv(Port port, NodeId node) {
  Channel& ch = channel(port, node);
  spin_for_arrival(ch);
  std::unique_lock<std::mutex> lk(ch.mu);
  for (;;) {
    if (!ch.q.empty()) {
      const auto now = Clock::now();
      auto& front = ch.q.front();
      if (front.deliver_at <= now) {
        Message m = std::move(front.msg);
        ch.q.pop_front();
        ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                      std::memory_order_release);
        return m;
      }
      ch.cv.wait_until(lk, front.deliver_at);
    } else {
      ch.cv.wait(lk);
    }
  }
}

std::optional<Message> ChannelTransport::try_recv(Port port, NodeId node) {
  Channel& ch = channel(port, node);
  std::lock_guard<std::mutex> g(ch.mu);
  if (ch.q.empty() || ch.q.front().deliver_at > Clock::now()) return std::nullopt;
  Message m = std::move(ch.q.front().msg);
  ch.q.pop_front();
  ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                std::memory_order_release);
  return m;
}

Message ChannelTransport::wait(const Ticket& t) {
  SDSM_REQUIRE(t.valid());
  Channel& ch = channel(Port::kReply, t.node);
  spin_for_arrival(ch);
  std::unique_lock<std::mutex> lk(ch.mu);
  for (;;) {
    const auto now = Clock::now();
    std::optional<Clock::time_point> earliest_pending;
    for (auto it = ch.q.begin(); it != ch.q.end(); ++it) {
      if (it->msg.request_id != t.request_id) continue;
      if (it->deliver_at <= now) {
        Message m = std::move(it->msg);
        ch.q.erase(it);
        ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                      std::memory_order_release);
        return m;
      }
      earliest_pending = it->deliver_at;
      break;  // entries for one request id arrive in order; wait for this one
    }
    if (earliest_pending) {
      ch.cv.wait_until(lk, *earliest_pending);
    } else {
      ch.cv.wait(lk);
    }
  }
}

std::optional<Message> ChannelTransport::poll(const Ticket& t) {
  SDSM_REQUIRE(t.valid());
  Channel& ch = channel(Port::kReply, t.node);
  std::lock_guard<std::mutex> g(ch.mu);
  const auto now = Clock::now();
  for (auto it = ch.q.begin(); it != ch.q.end(); ++it) {
    if (it->msg.request_id != t.request_id) continue;
    if (it->deliver_at > now) return std::nullopt;  // modelled cost unpaid
    Message m = std::move(it->msg);
    ch.q.erase(it);
    ch.size.store(static_cast<std::uint32_t>(ch.q.size()),
                  std::memory_order_release);
    return m;
  }
  return std::nullopt;
}

std::uint64_t ChannelTransport::next_request_id(NodeId node) {
  SDSM_REQUIRE(node < num_nodes_);
  return next_request_[node].v.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sdsm::net
