#include "src/net/transport.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "src/common/assert.hpp"
#include "src/net/network.hpp"
#include "src/net/socket_transport.hpp"

namespace sdsm::net {

const char* transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kSocket:
      return "socket";
  }
  return "?";
}

std::optional<TransportKind> parse_transport(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "inproc" || s == "in-proc" || s == "inprocess") {
    return TransportKind::kInProc;
  }
  if (s == "socket" || s == "tcp") return TransportKind::kSocket;
  return std::nullopt;
}

Ticket Transport::post(Message msg) {
  msg.request_id = next_request_id(msg.src);
  const Ticket t{msg.src, msg.request_id};
  send(Port::kService, std::move(msg));
  return t;
}

std::vector<Message> Transport::wait_all(std::span<const Ticket> tickets) {
  std::vector<Message> out(tickets.size());
  std::vector<bool> done(tickets.size(), false);
  // Opportunistic sweep first: consume whatever already arrived, so the
  // blocking passes below only ever sleep on genuine stragglers.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (auto m = poll(tickets[i])) {
      out[i] = std::move(*m);
      done[i] = true;
    }
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (!done[i]) out[i] = wait(tickets[i]);
  }
  return out;
}

void Transport::stop_service(NodeId n) {
  Message stop;
  stop.type = kControlStop;
  stop.src = n;
  stop.dst = n;
  send(Port::kService, std::move(stop));
}

void Transport::stop_all_services() {
  for (std::uint32_t n = 0; n < num_nodes(); ++n) stop_service(n);
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::uint32_t num_nodes,
                                          WireModel wire) {
  switch (kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>(num_nodes, wire);
    case TransportKind::kSocket:
      return std::make_unique<SocketTransport>(num_nodes, wire);
  }
  SDSM_UNREACHABLE("unknown transport kind");
}

}  // namespace sdsm::net
