// In-process message-passing fabric connecting the simulated nodes — the
// default net::Transport implementation (TransportKind::kInProc).
//
// This substrate replaces the paper's UDP-over-SP2-switch transport.  It
// provides:
//   - reliable delivery with per-channel FIFO ordering,
//   - the split-phase post/wait/poll request path plus blocking receive
//     and reply matching (see src/net/transport.hpp for the completion
//     contract: who may call wait, single-consumer reply ports, and why
//     send/post/wait stay safe inside the DSM's SIGSEGV handler),
//   - exact message/byte accounting (each request and each reply counts as
//     one message, matching the "Messages" columns of Tables 1 and 2),
//   - an optional wire-cost model (fixed per-message latency plus per-KB
//     cost) so that scaled-down runs retain SP2-like communication/compute
//     ratios, and
//   - optional seeded delivery jitter for concurrency stress tests.
//
// The sibling SocketTransport (src/net/socket_transport.hpp) carries the
// same traffic over real TCP sockets; select between them with
// net::make_transport, api::BackendOptions::transport, or the --transport
// flag of the benches and examples.
#pragma once

#include <cstdint>
#include <mutex>

#include "src/net/channel_transport.hpp"

namespace sdsm::net {

class InProcTransport final : public ChannelTransport {
 public:
  explicit InProcTransport(std::uint32_t num_nodes, WireModel wire = {});

  void send(Port port, Message msg) override;

 private:
  Clock::time_point deliver_time(std::size_t payload_bytes);

  std::mutex jitter_mu_;
  std::uint64_t jitter_state_;
};

/// Historical name of the in-process fabric, kept for existing call sites;
/// new code should hold a net::Transport and use make_transport.
using Network = InProcTransport;

}  // namespace sdsm::net
