// In-process message-passing fabric connecting the simulated nodes.
//
// This substrate replaces the paper's UDP-over-SP2-switch transport.  It
// provides:
//   - reliable delivery with per-channel FIFO ordering,
//   - blocking receive and predicate receive (for reply matching),
//   - exact message/byte accounting (each request and each reply counts as
//     one message, matching the "Messages" columns of Tables 1 and 2),
//   - an optional wire-cost model (fixed per-message latency plus per-KB
//     cost) so that scaled-down runs retain SP2-like communication/compute
//     ratios, and
//   - optional seeded delivery jitter for concurrency stress tests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/net/message.hpp"

namespace sdsm::net {

/// Communication cost model.  With both fields zero (the default, used by
/// unit tests) messages are delivered immediately.  Bench configurations
/// enable it to restore a realistic latency/bandwidth ratio; see
/// EXPERIMENTS.md for the calibration used for the paper tables.
struct WireModel {
  double latency_us = 0.0;  ///< fixed cost per message
  double us_per_kb = 0.0;   ///< serialization cost per 1024 payload bytes
  /// Upper bound of additional uniformly distributed random delay, used by
  /// stress tests to perturb interleavings.  0 disables jitter.
  double jitter_us = 0.0;
  std::uint64_t jitter_seed = 1;

  bool enabled() const { return latency_us > 0 || us_per_kb > 0 || jitter_us > 0; }

  std::chrono::nanoseconds cost(std::size_t payload_bytes, double jitter01) const {
    const double us = latency_us +
                      us_per_kb * (static_cast<double>(payload_bytes) / 1024.0) +
                      jitter_us * jitter01;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(us * 1e3));
  }
};

/// Aggregate traffic statistics.  `messages`/`bytes` are fabric-wide; the
/// per-node vectors attribute traffic to the *sending* node.
struct NetStats {
  Counter messages;
  Counter bytes;
  std::vector<std::unique_ptr<Counter>> node_messages;
  std::vector<std::unique_ptr<Counter>> node_bytes;

  explicit NetStats(std::uint32_t nodes) {
    node_messages.reserve(nodes);
    node_bytes.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      node_messages.push_back(std::make_unique<Counter>());
      node_bytes.push_back(std::make_unique<Counter>());
    }
  }

  void reset() {
    messages.reset();
    bytes.reset();
    for (auto& c : node_messages) c->reset();
    for (auto& c : node_bytes) c->reset();
  }

  double megabytes() const { return static_cast<double>(bytes.get()) / 1e6; }
};

class Network {
 public:
  Network(std::uint32_t num_nodes, WireModel wire = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }

  /// Sends `msg` to msg.dst on `port`.  Counts one message.  Thread-safe;
  /// also callable from a SIGSEGV handler (the fault always originates in
  /// application compute code, never inside the fabric itself).
  void send(Port port, Message msg);

  /// Blocking receive of the next delivered message for (node, port).
  Message recv(Port port, NodeId node);

  /// Non-blocking variant; returns nullopt when nothing has been delivered.
  std::optional<Message> try_recv(Port port, NodeId node);

  /// Blocking receive of the first delivered message on the reply port of
  /// `node` whose request_id equals `request_id`.  Other messages remain
  /// queued.  Only the owning compute thread may call this.
  Message recv_reply(NodeId node, std::uint64_t request_id);

  /// Allocates a request id unique within `node`.
  std::uint64_t next_request_id(NodeId node);

  /// Sends kControlStop to every service port (used at shutdown).
  void stop_all_services();

  NetStats& stats() { return stats_; }
  const WireModel& wire() const { return wire_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    struct Entry {
      Message msg;
      Clock::time_point deliver_at;
    };
    std::deque<Entry> q;
    /// Lock-free arrival count, used by the spin phase of the receive
    /// paths.  Thread wake-ups cost O(100us) on virtualized hosts, so
    /// receivers spin briefly before blocking; this keeps the request/
    /// response round trip in the tens of microseconds — the regime the
    /// protocol was designed for.
    std::atomic<std::uint32_t> size{0};
  };

  Channel& channel(Port port, NodeId node);
  Clock::time_point deliver_time(std::size_t payload_bytes);

  const std::uint32_t num_nodes_;
  const WireModel wire_;
  NetStats stats_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [node * kNumPorts + port]
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> next_request_;
  std::mutex jitter_mu_;
  std::uint64_t jitter_state_;
};

}  // namespace sdsm::net
