// Split-phase transport interface for the node-to-node fabric.
//
// The paper's tool path wins by turning fine-grained, fault-driven
// communication into bulk, schedulable operations.  The fabric API follows
// the same principle: the primary request primitive is split-phase —
//
//   Ticket t = transport.post(msg);      // request leaves immediately
//   ... other work: more posts, CPU ...  // request is serviced remotely
//   Message reply = transport.wait(t);   // block only at first use
//
// — so a caller can put every diff request of a Validate on the wire
// before it starts scanning indices or creating twins, and pay the wire
// latency only once, overlapped with that work.  The historical blocking
// calls (`recv_reply`) are trivial wrappers over wait() and remain for
// incremental migration.
//
// Completion contract:
//   - post() stamps the message with a fresh request id (unique per
//     source node) and sends it on the service port; the returned Ticket
//     names the reply that will arrive on the *source* node's reply port
//     with the same request id.
//   - wait()/poll() may be called only by the compute thread of the node
//     named in the ticket (`ticket.node`) — reply ports are single-
//     consumer, exactly as in TreadMarks, where the faulting thread owns
//     the reply socket.  Service threads must never wait() (they would
//     deadlock the request/response cycle); they only send().
//   - Each ticket completes exactly once: wait() consumes the reply, and
//     waiting twice on the same ticket blocks forever.  wait_all()
//     consumes a batch in whatever order the replies arrive.
//   - send()/post() are async-signal-safe in the restricted sense the DSM
//     relies on: they may run inside a SIGSEGV handler because faults
//     only originate in application compute code, never inside fabric
//     code on the same thread, so the handler can never observe its own
//     thread holding a fabric lock.  wait() inside the handler is equally
//     safe: the reply is produced by a different thread (a service
//     thread), which is never interrupted by this fault.
//
// Two implementations ship behind this interface (selected with
// make_transport / api::BackendOptions::transport / the --transport flag
// of the benches and examples):
//   - InProcTransport (src/net/network.hpp): today's in-process fabric —
//     FIFO channels, simulated wire-cost model, exact message accounting.
//   - SocketTransport (src/net/socket_transport.hpp): real TCP over
//     localhost with length-prefixed framing, one socket per node through
//     a switch thread; wire cost becomes measurement instead of
//     simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/net/message.hpp"
#include "src/net/netstats.hpp"
#include "src/net/wire_model.hpp"

namespace sdsm::net {

/// Which concrete fabric a runtime should build (see make_transport).
enum class TransportKind : std::uint8_t {
  kInProc,  ///< in-process channels + simulated wire model
  kSocket,  ///< TCP over localhost, measured wire cost
};

inline constexpr TransportKind kAllTransports[] = {TransportKind::kInProc,
                                                   TransportKind::kSocket};

/// Stable display name: "inproc" | "socket".
const char* transport_name(TransportKind kind);

/// Parses "inproc" | "socket" (case-insensitively); nullopt otherwise.
std::optional<TransportKind> parse_transport(std::string_view name);

/// Names one in-flight split-phase request.  Completion is the arrival of
/// the reply carrying `request_id` on `node`'s reply port.  Request ids
/// start at 1, so a default-constructed ticket is recognizably invalid.
struct Ticket {
  NodeId node = 0;
  std::uint64_t request_id = 0;

  bool valid() const { return request_id != 0; }
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual std::uint32_t num_nodes() const = 0;

  /// Sends `msg` to msg.dst on `port`.  Counts one message (loopback and
  /// kControlStop excluded).  Thread-safe; callable from a SIGSEGV handler
  /// under the contract in the header comment.
  virtual void send(Port port, Message msg) = 0;

  /// Blocking receive of the next delivered message for (node, port).
  virtual Message recv(Port port, NodeId node) = 0;

  /// Non-blocking variant; nullopt when nothing has been delivered.
  virtual std::optional<Message> try_recv(Port port, NodeId node) = 0;

  // --- Split phase ---------------------------------------------------------

  /// Stamps msg.request_id from msg.src's counter, sends it on the service
  /// port, and returns the ticket naming the future reply.
  Ticket post(Message msg);

  /// Blocks until the reply named by `t` arrives and consumes it.  Only
  /// the compute thread of t.node may call this (single-consumer reply
  /// port); a ticket may be waited on exactly once.
  virtual Message wait(const Ticket& t) = 0;

  /// Consumes and returns the reply named by `t` if it has already been
  /// delivered; nullopt otherwise.  Same caller contract as wait().
  virtual std::optional<Message> poll(const Ticket& t) = 0;

  /// Completes a batch: harvests already-arrived replies first, then
  /// blocks on the stragglers.  Result is in ticket order.
  std::vector<Message> wait_all(std::span<const Ticket> tickets);

  // --- Blocking wrappers (the pre-split-phase API) -------------------------

  /// Blocking receive of the reply with `request_id` on `node`'s reply
  /// port.  Equivalent to wait({node, request_id}).
  Message recv_reply(NodeId node, std::uint64_t request_id) {
    return wait(Ticket{node, request_id});
  }

  /// Allocates a request id unique within `node` (post() does this
  /// automatically; exposed for call sites that build messages by hand).
  virtual std::uint64_t next_request_id(NodeId node) = 0;

  /// Sends kControlStop to node `n`'s service port.  In process mode each
  /// worker stops only the services it hosts — stopping a peer's service
  /// would tear the mesh down under it.
  void stop_service(NodeId n);

  /// Sends kControlStop to every service port (used at shutdown).
  void stop_all_services();

  NetStats& stats() { return stats_; }
  const WireModel& wire() const { return wire_; }

 protected:
  Transport(std::uint32_t num_nodes, WireModel wire)
      : wire_(wire), stats_(num_nodes) {}

  const WireModel wire_;
  NetStats stats_;
};

/// Factory over the concrete transports.  `wire` is simulated by the
/// in-process fabric and ignored (cost is measured, not modelled) by the
/// socket fabric.
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          std::uint32_t num_nodes,
                                          WireModel wire = {});

}  // namespace sdsm::net
