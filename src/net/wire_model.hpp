// Simulated communication cost model for the in-process fabric.
#pragma once

#include <chrono>
#include <cstdint>

namespace sdsm::net {

/// Communication cost model.  With both fields zero (the default, used by
/// unit tests) messages are delivered immediately.  Bench configurations
/// enable it to restore a realistic latency/bandwidth ratio; see
/// EXPERIMENTS.md for the calibration used for the paper tables.  Only the
/// in-process transport simulates it; the socket transport's wire cost is
/// real and therefore measured, not modelled.
struct WireModel {
  double latency_us = 0.0;  ///< fixed cost per message
  double us_per_kb = 0.0;   ///< serialization cost per 1024 payload bytes
  /// Upper bound of additional uniformly distributed random delay, used by
  /// stress tests to perturb interleavings.  0 disables jitter.
  double jitter_us = 0.0;
  std::uint64_t jitter_seed = 1;

  bool enabled() const { return latency_us > 0 || us_per_kb > 0 || jitter_us > 0; }

  std::chrono::nanoseconds cost(std::size_t payload_bytes, double jitter01) const {
    const double us = latency_us +
                      us_per_kb * (static_cast<double>(payload_bytes) / 1024.0) +
                      jitter_us * jitter01;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(us * 1e3));
  }
};

}  // namespace sdsm::net
