// Aggregate traffic statistics shared by all transports.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace sdsm::net {

/// Aggregate traffic statistics, attributed to the *sending* node.
///
/// Every node's send path bumps its own per-node counters concurrently,
/// so each node's pair lives on its own cache line: with the counters
/// packed densely (the former vector-of-Counter layout) eight senders
/// would ping-pong the same line on every send — false sharing on the
/// hottest fabric path.  A node's `messages` and `bytes` are always
/// bumped together by the same thread, so sharing one line between them
/// is free.  The fabric-wide totals are *derived* (summed in the getter)
/// rather than stored: a shared total counter would put every sender
/// back on one contended line, and totals are only read at quiescent
/// points (bench snapshots, test asserts).
class NetStats {
 public:
  explicit NetStats(std::uint32_t nodes) : per_node_(nodes) {}

  Counter& node_messages(NodeId n) { return at(n).messages; }
  Counter& node_bytes(NodeId n) { return at(n).bytes; }

  /// Fabric-wide totals: each request and each reply counts as one
  /// message (loopback and control traffic excluded at the send site).
  std::uint64_t messages() const {
    std::uint64_t sum = 0;
    for (const auto& c : per_node_) sum += c.messages.get();
    return sum;
  }
  std::uint64_t bytes() const {
    std::uint64_t sum = 0;
    for (const auto& c : per_node_) sum += c.bytes.get();
    return sum;
  }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(per_node_.size());
  }

  void reset() {
    for (auto& c : per_node_) {
      c.messages.reset();
      c.bytes.reset();
    }
  }

  double megabytes() const { return static_cast<double>(bytes()) / 1e6; }

 private:
  /// 64 bytes is the destructive interference size on every platform this
  /// runs on (x86-64, aarch64); std::hardware_destructive_interference_size
  /// is avoided because GCC makes its use in headers an ABI warning.
  struct alignas(64) NodeCounters {
    Counter messages;
    Counter bytes;
  };
  static_assert(sizeof(NodeCounters) == 64);

  NodeCounters& at(NodeId n) {
    SDSM_ASSERT(n < per_node_.size());
    return per_node_[n];
  }
  const NodeCounters& at(NodeId n) const {
    SDSM_ASSERT(n < per_node_.size());
    return per_node_[n];
  }

  std::vector<NodeCounters> per_node_;
};

}  // namespace sdsm::net
