// Aggregate traffic statistics shared by all transports.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"

namespace sdsm::net {

/// Aggregate traffic statistics, attributed to the *sending* node.
///
/// Every node's send path bumps its own per-node counters concurrently,
/// so each node's pair lives on its own cache line: with the counters
/// packed densely (the former vector-of-Counter layout) eight senders
/// would ping-pong the same line on every send — false sharing on the
/// hottest fabric path.  A node's `messages` and `bytes` are always
/// bumped together by the same thread, so sharing one line between them
/// is free.  The fabric-wide totals are *derived* (summed in the getter)
/// rather than stored: a shared total counter would put every sender
/// back on one contended line, and totals are only read at quiescent
/// points (bench snapshots, test asserts).
/// Plain message/byte pair used for snapshot-and-delta accounting.
struct Traffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  Traffic operator-(const Traffic& rhs) const {
    return {messages - rhs.messages, bytes - rhs.bytes};
  }
  Traffic& operator+=(const Traffic& rhs) {
    messages += rhs.messages;
    bytes += rhs.bytes;
    return *this;
  }
};

class NetStats {
 public:
  explicit NetStats(std::uint32_t nodes) : per_node_(nodes) {}

  Counter& node_messages(NodeId n) { return at(n).messages; }
  Counter& node_bytes(NodeId n) { return at(n).bytes; }

  /// Point-in-time copy of the per-node counters.  Subtracting two
  /// snapshots attributes traffic to the interval between them — the
  /// serving layer uses this for exact per-job accounting on a shared
  /// long-lived arena, where reset() would destroy process totals.
  struct Snapshot {
    std::vector<Traffic> per_node;

    std::uint64_t messages() const {
      std::uint64_t sum = 0;
      for (const auto& t : per_node) sum += t.messages;
      return sum;
    }
    std::uint64_t bytes() const {
      std::uint64_t sum = 0;
      for (const auto& t : per_node) sum += t.bytes;
      return sum;
    }
    double megabytes() const { return static_cast<double>(bytes()) / 1e6; }

    Snapshot operator-(const Snapshot& rhs) const {
      SDSM_REQUIRE(per_node.size() == rhs.per_node.size());
      Snapshot d;
      d.per_node.reserve(per_node.size());
      for (std::size_t i = 0; i < per_node.size(); ++i) {
        d.per_node.push_back(per_node[i] - rhs.per_node[i]);
      }
      return d;
    }
  };

  /// Only meaningful at quiescent points (or for a node's own send
  /// counters, which only that node's compute thread bumps).
  Snapshot snapshot() const {
    Snapshot s;
    s.per_node.reserve(per_node_.size());
    for (const auto& c : per_node_) {
      s.per_node.push_back({c.messages.get(), c.bytes.get()});
    }
    return s;
  }

  /// Current traffic attributed to sender `n`.
  Traffic node_traffic(NodeId n) const {
    return {at(n).messages.get(), at(n).bytes.get()};
  }

  /// Fabric-wide totals: each request and each reply counts as one
  /// message (loopback and control traffic excluded at the send site).
  std::uint64_t messages() const {
    std::uint64_t sum = 0;
    for (const auto& c : per_node_) sum += c.messages.get();
    return sum;
  }
  std::uint64_t bytes() const {
    std::uint64_t sum = 0;
    for (const auto& c : per_node_) sum += c.bytes.get();
    return sum;
  }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(per_node_.size());
  }

  void reset() {
    for (auto& c : per_node_) {
      c.messages.reset();
      c.bytes.reset();
    }
  }

  double megabytes() const { return static_cast<double>(bytes()) / 1e6; }

 private:
  /// 64 bytes is the destructive interference size on every platform this
  /// runs on (x86-64, aarch64); std::hardware_destructive_interference_size
  /// is avoided because GCC makes its use in headers an ABI warning.
  struct alignas(64) NodeCounters {
    Counter messages;
    Counter bytes;
  };
  static_assert(sizeof(NodeCounters) == 64);

  NodeCounters& at(NodeId n) {
    SDSM_ASSERT(n < per_node_.size());
    return per_node_[n];
  }
  const NodeCounters& at(NodeId n) const {
    SDSM_ASSERT(n < per_node_.size());
    return per_node_[n];
  }

  std::vector<NodeCounters> per_node_;
};

}  // namespace sdsm::net
