#include "src/net/socket_transport.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/net/sockio.hpp"

namespace sdsm::net {

SocketTransport::SocketTransport(std::uint32_t num_nodes, WireModel wire)
    : ChannelTransport(num_nodes, wire),
      node_fd_(num_nodes, -1),
      switch_fd_(num_nodes, -1) {
  send_mu_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    send_mu_.push_back(std::make_unique<std::mutex>());
  }

  // Ephemeral localhost listener; the backlog covers every node, so all
  // connects complete before the first accept.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  SDSM_REQUIRE(listener >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  SDSM_REQUIRE(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  SDSM_REQUIRE(::listen(listener, static_cast<int>(num_nodes)) == 0);
  socklen_t alen = sizeof(addr);
  SDSM_REQUIRE(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                             &alen) == 0);

  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SDSM_REQUIRE(fd >= 0);
    SDSM_REQUIRE(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0);
    set_nodelay(fd);
    // Hello: tells the switch which node this connection belongs to
    // (accept order is not guaranteed to match connect order).
    SDSM_REQUIRE(write_full(fd, &n, sizeof(n)));
    node_fd_[n] = fd;
  }
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    const int fd = ::accept(listener, nullptr, nullptr);
    SDSM_REQUIRE(fd >= 0);
    set_nodelay(fd);
    std::uint32_t who = 0;
    SDSM_REQUIRE(read_full(fd, &who, sizeof(who)));
    SDSM_REQUIRE(who < num_nodes && switch_fd_[who] == -1);
    switch_fd_[who] = fd;
  }
  ::close(listener);

  switch_thread_ = std::thread([this] { switch_loop(); });
  demux_threads_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    demux_threads_.emplace_back([this, n] { demux_loop(n); });
  }
}

SocketTransport::~SocketTransport() {
  // Wake every blocked read with EOF: demux threads exit on their node
  // fd, which in turn EOFs the switch side of each connection, so the
  // switch loop drains out once its last connection closes.
  for (const int fd : node_fd_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : demux_threads_) t.join();
  if (switch_thread_.joinable()) switch_thread_.join();
  for (const int fd : node_fd_) {
    if (fd >= 0) ::close(fd);
  }
  for (const int fd : switch_fd_) {
    if (fd >= 0) ::close(fd);
  }
}

void SocketTransport::send(Port port, Message msg) {
  SDSM_REQUIRE(msg.dst < num_nodes());
  count_send(msg);

  // Loopback is delivered locally: the accounting already defines a
  // node's message to itself as a local function call, not traffic on
  // the switch, so it must not pay two real TCP hops either (barriers
  // and shutdown send such messages on every round).
  if (msg.src == msg.dst) {
    deliver(port, std::move(msg), Clock::now());
    return;
  }

  const std::vector<std::uint8_t> frame = encode_frame(port, msg);

  // One writer at a time per connection keeps frames contiguous on the
  // stream.  The sending node is msg.src (every caller sends as itself;
  // stop_all_services stamps src = dst = n).
  SDSM_REQUIRE(msg.src < num_nodes());
  std::lock_guard<std::mutex> g(*send_mu_[msg.src]);
  write_full(node_fd_[msg.src], frame.data(), frame.size());
  // A failed write can only mean teardown is in progress; the message is
  // dropped, exactly as a real switch drops traffic to a vanished host.
}

void SocketTransport::switch_loop() {
  const std::uint32_t n = num_nodes();
  std::vector<std::vector<std::uint8_t>> inbuf(n);  // partial-frame buffers
  std::vector<bool> open(n, true);
  std::uint32_t open_count = n;
  std::vector<std::uint8_t> chunk(64 * 1024);

  while (open_count > 0) {
    std::vector<pollfd> fds;
    std::vector<NodeId> who;
    fds.reserve(open_count);
    for (NodeId i = 0; i < n; ++i) {
      if (!open[i]) continue;
      fds.push_back(pollfd{switch_fd_[i], POLLIN, 0});
      who.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const NodeId src = who[k];
      const ssize_t r = ::read(switch_fd_[src], chunk.data(), chunk.size());
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        open[src] = false;
        --open_count;
        continue;
      }
      auto& buf = inbuf[src];
      buf.insert(buf.end(), chunk.begin(), chunk.begin() + r);
      // Forward every complete frame verbatim; the switch only needs dst.
      std::size_t pos = 0;
      while (buf.size() - pos >= sizeof(std::uint32_t)) {
        std::uint32_t frame_len = 0;
        std::memcpy(&frame_len, buf.data() + pos, sizeof(frame_len));
        const std::size_t total = sizeof(frame_len) + frame_len;
        if (buf.size() - pos < total) break;
        SDSM_ASSERT(frame_len >= sizeof(FrameHeader));
        FrameHeader h{};
        std::memcpy(&h, buf.data() + pos + sizeof(frame_len), sizeof(h));
        SDSM_ASSERT(h.dst < num_nodes());
        if (open[h.dst]) {
          write_full(switch_fd_[h.dst], buf.data() + pos, total);
        }
        pos += total;
      }
      buf.erase(buf.begin(), buf.begin() + pos);
    }
  }
}

void SocketTransport::demux_loop(NodeId node) {
  for (;;) {
    FrameHeader h{};
    Message msg;
    if (!read_frame(node_fd_[node], h, msg)) return;
    SDSM_ASSERT(msg.dst == node);
    deliver(static_cast<Port>(h.port), std::move(msg), Clock::now());
  }
}

}  // namespace sdsm::net
