#include "src/serve/workloads.hpp"

#include "src/apps/graph/bfs.hpp"
#include "src/apps/graph/cc.hpp"
#include "src/apps/moldyn/moldyn_kernel.hpp"
#include "src/apps/nbf/nbf_kernel.hpp"
#include "src/apps/pagerank/pagerank.hpp"
#include "src/apps/quickstart/quickstart.hpp"
#include "src/apps/spmv/spmv.hpp"
#include "src/common/assert.hpp"
#include "src/common/buffer.hpp"

namespace sdsm::serve {

namespace {

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest of the resolved parameters: kernel name + every field that
/// shapes the graph or the step schedule + nprocs.
template <typename... Fields>
std::uint64_t fingerprint_of(const std::string& kernel, std::uint32_t nprocs,
                             Fields... fields) {
  Writer w;
  w.put_string(kernel);
  w.put<std::uint32_t>(nprocs);
  (w.put(fields), ...);
  return fnv1a(w.bytes());
}

}  // namespace

bool known_kernel(std::string_view name) {
  for (const std::string& k : kernel_names()) {
    if (k == name) return true;
  }
  return false;
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names = {
      "moldyn", "nbf", "spmv", "pagerank", "bfs", "cc", "quickstart"};
  return names;
}

PreparedJob prepare_job(const JobRequest& req, std::uint32_t nprocs) {
  const GraphSpec& g = req.graph;
  PreparedJob job;

  if (req.kernel == "moldyn") {
    apps::moldyn::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.num_molecules = g.num_elements;
    if (g.num_steps > 0) p.num_steps = g.num_steps;
    if (g.update_interval > 0) p.update_interval = g.update_interval;
    if (g.seed != 0) p.seed = g.seed;
    const apps::moldyn::System sys = apps::moldyn::make_system(p);
    job.is_double3 = true;
    job.spec3 = apps::moldyn::make_kernel(p, sys);
    job.cacheable = job.spec3.structure_cacheable;
    job.base_options = apps::moldyn::default_options();
    job.fingerprint =
        fingerprint_of(req.kernel, nprocs, p.num_molecules, p.num_steps,
                       p.update_interval, p.box, p.cutoff, p.dt, p.seed);
    return job;
  }
  if (req.kernel == "nbf") {
    apps::nbf::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.molecules = g.num_elements;
    if (g.num_steps > 0) p.timed_steps = g.num_steps;
    if (g.warmup_steps >= 0) p.warmup_steps = g.warmup_steps;
    if (g.partners > 0) p.partners = g.partners;
    job.spec = apps::nbf::make_kernel(p);
    job.base_options = apps::nbf::default_options();
    job.fingerprint =
        fingerprint_of(req.kernel, nprocs, p.molecules, p.partners,
                       p.min_partners, p.spread, p.timed_steps,
                       p.warmup_steps, p.dt);
  } else if (req.kernel == "spmv") {
    apps::spmv::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.num_rows = g.num_elements;
    if (g.num_steps > 0) p.num_steps = g.num_steps;
    if (g.warmup_steps >= 0) p.warmup_steps = g.warmup_steps;
    if (g.edges_per_vertex > 0) p.edges_per_vertex = g.edges_per_vertex;
    if (g.seed != 0) p.seed = g.seed;
    job.spec = apps::spmv::make_kernel(p);
    job.base_options = apps::spmv::default_options();
    job.fingerprint =
        fingerprint_of(req.kernel, nprocs, p.num_rows, p.edges_per_vertex,
                       p.num_steps, p.warmup_steps, p.dt, p.seed);
  } else if (req.kernel == "pagerank") {
    apps::pagerank::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.num_vertices = g.num_elements;
    if (g.num_steps > 0) p.num_steps = g.num_steps;
    if (g.warmup_steps >= 0) p.warmup_steps = g.warmup_steps;
    if (g.edges_per_vertex > 0) p.edges_per_vertex = g.edges_per_vertex;
    if (g.seed != 0) p.seed = g.seed;
    job.spec = apps::pagerank::make_kernel(p);
    job.base_options = apps::pagerank::default_options();
    job.fingerprint =
        fingerprint_of(req.kernel, nprocs, p.num_vertices, p.edges_per_vertex,
                       p.num_steps, p.warmup_steps, p.damping, p.seed);
  } else if (req.kernel == "quickstart") {
    apps::quickstart::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.num_elements = g.num_elements;
    if (g.num_steps > 0) p.num_steps = g.num_steps;
    if (g.warmup_steps >= 0) p.warmup_steps = g.warmup_steps;
    job.spec = apps::quickstart::make_kernel(p);
    job.base_options = apps::quickstart::default_options();
    job.fingerprint = fingerprint_of(req.kernel, nprocs, p.num_elements,
                                     p.num_steps, p.warmup_steps);
  } else if (req.kernel == "bfs" || req.kernel == "cc") {
    apps::graph::Params p;
    p.nprocs = nprocs;
    if (g.num_elements > 0) p.num_vertices = g.num_elements;
    if (g.num_steps > 0) p.num_steps = g.num_steps;
    if (g.warmup_steps >= 0) p.warmup_steps = g.warmup_steps;
    if (g.chords_per_vertex > 0) p.chords_per_vertex = g.chords_per_vertex;
    if (g.seed != 0) p.seed = g.seed;
    if (req.kernel == "bfs") {
      job.spec = apps::bfs::make_kernel(p);
      job.base_options = apps::bfs::default_options();
    } else {
      job.spec = apps::cc::make_kernel(p);
      job.base_options = apps::cc::default_options();
    }
    job.fingerprint = fingerprint_of(
        req.kernel, nprocs, p.num_vertices, p.chords_per_vertex, p.isolated,
        p.source, p.num_steps, p.warmup_steps,
        static_cast<std::uint8_t>(p.use_convergence ? 1 : 0), p.seed);
  } else {
    SDSM_REQUIRE_MSG(false, "prepare_job: unknown kernel (admission must "
                            "check known_kernel first)");
  }
  job.cacheable = job.spec.structure_cacheable;
  return job;
}

}  // namespace sdsm::serve
