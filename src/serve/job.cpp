#include "src/serve/job.hpp"

namespace sdsm::serve {

void encode(Writer& w, const GraphSpec& g) {
  w.put<std::int64_t>(g.num_elements);
  w.put<std::int32_t>(g.num_steps);
  w.put<std::int32_t>(g.warmup_steps);
  w.put<std::int32_t>(g.update_interval);
  w.put<std::int32_t>(g.edges_per_vertex);
  w.put<std::int32_t>(g.chords_per_vertex);
  w.put<std::int32_t>(g.partners);
  w.put<std::uint64_t>(g.seed);
}

GraphSpec decode_graph(Reader& r) {
  GraphSpec g;
  g.num_elements = r.get<std::int64_t>();
  g.num_steps = r.get<std::int32_t>();
  g.warmup_steps = r.get<std::int32_t>();
  g.update_interval = r.get<std::int32_t>();
  g.edges_per_vertex = r.get<std::int32_t>();
  g.chords_per_vertex = r.get<std::int32_t>();
  g.partners = r.get<std::int32_t>();
  g.seed = r.get<std::uint64_t>();
  return g;
}

void encode(Writer& w, const JobRequest& req) {
  w.put_string(req.kernel);
  encode(w, req.graph);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.backend));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.schedule));
  w.put<std::uint8_t>(req.cross_step_prefetch ? 1 : 0);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.coherence));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.transport));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.diff_engine));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(req.exec));
}

JobRequest decode_request(Reader& r) {
  JobRequest req;
  req.kernel = r.get_string();
  req.graph = decode_graph(r);
  req.backend = static_cast<api::Backend>(r.get<std::uint8_t>());
  req.schedule = static_cast<api::RoundSchedule>(r.get<std::uint8_t>());
  req.cross_step_prefetch = r.get<std::uint8_t>() != 0;
  req.coherence =
      static_cast<coherence::CoherencePolicy>(r.get<std::uint8_t>());
  req.transport = static_cast<net::TransportKind>(r.get<std::uint8_t>());
  req.diff_engine = static_cast<core::DiffEngine>(r.get<std::uint8_t>());
  req.exec = static_cast<api::ExecEngine>(r.get<std::uint8_t>());
  return req;
}

void encode(Writer& w, const JobStats& s) {
  w.put<std::uint64_t>(s.job_id);
  w.put<std::uint8_t>(s.ok ? 1 : 0);
  w.put_string(s.error);
  w.put_string(s.kernel);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(s.backend));
  w.put<std::uint8_t>(s.cache_eligible ? 1 : 0);
  w.put<std::uint8_t>(s.cache_hit ? 1 : 0);
  w.put<std::int64_t>(s.inspector_runs);
  w.put<std::uint64_t>(s.structure_messages);
  w.put<std::uint64_t>(s.structure_bytes);
  w.put<double>(s.checksum);
  w.put<std::uint64_t>(s.messages);
  w.put<double>(s.megabytes);
  w.put<std::int64_t>(s.steps_run);
  w.put<std::int64_t>(s.rebuilds);
  w.put<std::uint64_t>(s.replications);
  w.put<std::uint64_t>(s.migrations);
  w.put<std::uint64_t>(s.ghost_promotions);
  w.put<double>(s.queue_seconds);
  w.put<double>(s.run_seconds);
}

JobStats decode_stats(Reader& r) {
  JobStats s;
  s.job_id = r.get<std::uint64_t>();
  s.ok = r.get<std::uint8_t>() != 0;
  s.error = r.get_string();
  s.kernel = r.get_string();
  s.backend = static_cast<api::Backend>(r.get<std::uint8_t>());
  s.cache_eligible = r.get<std::uint8_t>() != 0;
  s.cache_hit = r.get<std::uint8_t>() != 0;
  s.inspector_runs = r.get<std::int64_t>();
  s.structure_messages = r.get<std::uint64_t>();
  s.structure_bytes = r.get<std::uint64_t>();
  s.checksum = r.get<double>();
  s.messages = r.get<std::uint64_t>();
  s.megabytes = r.get<double>();
  s.steps_run = r.get<std::int64_t>();
  s.rebuilds = r.get<std::int64_t>();
  s.replications = r.get<std::uint64_t>();
  s.migrations = r.get<std::uint64_t>();
  s.ghost_promotions = r.get<std::uint64_t>();
  s.queue_seconds = r.get<double>();
  s.run_seconds = r.get<double>();
  return s;
}

void encode(Writer& w, const ServerStats& s) {
  w.put<std::uint64_t>(s.submitted);
  w.put<std::uint64_t>(s.rejected);
  w.put<std::uint64_t>(s.completed);
  w.put<std::uint64_t>(s.failed);
  w.put<std::uint64_t>(s.cache_hits);
  w.put<std::uint64_t>(s.cache_misses);
  w.put<std::uint64_t>(s.queue_depth);
  w.put<std::uint64_t>(s.in_flight);
}

ServerStats decode_server_stats(Reader& r) {
  ServerStats s;
  s.submitted = r.get<std::uint64_t>();
  s.rejected = r.get<std::uint64_t>();
  s.completed = r.get<std::uint64_t>();
  s.failed = r.get<std::uint64_t>();
  s.cache_hits = r.get<std::uint64_t>();
  s.cache_misses = r.get<std::uint64_t>();
  s.queue_depth = r.get<std::uint64_t>();
  s.in_flight = r.get<std::uint64_t>();
  return s;
}

void encode(Writer& w, const SubmitResult& s) {
  w.put<std::uint8_t>(s.accepted ? 1 : 0);
  w.put<std::uint64_t>(s.job_id);
  w.put_string(s.reason);
}

SubmitResult decode_submit_result(Reader& r) {
  SubmitResult s;
  s.accepted = r.get<std::uint8_t>() != 0;
  s.job_id = r.get<std::uint64_t>();
  s.reason = r.get_string();
  return s;
}

}  // namespace sdsm::serve
