// KernelServer: the persistent kernel-serving runtime (the PR's tentpole).
//
// A server owns its execution substrates for its whole lifetime — one warm
// engine per (backend, transport, coherence, diff_engine, exec) tuple,
// created lazily: a
// TreadMarks engine keeps a DsmRuntime whose arena is reset (not rebuilt)
// between jobs — the reset also clears adaptive-coherence heat and
// directory state, so a warm engine starts every job cold — and a CHAOS
// engine keeps a warm ChaosRuntime.  Jobs arrive as JobRequests
// through a bounded admission queue (reject-with-reason backpressure), are
// executed by a small worker pool, and consult the ScheduleCache so a
// repeat of a structure-cacheable job replays its inspector artifacts
// executor-only.
//
// Concurrency shape: the admission queue and job table are guarded by one
// mutex; each engine has its own mutex, so two jobs run concurrently only
// when they target different engine keys — within one
// engine the node threads already use every core.  An optional 127.0.0.1
// control socket (ephemeral port) serves the framed protocol of
// src/serve/framing.hpp with one thread per connection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/api/backend.hpp"
#include "src/net/transport.hpp"
#include "src/serve/job.hpp"
#include "src/serve/schedule_cache.hpp"

namespace sdsm::serve {

struct ServerConfig {
  std::uint32_t nprocs = 4;        ///< node count of every engine
  std::size_t workers = 2;         ///< job worker threads (min 1)
  std::size_t queue_capacity = 8;  ///< admission bound (backpressure)
  std::size_t cache_entries = 32;  ///< ScheduleCache capacity (LRU)
  std::size_t region_bytes = 256u << 20;  ///< Tmk shared-region size
  net::WireModel wire{};  ///< simulated cost model (in-proc transports)
  bool listen = false;    ///< open the 127.0.0.1 control socket
};

class KernelServer {
 public:
  explicit KernelServer(ServerConfig cfg);
  ~KernelServer();  ///< implies shutdown()

  KernelServer(const KernelServer&) = delete;
  KernelServer& operator=(const KernelServer&) = delete;

  /// Admission: validates the kernel name and queue headroom under the
  /// admission lock; never blocks on execution.
  SubmitResult submit(const JobRequest& req);

  /// Blocks until the job completes and returns its stats.  An unknown id
  /// yields ok=false immediately (ids are never reused, so an unknown id
  /// is a caller bug, not a race).
  JobStats wait(std::uint64_t job_id);

  ServerStats stats() const;

  /// Graceful shutdown: stops admitting, drains every queued job through
  /// the workers, joins them, then tears down the control socket.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Control-socket port, or -1 when not listening.
  int port() const { return port_; }

  /// Test hook: while held, workers finish their current job but pick up
  /// nothing new, so the queue depth is observable deterministically.
  /// Cleared automatically by shutdown().
  void hold_workers(bool hold);

 private:
  struct Job;
  struct Engine;
  struct TmkEngine;
  struct ChaosEngine;

  void worker_loop();
  void run_job(Job& job);
  Engine& engine_for(const JobRequest& req);
  api::BackendOptions overlay(api::BackendOptions base,
                              net::TransportKind transport) const;

  void start_listener();
  void stop_listener();
  void accept_loop();
  void connection_loop(std::size_t slot, int fd);

  ServerConfig cfg_;
  ScheduleCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< queue became non-empty / shutdown
  std::condition_variable done_cv_;   ///< some job completed
  bool shutting_down_ = false;
  bool hold_ = false;
  std::uint64_t next_id_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t in_flight_ = 0;

  std::vector<std::thread> workers_;

  std::mutex engines_mu_;
  std::map<std::tuple<int, int, int, int, int>, std::unique_ptr<Engine>>
      engines_;

  int port_ = -1;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;  ///< -1 once the connection thread closed it
  std::vector<std::thread> conn_threads_;
};

}  // namespace sdsm::serve
