// The serving layer's kernel registry: resolves a JobRequest's kernel
// name + GraphSpec into a concrete KernelSpec, the workload's default
// backend options, and the schedule-cache fingerprint.
//
// The fingerprint is an FNV-1a digest of the kernel name, every resolved
// workload parameter, and nprocs — two requests collide exactly when they
// would build the identical graph and run the identical kernel, which is
// precisely when replaying cached schedules is sound.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/api.hpp"
#include "src/serve/job.hpp"

namespace sdsm::serve {

/// A materialized job: exactly one of `spec` / `spec3` is populated
/// (moldyn is the one double3 kernel).
struct PreparedJob {
  bool is_double3 = false;
  api::KernelSpec<double> spec;
  api::KernelSpec<double3> spec3;

  bool cacheable = false;  ///< spec.structure_cacheable
  std::uint64_t fingerprint = 0;
  /// The workload's default_options() (CHAOS table kind etc.); the server
  /// overlays its own transport/region/schedule fields on top.
  api::BackendOptions base_options;
};

/// True when `name` is a kernel this server can run.
bool known_kernel(std::string_view name);

/// All kernel names, for usage messages.
const std::vector<std::string>& kernel_names();

/// Resolves the request against `nprocs` nodes.  The request's kernel must
/// be known (checked at admission).
PreparedJob prepare_job(const JobRequest& req, std::uint32_t nprocs);

}  // namespace sdsm::serve
