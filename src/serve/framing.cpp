#include "src/serve/framing.hpp"

#include <sys/socket.h>

#include <cstring>

namespace sdsm::serve {

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t rc = ::recv(fd, p, n, 0);
    if (rc <= 0) return false;
    p += rc;
    n -= static_cast<std::size_t>(rc);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t rc = ::send(fd, p, n, MSG_NOSIGNAL);
    if (rc <= 0) return false;
    p += rc;
    n -= static_cast<std::size_t>(rc);
  }
  return true;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len))) return false;
  payload.resize(len);
  return len == 0 || read_exact(fd, payload.data(), len);
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  if (!write_exact(fd, &len, sizeof(len))) return false;
  return payload.empty() || write_exact(fd, payload.data(), payload.size());
}

}  // namespace sdsm::serve
