// serve::Client — one handle, two transports: in-process (direct calls on
// a KernelServer living in the same address space) or a socket connection
// to a server's 127.0.0.1 control port speaking the framed protocol of
// src/serve/framing.hpp.  Call sites are identical either way, so tests
// and the CLI exercise both paths through one code shape.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "src/serve/job.hpp"

namespace sdsm::serve {

class KernelServer;

class Client {
 public:
  /// Direct calls on a server in this process (no sockets involved).
  static Client in_proc(KernelServer& server);

  /// Connects to a server's control port on 127.0.0.1.
  static Client connect_local(int port);

  Client(Client&& o) noexcept
      : server_(o.server_), fd_(o.fd_), mu_(std::move(o.mu_)) {
    o.server_ = nullptr;
    o.fd_ = -1;
  }
  Client& operator=(Client&& o) noexcept;
  ~Client();

  bool connected() const { return server_ != nullptr || fd_ >= 0; }

  SubmitResult submit(const JobRequest& req);

  /// Blocks until the job completes.  On the socket path this occupies the
  /// connection, so submit everything first and wait in submission order.
  JobStats wait(std::uint64_t job_id);

  /// submit + wait.  A rejected submit comes back as ok=false with the
  /// rejection reason in `error` (no job ran).
  JobStats run(const JobRequest& req);

  ServerStats server_stats();

 private:
  Client() = default;

  /// One request/response round-trip on the socket (serialized: the
  /// protocol is strictly alternating).
  std::vector<std::uint8_t> round_trip(const std::vector<std::uint8_t>& req);

  KernelServer* server_ = nullptr;  ///< in-proc mode
  int fd_ = -1;                     ///< socket mode
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

}  // namespace sdsm::serve
