#include "src/serve/schedule_cache.hpp"

namespace sdsm::serve {

std::shared_ptr<const CacheEntry> ScheduleCache::find(const CacheKey& key) {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

void ScheduleCache::insert(const CacheKey& key,
                           std::shared_ptr<const CacheEntry> entry) {
  std::lock_guard<std::mutex> g(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(entry)});
  map_[key] = lru_.begin();
  while (map_.size() > max_entries_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::uint64_t ScheduleCache::hits() const {
  std::lock_guard<std::mutex> g(mu_);
  return hits_;
}

std::uint64_t ScheduleCache::misses() const {
  std::lock_guard<std::mutex> g(mu_);
  return misses_;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return lru_.size();
}

}  // namespace sdsm::serve
