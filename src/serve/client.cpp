#include "src/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "src/common/assert.hpp"
#include "src/common/buffer.hpp"
#include "src/serve/framing.hpp"
#include "src/serve/server.hpp"

namespace sdsm::serve {

Client Client::in_proc(KernelServer& server) {
  Client c;
  c.server_ = &server;
  return c;
}

Client Client::connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SDSM_REQUIRE_MSG(fd >= 0, "serve::Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  SDSM_REQUIRE_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "serve::Client: connect() failed");
  Client c;
  c.fd_ = fd;
  return c;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    server_ = std::exchange(o.server_, nullptr);
    fd_ = std::exchange(o.fd_, -1);
    mu_ = std::move(o.mu_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> Client::round_trip(
    const std::vector<std::uint8_t>& req) {
  std::lock_guard<std::mutex> g(*mu_);
  SDSM_REQUIRE_MSG(write_frame(fd_, req),
                   "serve::Client: connection lost on send");
  std::vector<std::uint8_t> resp;
  SDSM_REQUIRE_MSG(read_frame(fd_, resp),
                   "serve::Client: connection lost on receive");
  return resp;
}

SubmitResult Client::submit(const JobRequest& req) {
  SDSM_REQUIRE_MSG(connected(), "serve::Client: not connected");
  if (server_ != nullptr) return server_->submit(req);
  Writer w;
  w.put<std::uint32_t>(kSubmit);
  encode(w, req);
  const std::vector<std::uint8_t> resp = round_trip(w.bytes());
  Reader r(resp);
  return decode_submit_result(r);
}

JobStats Client::wait(std::uint64_t job_id) {
  SDSM_REQUIRE_MSG(connected(), "serve::Client: not connected");
  if (server_ != nullptr) return server_->wait(job_id);
  Writer w;
  w.put<std::uint32_t>(kWait);
  w.put<std::uint64_t>(job_id);
  const std::vector<std::uint8_t> resp = round_trip(w.bytes());
  Reader r(resp);
  return decode_stats(r);
}

JobStats Client::run(const JobRequest& req) {
  const SubmitResult sub = submit(req);
  if (!sub.accepted) {
    JobStats s;
    s.kernel = req.kernel;
    s.backend = req.backend;
    s.error = sub.reason;
    return s;
  }
  return wait(sub.job_id);
}

ServerStats Client::server_stats() {
  SDSM_REQUIRE_MSG(connected(), "serve::Client: not connected");
  if (server_ != nullptr) return server_->stats();
  Writer w;
  w.put<std::uint32_t>(kStats);
  const std::vector<std::uint8_t> resp = round_trip(w.bytes());
  Reader r(resp);
  return decode_server_stats(r);
}

}  // namespace sdsm::serve
