// Job-level types of the serving layer (sdsm::serve): what a client
// submits (JobRequest), what it gets back (JobStats), and the server-wide
// counters (ServerStats), plus their wire codecs for the socket control
// protocol.
//
// A JobRequest names a kernel by string and describes the graph by a
// GraphSpec of sentinel-defaulted parameters (0 / -1 = use the workload's
// default), so the request is a small closed value that serializes
// trivially — the server materializes the actual KernelSpec from it
// (src/serve/workloads.hpp) and two requests with equal resolved
// parameters map to the same schedule-cache fingerprint.
#pragma once

#include <cstdint>
#include <string>

#include "src/api/backend.hpp"
#include "src/common/buffer.hpp"
#include "src/core/diff.hpp"
#include "src/net/transport.hpp"

namespace sdsm::serve {

/// Graph/workload shape, sentinel-defaulted: 0 (or -1 where 0 is
/// meaningful) leaves the corresponding workload Params field at its
/// default.  Fields not used by a kernel are ignored by it.
struct GraphSpec {
  std::int64_t num_elements = 0;  ///< molecules / vertices / rows
  int num_steps = 0;
  int warmup_steps = -1;
  int update_interval = 0;   ///< moldyn rebuild cadence
  int edges_per_vertex = 0;  ///< pagerank / spmv
  int chords_per_vertex = 0; ///< bfs / cc
  int partners = 0;          ///< nbf partner-list arity
  std::uint64_t seed = 0;
};

/// One unit of admission: kernel + graph + execution options.
struct JobRequest {
  std::string kernel;  ///< "moldyn", "nbf", "spmv", "pagerank", "bfs", "cc"
  GraphSpec graph;
  api::Backend backend = api::Backend::kTmkOptimized;
  api::RoundSchedule schedule = api::RoundSchedule::kSerial;
  bool cross_step_prefetch = false;
  /// Page-coherence policy of the job's engine.  Part of the engine key —
  /// a warm adaptive arena carries census/directory/heat state that a
  /// static job must never see, and vice versa.
  coherence::CoherencePolicy coherence = coherence::CoherencePolicy::kStatic;
  /// Inter-node fabric the job's engine uses (engines are keyed by
  /// (backend, transport, coherence, diff_engine, exec), so in-proc and
  /// socket jobs coexist).
  net::TransportKind transport = net::TransportKind::kInProc;
  /// Twin-vs-page diff scan engine.  Part of the engine key: a Tmk
  /// engine's DsmRuntime bakes the diff engine into its config at
  /// construction, so a warm scalar arena must never serve a word-engine
  /// job (it would silently run with the wrong engine).
  core::DiffEngine diff_engine = core::kDefaultDiffEngine;
  /// Work-item iteration engine.  Keyed as well so one engine's warm
  /// cadence stays attributable to a single execution configuration.
  api::ExecEngine exec = api::ExecEngine::kRows;
};

/// Everything a completed (or failed) job reports back.
struct JobStats {
  std::uint64_t job_id = 0;
  bool ok = false;
  std::string error;  ///< empty when ok

  std::string kernel;
  api::Backend backend = api::Backend::kTmkOptimized;

  bool cache_eligible = false;  ///< spec.structure_cacheable
  bool cache_hit = false;       ///< full replay: no inspector ran
  /// Fresh structure builds per node (uniform across nodes): the paper's
  /// inspector-run count.  0 on the hit path.
  std::int64_t inspector_runs = 0;
  /// Fabric traffic attributed to structure maintenance during timed
  /// steps (CHAOS allgather + inspector exchange; 0 on Tmk, whose
  /// Validate traffic is identical either way).
  std::uint64_t structure_messages = 0;
  std::uint64_t structure_bytes = 0;

  double checksum = 0;
  std::uint64_t messages = 0;
  double megabytes = 0;
  std::int64_t steps_run = 0;
  std::int64_t rebuilds = 0;
  /// Adaptive-coherence decisions during the job's timed window (snapshot
  /// deltas; zero for static jobs).
  std::uint64_t replications = 0;
  std::uint64_t migrations = 0;
  std::uint64_t ghost_promotions = 0;

  double queue_seconds = 0;  ///< admission -> worker pickup
  double run_seconds = 0;    ///< worker pickup -> completion
};

/// Server-wide counters at one point in time.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< backpressure / shutdown / unknown kernel
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t queue_depth = 0;  ///< admitted, not yet picked up
  std::uint64_t in_flight = 0;    ///< picked up, not yet completed
};

/// Outcome of one submit: accepted (job_id valid) or rejected with a
/// human-readable reason.
struct SubmitResult {
  bool accepted = false;
  std::uint64_t job_id = 0;
  std::string reason;  ///< empty when accepted
};

// --- Wire codecs (socket control protocol payloads) -----------------------

void encode(Writer& w, const GraphSpec& g);
GraphSpec decode_graph(Reader& r);

void encode(Writer& w, const JobRequest& req);
JobRequest decode_request(Reader& r);

void encode(Writer& w, const JobStats& s);
JobStats decode_stats(Reader& r);

void encode(Writer& w, const ServerStats& s);
ServerStats decode_server_stats(Reader& r);

void encode(Writer& w, const SubmitResult& s);
SubmitResult decode_submit_result(Reader& r);

}  // namespace sdsm::serve
