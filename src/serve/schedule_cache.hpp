// The ScheduleCache: the serving layer's cross-job memory of inspector
// work.
//
// Key: (graph fingerprint, kernel id, backend, nprocs).  Value: every
// node's per-rebuild artifact trace (item lists; plus CHAOS schedules,
// localized references, and the shared translation table).  A job whose
// key hits replays the trace executor-only — the amortization the paper's
// inspector/executor model achieves *within* a run, extended *across*
// runs.
//
// Entries are immutable once inserted (shared_ptr<const>), so readers
// never lock around a running job; the map itself is mutex-guarded.
// Insertion happens only after a job completes successfully, and an entry
// always carries complete traces for all nprocs nodes — partial entries
// would let some nodes hit and some miss the same rebuild ordinal, which
// the CHAOS collective rebuild path cannot tolerate.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/backend.hpp"
#include "src/api/reuse.hpp"

namespace sdsm::serve {

struct CacheKey {
  std::uint64_t fingerprint = 0;  ///< digest of the resolved graph params
  std::string kernel;
  api::Backend backend = api::Backend::kTmkOptimized;
  std::uint32_t nprocs = 0;

  bool operator==(const CacheKey& o) const {
    return fingerprint == o.fingerprint && kernel == o.kernel &&
           backend == o.backend && nprocs == o.nprocs;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.fingerprint);
    h ^= std::hash<std::string>{}(k.kernel) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    h ^= (static_cast<std::size_t>(k.backend) * 131) + (h << 6) + (h >> 2);
    h ^= k.nprocs + (h << 6) + (h >> 2);
    return h;
  }
};

/// One job's complete rebuild trace: per_node[node][ordinal].
struct CacheEntry {
  std::vector<std::vector<api::CachedRebuild>> per_node;
  std::shared_ptr<const chaos::TranslationTable> table;  ///< CHAOS only
};

class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t max_entries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Returns the entry for `key` (bumping it to most-recently-used and
  /// counting a hit), or nullptr (counting a miss).
  std::shared_ptr<const CacheEntry> find(const CacheKey& key);

  /// Inserts (or replaces) the entry for `key`, evicting the
  /// least-recently-used entry beyond capacity.
  void insert(const CacheKey& key, std::shared_ptr<const CacheEntry> entry);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  struct Slot {
    CacheKey key;
    std::shared_ptr<const CacheEntry> entry;
  };

  mutable std::mutex mu_;
  std::size_t max_entries_;
  /// Most-recently-used at the front.
  std::list<Slot> lru_;
  std::unordered_map<CacheKey, std::list<Slot>::iterator, CacheKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sdsm::serve
