#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <exception>
#include <string>
#include <utility>

#include "src/api/chaos_backend.hpp"
#include "src/api/reuse.hpp"
#include "src/api/tmk_backend.hpp"
#include "src/common/assert.hpp"
#include "src/common/timer.hpp"
#include "src/serve/framing.hpp"
#include "src/serve/workloads.hpp"

namespace sdsm::serve {

// --- Job record ------------------------------------------------------------

struct KernelServer::Job {
  std::uint64_t id = 0;
  JobRequest req;
  Timer admitted;  ///< queue_seconds is read at worker pickup
  bool done = false;
  JobStats stats;
};

// --- Engines ---------------------------------------------------------------

// An engine is the warm substrate for one (backend, transport, coherence,
// diff_engine, exec) key.  Its mutex serializes jobs on it: within a job the backend's node threads
// already occupy the machine, so per-engine serialization loses nothing,
// and jobs on *different* engines overlap freely across the worker pool.
struct KernelServer::Engine {
  std::mutex mu;
  virtual ~Engine() = default;
  virtual api::KernelResult run(const PreparedJob& job,
                                const api::BackendOptions& opts,
                                api::RunSession* session) = 0;
};

struct KernelServer::TmkEngine final : Engine {
  TmkEngine(std::uint32_t nprocs, api::Backend kind,
            const api::BackendOptions& opts)
      : nprocs(nprocs),
        kind(kind),
        rt(api::TmkBackend::dsm_config(nprocs, opts)) {}

  std::uint32_t nprocs;
  api::Backend kind;    ///< kTmkBase / kTmkOptimized / kHybrid
  core::DsmRuntime rt;  ///< lives as long as the engine: the warm arena

  api::KernelResult run(const PreparedJob& job, const api::BackendOptions& opts,
                        api::RunSession* session) override {
    // Same pages, fresh contents: punch-hole + reprotect + metadata wipe
    // (plus app-data inbox drain for the hybrid exchange plane), so the
    // job's paging behaviour is identical to a cold runtime.
    rt.reset_arena();
    api::TmkBackend backend(nprocs, kind, opts);
    return job.is_double3 ? backend.run_on(rt, job.spec3, session)
                          : backend.run_on(rt, job.spec, session);
  }
};

struct KernelServer::ChaosEngine final : Engine {
  ChaosEngine(std::uint32_t nprocs, net::WireModel wire,
              net::TransportKind transport)
      : nprocs(nprocs), rt(nprocs, wire, transport) {}

  std::uint32_t nprocs;
  chaos::ChaosRuntime rt;  ///< warm fabric; per-run node state is fresh

  api::KernelResult run(const PreparedJob& job, const api::BackendOptions& opts,
                        api::RunSession* session) override {
    api::ChaosBackend backend(nprocs, opts);
    return job.is_double3 ? backend.run_on(rt, job.spec3, session)
                          : backend.run_on(rt, job.spec, session);
  }
};

api::BackendOptions KernelServer::overlay(api::BackendOptions base,
                                          net::TransportKind transport) const {
  // The fields an engine's substrate is built from must agree between
  // engine construction and every job run on it; the workload's
  // base_options contribute only substrate-independent knobs (CHAOS table
  // kind).
  base.transport = transport;
  base.wire = cfg_.wire;
  base.region_bytes = cfg_.region_bytes;
  return base;
}

KernelServer::Engine& KernelServer::engine_for(const JobRequest& req) {
  // Every field a warm substrate is built from must be part of the key:
  // a TmkEngine's DsmRuntime bakes diff_engine into its config at
  // construction, so a scalar arena must never serve a word-engine job.
  // exec does not shape the substrate but is keyed too, so one engine's
  // warm cadence stays attributable to a single execution configuration.
  const std::tuple<int, int, int, int, int> key{
      static_cast<int>(req.backend), static_cast<int>(req.transport),
      static_cast<int>(req.coherence), static_cast<int>(req.diff_engine),
      static_cast<int>(req.exec)};
  std::lock_guard<std::mutex> g(engines_mu_);
  const auto it = engines_.find(key);
  if (it != engines_.end()) return *it->second;

  std::unique_ptr<Engine> engine;
  if (req.backend == api::Backend::kChaos) {
    engine =
        std::make_unique<ChaosEngine>(cfg_.nprocs, cfg_.wire, req.transport);
  } else {
    api::BackendOptions base;
    base.coherence = req.coherence;
    base.diff_engine = req.diff_engine;
    engine = std::make_unique<TmkEngine>(cfg_.nprocs, req.backend,
                                         overlay(std::move(base),
                                                 req.transport));
  }
  Engine& ref = *engine;
  engines_[key] = std::move(engine);
  return ref;
}

// --- Lifecycle -------------------------------------------------------------

KernelServer::KernelServer(ServerConfig cfg)
    : cfg_(cfg), cache_(cfg_.cache_entries) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (cfg_.listen) start_listener();
}

KernelServer::~KernelServer() { shutdown(); }

void KernelServer::shutdown() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shutting_down_) return;  // workers already joined by the first call
    shutting_down_ = true;
    hold_ = false;  // a held server still drains
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> g(mu_);
    SDSM_ENSURE(queue_.empty());  // drain contract: zero queue leaks
  }
  // Connections could still submit during the drain (and were rejected);
  // only after the drain is the control socket torn down, so no wait()
  // reply is cut off.
  stop_listener();
}

void KernelServer::hold_workers(bool hold) {
  {
    std::lock_guard<std::mutex> g(mu_);
    hold_ = hold;
  }
  queue_cv_.notify_all();
}

// --- Admission / completion ------------------------------------------------

SubmitResult KernelServer::submit(const JobRequest& req) {
  std::lock_guard<std::mutex> g(mu_);
  if (shutting_down_) {
    ++rejected_;
    return {false, 0, "server shutting down"};
  }
  if (!known_kernel(req.kernel)) {
    ++rejected_;
    return {false, 0, "unknown kernel '" + req.kernel + "'"};
  }
  if (queue_.size() >= cfg_.queue_capacity) {
    ++rejected_;
    return {false, 0,
            "queue full (capacity " + std::to_string(cfg_.queue_capacity) +
                ")"};
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->req = req;
  job->stats.job_id = job->id;
  job->stats.kernel = req.kernel;
  job->stats.backend = req.backend;
  jobs_[job->id] = job;
  queue_.push_back(job);
  ++submitted_;
  queue_cv_.notify_one();
  return {true, job->id, ""};
}

JobStats KernelServer::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    JobStats s;
    s.job_id = job_id;
    s.error = "unknown job id";
    return s;
  }
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lk, [&] { return job->done; });
  return job->stats;
}

ServerStats KernelServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> g(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.queue_depth = queue_.size();
    s.in_flight = in_flight_;
  }
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

// --- Execution -------------------------------------------------------------

void KernelServer::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] {
        return (!queue_.empty() && !hold_) ||
               (shutting_down_ && queue_.empty());
      });
      if (queue_.empty()) return;  // shutting down and fully drained
      job = queue_.front();
      queue_.pop_front();
      ++in_flight_;
      job->stats.queue_seconds = job->admitted.elapsed_s();
    }
    run_job(*job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      job->done = true;
      if (job->stats.ok) {
        ++completed_;
      } else {
        ++failed_;
      }
    }
    done_cv_.notify_all();
  }
}

void KernelServer::run_job(Job& job) {
  JobStats& s = job.stats;
  const Timer run_timer;
  try {
    const PreparedJob prepared = prepare_job(job.req, cfg_.nprocs);
    s.cache_eligible = prepared.cacheable;

    api::BackendOptions opts = overlay(prepared.base_options,
                                       job.req.transport);
    opts.round_schedule = job.req.schedule;
    opts.cross_step_prefetch = job.req.cross_step_prefetch;
    opts.coherence = job.req.coherence;
    opts.diff_engine = job.req.diff_engine;
    opts.exec_engine = job.req.exec;

    Engine& engine = engine_for(job.req);

    api::RunSession session;
    const CacheKey key{prepared.fingerprint, job.req.kernel, job.req.backend,
                       cfg_.nprocs};
    std::shared_ptr<const CacheEntry> hit;
    // Staged fresh-build traces, per node.  Node threads touch disjoint
    // inner vectors (the outer vector is pre-sized and never resized), so
    // no lock is needed.
    auto staging =
        std::make_shared<std::vector<std::vector<api::CachedRebuild>>>(
            cfg_.nprocs);

    if (prepared.cacheable) {
      hit = cache_.find(key);
      if (hit) {
        session.lookup = [entry = hit](
                             NodeId node,
                             std::int64_t ord) -> const api::CachedRebuild* {
          const auto& trace = entry->per_node[static_cast<std::size_t>(node)];
          if (ord < 0 || static_cast<std::size_t>(ord) >= trace.size()) {
            return nullptr;  // trace shorter than this run: fresh build
          }
          return &trace[static_cast<std::size_t>(ord)];
        };
        session.table = hit->table;
      } else {
        session.store = [staging](NodeId node, std::int64_t ord,
                                  api::CachedRebuild&& artifact) {
          auto& trace = (*staging)[static_cast<std::size_t>(node)];
          SDSM_REQUIRE_MSG(static_cast<std::size_t>(ord) == trace.size(),
                           "serve: rebuild trace recorded out of order");
          trace.push_back(std::move(artifact));
        };
      }
    }

    api::KernelResult r;
    {
      std::lock_guard<std::mutex> g(engine.mu);
      r = engine.run(prepared, opts, &session);
    }

    s.ok = true;
    s.checksum = r.checksum;
    s.messages = r.messages;
    s.megabytes = r.megabytes;
    s.steps_run = r.steps_run;
    s.rebuilds = r.rebuilds;
    s.replications = r.tmk.replications;
    s.migrations = r.tmk.migrations;
    s.ghost_promotions = r.tmk.ghost_promotions;
    s.inspector_runs =
        static_cast<std::int64_t>(session.fresh_builds.load() / cfg_.nprocs);
    s.structure_messages = session.structure_messages.load();
    s.structure_bytes = session.structure_bytes.load();
    s.cache_hit = hit != nullptr && session.fresh_builds.load() == 0;

    if (prepared.cacheable && !hit) {
      // Commit only now, after success, and always with all nprocs traces
      // complete — a partial entry would let nodes disagree on hit/miss at
      // one ordinal, which the CHAOS collective rebuild cannot tolerate.
      auto entry = std::make_shared<CacheEntry>();
      entry->per_node = std::move(*staging);
      entry->table = session.table;
      cache_.insert(key, std::move(entry));
    }
  } catch (const std::exception& e) {
    s.ok = false;
    s.error = e.what();
  }
  s.run_seconds = run_timer.elapsed_s();
}

// --- Control socket --------------------------------------------------------

void KernelServer::start_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SDSM_REQUIRE_MSG(listen_fd_ >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  SDSM_REQUIRE_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0,
      "serve: bind() failed");
  SDSM_REQUIRE_MSG(::listen(listen_fd_, 16) == 0, "serve: listen() failed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  SDSM_REQUIRE_MSG(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
          0,
      "serve: getsockname() failed");
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void KernelServer::stop_listener() {
  if (listen_fd_ < 0) return;
  // shutdown() (not close()) is what reliably unblocks a pending accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (const int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblocks recv()
    }
  }
  // The accept thread is gone, so no new connection threads appear.
  for (std::thread& t : conn_threads_) t.join();
  conn_threads_.clear();
  conn_fds_.clear();
}

void KernelServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down
    std::lock_guard<std::mutex> g(conns_mu_);
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, slot, fd] { connection_loop(slot, fd); });
  }
}

void KernelServer::connection_loop(std::size_t slot, int fd) {
  std::vector<std::uint8_t> payload;
  for (;;) {
    if (!read_frame(fd, payload)) break;
    Reader r(payload);
    const auto op = r.get<std::uint32_t>();
    Writer w;
    if (op == kSubmit) {
      encode(w, submit(decode_request(r)));
    } else if (op == kWait) {
      encode(w, wait(r.get<std::uint64_t>()));
    } else if (op == kStats) {
      encode(w, stats());
    } else {
      break;  // protocol error: drop the connection
    }
    if (!write_frame(fd, w.bytes())) break;
  }
  std::lock_guard<std::mutex> g(conns_mu_);
  ::close(fd);
  conn_fds_[slot] = -1;  // this thread owned the close
}

}  // namespace sdsm::serve
