// Length-prefixed framing of the serve control protocol, shared by the
// KernelServer's connection handler and the socket Client.
//
// Each frame is a u32 payload length followed by the payload; each
// payload begins with a u32 op code and continues with the op's codec
// from src/serve/job.hpp.  One request frame yields exactly one response
// frame on the same connection (kWait blocks server-side until the job
// completes, so a client wanting concurrent waits uses one connection per
// outstanding wait — or submits everything first, then waits in turn).
#pragma once

#include <cstdint>
#include <vector>

namespace sdsm::serve {

enum ControlOp : std::uint32_t {
  kSubmit = 1,  ///< JobRequest -> SubmitResult
  kWait = 2,    ///< u64 job id -> JobStats (blocks until done)
  kStats = 3,   ///< (empty) -> ServerStats
};

/// Blocking exact-size read; false on EOF/error.
bool read_exact(int fd, void* buf, std::size_t n);

/// Blocking full write (MSG_NOSIGNAL: a vanished peer is a false return,
/// not a SIGPIPE); false on error.
bool write_exact(int fd, const void* buf, std::size_t n);

/// Reads one frame into `payload`; false on clean EOF or error.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Writes one frame.
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);

}  // namespace sdsm::serve
