#include "src/compiler/pretty.hpp"

#include <sstream>

namespace sdsm::compiler {

namespace {

const char* op_text(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return " + ";
    case BinOp::kSub: return " - ";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return " .EQ. ";
    case BinOp::kNe: return " .NE. ";
    case BinOp::kLt: return " .LT. ";
    case BinOp::kLe: return " .LE. ";
    case BinOp::kGt: return " .GT. ";
    case BinOp::kGe: return " .GE. ";
  }
  return "?";
}

int precedence(BinOp op) {
  switch (op) {
    case BinOp::kMul:
    case BinOp::kDiv:
      return 3;
    case BinOp::kAdd:
    case BinOp::kSub:
      return 2;
    default:
      return 1;
  }
}

void print_expr_prec(const Expr& e, int parent_prec, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      os << e.int_val;
      return;
    case ExprKind::kRealLit:
      os << e.real_val;
      return;
    case ExprKind::kVar:
      os << e.name;
      return;
    case ExprKind::kArrayRef:
    case ExprKind::kIntrinsic: {
      os << e.name << '(';
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr_prec(*e.args[i], 0, os);
      }
      os << ')';
      return;
    }
    case ExprKind::kBin: {
      const int prec = precedence(e.op);
      const bool parens = prec < parent_prec;
      if (parens) os << '(';
      print_expr_prec(*e.lhs, prec, os);
      os << op_text(e.op);
      print_expr_prec(*e.rhs, prec + 1, os);  // left-assoc
      if (parens) os << ')';
      return;
    }
  }
}

std::string section_text(const ValidateDescAst& d) {
  std::ostringstream os;
  os << d.section_array << '[';
  for (std::size_t i = 0; i < d.section.size(); ++i) {
    if (i > 0) os << ", ";
    os << print_expr(*d.section[i].lower) << ':'
       << print_expr(*d.section[i].upper);
    if (d.section[i].stride != 1) os << ':' << d.section[i].stride;
  }
  os << ']';
  return os.str();
}

void indent_to(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void print_body(const std::vector<StmtPtr>& body, int indent,
                std::ostream& os) {
  for (const auto& s : body) os << print_stmt(*s, indent);
}

}  // namespace

std::string print_expr(const Expr& e) {
  std::ostringstream os;
  print_expr_prec(e, 0, os);
  return os.str();
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream os;
  indent_to(os, indent);
  switch (s.kind) {
    case StmtKind::kAssign:
      os << print_expr(*s.lhs) << " = " << print_expr(*s.rhs) << '\n';
      break;
    case StmtKind::kDo: {
      os << "DO " << s.do_var << " = " << print_expr(*s.do_lo) << ", "
         << print_expr(*s.do_hi);
      if (s.do_step) os << ", " << print_expr(*s.do_step);
      os << '\n';
      print_body(s.body, indent + 1, os);
      indent_to(os, indent);
      os << "ENDDO\n";
      break;
    }
    case StmtKind::kIf: {
      os << "IF (" << print_expr(*s.cond) << ") THEN\n";
      print_body(s.body, indent + 1, os);
      if (!s.else_body.empty()) {
        indent_to(os, indent);
        os << "ELSE\n";
        print_body(s.else_body, indent + 1, os);
      }
      indent_to(os, indent);
      os << "ENDIF\n";
      break;
    }
    case StmtKind::kCall: {
      os << "CALL " << s.callee << '(';
      for (std::size_t i = 0; i < s.call_args.size(); ++i) {
        if (i > 0) os << ", ";
        os << print_expr(*s.call_args[i]);
      }
      os << ")\n";
      break;
    }
    case StmtKind::kBarrier:
      os << "BARRIER\n";
      break;
    case StmtKind::kValidate: {
      // Mirrors Figure 2:
      //   Validate(1, INDIRECT, x, interaction_list[1:2, 1:n], READ, 1)
      os << "CALL Validate(" << s.descs.size();
      for (const auto& d : s.descs) {
        os << ", " << (d.indirect ? "INDIRECT" : "DIRECT") << ", "
           << d.data_array << ", " << section_text(d) << ", " << d.access
           << ", " << d.schedule;
      }
      os << ")\n";
      break;
    }
  }
  return os.str();
}

std::string print_unit(const Unit& u) {
  std::ostringstream os;
  os << (u.kind == UnitKind::kProgram ? "PROGRAM " : "SUBROUTINE ") << u.name
     << '\n';
  for (const auto& d : u.decls) {
    os << "  ";
    if (d.shared) os << "SHARED ";
    os << (d.elem == ElemType::kInteger ? "INTEGER " : "REAL ") << d.name;
    if (!d.dims.empty()) {
      os << '(';
      for (std::size_t i = 0; i < d.dims.size(); ++i) {
        if (i > 0) os << ", ";
        os << print_expr(*d.dims[i]);
      }
      os << ')';
    }
    os << '\n';
  }
  print_body(u.body, 1, os);
  os << "END\n";
  return os.str();
}

std::string print_file(const SourceFile& f) {
  std::ostringstream os;
  for (std::size_t i = 0; i < f.units.size(); ++i) {
    if (i > 0) os << '\n';
    os << print_unit(f.units[i]);
  }
  return os.str();
}

}  // namespace sdsm::compiler
