// Regular section analysis (Section 3.3 of the paper).
//
// For each loop nest, every reference to a shared array is summarized as a
// regular section descriptor.  Subscripts that are affine in the loop
// variables yield DIRECT sections; a subscript that is a scalar whose
// reaching definition loads an INTEGER shared array (n1 =
// interaction_list(1, i); ... x(n1) ...) yields an INDIRECT access whose
// section describes the part of the *indirection array* the loop reads —
// the paper's key observation that this is "usually a regular section".
//
// Section bounds are symbolic expressions (loop bounds are typically
// variables like num_interactions); they are evaluated when a Validate plan
// is lowered for a concrete run.
#pragma once

#include <string>
#include <vector>

#include "src/compiler/ast.hpp"
#include "src/compiler/symbols.hpp"

namespace sdsm::compiler {

/// One summarized shared-array access within a loop nest.
struct AccessInfo {
  std::string array;      ///< the shared data array accessed
  bool indirect = false;
  std::string ind_array;  ///< indirection array (indirect only)
  /// Section of the data array (direct) or of the indirection array
  /// (indirect), in 1-based Fortran index space.
  std::vector<SectionDimAst> section;
  bool read = false;
  bool written = false;
  /// True when the loop provably writes every element of the section
  /// (WRITE_ALL candidates: dense unit-stride coverage of the loop range).
  bool covers_section = false;

  std::string access_string() const;
};

/// Access summary for one DO statement (including nested loops).
struct LoopSummary {
  std::vector<AccessInfo> accesses;

  const AccessInfo* find(const std::string& array) const;
};

/// Analyzes a top-level DO statement.  References whose subscripts defeat
/// the analysis (non-affine, multi-variable) are recorded with an empty
/// section and covers_section=false; the transform phase skips them (the
/// run-time demand paging still guarantees correctness — exactly the
/// paper's fallback).
LoopSummary analyze_loop(const Stmt& do_stmt, const SymbolTable& syms);

}  // namespace sdsm::compiler
