#include "src/compiler/symbols.hpp"

namespace sdsm::compiler {

SymbolTable::SymbolTable(const Unit& unit) {
  for (const auto& d : unit.decls) {
    by_name_[d.name] = &d;
  }
}

const ArrayDecl* SymbolTable::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

bool SymbolTable::is_shared_array(const std::string& name) const {
  const ArrayDecl* d = find(name);
  return d != nullptr && d->shared && !d->is_scalar();
}

bool SymbolTable::is_integer_array(const std::string& name) const {
  const ArrayDecl* d = find(name);
  return d != nullptr && d->elem == ElemType::kInteger && !d->is_scalar();
}

}  // namespace sdsm::compiler
