// Lexer for the mini-Fortran subset.  Produces the full token stream up
// front (the sources involved are small); comments start with '!' or a 'C'
// in column 1 and run to end of line.
#pragma once

#include <string>
#include <vector>

#include "src/compiler/token.hpp"

namespace sdsm::compiler {

/// Thrown (via CompileError) on malformed input; carries line/column.
struct CompileError {
  std::string message;
  int line = 0;
  int col = 0;
};

std::vector<Token> lex(const std::string& source);

}  // namespace sdsm::compiler
