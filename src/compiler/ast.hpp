// Abstract syntax tree for the mini-Fortran subset, plus the Validate
// statement node that the transformation phase inserts (the analogue of the
// compiler-inserted calls in Figure 2 of the paper).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/assert.hpp"

namespace sdsm::compiler {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit,
  kRealLit,
  kVar,
  kArrayRef,
  kBin,
  kIntrinsic,  ///< MOD(a, b) and friends
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  long long int_val = 0;
  double real_val = 0;
  std::string name;            ///< kVar, kArrayRef, kIntrinsic
  BinOp op = BinOp::kAdd;      ///< kBin
  ExprPtr lhs, rhs;            ///< kBin
  std::vector<ExprPtr> args;   ///< kArrayRef subscripts / kIntrinsic args

  static ExprPtr int_lit(long long v);
  static ExprPtr real_lit(double v);
  static ExprPtr var(std::string name);
  static ExprPtr array_ref(std::string name, std::vector<ExprPtr> subs);
  static ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr intrinsic(std::string name, std::vector<ExprPtr> args);

  ExprPtr clone() const;

  bool is_int(long long v) const {
    return kind == ExprKind::kIntLit && int_val == v;
  }
};

/// Environment for evaluating integer expressions (loop bounds, sizes).
using Env = std::unordered_map<std::string, long long>;

/// Evaluates an integer expression; asserts on unbound names or non-integer
/// operations.
long long eval_int(const Expr& e, const Env& env);

/// Constant folding; returns a simplified clone.
ExprPtr fold(const Expr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kAssign,
  kDo,
  kIf,
  kCall,
  kBarrier,
  kValidate,  ///< inserted by the transformation phase
};

/// AST-level access descriptor carried by a Validate statement; mirrors the
/// runtime AccessDescriptor but with symbolic section bounds.
struct SectionDimAst {
  ExprPtr lower;
  ExprPtr upper;
  long long stride = 1;
};

struct ValidateDescAst {
  bool indirect = false;
  std::string data_array;            ///< shared data being accessed
  std::string section_array;         ///< indirection array (indirect) or
                                     ///< data array itself (direct)
  std::vector<SectionDimAst> section;
  std::string access;                ///< "READ", "WRITE", "READ&WRITE",
                                     ///< "WRITE_ALL", "READ&WRITE_ALL"
  int schedule = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  // kAssign
  ExprPtr lhs;  ///< kVar or kArrayRef
  ExprPtr rhs;
  // kDo
  std::string do_var;
  ExprPtr do_lo, do_hi, do_step;  ///< do_step null means 1
  std::vector<StmtPtr> body;
  // kIf
  ExprPtr cond;
  std::vector<StmtPtr> else_body;
  // kCall
  std::string callee;
  std::vector<ExprPtr> call_args;
  // kValidate
  std::vector<ValidateDescAst> descs;

  static StmtPtr assign(ExprPtr lhs, ExprPtr rhs);
  static StmtPtr do_loop(std::string var, ExprPtr lo, ExprPtr hi, ExprPtr step,
                         std::vector<StmtPtr> body);
  static StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                         std::vector<StmtPtr> else_body);
  static StmtPtr call(std::string callee, std::vector<ExprPtr> args);
  static StmtPtr barrier();
  static StmtPtr validate(std::vector<ValidateDescAst> descs);
};

// ---------------------------------------------------------------------------
// Declarations and units
// ---------------------------------------------------------------------------

enum class ElemType : std::uint8_t { kInteger, kReal };

struct ArrayDecl {
  std::string name;
  ElemType elem = ElemType::kReal;
  bool shared = false;
  std::vector<ExprPtr> dims;  ///< empty for scalars
  bool is_scalar() const { return dims.empty(); }
};

enum class UnitKind : std::uint8_t { kProgram, kSubroutine };

struct Unit {
  UnitKind kind = UnitKind::kProgram;
  std::string name;
  std::vector<ArrayDecl> decls;
  std::vector<StmtPtr> body;

  const ArrayDecl* find_decl(const std::string& name) const;
};

struct SourceFile {
  std::vector<Unit> units;

  const Unit* find_unit(const std::string& name) const;
};

}  // namespace sdsm::compiler
