// The source-to-source transformation phase (Figure 1 -> Figure 2).
//
// For every program unit:
//   1. Analyze each top-level loop nest with regular section analysis.
//   2. Build a Validate statement from the access summary:
//        - indirect READ accesses become INDIRECT descriptors (the section
//          names the indirection array),
//        - direct accesses on shared arrays become DIRECT descriptors,
//          upgraded to WRITE_ALL / READ&WRITE_ALL when the loop provably
//          writes the whole section;
//   3. Optionally privatize indirect reductions: forces(n1) = forces(n1) +
//      ... becomes local_forces(n1) = local_forces(n1) + ..., with
//      local_forces declared private — the accumulate-then-pipelined-update
//      pattern the paper applies to moldyn and nbf.  (The pipelined update
//      phase itself is a separate loop the program already contains or the
//      runtime application adds; the transform records that the reduction
//      was privatized.)
//   4. Insert the Validate at the unit entry fetch point (no
//      interprocedural analysis, exactly as in the paper).
#pragma once

#include <string>
#include <vector>

#include "src/compiler/ast.hpp"
#include "src/compiler/section_analysis.hpp"

namespace sdsm::compiler {

struct TransformOptions {
  bool privatize_reductions = true;
  /// Also emit a DIRECT READ descriptor for each indirection array so that
  /// Read_indices scans prefetched pages instead of demand-faulting them.
  /// Off by default: the paper's Figure 2 emits only the INDIRECT
  /// descriptor (the list pages arrive one at a time during the scan).
  bool fetch_indirection_arrays = false;
  int first_schedule = 1;
};

struct PrivatizedReduction {
  std::string unit;
  std::string shared_array;   ///< e.g. FORCES
  std::string private_array;  ///< e.g. LOCAL_FORCES
};

struct TransformResult {
  SourceFile transformed;
  std::vector<PrivatizedReduction> reductions;
  int validates_inserted = 0;
  int descriptors_emitted = 0;
};

TransformResult transform(const SourceFile& input, TransformOptions opts = {});

}  // namespace sdsm::compiler
