// Symbol table for one program unit: array/scalar declarations with their
// SHARED attribute, used by the access analysis to decide which references
// concern the DSM at all.
#pragma once

#include <string>
#include <unordered_map>

#include "src/compiler/ast.hpp"

namespace sdsm::compiler {

class SymbolTable {
 public:
  explicit SymbolTable(const Unit& unit);

  /// Declaration of `name`, or nullptr for undeclared identifiers (implicit
  /// scalars, following Fortran tradition).
  const ArrayDecl* find(const std::string& name) const;

  bool is_shared_array(const std::string& name) const;
  bool is_integer_array(const std::string& name) const;

 private:
  std::unordered_map<std::string, const ArrayDecl*> by_name_;
};

}  // namespace sdsm::compiler
