#include "src/compiler/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace sdsm::compiler {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEof: return "<eof>";
    case Tok::kNewline: return "<newline>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kRealLit: return "real literal";
    case Tok::kProgram: return "PROGRAM";
    case Tok::kSubroutine: return "SUBROUTINE";
    case Tok::kEnd: return "END";
    case Tok::kDo: return "DO";
    case Tok::kEndDo: return "ENDDO";
    case Tok::kIf: return "IF";
    case Tok::kThen: return "THEN";
    case Tok::kElse: return "ELSE";
    case Tok::kEndIf: return "ENDIF";
    case Tok::kCall: return "CALL";
    case Tok::kShared: return "SHARED";
    case Tok::kPrivate: return "PRIVATE";
    case Tok::kInteger: return "INTEGER";
    case Tok::kReal: return "REAL";
    case Tok::kBarrier: return "BARRIER";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kComma: return ",";
    case Tok::kColon: return ":";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kEq: return ".EQ.";
    case Tok::kNe: return ".NE.";
    case Tok::kLt: return ".LT.";
    case Tok::kLe: return ".LE.";
    case Tok::kGt: return ".GT.";
    case Tok::kGe: return ".GE.";
  }
  return "<bad token>";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const auto* map = new std::unordered_map<std::string, Tok>{
      {"PROGRAM", Tok::kProgram},   {"SUBROUTINE", Tok::kSubroutine},
      {"END", Tok::kEnd},           {"DO", Tok::kDo},
      {"ENDDO", Tok::kEndDo},       {"IF", Tok::kIf},
      {"THEN", Tok::kThen},         {"ELSE", Tok::kElse},
      {"ENDIF", Tok::kEndIf},       {"CALL", Tok::kCall},
      {"SHARED", Tok::kShared},     {"PRIVATE", Tok::kPrivate},
      {"INTEGER", Tok::kInteger},   {"REAL", Tok::kReal},
      {"BARRIER", Tok::kBarrier},
  };
  return *map;
}

const std::unordered_map<std::string, Tok>& dot_operators() {
  static const auto* map = new std::unordered_map<std::string, Tok>{
      {"EQ", Tok::kEq}, {"NE", Tok::kNe}, {"LT", Tok::kLt},
      {"LE", Tok::kLe}, {"GT", Tok::kGt}, {"GE", Tok::kGe},
  };
  return *map;
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();
  bool line_start = true;

  auto push = [&](Tok kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    // 'C' or '!' comments.
    if (c == '!' || (line_start && (c == 'C' || c == 'c') &&
                     (i + 1 >= n || source[i + 1] == ' ' || source[i + 1] == '\n'))) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      if (!out.empty() && out.back().kind != Tok::kNewline) push(Tok::kNewline);
      ++i;
      ++line;
      col = 1;
      line_start = true;
      continue;
    }
    line_start = false;
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++col;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      // A '.' starts a fraction only if not a dot-operator like 1.EQ.x.
      if (j < n && source[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      }
      const std::string text = source.substr(i, j - i);
      Token t;
      t.kind = is_real ? Tok::kRealLit : Tok::kIntLit;
      t.text = text;
      t.line = line;
      t.col = col;
      if (is_real) {
        t.real_val = std::strtod(text.c_str(), nullptr);
      } else {
        t.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      const std::string word = upper(source.substr(i, j - i));
      const auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, word);
      } else {
        push(Tok::kIdent, word);
      }
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (c == '.') {
      // .EQ. and friends.
      std::size_t j = i + 1;
      while (j < n && std::isalpha(static_cast<unsigned char>(source[j]))) ++j;
      if (j < n && source[j] == '.') {
        const std::string op = upper(source.substr(i + 1, j - i - 1));
        const auto it = dot_operators().find(op);
        if (it == dot_operators().end()) {
          throw CompileError{"unknown operator ." + op + ".", line, col};
        }
        push(it->second, "." + op + ".");
        col += static_cast<int>(j + 1 - i);
        i = j + 1;
        continue;
      }
      throw CompileError{"stray '.'", line, col};
    }
    Tok kind;
    switch (c) {
      case '(': kind = Tok::kLParen; break;
      case ')': kind = Tok::kRParen; break;
      case ',': kind = Tok::kComma; break;
      case ':': kind = Tok::kColon; break;
      case '=': kind = Tok::kAssign; break;
      case '+': kind = Tok::kPlus; break;
      case '-': kind = Tok::kMinus; break;
      case '*': kind = Tok::kStar; break;
      case '/': kind = Tok::kSlash; break;
      default:
        throw CompileError{std::string("unexpected character '") + c + "'",
                           line, col};
    }
    push(kind, std::string(1, c));
    ++i;
    ++col;
  }
  if (!out.empty() && out.back().kind != Tok::kNewline) push(Tok::kNewline);
  push(Tok::kEof);
  return out;
}

}  // namespace sdsm::compiler
