// Lowering: turns an AST-level Validate statement into the runtime
// AccessDescriptor list that sdsm::core::DsmNode::validate() consumes.
//
// Sections carry symbolic bounds (loop limits such as NUM_INTERACTIONS);
// lowering evaluates them against a scalar environment and converts from
// Fortran's 1-based inclusive index space to the runtime's 0-based one.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/compiler/ast.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::compiler {

struct ArrayBinding {
  GlobalAddr base = 0;
  std::size_t elem_size = 0;
  rsd::ArrayLayout layout;
};

using Bindings = std::unordered_map<std::string, ArrayBinding>;

/// Converts the symbolic section of one descriptor into a concrete RSD
/// (0-based).
rsd::RegularSection lower_section(const std::vector<SectionDimAst>& section,
                                  const Env& scalars);

/// Lowers a kValidate statement.  Every array named by the statement must
/// be bound; every scalar appearing in section bounds must be in `scalars`.
std::vector<core::AccessDescriptor> lower_validate(const Stmt& validate,
                                                   const Bindings& arrays,
                                                   const Env& scalars);

core::Access parse_access(const std::string& s);

}  // namespace sdsm::compiler
