#include "src/compiler/ast.hpp"

namespace sdsm::compiler {

ExprPtr Expr::int_lit(long long v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_val = v;
  return e;
}

ExprPtr Expr::real_lit(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRealLit;
  e->real_val = v;
  return e;
}

ExprPtr Expr::var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::array_ref(std::string name, std::vector<ExprPtr> subs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArrayRef;
  e->name = std::move(name);
  e->args = std::move(subs);
  return e;
}

ExprPtr Expr::bin(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBin;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::intrinsic(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntrinsic;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->int_val = int_val;
  e->real_val = real_val;
  e->name = name;
  e->op = op;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

long long eval_int(const Expr& e, const Env& env) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return e.int_val;
    case ExprKind::kVar: {
      const auto it = env.find(e.name);
      if (it == env.end()) {
        SDSM_UNREACHABLE(("unbound symbol in eval_int: " + e.name).c_str());
      }
      return it->second;
    }
    case ExprKind::kBin: {
      const long long l = eval_int(*e.lhs, env);
      const long long r = eval_int(*e.rhs, env);
      switch (e.op) {
        case BinOp::kAdd: return l + r;
        case BinOp::kSub: return l - r;
        case BinOp::kMul: return l * r;
        case BinOp::kDiv:
          SDSM_REQUIRE(r != 0);
          return l / r;
        case BinOp::kEq: return l == r;
        case BinOp::kNe: return l != r;
        case BinOp::kLt: return l < r;
        case BinOp::kLe: return l <= r;
        case BinOp::kGt: return l > r;
        case BinOp::kGe: return l >= r;
      }
      SDSM_UNREACHABLE("bad binop");
    }
    case ExprKind::kIntrinsic: {
      if (e.name == "MOD") {
        SDSM_REQUIRE(e.args.size() == 2);
        const long long a = eval_int(*e.args[0], env);
        const long long b = eval_int(*e.args[1], env);
        SDSM_REQUIRE(b != 0);
        return a % b;
      }
      SDSM_UNREACHABLE(("unknown intrinsic: " + e.name).c_str());
    }
    case ExprKind::kRealLit:
    case ExprKind::kArrayRef:
      SDSM_UNREACHABLE("non-integer expression in eval_int");
  }
  SDSM_UNREACHABLE("bad expr kind");
}

ExprPtr fold(const Expr& e) {
  if (e.kind == ExprKind::kBin) {
    ExprPtr l = fold(*e.lhs);
    ExprPtr r = fold(*e.rhs);
    if (l->kind == ExprKind::kIntLit && r->kind == ExprKind::kIntLit) {
      const Env empty;
      Expr tmp;
      tmp.kind = ExprKind::kBin;
      tmp.op = e.op;
      tmp.lhs = std::move(l);
      tmp.rhs = std::move(r);
      return Expr::int_lit(eval_int(tmp, empty));
    }
    // Identity simplifications keep the generated Validate sections tidy.
    if (e.op == BinOp::kAdd && l->is_int(0)) return r;
    if (e.op == BinOp::kAdd && r->is_int(0)) return l;
    if (e.op == BinOp::kSub && r->is_int(0)) return l;
    if (e.op == BinOp::kMul && l->is_int(1)) return r;
    if (e.op == BinOp::kMul && r->is_int(1)) return l;
    if (e.op == BinOp::kMul && (l->is_int(0) || r->is_int(0))) {
      return Expr::int_lit(0);
    }
    return Expr::bin(e.op, std::move(l), std::move(r));
  }
  return e.clone();
}

StmtPtr Stmt::assign(ExprPtr lhs, ExprPtr rhs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kAssign;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr Stmt::do_loop(std::string var, ExprPtr lo, ExprPtr hi, ExprPtr step,
                      std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kDo;
  s->do_var = std::move(var);
  s->do_lo = std::move(lo);
  s->do_hi = std::move(hi);
  s->do_step = std::move(step);
  s->body = std::move(body);
  return s;
}

StmtPtr Stmt::if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                      std::vector<StmtPtr> else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kIf;
  s->cond = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr Stmt::call(std::string callee, std::vector<ExprPtr> args) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kCall;
  s->callee = std::move(callee);
  s->call_args = std::move(args);
  return s;
}

StmtPtr Stmt::barrier() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kBarrier;
  return s;
}

StmtPtr Stmt::validate(std::vector<ValidateDescAst> descs) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kValidate;
  s->descs = std::move(descs);
  return s;
}

const ArrayDecl* Unit::find_decl(const std::string& name) const {
  for (const auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const Unit* SourceFile::find_unit(const std::string& name) const {
  for (const auto& u : units) {
    if (u.name == name) return &u;
  }
  return nullptr;
}

}  // namespace sdsm::compiler
