#include "src/compiler/lowering.hpp"

namespace sdsm::compiler {

core::Access parse_access(const std::string& s) {
  if (s == "READ") return core::Access::kRead;
  if (s == "WRITE") return core::Access::kWrite;
  if (s == "READ&WRITE") return core::Access::kReadWrite;
  if (s == "WRITE_ALL") return core::Access::kWriteAll;
  if (s == "READ&WRITE_ALL") return core::Access::kReadWriteAll;
  SDSM_UNREACHABLE(("bad access string: " + s).c_str());
}

rsd::RegularSection lower_section(const std::vector<SectionDimAst>& section,
                                  const Env& scalars) {
  std::vector<rsd::Dim> dims;
  dims.reserve(section.size());
  for (const auto& d : section) {
    rsd::Dim dim;
    dim.lower = eval_int(*d.lower, scalars) - 1;  // Fortran is 1-based
    dim.upper = eval_int(*d.upper, scalars) - 1;
    dim.stride = d.stride;
    dims.push_back(dim);
  }
  return rsd::RegularSection(std::move(dims));
}

std::vector<core::AccessDescriptor> lower_validate(const Stmt& validate,
                                                   const Bindings& arrays,
                                                   const Env& scalars) {
  SDSM_REQUIRE(validate.kind == StmtKind::kValidate);
  std::vector<core::AccessDescriptor> out;
  out.reserve(validate.descs.size());
  for (const auto& d : validate.descs) {
    const auto data_it = arrays.find(d.data_array);
    SDSM_REQUIRE(data_it != arrays.end());
    const ArrayBinding& data = data_it->second;
    const rsd::RegularSection section = lower_section(d.section, scalars);
    const core::Access access = parse_access(d.access);
    if (d.indirect) {
      const auto ind_it = arrays.find(d.section_array);
      SDSM_REQUIRE(ind_it != arrays.end());
      const ArrayBinding& ind = ind_it->second;
      SDSM_REQUIRE(ind.elem_size == sizeof(std::int32_t));
      out.push_back(core::indirect_desc(data.base, data.elem_size, ind.base,
                                        ind.layout, section, access,
                                        static_cast<std::uint32_t>(d.schedule)));
    } else {
      out.push_back(core::direct_desc(data.base, data.elem_size, data.layout,
                                      section, access,
                                      static_cast<std::uint32_t>(d.schedule)));
    }
  }
  return out;
}

}  // namespace sdsm::compiler
