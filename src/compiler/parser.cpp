#include "src/compiler/parser.hpp"

#include <unordered_set>

namespace sdsm::compiler {

namespace {

const std::unordered_set<std::string>& intrinsics() {
  static const auto* set =
      new std::unordered_set<std::string>{"MOD", "MIN", "MAX", "ABS"};
  return *set;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  SourceFile parse_file() {
    SourceFile file;
    skip_newlines();
    while (!at(Tok::kEof)) {
      file.units.push_back(parse_unit());
      skip_newlines();
    }
    return file;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }

  const Token& advance() { return toks_[pos_++]; }

  const Token& expect(Tok k) {
    if (!at(k)) {
      throw CompileError{std::string("expected ") + tok_name(k) + ", found " +
                             tok_name(cur().kind),
                         cur().line, cur().col};
    }
    return advance();
  }

  void expect_newline() {
    expect(Tok::kNewline);
    skip_newlines();
  }

  void skip_newlines() {
    while (at(Tok::kNewline)) advance();
  }

  Unit parse_unit() {
    Unit unit;
    if (at(Tok::kProgram)) {
      advance();
      unit.kind = UnitKind::kProgram;
    } else if (at(Tok::kSubroutine)) {
      advance();
      unit.kind = UnitKind::kSubroutine;
    } else {
      throw CompileError{"expected PROGRAM or SUBROUTINE", cur().line,
                         cur().col};
    }
    unit.name = expect(Tok::kIdent).text;
    if (at(Tok::kLParen)) {  // empty parameter list tolerated
      advance();
      expect(Tok::kRParen);
    }
    expect_newline();

    while (at(Tok::kShared) || at(Tok::kPrivate) || at(Tok::kInteger) ||
           at(Tok::kReal)) {
      parse_decl_line(unit);
    }
    while (!at(Tok::kEnd)) {
      unit.body.push_back(parse_stmt());
    }
    expect(Tok::kEnd);
    if (!at(Tok::kEof)) expect_newline();
    return unit;
  }

  void parse_decl_line(Unit& unit) {
    bool shared = false;
    if (at(Tok::kShared)) {
      shared = true;
      advance();
    } else if (at(Tok::kPrivate)) {
      advance();
    }
    ElemType elem = ElemType::kReal;
    if (at(Tok::kInteger)) {
      elem = ElemType::kInteger;
      advance();
    } else if (at(Tok::kReal)) {
      advance();
    }
    for (;;) {
      ArrayDecl d;
      d.name = expect(Tok::kIdent).text;
      d.elem = elem;
      d.shared = shared;
      if (at(Tok::kLParen)) {
        advance();
        d.dims.push_back(parse_expr());
        while (at(Tok::kComma)) {
          advance();
          d.dims.push_back(parse_expr());
        }
        expect(Tok::kRParen);
      }
      unit.decls.push_back(std::move(d));
      if (!at(Tok::kComma)) break;
      advance();
    }
    expect_newline();
  }

  StmtPtr parse_stmt() {
    if (at(Tok::kDo)) return parse_do();
    if (at(Tok::kIf)) return parse_if();
    if (at(Tok::kCall)) return parse_call();
    if (at(Tok::kBarrier)) {
      advance();
      expect_newline();
      return Stmt::barrier();
    }
    // Assignment.
    ExprPtr lhs = parse_factor();
    if (lhs->kind != ExprKind::kVar && lhs->kind != ExprKind::kArrayRef) {
      throw CompileError{"invalid assignment target", cur().line, cur().col};
    }
    expect(Tok::kAssign);
    ExprPtr rhs = parse_expr();
    expect_newline();
    return Stmt::assign(std::move(lhs), std::move(rhs));
  }

  StmtPtr parse_do() {
    expect(Tok::kDo);
    std::string var = expect(Tok::kIdent).text;
    expect(Tok::kAssign);
    ExprPtr lo = parse_expr();
    expect(Tok::kComma);
    ExprPtr hi = parse_expr();
    ExprPtr step;
    if (at(Tok::kComma)) {
      advance();
      step = parse_expr();
    }
    expect_newline();
    std::vector<StmtPtr> body;
    while (!at(Tok::kEndDo)) {
      body.push_back(parse_stmt());
    }
    expect(Tok::kEndDo);
    expect_newline();
    return Stmt::do_loop(std::move(var), std::move(lo), std::move(hi),
                         std::move(step), std::move(body));
  }

  StmtPtr parse_if() {
    expect(Tok::kIf);
    expect(Tok::kLParen);
    ExprPtr cond = parse_expr();
    expect(Tok::kRParen);
    expect(Tok::kThen);
    expect_newline();
    std::vector<StmtPtr> then_body, else_body;
    while (!at(Tok::kEndIf) && !at(Tok::kElse)) {
      then_body.push_back(parse_stmt());
    }
    if (at(Tok::kElse)) {
      advance();
      expect_newline();
      while (!at(Tok::kEndIf)) {
        else_body.push_back(parse_stmt());
      }
    }
    expect(Tok::kEndIf);
    expect_newline();
    return Stmt::if_stmt(std::move(cond), std::move(then_body),
                         std::move(else_body));
  }

  StmtPtr parse_call() {
    expect(Tok::kCall);
    std::string callee = expect(Tok::kIdent).text;
    std::vector<ExprPtr> args;
    if (at(Tok::kLParen)) {
      advance();
      if (!at(Tok::kRParen)) {
        args.push_back(parse_expr());
        while (at(Tok::kComma)) {
          advance();
          args.push_back(parse_expr());
        }
      }
      expect(Tok::kRParen);
    }
    expect_newline();
    return Stmt::call(std::move(callee), std::move(args));
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_additive();
    BinOp op;
    if (at(Tok::kEq)) op = BinOp::kEq;
    else if (at(Tok::kNe)) op = BinOp::kNe;
    else if (at(Tok::kLt)) op = BinOp::kLt;
    else if (at(Tok::kLe)) op = BinOp::kLe;
    else if (at(Tok::kGt)) op = BinOp::kGt;
    else if (at(Tok::kGe)) op = BinOp::kGe;
    else return lhs;
    advance();
    ExprPtr rhs = parse_additive();
    return Expr::bin(op, std::move(lhs), std::move(rhs));
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_term();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const BinOp op = at(Tok::kPlus) ? BinOp::kAdd : BinOp::kSub;
      advance();
      e = Expr::bin(op, std::move(e), parse_term());
    }
    return e;
  }

  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (at(Tok::kStar) || at(Tok::kSlash)) {
      const BinOp op = at(Tok::kStar) ? BinOp::kMul : BinOp::kDiv;
      advance();
      e = Expr::bin(op, std::move(e), parse_factor());
    }
    return e;
  }

  ExprPtr parse_factor() {
    if (at(Tok::kIntLit)) {
      const long long v = advance().int_val;
      return Expr::int_lit(v);
    }
    if (at(Tok::kRealLit)) {
      const double v = advance().real_val;
      return Expr::real_lit(v);
    }
    if (at(Tok::kMinus)) {
      advance();
      return Expr::bin(BinOp::kSub, Expr::int_lit(0), parse_factor());
    }
    if (at(Tok::kLParen)) {
      advance();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen);
      return e;
    }
    if (at(Tok::kIdent)) {
      std::string name = advance().text;
      if (!at(Tok::kLParen)) return Expr::var(std::move(name));
      advance();
      std::vector<ExprPtr> args;
      if (!at(Tok::kRParen)) {
        args.push_back(parse_expr());
        while (at(Tok::kComma)) {
          advance();
          args.push_back(parse_expr());
        }
      }
      expect(Tok::kRParen);
      if (intrinsics().count(name) != 0) {
        return Expr::intrinsic(std::move(name), std::move(args));
      }
      return Expr::array_ref(std::move(name), std::move(args));
    }
    throw CompileError{std::string("unexpected token ") + tok_name(cur().kind),
                       cur().line, cur().col};
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

SourceFile parse(const std::string& source) {
  Parser p(lex(source));
  return p.parse_file();
}

}  // namespace sdsm::compiler
