#include "src/compiler/fetch_points.hpp"

namespace sdsm::compiler {

std::vector<FetchPoint> fetch_points(const Unit& unit) {
  std::vector<FetchPoint> out;
  out.push_back(FetchPoint{FetchPointKind::kUnitEntry, -1});
  for (std::size_t i = 0; i < unit.body.size(); ++i) {
    const Stmt& s = *unit.body[i];
    switch (s.kind) {
      case StmtKind::kDo:
        out.push_back(FetchPoint{FetchPointKind::kLoopBoundary,
                                 static_cast<int>(i)});
        break;
      case StmtKind::kIf:
        out.push_back(FetchPoint{FetchPointKind::kConditional,
                                 static_cast<int>(i)});
        break;
      case StmtKind::kCall:
        out.push_back(FetchPoint{FetchPointKind::kCallSite,
                                 static_cast<int>(i)});
        break;
      case StmtKind::kBarrier:
        out.push_back(FetchPoint{FetchPointKind::kSyncPoint,
                                 static_cast<int>(i)});
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace sdsm::compiler
