#include "src/compiler/section_analysis.hpp"

#include <map>
#include <optional>

namespace sdsm::compiler {

std::string AccessInfo::access_string() const {
  if (read && written) return covers_section ? "READ&WRITE_ALL" : "READ&WRITE";
  if (written) return covers_section ? "WRITE_ALL" : "WRITE";
  return "READ";
}

const AccessInfo* LoopSummary::find(const std::string& array) const {
  for (const auto& a : accesses) {
    if (a.array == array) return &a;
  }
  return nullptr;
}

namespace {

struct LoopVar {
  std::string name;
  const Expr* lo;
  const Expr* hi;
  long long step;  ///< only literal steps are analyzed (1 when omitted)
};

/// Affine form c * var + sym over at most one loop variable.
struct Affine {
  bool valid = false;
  const LoopVar* var = nullptr;  ///< nullptr: loop-invariant
  long long coeff = 0;
  ExprPtr sym;  ///< symbolic loop-invariant part
};

/// Reaching scalar definitions in straight-line loop-body order.
using Defs = std::map<std::string, const Expr*>;

bool is_loop_invariant(const Expr& e, const std::vector<LoopVar>& loops,
                       const Defs& defs, const SymbolTable& syms) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kRealLit:
      return true;
    case ExprKind::kVar: {
      for (const auto& lv : loops) {
        if (lv.name == e.name) return false;
      }
      // A scalar redefined inside the loop body is not invariant.
      if (defs.count(e.name) != 0) return false;
      const ArrayDecl* d = syms.find(e.name);
      return d == nullptr || d->is_scalar();
    }
    case ExprKind::kBin:
      return is_loop_invariant(*e.lhs, loops, defs, syms) &&
             is_loop_invariant(*e.rhs, loops, defs, syms);
    case ExprKind::kIntrinsic: {
      for (const auto& a : e.args) {
        if (!is_loop_invariant(*a, loops, defs, syms)) return false;
      }
      return true;
    }
    case ExprKind::kArrayRef:
      return false;  // conservatively variant
  }
  return false;
}

Affine affine_of(const Expr& e, const std::vector<LoopVar>& loops,
                 const Defs& defs, const SymbolTable& syms) {
  Affine out;
  switch (e.kind) {
    case ExprKind::kIntLit:
      out.valid = true;
      out.sym = Expr::int_lit(e.int_val);
      return out;
    case ExprKind::kVar: {
      for (const auto& lv : loops) {
        if (lv.name == e.name) {
          out.valid = true;
          out.var = &lv;
          out.coeff = 1;
          out.sym = Expr::int_lit(0);
          return out;
        }
      }
      if (is_loop_invariant(e, loops, defs, syms)) {
        out.valid = true;
        out.sym = e.clone();
        return out;
      }
      return out;  // e.g. a scalar holding an indirection value
    }
    case ExprKind::kBin: {
      const Affine l = affine_of(*e.lhs, loops, defs, syms);
      const Affine r = affine_of(*e.rhs, loops, defs, syms);
      if (!l.valid || !r.valid) return out;
      switch (e.op) {
        case BinOp::kAdd:
        case BinOp::kSub: {
          if (l.var != nullptr && r.var != nullptr && l.var != r.var) {
            return out;  // two loop variables: not a 1-D section
          }
          out.var = l.var != nullptr ? l.var : r.var;
          const long long sign = e.op == BinOp::kAdd ? 1 : -1;
          out.coeff = l.coeff + sign * r.coeff;
          out.sym = fold(*Expr::bin(e.op, l.sym->clone(), r.sym->clone()));
          out.valid = true;
          if (out.coeff == 0) out.var = nullptr;
          return out;
        }
        case BinOp::kMul: {
          // One side must be a literal constant.
          const Affine* cst = nullptr;
          const Affine* other = nullptr;
          if (l.var == nullptr && l.sym->kind == ExprKind::kIntLit) {
            cst = &l;
            other = &r;
          } else if (r.var == nullptr && r.sym->kind == ExprKind::kIntLit) {
            cst = &r;
            other = &l;
          } else {
            return out;
          }
          const long long k = cst->sym->int_val;
          out.var = other->var;
          out.coeff = other->coeff * k;
          out.sym = fold(*Expr::bin(BinOp::kMul, Expr::int_lit(k),
                                    other->sym->clone()));
          out.valid = true;
          if (out.coeff == 0) out.var = nullptr;
          return out;
        }
        default:
          return out;
      }
    }
    default:
      return out;
  }
}

/// Builds the 1-based section dim a subscript's affine form sweeps over the
/// loop range.
std::optional<SectionDimAst> dim_of_affine(const Affine& a) {
  if (!a.valid) return std::nullopt;
  SectionDimAst dim;
  if (a.var == nullptr) {
    dim.lower = a.sym->clone();
    dim.upper = a.sym->clone();
    dim.stride = 1;
    return dim;
  }
  if (a.coeff == 0) return std::nullopt;
  const long long c = a.coeff;
  const long long step = a.var->step;
  ExprPtr lo_val = fold(*Expr::bin(
      BinOp::kAdd, Expr::bin(BinOp::kMul, Expr::int_lit(c), a.var->lo->clone()),
      a.sym->clone()));
  ExprPtr hi_val = fold(*Expr::bin(
      BinOp::kAdd, Expr::bin(BinOp::kMul, Expr::int_lit(c), a.var->hi->clone()),
      a.sym->clone()));
  if (c > 0) {
    dim.lower = std::move(lo_val);
    dim.upper = std::move(hi_val);
  } else {
    dim.lower = std::move(hi_val);
    dim.upper = std::move(lo_val);
  }
  dim.stride = c > 0 ? c * step : -c * step;
  if (dim.stride <= 0) return std::nullopt;
  return dim;
}

bool same_expr(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kIntLit: return a.int_val == b.int_val;
    case ExprKind::kRealLit: return a.real_val == b.real_val;
    case ExprKind::kVar: return a.name == b.name;
    case ExprKind::kBin:
      return a.op == b.op && same_expr(*a.lhs, *b.lhs) &&
             same_expr(*a.rhs, *b.rhs);
    case ExprKind::kArrayRef:
    case ExprKind::kIntrinsic: {
      if (a.name != b.name || a.args.size() != b.args.size()) return false;
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (!same_expr(*a.args[i], *b.args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

class LoopAnalyzer {
 public:
  explicit LoopAnalyzer(const SymbolTable& syms) : syms_(syms) {}

  LoopSummary run(const Stmt& do_stmt) {
    SDSM_REQUIRE(do_stmt.kind == StmtKind::kDo);
    analyze_do(do_stmt);
    LoopSummary s;
    s.accesses = std::move(accesses_);
    return s;
  }

 private:
  void analyze_do(const Stmt& s) {
    long long step = 1;
    if (s.do_step) {
      if (s.do_step->kind == ExprKind::kIntLit) {
        step = s.do_step->int_val;
      } else {
        step = 0;  // symbolic step defeats the analysis below
      }
    }
    loops_.push_back(LoopVar{s.do_var, s.do_lo.get(), s.do_hi.get(), step});
    collect_defs(s.body);
    for (const auto& st : s.body) analyze_stmt(*st);
    loops_.pop_back();
  }

  /// Straight-line pass recording scalar definitions (n1 = il(1, i)).
  void collect_defs(const std::vector<StmtPtr>& body) {
    for (const auto& st : body) {
      if (st->kind != StmtKind::kAssign) continue;
      if (st->lhs->kind == ExprKind::kVar) {
        defs_[st->lhs->name] = st->rhs.get();
      }
    }
  }

  void analyze_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kAssign:
        if (s.lhs->kind == ExprKind::kArrayRef) {
          record_ref(*s.lhs, /*is_write=*/true);
          for (const auto& sub : s.lhs->args) analyze_expr(*sub);
        }
        analyze_expr(*s.rhs);
        break;
      case StmtKind::kDo:
        analyze_do(s);
        break;
      case StmtKind::kIf:
        analyze_expr(*s.cond);
        for (const auto& st : s.body) analyze_stmt(*st);
        for (const auto& st : s.else_body) analyze_stmt(*st);
        break;
      case StmtKind::kCall:
        for (const auto& a : s.call_args) analyze_expr(*a);
        break;
      case StmtKind::kBarrier:
      case StmtKind::kValidate:
        break;
    }
  }

  void analyze_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kArrayRef:
        record_ref(e, /*is_write=*/false);
        for (const auto& sub : e.args) analyze_expr(*sub);
        break;
      case ExprKind::kBin:
        analyze_expr(*e.lhs);
        analyze_expr(*e.rhs);
        break;
      case ExprKind::kIntrinsic:
        for (const auto& a : e.args) analyze_expr(*a);
        break;
      default:
        break;
    }
  }

  void record_ref(const Expr& ref, bool is_write) {
    if (!syms_.is_shared_array(ref.name)) return;

    // Try the direct (fully affine) interpretation first.
    std::vector<SectionDimAst> dims;
    bool direct_ok = true;
    bool covers = true;
    for (const auto& sub : ref.args) {
      const Affine a = affine_of(*sub, loops_, defs_, syms_);
      auto dim = dim_of_affine(a);
      if (!dim) {
        direct_ok = false;
        break;
      }
      // Coverage: the subscript must be exactly the innermost sweep (i with
      // coefficient 1 and stride 1) or a degenerate constant to claim the
      // loop writes every element of the section.
      if (a.var != nullptr && (a.coeff != 1 || a.var->step != 1)) {
        covers = false;
      }
      dims.push_back(std::move(*dim));
    }
    if (direct_ok) {
      merge_access(AccessInfo{ref.name, false, {}, std::move(dims), !is_write,
                              is_write, is_write && covers});
      return;
    }

    // Indirect interpretation: a rank-1 reference whose subscript is a
    // scalar defined from an INTEGER shared array with affine subscripts.
    if (ref.args.size() == 1 && ref.args[0]->kind == ExprKind::kVar) {
      const auto it = defs_.find(ref.args[0]->name);
      if (it != defs_.end() && it->second->kind == ExprKind::kArrayRef &&
          syms_.is_integer_array(it->second->name)) {
        const Expr& load = *it->second;
        std::vector<SectionDimAst> ind_dims;
        bool ok = true;
        for (const auto& sub : load.args) {
          const Affine a = affine_of(*sub, loops_, defs_, syms_);
          auto dim = dim_of_affine(a);
          if (!dim) {
            ok = false;
            break;
          }
          ind_dims.push_back(std::move(*dim));
        }
        if (ok) {
          merge_access(AccessInfo{ref.name, true, load.name,
                                  std::move(ind_dims), !is_write, is_write,
                                  false});
          return;
        }
      }
    }

    // Analysis defeated: record an unqualified access (empty section).
    merge_access(AccessInfo{ref.name, false, {}, {}, !is_write, is_write,
                            false});
  }

  void merge_access(AccessInfo info) {
    for (auto& a : accesses_) {
      if (a.array != info.array || a.indirect != info.indirect ||
          a.ind_array != info.ind_array) {
        continue;
      }
      if (try_merge_sections(a, info)) {
        a.read |= info.read;
        a.written |= info.written;
        a.covers_section &= !info.written || info.covers_section;
        if (info.written && !a.covers_section && !info.covers_section) {
          a.covers_section = false;
        }
        return;
      }
    }
    accesses_.push_back(std::move(info));
  }

  /// Merges info's section into a's when they differ in at most one
  /// dimension whose bounds are integer literals (the interaction_list(1,i)
  /// vs interaction_list(2,i) case -> [1:2, ...]).
  bool try_merge_sections(AccessInfo& a, const AccessInfo& info) {
    if (a.section.size() != info.section.size()) return false;
    int diff_dim = -1;
    for (std::size_t d = 0; d < a.section.size(); ++d) {
      const bool same = same_expr(*a.section[d].lower, *info.section[d].lower) &&
                        same_expr(*a.section[d].upper, *info.section[d].upper) &&
                        a.section[d].stride == info.section[d].stride;
      if (same) continue;
      if (diff_dim >= 0) return false;  // more than one differing dim
      diff_dim = static_cast<int>(d);
    }
    if (diff_dim < 0) return true;  // identical sections
    SectionDimAst& da = a.section[static_cast<std::size_t>(diff_dim)];
    const SectionDimAst& di = info.section[static_cast<std::size_t>(diff_dim)];
    if (da.lower->kind != ExprKind::kIntLit ||
        da.upper->kind != ExprKind::kIntLit ||
        di.lower->kind != ExprKind::kIntLit ||
        di.upper->kind != ExprKind::kIntLit) {
      return false;
    }
    da.lower = Expr::int_lit(std::min(da.lower->int_val, di.lower->int_val));
    da.upper = Expr::int_lit(std::max(da.upper->int_val, di.upper->int_val));
    da.stride = 1;
    return true;
  }

  const SymbolTable& syms_;
  std::vector<LoopVar> loops_;
  Defs defs_;
  std::vector<AccessInfo> accesses_;
};

}  // namespace

LoopSummary analyze_loop(const Stmt& do_stmt, const SymbolTable& syms) {
  LoopAnalyzer analyzer(syms);
  return analyzer.run(do_stmt);
}

}  // namespace sdsm::compiler
