// Recursive-descent parser for the mini-Fortran subset.
//
// Grammar (newline-separated statements):
//   file      := unit*
//   unit      := (PROGRAM | SUBROUTINE) IDENT nl decl* stmt* END nl
//   decl      := [SHARED|PRIVATE] [INTEGER|REAL] name-list nl
//   name      := IDENT [ '(' expr (',' expr)* ')' ]
//   stmt      := DO IDENT '=' expr ',' expr [',' expr] nl stmt* ENDDO nl
//             |  IF '(' expr ')' THEN nl stmt* [ELSE nl stmt*] ENDIF nl
//             |  CALL IDENT ['(' args ')'] nl
//             |  BARRIER nl
//             |  lvalue '=' expr nl
//   expr      := additive (relop additive)?
//   additive  := term (('+'|'-') term)*
//   term      := factor (('*'|'/') factor)*
//   factor    := INT | REAL | IDENT ['(' args ')'] | '(' expr ')' | '-' factor
//
// IDENT '(' args ')' in an expression is an array reference or an intrinsic
// call (MOD); disambiguated against the declaration table after parsing is
// not needed — intrinsics are a fixed set.
#pragma once

#include <string>

#include "src/compiler/ast.hpp"
#include "src/compiler/lexer.hpp"

namespace sdsm::compiler {

SourceFile parse(const std::string& source);

}  // namespace sdsm::compiler
