// Pretty-printer: turns the AST back into mini-Fortran source.  Parsing the
// output reproduces the AST (tested as a round-trip property), and printing
// a transformed unit reproduces the shape of Figure 2 in the paper.
#pragma once

#include <string>

#include "src/compiler/ast.hpp"

namespace sdsm::compiler {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_unit(const Unit& u);
std::string print_file(const SourceFile& f);

}  // namespace sdsm::compiler
