// Fetch-point identification (Section 3.3).
//
// F, the set of "possible fetch points", is where a Validate may legally be
// inserted.  Under lazy release consistency only synchronization points can
// invalidate data, so a perfect analysis would use exactly those; in
// practice F also includes conditional statements, loop boundaries, and —
// without interprocedural analysis — procedure entries.  The transform
// phase picks, for each analyzed loop, the closest enclosing fetch point:
// the unit entry when the loop is the unit's first shared work (the
// moldyn/nbf case in the paper), otherwise the loop boundary itself.
#pragma once

#include <vector>

#include "src/compiler/ast.hpp"

namespace sdsm::compiler {

enum class FetchPointKind : std::uint8_t {
  kUnitEntry,
  kLoopBoundary,
  kConditional,
  kCallSite,
  kSyncPoint,  ///< BARRIER statements
};

struct FetchPoint {
  FetchPointKind kind;
  /// Index into the unit's top-level body before which a Validate can be
  /// inserted; -1 for unit entry.
  int stmt_index = -1;
};

/// All fetch points of a unit, in program order (unit entry first).
std::vector<FetchPoint> fetch_points(const Unit& unit);

}  // namespace sdsm::compiler
