// Token definitions for the mini-Fortran front-end.
//
// The language subset is what the paper's analysis needs: PROGRAM /
// SUBROUTINE units, DO loops, IF/THEN/ELSE, assignments, CALL statements,
// SHARED array declarations, and arithmetic/relational expressions with
// intrinsic calls (MOD).  Fortran keywords are case-insensitive.
#pragma once

#include <cstdint>
#include <string>

namespace sdsm::compiler {

enum class Tok : std::uint8_t {
  kEof,
  kNewline,
  kIdent,
  kIntLit,
  kRealLit,
  // Keywords.
  kProgram,
  kSubroutine,
  kEnd,
  kDo,
  kEndDo,
  kIf,
  kThen,
  kElse,
  kEndIf,
  kCall,
  kShared,
  kPrivate,
  kInteger,
  kReal,
  kBarrier,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kColon,
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  // Relational operators (.EQ. etc).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;       ///< identifier name (upper-cased) or literal text
  long long int_val = 0;  ///< value for kIntLit
  double real_val = 0;    ///< value for kRealLit
  int line = 0;
  int col = 0;
};

const char* tok_name(Tok t);

}  // namespace sdsm::compiler
