#include "src/compiler/transform.hpp"

#include <algorithm>

namespace sdsm::compiler {

namespace {

ExprPtr clone_expr(const ExprPtr& e) { return e ? e->clone() : nullptr; }

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

StmtPtr clone_stmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->lhs = clone_expr(s.lhs);
  out->rhs = clone_expr(s.rhs);
  out->do_var = s.do_var;
  out->do_lo = clone_expr(s.do_lo);
  out->do_hi = clone_expr(s.do_hi);
  out->do_step = clone_expr(s.do_step);
  out->body = clone_body(s.body);
  out->cond = clone_expr(s.cond);
  out->else_body = clone_body(s.else_body);
  out->callee = s.callee;
  for (const auto& a : s.call_args) out->call_args.push_back(a->clone());
  for (const auto& d : s.descs) {
    ValidateDescAst nd;
    nd.indirect = d.indirect;
    nd.data_array = d.data_array;
    nd.section_array = d.section_array;
    nd.access = d.access;
    nd.schedule = d.schedule;
    for (const auto& dim : d.section) {
      nd.section.push_back(
          SectionDimAst{dim.lower->clone(), dim.upper->clone(), dim.stride});
    }
    out->descs.push_back(std::move(nd));
  }
  return out;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(clone_stmt(*s));
  return out;
}

Unit clone_unit(const Unit& u) {
  Unit out;
  out.kind = u.kind;
  out.name = u.name;
  for (const auto& d : u.decls) {
    ArrayDecl nd;
    nd.name = d.name;
    nd.elem = d.elem;
    nd.shared = d.shared;
    for (const auto& dim : d.dims) nd.dims.push_back(dim->clone());
    out.decls.push_back(std::move(nd));
  }
  out.body = clone_body(u.body);
  return out;
}

/// Renames every reference to `from` into `to` in an expression tree.
void rename_array(Expr& e, const std::string& from, const std::string& to) {
  if ((e.kind == ExprKind::kArrayRef || e.kind == ExprKind::kVar) &&
      e.name == from) {
    e.name = to;
  }
  if (e.lhs) rename_array(*e.lhs, from, to);
  if (e.rhs) rename_array(*e.rhs, from, to);
  for (auto& a : e.args) rename_array(*a, from, to);
}

void rename_array_in_body(std::vector<StmtPtr>& body, const std::string& from,
                          const std::string& to) {
  for (auto& s : body) {
    if (s->lhs) rename_array(*s->lhs, from, to);
    if (s->rhs) rename_array(*s->rhs, from, to);
    if (s->cond) rename_array(*s->cond, from, to);
    if (s->do_lo) rename_array(*s->do_lo, from, to);
    if (s->do_hi) rename_array(*s->do_hi, from, to);
    if (s->do_step) rename_array(*s->do_step, from, to);
    for (auto& a : s->call_args) rename_array(*a, from, to);
    rename_array_in_body(s->body, from, to);
    rename_array_in_body(s->else_body, from, to);
  }
}

ValidateDescAst make_desc(const AccessInfo& a, int schedule) {
  ValidateDescAst d;
  d.indirect = a.indirect;
  d.data_array = a.array;
  d.section_array = a.indirect ? a.ind_array : a.array;
  d.access = a.access_string();
  d.schedule = schedule;
  for (const auto& dim : a.section) {
    d.section.push_back(
        SectionDimAst{dim.lower->clone(), dim.upper->clone(), dim.stride});
  }
  return d;
}

}  // namespace

TransformResult transform(const SourceFile& input, TransformOptions opts) {
  TransformResult result;
  int schedule = opts.first_schedule;

  for (const auto& unit : input.units) {
    Unit out = clone_unit(unit);
    const SymbolTable syms(unit);

    std::vector<ValidateDescAst> descs;
    for (auto& stmt : out.body) {
      if (stmt->kind != StmtKind::kDo) continue;
      const LoopSummary summary = analyze_loop(*stmt, syms);

      // Arrays privatized in this loop: every access to them (direct or
      // indirect) becomes private and needs no Validate.
      std::vector<std::string> privatized;
      if (opts.privatize_reductions) {
        for (const AccessInfo& a : summary.accesses) {
          if (a.indirect && a.written && !a.section.empty()) {
            privatized.push_back(a.array);
          }
        }
      }

      for (const AccessInfo& a : summary.accesses) {
        if (a.section.empty()) continue;  // analysis was defeated

        // A direct read of an array that only feeds indirect accesses is
        // the indirection array itself; Figure 2 does not fetch it
        // explicitly (Read_indices touches it anyway).
        if (!a.indirect && !a.written && !opts.fetch_indirection_arrays) {
          const bool is_indirection_array =
              std::any_of(summary.accesses.begin(), summary.accesses.end(),
                          [&](const AccessInfo& other) {
                            return other.indirect && other.ind_array == a.array;
                          });
          if (is_indirection_array) continue;
        }

        const bool is_privatized =
            std::find(privatized.begin(), privatized.end(), a.array) !=
            privatized.end();
        if (is_privatized && !(a.indirect && a.written)) {
          continue;  // body references renamed to the private array
        }

        if (a.indirect && a.written && opts.privatize_reductions) {
          // Indirect reduction: accumulate into a private array instead of
          // synchronizing on every element (paper Section 3.1).
          const std::string priv = "LOCAL_" + a.array;
          rename_array_in_body(stmt->body, a.array, priv);
          ArrayDecl pd;
          pd.name = priv;
          const ArrayDecl* orig = unit.find_decl(a.array);
          SDSM_ASSERT(orig != nullptr);
          pd.elem = orig->elem;
          pd.shared = false;
          for (const auto& dim : orig->dims) pd.dims.push_back(dim->clone());
          if (out.find_decl(priv) == nullptr) {
            out.decls.push_back(std::move(pd));
          }
          result.reductions.push_back(
              PrivatizedReduction{unit.name, a.array, priv});
          continue;  // the private array needs no Validate
        }

        descs.push_back(make_desc(a, schedule));
        ++schedule;
        ++result.descriptors_emitted;
      }
    }

    if (!descs.empty()) {
      // Insert at the unit-entry fetch point (no interprocedural analysis).
      out.body.insert(out.body.begin(), Stmt::validate(std::move(descs)));
      ++result.validates_inserted;
    }
    result.transformed.units.push_back(std::move(out));
  }
  return result;
}

}  // namespace sdsm::compiler
