// Diffs: run-length encodings of the modifications made to a page, produced
// by comparing the page against its twin (the pristine copy saved before the
// first write).  Diffs from concurrent writers of the same page touch
// disjoint bytes (data-race-free programs), so applying them in any
// HB-consistent order merges the writes — the multiple-writer protocol that
// lets TreadMarks tolerate false sharing within a page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/assert.hpp"

namespace sdsm::core {

class Diff {
 public:
  Diff() = default;

  /// Encodes the bytes of `current` that differ from `twin`.
  /// Runs shorter than `merge_gap` bytes apart are coalesced: a run header
  /// costs 4 bytes, so re-sending up to 4 unchanged bytes is cheaper than
  /// starting a new run.
  static Diff create(std::span<const std::byte> current,
                     std::span<const std::byte> twin);

  /// Encodes the entire page as a single run (WRITE_ALL pages: "the entire
  /// page, and not the diff, must be sent").
  static Diff whole(std::span<const std::byte> current);

  /// Reconstructs a diff received from the wire.
  static Diff from_bytes(std::vector<std::uint8_t> encoded);

  /// Overwrites the encoded byte ranges in `page`.
  void apply(std::span<std::byte> page) const;

  /// True when the diff consists of one run covering all `page_size` bytes.
  bool is_whole(std::size_t page_size) const;

  bool empty() const { return num_runs() == 0; }
  std::uint32_t num_runs() const;

  /// Size on the wire.
  std::size_t encoded_size() const { return encoded_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return encoded_; }

 private:
  // Layout: [u32 nruns] then per run [u16 offset][u16 len][len bytes].
  // A len field of 0 encodes a 65536-byte run (not used with 4 KB pages but
  // keeps the format correct for large page experiments).
  std::vector<std::uint8_t> encoded_;
};

}  // namespace sdsm::core
