// Diffs: run-length encodings of the modifications made to a page, produced
// by comparing the page against its twin (the pristine copy saved before the
// first write).  Diffs from concurrent writers of the same page touch
// disjoint bytes (data-race-free programs), so applying them in any
// HB-consistent order merges the writes — the multiple-writer protocol that
// lets TreadMarks tolerate false sharing within a page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/assert.hpp"

namespace sdsm::core {

/// Selects the twin-vs-page scan implementation used by Diff::create.  Both
/// engines emit EXACT maximal runs of differing bytes, so the encoded bytes
/// are identical — the wire format is engine-independent and A/B rows can be
/// gated exactly on byte counts.
enum class DiffEngine : std::uint8_t {
  kScalar = 0,  ///< byte-at-a-time reference loop
  kWord = 1,    ///< uint64 compare, byte fixup only inside a differing word
};

inline constexpr DiffEngine kDefaultDiffEngine = DiffEngine::kWord;

/// Stable display name: "scalar" | "word".
const char* diff_engine_name(DiffEngine e);

/// Parses "scalar" | "word" case-insensitively; nullopt otherwise.
std::optional<DiffEngine> parse_diff_engine(std::string_view name);

class Diff {
 public:
  Diff() = default;

  /// Encodes the bytes of `current` that differ from `twin`.
  /// Runs are EXACT maximal stretches of differing bytes.  A diff must never
  /// carry unmodified bytes: concurrent writers of one page produce diffs
  /// that merge in arbitrary relative order, and a bridged gap would ship
  /// this writer's (stale) copy of bytes some other writer owns.  Because
  /// run segmentation is a pure function of the data, every engine produces
  /// byte-identical encodings.
  static Diff create(std::span<const std::byte> current,
                     std::span<const std::byte> twin,
                     DiffEngine engine = kDefaultDiffEngine);

  /// Encodes the entire page as a single run (WRITE_ALL pages: "the entire
  /// page, and not the diff, must be sent").
  static Diff whole(std::span<const std::byte> current);

  /// Reconstructs a diff received from the wire.
  static Diff from_bytes(std::vector<std::uint8_t> encoded);

  /// Overwrites the encoded byte ranges in `page` (memcpy-width stores).
  void apply(std::span<std::byte> page) const;

  /// True when the diff consists of one run covering all `page_size` bytes.
  bool is_whole(std::size_t page_size) const;

  bool empty() const { return num_runs() == 0; }
  std::uint32_t num_runs() const;

  /// Size on the wire.
  std::size_t encoded_size() const { return encoded_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return encoded_; }

 private:
  // Layout: [u32 nruns] then per run [u16 offset][u16 len][len bytes].
  // A len field of 0 encodes a 65536-byte run (not used with 4 KB pages but
  // keeps the format correct for large page experiments).
  std::vector<std::uint8_t> encoded_;
};

}  // namespace sdsm::core
