#include "src/core/descriptor.hpp"

#include "src/common/assert.hpp"

namespace sdsm::core {

DescriptorBuilder DescriptorBuilder::array(GlobalAddr base,
                                           std::size_t elem_size,
                                           rsd::ArrayLayout layout) {
  SDSM_REQUIRE(elem_size > 0);
  DescriptorBuilder b;
  b.d_.data_base = base;
  b.d_.data_elem_size = elem_size;
  b.d_.data_layout = std::move(layout);
  return b;
}

DescriptorBuilder& DescriptorBuilder::section(rsd::RegularSection s) {
  SDSM_REQUIRE(d_.type == DescType::kDirect);  // via() already called?
  SDSM_REQUIRE(!have_section_);
  SDSM_REQUIRE(s.rank() == d_.data_layout.extents.size());
  d_.section = std::move(s);
  have_section_ = true;
  return *this;
}

DescriptorBuilder& DescriptorBuilder::via(GlobalAddr ind_base,
                                          rsd::ArrayLayout ind_layout,
                                          rsd::RegularSection ind_section) {
  SDSM_REQUIRE(!have_section_);  // direct section and via() are exclusive
  SDSM_REQUIRE(ind_section.rank() == ind_layout.extents.size());
  d_.type = DescType::kIndirect;
  d_.ind_base = ind_base;
  d_.ind_layout = std::move(ind_layout);
  d_.section = std::move(ind_section);
  have_section_ = true;
  return *this;
}

DescriptorBuilder& DescriptorBuilder::schedule(std::uint32_t id) {
  d_.schedule = id;
  return *this;
}

AccessDescriptor DescriptorBuilder::finish(Access access) const {
  SDSM_REQUIRE(have_section_);
  // Whole-section modes describe coverage of the *data* section; through an
  // indirection array coverage cannot be proven, so the combination is
  // rejected rather than silently weakened.
  if (access == Access::kWriteAll || access == Access::kReadWriteAll) {
    SDSM_REQUIRE(d_.type == DescType::kDirect);
  }
  AccessDescriptor out = d_;
  out.access = access;
  return out;
}

}  // namespace sdsm::core
