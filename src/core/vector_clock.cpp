#include "src/core/vector_clock.hpp"

#include <algorithm>
#include <sstream>

namespace sdsm::core {

void VectorClock::merge(const VectorClock& other) {
  SDSM_REQUIRE(other.c_.size() == c_.size());
  for (std::size_t i = 0; i < c_.size(); ++i) {
    c_[i] = std::max(c_[i], other.c_[i]);
  }
}

bool VectorClock::dominates(const VectorClock& other) const {
  SDSM_REQUIRE(other.c_.size() == c_.size());
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] < other.c_[i]) return false;
  }
  return true;
}

std::uint64_t VectorClock::total() const {
  std::uint64_t sum = 0;
  for (auto v : c_) sum += v;
  return sum;
}

void VectorClock::serialize(Writer& w) const {
  w.put_span<std::uint32_t>(c_);
}

VectorClock VectorClock::deserialize(Reader& r) {
  VectorClock vc;
  vc.c_ = r.get_vector<std::uint32_t>();
  return vc;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i > 0) os << ',';
    os << c_[i];
  }
  os << '>';
  return os.str();
}

}  // namespace sdsm::core
