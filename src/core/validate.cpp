// Validate: the augmented run-time interface for irregular accesses
// (Figure 3 of the paper).
//
// Call structure, mirroring the paper:
//   - For every INDIRECT descriptor whose indirection-array section has been
//     modified since the last call (detected via write protection), the page
//     set pages[sch] is recomputed by Read_indices and the indirection pages
//     are re-protected.
//   - The invalid pages of all descriptors are fetched with one aggregated
//     diff request per producer node (Fetch_diffs / Apply_diffs).
//   - Pages that will be written are preemptively twinned (Create_twins), so
//     the executor loop runs without a single protection violation.
//   - WRITE_ALL / READ&WRITE_ALL sections skip twin creation on fully
//     covered pages; their release-time "diff" is the entire page.
//
// Descriptors are processed in two rounds: DIRECT first, INDIRECT second.
// This lets a program list the indirection array itself as a DIRECT READ
// descriptor so that Read_indices scans locally valid pages instead of
// demand-faulting them one at a time.
#include <algorithm>
#include <bit>

#include "src/common/timer.hpp"
#include "src/core/descriptor.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::core {

AccessDescriptor direct_desc(GlobalAddr base, std::size_t elem_size,
                             rsd::ArrayLayout data_layout,
                             rsd::RegularSection section, Access access,
                             std::uint32_t schedule) {
  return DescriptorBuilder::array(base, elem_size, std::move(data_layout))
      .section(std::move(section))
      .schedule(schedule)
      .finish(access);
}

AccessDescriptor indirect_desc(GlobalAddr data_base, std::size_t data_elem_size,
                               GlobalAddr ind_base, rsd::ArrayLayout ind_layout,
                               rsd::RegularSection ind_section, Access access,
                               std::uint32_t schedule) {
  return DescriptorBuilder::array(data_base, data_elem_size,
                                  rsd::ArrayLayout{})
      .via(ind_base, std::move(ind_layout), std::move(ind_section))
      .schedule(schedule)
      .finish(access);
}

namespace {

/// Byte extent of a DIRECT descriptor's section when it is dense
/// (rank 1, unit stride); nullopt otherwise.  Used to decide which pages a
/// WRITE_ALL section covers completely.
struct DenseRange {
  GlobalAddr lo;
  GlobalAddr hi;  // exclusive
};

std::optional<DenseRange> dense_range(const AccessDescriptor& d) {
  if (d.type != DescType::kDirect) return std::nullopt;
  if (d.section.rank() != 1) return std::nullopt;
  const rsd::Dim& dim = d.section.dim(0);
  if (dim.stride != 1 || dim.count() == 0) return std::nullopt;
  const GlobalAddr lo =
      d.data_base + static_cast<GlobalAddr>(dim.lower) * d.data_elem_size;
  return DenseRange{lo, lo + static_cast<GlobalAddr>(dim.count()) *
                             d.data_elem_size};
}

bool page_fully_covered(PageId page, const DenseRange& r,
                        std::size_t page_size) {
  const GlobalAddr page_lo = static_cast<GlobalAddr>(page) * page_size;
  return r.lo <= page_lo && page_lo + page_size <= r.hi;
}

bool writes(Access a) {
  return a != Access::kRead;
}
bool whole_section_write(Access a) {
  return a == Access::kWriteAll || a == Access::kReadWriteAll;
}

}  // namespace

std::vector<PageId> DsmNode::direct_pages(const AccessDescriptor& desc) const {
  return desc.section.pages(desc.data_base, desc.data_elem_size,
                            desc.data_layout, region_.page_size());
}

std::vector<PageId> DsmNode::read_indices(const AccessDescriptor& desc) {
  const Timer scan_timer;
  const auto* ind =
      reinterpret_cast<const std::int32_t*>(region_.base() + desc.ind_base);
  const std::size_t ps = region_.page_size();
  // Dedup through a page bitmap: the scan over the indirection array is the
  // cost the paper compares against the CHAOS inspector, so it must stay a
  // tight loop (one load, one shift, one or per index).
  std::vector<std::uint64_t> bits((region_.num_pages() + 63) / 64, 0);
  const auto mark = [&](std::int32_t v) {
    SDSM_ASSERT(v >= 0);
    const GlobalAddr lo =
        desc.data_base + static_cast<GlobalAddr>(v) * desc.data_elem_size;
    const GlobalAddr hi = lo + desc.data_elem_size - 1;
    SDSM_ASSERT(hi < region_.size());
    for (GlobalAddr a = lo / ps; a <= hi / ps; ++a) {
      bits[a >> 6] |= std::uint64_t{1} << (a & 63);
    }
  };
  if (const auto range = desc.section.contiguous_flat_range(desc.ind_layout)) {
    // Reading ind[] may demand-fault list pages; that is the measured cost.
    for (std::int64_t f = range->first; f <= range->second; ++f) mark(ind[f]);
  } else {
    desc.section.for_each_flat(desc.ind_layout,
                               [&](std::int64_t flat) { mark(ind[flat]); });
  }
  std::vector<PageId> pages;
  for (std::size_t w = 0; w < bits.size(); ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      word &= word - 1;
      pages.push_back(static_cast<PageId>(w * 64 + b));
    }
  }
  stats().scan_ns.add(static_cast<std::uint64_t>(scan_timer.elapsed_s() * 1e9));
  return pages;
}

void DsmNode::watch_indirection_pages(const AccessDescriptor& desc,
                                      std::uint32_t schedule) {
  const auto ind_pages = desc.section.pages(
      desc.ind_base, sizeof(std::int32_t), desc.ind_layout, region_.page_size());
  for (const PageId page : ind_pages) {
    PageMeta& pm = pages_[page];
    if (std::find(pm.watchers.begin(), pm.watchers.end(), schedule) ==
        pm.watchers.end()) {
      pm.watchers.push_back(schedule);
    }
    if (pm.state == PageState::kReadWrite) {
      // Dirty page: downgrade access so the next local write traps.  The
      // twin and dirty flag stay; the fault handler simply restores write
      // access after flagging the schedules.
      set_prot(page, vm::Prot::kRead);
    }
  }
}

void DsmNode::notice_watched_page(PageId page) {
  for (const std::uint32_t sch : pages_[page].watchers) {
    auto it = schedules_.find(sch);
    if (it != schedules_.end()) it->second.indirection_changed = true;
  }
}

void DsmNode::consume_prefetch() {
  if (prefetch_.empty()) return;
  stats().cross_prefetch_consumes.add(1);
  PendingFetch pf = std::move(prefetch_);
  prefetch_ = PendingFetch{};
  complete_fetch(std::move(pf));
}

void DsmNode::drain_prefetch() {
  if (prefetch_.empty()) return;
  stats().cross_prefetch_drains.add(1);
  PendingFetch pf = std::move(prefetch_);
  prefetch_ = PendingFetch{};
  complete_fetch(std::move(pf));
}

void DsmNode::post_validate_prefetch(
    const std::vector<AccessDescriptor>& descs) {
  consume_prefetch();  // at most one outstanding
  // Pages the descriptors can resolve right now: direct sections always,
  // indirect ones only through a current cached page set — a stale
  // schedule needs a Read_indices scan, which belongs to validate().
  const auto resolved_pages = [&](const AccessDescriptor& desc) {
    if (desc.type == DescType::kDirect) return direct_pages(desc);
    const auto it = schedules_.find(desc.schedule);
    if (it == schedules_.end() || !it->second.valid ||
        it->second.indirection_changed) {
      return std::vector<PageId>{};
    }
    return it->second.pages;
  };
  // Mirror validate()'s fetch selection — same pages, same aggregated
  // per-producer requests — so prefetching never changes what goes on the
  // wire, only when the wait for it happens.  That includes the WRITE_ALL
  // discard rule: a page some descriptor of this post fully covers in
  // whole-section-write mode will be discarded by validate(), never
  // fetched, so it must be excluded from every descriptor's fetch here
  // (the discard itself — a state transition — stays with validate).
  std::vector<PageId> discard;
  for (const AccessDescriptor& desc : descs) {
    if (desc.access != Access::kWriteAll || !config().write_all_enabled) {
      continue;
    }
    const std::optional<DenseRange> range = dense_range(desc);
    if (!range) continue;
    for (const PageId page : resolved_pages(desc)) {
      if (page_fully_covered(page, *range, region_.page_size())) {
        discard.push_back(page);
      }
    }
  }
  std::sort(discard.begin(), discard.end());
  std::vector<PageId> fetch;
  for (const AccessDescriptor& desc : descs) {
    for (const PageId page : resolved_pages(desc)) {
      if (pages_[page].state != PageState::kInvalid) continue;
      if (std::binary_search(discard.begin(), discard.end(), page)) continue;
      fetch.push_back(page);
    }
  }
  std::sort(fetch.begin(), fetch.end());
  fetch.erase(std::unique(fetch.begin(), fetch.end()), fetch.end());
  if (fetch.empty()) return;
  stats().cross_prefetch_posts.add(1);
  stats().cross_prefetch_pages.add(fetch.size());
  stats().pages_prefetched.add(fetch.size());
  prefetch_ = post_fetch(std::move(fetch));
}

void DsmNode::validate(const std::vector<AccessDescriptor>& descs) {
  stats().validate_calls.add(1);

  std::vector<std::vector<PageId>> desc_pages(descs.size());
  std::vector<std::vector<PageId>> full_pages(descs.size());

  // Per-descriptor collection: computes the WRITE_ALL coverage split
  // (fully covered pages need no twin, and for kWriteAll no fetch either)
  // and appends the descriptor's invalid pages to `fetch`.  Pages already
  // named by an in-flight fetch — a cross-step prefetch posted at the last
  // barrier exit, or this call's own earlier round — are skipped: they
  // will be valid by the time anyone touches them, exactly as pages
  // fetched by an earlier round used to be.
  bool prefetch_used = false;
  auto collect_desc = [&](std::size_t i, std::vector<PageId>& fetch,
                          const PendingFetch* in_flight) {
    const AccessDescriptor& desc = descs[i];
    const bool wall = whole_section_write(desc.access) &&
                      config().write_all_enabled;
    std::optional<DenseRange> range = wall ? dense_range(desc) : std::nullopt;
    if (range) {
      for (const PageId page : desc_pages[i]) {
        if (page_fully_covered(page, *range, region_.page_size())) {
          full_pages[i].push_back(page);
        }
      }
    }

    for (const PageId page : desc_pages[i]) {
      if (pages_[page].state != PageState::kInvalid) continue;
      if (prefetch_.covers(page)) {
        prefetch_used = true;
        continue;
      }
      if (in_flight != nullptr && in_flight->covers(page)) continue;
      if (desc.access == Access::kWriteAll &&
          std::binary_search(full_pages[i].begin(), full_pages[i].end(),
                             page)) {
        // The executor rewrites the whole page: discard the pending
        // notices instead of fetching dead data.  No protection change:
        // Create_twins below makes the page writable.
        PageMeta& pm = pages_[page];
        pm.pending.clear();
        pm.state = PageState::kReadOnly;
        --invalid_pages_;
        continue;
      }
      fetch.push_back(page);
    }
  };

  auto finalize = [&](std::vector<PageId>& fetch) {
    std::sort(fetch.begin(), fetch.end());
    fetch.erase(std::unique(fetch.begin(), fetch.end()), fetch.end());
    // Re-check state: an earlier descriptor may have discarded the page
    // out of the fetch set (desc page lists overlap).
    std::erase_if(fetch, [&](PageId p) {
      return pages_[p].state != PageState::kInvalid;
    });
  };

  // DIRECT descriptors go on the wire first — and *only* on the wire:
  // their diff requests are posted split-phase, then serviced remotely
  // while this thread keeps working.  (DIRECT before INDIRECT also lets a
  // program list the indirection array itself as a DIRECT READ descriptor
  // so that Read_indices scans locally valid pages instead of
  // demand-faulting them one at a time.)
  std::vector<PageId> direct_fetch;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (descs[i].type != DescType::kDirect) continue;
    desc_pages[i] = direct_pages(descs[i]);
    collect_desc(i, direct_fetch, nullptr);
  }
  finalize(direct_fetch);
  stats().pages_prefetched.add(direct_fetch.size());
  PendingFetch pending = post_fetch(std::move(direct_fetch));

  // INDIRECT descriptors whose cached page set is still valid need no
  // Read_indices scan, so their fetch set is known right now.
  std::vector<std::size_t> stale;
  bool any_ready_fetch = false;
  std::vector<std::uint32_t> bumped;  // one stability bump per schedule
  for (std::size_t i = 0; i < descs.size(); ++i) {
    if (descs[i].type != DescType::kIndirect) continue;
    const auto it = schedules_.find(descs[i].schedule);
    if (it == schedules_.end() || !it->second.valid ||
        it->second.indirection_changed) {
      stale.push_back(i);
    } else {
      any_ready_fetch = true;
      if (policy_ != nullptr && std::find(bumped.begin(), bumped.end(),
                                          descs[i].schedule) == bumped.end()) {
        // Adaptive coherence: another validate epoch with the schedule's
        // indirection pages untouched.  A long enough run promotes the
        // schedule to a CHAOS-style ghost zone (see the steady-state scan
        // below); any indirection change demotes it via the recompute
        // branch.
        bumped.push_back(descs[i].schedule);
        ScheduleState& sch = it->second;
        ++sch.epochs_stable;
        if (!sch.ghost &&
            sch.epochs_stable >= config().coherence_tuning.ghost_epochs) {
          sch.ghost = true;
          stats().ghost_promotions.add(1);
        }
      }
    }
  }

  if (stale.empty()) {
    // Steady state (the common per-step Validate): every diff request —
    // direct and indirect — is posted before anything blocks; the
    // indirect planning below overlaps the direct requests' flight time,
    // and the waits land at first use, in Apply_diffs order.
    std::vector<PageId> ind_fetch;
    if (any_ready_fetch) {
      for (std::size_t i = 0; i < descs.size(); ++i) {
        if (descs[i].type != DescType::kIndirect) continue;
        ScheduleState& sch = schedules_[descs[i].schedule];
        if (policy_ != nullptr && sch.ghost && invalid_pages_ == 0 &&
            descs[i].access == Access::kRead) {
          // Ghost zone: the node holds zero invalid pages and the
          // descriptor only reads, so scanning the cached page set can
          // neither fetch nor twin anything — skip it entirely.
          continue;
        }
        desc_pages[i] = sch.pages;
        collect_desc(i, ind_fetch, &pending);
      }
      finalize(ind_fetch);
      stats().pages_prefetched.add(ind_fetch.size());
    }
    PendingFetch ind_pending = post_fetch(std::move(ind_fetch));
    if (prefetch_used) consume_prefetch();  // posted earliest, waited first
    complete_fetch(std::move(pending));
    complete_fetch(std::move(ind_pending));
  } else {
    // Some schedule was modified: Read_indices must run, and it may touch
    // pages the direct round is fetching, so the in-flight requests are
    // consumed here (their first use).  The stale schedules' page sets
    // are only known after the scans; their fetch goes out as one
    // aggregated round, exactly as before.
    consume_prefetch();
    complete_fetch(std::move(pending));
    std::vector<PageId> fetch;
    for (std::size_t i = 0; i < descs.size(); ++i) {
      const AccessDescriptor& desc = descs[i];
      if (desc.type != DescType::kIndirect) continue;
      ScheduleState& sch = schedules_[desc.schedule];
      if (!sch.valid || sch.indirection_changed) {
        // modified(section) returned true: recompute pages[sch] and
        // re-write-protect the indirection array.
        stats().validate_recomputes.add(1);
        sch.pages = read_indices(desc);
        watch_indirection_pages(desc, desc.schedule);
        sch.valid = true;
        sch.indirection_changed = false;
        sch.epochs_stable = 0;  // demote: stability restarts after a rebuild
        sch.ghost = false;
      }
      desc_pages[i] = sch.pages;
      collect_desc(i, fetch, nullptr);
    }
    finalize(fetch);
    if (!fetch.empty()) {
      stats().pages_prefetched.add(fetch.size());
      fetch_pages(fetch);
    }
  }

  // Create_twins: preemptive write preparation, eliminating both the write
  // fault and (for whole-section writes) the twin copy.  Protection
  // upgrades are batched: one mprotect per run of contiguous pages.
  // Declaring a write through Validate must behave like performing one: a
  // watched indirection-array page flags its schedules here, because the
  // protection upgrade below means the write itself will never trap (the
  // modified(section) check of Figure 3 would otherwise miss rebuilds that
  // rewrite the index array under a WRITE_ALL descriptor).
  std::vector<PageId> writable;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const AccessDescriptor& desc = descs[i];
    if (!writes(desc.access)) continue;
    for (const PageId page : desc_pages[i]) {
      PageMeta& pm = pages_[page];
      if (!pm.watchers.empty()) {
        notice_watched_page(page);
        pm.watchers.clear();
      }
      const bool whole =
          whole_section_write(desc.access) &&
          std::binary_search(full_pages[i].begin(), full_pages[i].end(), page);
      pre_twin(page, whole);
      writable.push_back(page);
    }
  }
  set_prot_batch(std::move(writable), vm::Prot::kReadWrite);
}

}  // namespace sdsm::core
