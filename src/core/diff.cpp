#include "src/core/diff.hpp"

#include <cstring>

namespace sdsm::core {

namespace {

constexpr std::size_t kRunHeader = 4;  // u16 offset + u16 len

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xff));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xff));
  v.push_back(static_cast<std::uint8_t>((x >> 8) & 0xff));
  v.push_back(static_cast<std::uint8_t>((x >> 16) & 0xff));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::size_t run_len(std::uint16_t encoded_len) {
  return encoded_len == 0 ? 65536 : encoded_len;
}

}  // namespace

Diff Diff::create(std::span<const std::byte> current,
                  std::span<const std::byte> twin) {
  SDSM_REQUIRE(current.size() == twin.size());
  SDSM_REQUIRE(current.size() <= 65536);

  Diff d;
  put_u32(d.encoded_, 0);  // run count patched below
  std::uint32_t nruns = 0;

  const std::size_t n = current.size();
  std::size_t i = 0;
  while (i < n) {
    if (current[i] == twin[i]) {
      ++i;
      continue;
    }
    // Start of a run; extend only while the bytes actually differ.  A diff
    // must never carry unmodified bytes: concurrent writers of one page
    // produce diffs that are merged in arbitrary relative order, and a
    // bridged gap would ship this writer's (stale) copy of bytes some
    // other writer owns, erasing that writer's update on merge.  Exact
    // runs cost more headers for interleaved patterns; correctness of the
    // multiple-writer protocol requires them.
    std::size_t end = i + 1;
    while (end < n && current[end] != twin[end]) ++end;
    const std::size_t last_diff = end - 1;
    const std::size_t len = last_diff - i + 1;
    put_u16(d.encoded_, static_cast<std::uint16_t>(i));
    put_u16(d.encoded_, static_cast<std::uint16_t>(len == 65536 ? 0 : len));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(current.data());
    d.encoded_.insert(d.encoded_.end(), bytes + i, bytes + i + len);
    ++nruns;
    i = last_diff + 1;
  }

  std::memcpy(d.encoded_.data(), &nruns, sizeof(nruns));
  return d;
}

Diff Diff::whole(std::span<const std::byte> current) {
  SDSM_REQUIRE(!current.empty() && current.size() <= 65536);
  Diff d;
  put_u32(d.encoded_, 1);
  put_u16(d.encoded_, 0);
  put_u16(d.encoded_,
          static_cast<std::uint16_t>(current.size() == 65536 ? 0 : current.size()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(current.data());
  d.encoded_.insert(d.encoded_.end(), bytes, bytes + current.size());
  return d;
}

Diff Diff::from_bytes(std::vector<std::uint8_t> encoded) {
  SDSM_REQUIRE(encoded.size() >= 4);
  Diff d;
  d.encoded_ = std::move(encoded);
  return d;
}

void Diff::apply(std::span<std::byte> page) const {
  const std::uint32_t nruns = num_runs();
  std::size_t pos = 4;
  for (std::uint32_t r = 0; r < nruns; ++r) {
    SDSM_REQUIRE(pos + kRunHeader <= encoded_.size());
    const std::size_t off = get_u16(encoded_.data() + pos);
    const std::size_t len = run_len(get_u16(encoded_.data() + pos + 2));
    pos += kRunHeader;
    SDSM_REQUIRE(pos + len <= encoded_.size());
    SDSM_REQUIRE(off + len <= page.size());
    std::memcpy(page.data() + off, encoded_.data() + pos, len);
    pos += len;
  }
  SDSM_ENSURE(pos == encoded_.size());
}

bool Diff::is_whole(std::size_t page_size) const {
  if (num_runs() != 1) return false;
  const std::size_t off = get_u16(encoded_.data() + 4);
  const std::size_t len = run_len(get_u16(encoded_.data() + 6));
  return off == 0 && len == page_size;
}

std::uint32_t Diff::num_runs() const {
  if (encoded_.size() < 4) return 0;
  return get_u32(encoded_.data());
}

}  // namespace sdsm::core
