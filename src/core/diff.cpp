#include "src/core/diff.hpp"

#include <cctype>
#include <cstring>
#include <string>

namespace sdsm::core {

namespace {

constexpr std::size_t kRunHeader = 4;  // u16 offset + u16 len

void put_u16(std::vector<std::uint8_t>& v, std::uint16_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xff));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void put_u32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x & 0xff));
  v.push_back(static_cast<std::uint8_t>((x >> 8) & 0xff));
  v.push_back(static_cast<std::uint8_t>((x >> 16) & 0xff));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::size_t run_len(std::uint16_t encoded_len) {
  return encoded_len == 0 ? 65536 : encoded_len;
}

// --- Word engine scan helpers ----------------------------------------------
//
// Both helpers step eight bytes at a time via unaligned uint64 loads and fall
// back to a byte loop only inside the word where the answer lives (and for
// the sub-word tail), so the run boundaries they find are exactly the ones
// the scalar byte loop finds.

std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t x;
  std::memcpy(&x, p, sizeof(x));
  return x;
}

// The classic zero-byte test: bit 7 of a lane survives only when that lane's
// byte is 0x00.  Endianness-agnostic because we never ask WHICH lane — the
// byte loop that follows re-finds the boundary exactly.
bool has_zero_byte(std::uint64_t x) {
  constexpr std::uint64_t kLo = 0x0101010101010101ull;
  constexpr std::uint64_t kHi = 0x8080808080808080ull;
  return ((x - kLo) & ~x & kHi) != 0;
}

/// First index in [i, n) where current and twin differ, or n.
std::size_t word_find_diff(const std::byte* cur, const std::byte* twin,
                           std::size_t i, std::size_t n) {
  while (i + sizeof(std::uint64_t) <= n) {
    if (load_u64(cur + i) == load_u64(twin + i)) {
      i += sizeof(std::uint64_t);
      continue;
    }
    while (cur[i] == twin[i]) ++i;
    return i;
  }
  while (i < n && cur[i] == twin[i]) ++i;
  return i;
}

/// First index in [i, n) where current and twin agree, or n.  Skips whole
/// words while every byte differs (the XOR has no zero byte).
std::size_t word_find_match(const std::byte* cur, const std::byte* twin,
                            std::size_t i, std::size_t n) {
  while (i + sizeof(std::uint64_t) <= n) {
    const std::uint64_t x = load_u64(cur + i) ^ load_u64(twin + i);
    if (has_zero_byte(x)) {
      while (cur[i] != twin[i]) ++i;
      return i;
    }
    i += sizeof(std::uint64_t);
  }
  while (i < n && cur[i] != twin[i]) ++i;
  return i;
}

}  // namespace

const char* diff_engine_name(DiffEngine e) {
  switch (e) {
    case DiffEngine::kScalar:
      return "scalar";
    case DiffEngine::kWord:
      return "word";
  }
  return "?";
}

std::optional<DiffEngine> parse_diff_engine(std::string_view name) {
  std::string t;
  for (const char c : name) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "scalar" || t == "byte") return DiffEngine::kScalar;
  if (t == "word") return DiffEngine::kWord;
  return std::nullopt;
}

Diff Diff::create(std::span<const std::byte> current,
                  std::span<const std::byte> twin, DiffEngine engine) {
  SDSM_REQUIRE(current.size() == twin.size());
  SDSM_REQUIRE(current.size() <= 65536);

  Diff d;
  put_u32(d.encoded_, 0);  // run count patched below
  std::uint32_t nruns = 0;

  const std::size_t n = current.size();
  const std::byte* cur = current.data();
  const std::byte* twn = twin.data();

  auto emit = [&](std::size_t i, std::size_t end) {
    const std::size_t len = end - i;
    put_u16(d.encoded_, static_cast<std::uint16_t>(i));
    put_u16(d.encoded_, static_cast<std::uint16_t>(len == 65536 ? 0 : len));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(cur);
    d.encoded_.insert(d.encoded_.end(), bytes + i, bytes + end);
    ++nruns;
  };

  if (engine == DiffEngine::kWord) {
    std::size_t i = word_find_diff(cur, twn, 0, n);
    while (i < n) {
      const std::size_t end = word_find_match(cur, twn, i + 1, n);
      emit(i, end);
      i = word_find_diff(cur, twn, end, n);
    }
  } else {
    // Reference byte loop.  Extend a run only while the bytes actually
    // differ: a diff must never carry unmodified bytes, because concurrent
    // writers of one page produce diffs that are merged in arbitrary
    // relative order, and a bridged gap would ship this writer's (stale)
    // copy of bytes some other writer owns, erasing that writer's update on
    // merge.  Exact runs cost more headers for interleaved patterns;
    // correctness of the multiple-writer protocol requires them.
    std::size_t i = 0;
    while (i < n) {
      if (cur[i] == twn[i]) {
        ++i;
        continue;
      }
      std::size_t end = i + 1;
      while (end < n && cur[end] != twn[end]) ++end;
      emit(i, end);
      i = end;
    }
  }

  std::memcpy(d.encoded_.data(), &nruns, sizeof(nruns));
  return d;
}

Diff Diff::whole(std::span<const std::byte> current) {
  SDSM_REQUIRE(!current.empty() && current.size() <= 65536);
  Diff d;
  put_u32(d.encoded_, 1);
  put_u16(d.encoded_, 0);
  put_u16(d.encoded_,
          static_cast<std::uint16_t>(current.size() == 65536 ? 0 : current.size()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(current.data());
  d.encoded_.insert(d.encoded_.end(), bytes, bytes + current.size());
  return d;
}

Diff Diff::from_bytes(std::vector<std::uint8_t> encoded) {
  SDSM_REQUIRE(encoded.size() >= 4);
  Diff d;
  d.encoded_ = std::move(encoded);
  return d;
}

void Diff::apply(std::span<std::byte> page) const {
  const std::uint32_t nruns = num_runs();
  std::size_t pos = 4;
  for (std::uint32_t r = 0; r < nruns; ++r) {
    SDSM_REQUIRE(pos + kRunHeader <= encoded_.size());
    const std::size_t off = get_u16(encoded_.data() + pos);
    const std::size_t len = run_len(get_u16(encoded_.data() + pos + 2));
    pos += kRunHeader;
    SDSM_REQUIRE(pos + len <= encoded_.size());
    SDSM_REQUIRE(off + len <= page.size());
    std::memcpy(page.data() + off, encoded_.data() + pos, len);
    pos += len;
  }
  SDSM_ENSURE(pos == encoded_.size());
}

bool Diff::is_whole(std::size_t page_size) const {
  if (num_runs() != 1) return false;
  const std::size_t off = get_u16(encoded_.data() + 4);
  const std::size_t len = run_len(get_u16(encoded_.data() + 6));
  return off == 0 && len == page_size;
}

std::uint32_t Diff::num_runs() const {
  if (encoded_.size() < 4) return 0;
  return get_u32(encoded_.data());
}

}  // namespace sdsm::core
