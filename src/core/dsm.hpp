// The TreadMarks-style software DSM runtime: lazy release consistency with
// a multiple-writer protocol, plus the paper's Validate communication-
// aggregation extension for irregular accesses.
//
// Structure per simulated node:
//   - one PageRegion: the node's private view of the shared offset space,
//     protection-driven by the coherence protocol;
//   - one compute thread (supplied by the application via DsmRuntime::run),
//     which executes application code, takes page faults, and performs
//     acquires/releases;
//   - one service thread, which answers remote diff requests and hosts this
//     node's share of the lock/barrier managers (standing in for
//     TreadMarks' SIGIO request handler).
//
// Thread-safety contract: a node's page metadata is touched only by its
// compute thread (including inside SIGSEGV handlers).  The interval table,
// diff store, and lock/barrier state are shared between the node's compute
// and service threads and guarded by meta_mu_.  Service threads never
// block on other nodes, which rules out cross-node deadlock by
// construction.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/coherence/coherence.hpp"
#include "src/coherence/policy.hpp"
#include "src/common/stats.hpp"
#include "src/common/types.hpp"
#include "src/core/diff.hpp"
#include "src/core/interval.hpp"
#include "src/core/shmalloc.hpp"
#include "src/core/vector_clock.hpp"
#include "src/net/transport.hpp"
#include "src/rsd/regular_section.hpp"
#include "src/vm/fault_dispatcher.hpp"
#include "src/vm/page_region.hpp"

namespace sdsm::core {

struct DsmConfig {
  std::uint32_t num_nodes = 8;
  std::size_t region_bytes = 64u << 20;
  /// kThreads (default): this runtime hosts every node in-process.
  /// kProcesses: this runtime hosts exactly `local_node`; the other nodes
  /// live in peer worker processes reached through an injected
  /// cross-process transport (see the DsmRuntime transport ctor), and
  /// page faults resolve by fetching diffs over the wire from them.
  DeployMode mode = DeployMode::kThreads;
  /// The one node this process hosts (kProcesses only).
  NodeId local_node = 0;
  /// Fixed mapping address for the hosted node's region
  /// (MAP_FIXED_NOREPLACE; kProcesses only — the rendezvous-agreed base
  /// that keeps global addresses meaningful across the workers).  nullptr
  /// lets the kernel choose, as in threads mode.
  void* arena_base = nullptr;
  /// Fabric selection: in-process channels (wire cost simulated by `wire`)
  /// or real TCP sockets over localhost (wire cost measured, `wire`
  /// ignored).
  net::TransportKind transport = net::TransportKind::kInProc;
  net::WireModel wire{};
  /// Diff-store garbage collection: when a node's stored diffs exceed this
  /// many bytes it requests a GC at the next barrier.  The barrier then
  /// runs a flush round — every node fetches all pending diffs — after
  /// which all nodes discard their diff stores and interval logs
  /// (TreadMarks GC).  0 disables collection.
  std::size_t gc_threshold_bytes = 256u << 20;
  /// Honour WRITE_ALL / READ&WRITE_ALL access descriptors (twin elision +
  /// whole-page shipping).  Disabled by the ablation bench to measure the
  /// "multiple overlapping diffs" effect the paper describes for reductions.
  bool write_all_enabled = true;
  /// Twin-vs-page scan implementation for Diff::create.  Engines are
  /// byte-identical on the wire (exact maximal runs either way); the knob
  /// exists for the scalar/word A/B rows in the bench.
  DiffEngine diff_engine = kDefaultDiffEngine;
  /// Adaptive coherence (src/coherence/): heat-driven replicate / migrate /
  /// ghost decisions evaluated at barrier rendezvous.  kStatic leaves the
  /// protocol — and its wire traffic — byte-identical to the baseline.
  /// Adaptive runs are barrier-only: lock_acquire rejects the combination.
  coherence::CoherencePolicy coherence = coherence::CoherencePolicy::kStatic;
  coherence::CoherenceTuning coherence_tuning{};
};

// ---------------------------------------------------------------------------
// Protocol messages (payload codecs live in dsm.cpp / sync.cpp).
// ---------------------------------------------------------------------------

enum MsgType : std::uint32_t {
  kGetDiffs = 1,    ///< request stored diffs for a batch of (page, seqs)
  kDiffsReply,
  kLockAcquire,
  kLockGrant,
  kLockRelease,
  kBarrierArrive,
  kBarrierRelease,
  /// Application-plane payload between compute threads (hybrid execution:
  /// inspector exchanges and executor gather/scatter carried over the DSM
  /// fabric).  Routed by the service thread into the node's app inbox;
  /// moves no protocol state.  Counted like any data message.
  kAppData,
};

// ---------------------------------------------------------------------------
// Validate interface (Section 3.2 of the paper, Figure 3).
// ---------------------------------------------------------------------------

enum class Access : std::uint8_t {
  kRead,          ///< READ
  kWrite,         ///< WRITE
  kReadWrite,     ///< READ&WRITE
  kWriteAll,      ///< WRITE_ALL: every element of the section is written
  kReadWriteAll,  ///< READ&WRITE_ALL: reduction over the whole section
};

enum class DescType : std::uint8_t {
  kDirect,    ///< section describes the shared data itself
  kIndirect,  ///< section describes the indirection array
};

/// One access descriptor, as passed to Validate in Figure 3.
struct AccessDescriptor {
  DescType type = DescType::kDirect;
  Access access = Access::kRead;
  std::uint32_t schedule = 0;  ///< identifier of the cached page set

  /// Shared data array being accessed.
  GlobalAddr data_base = 0;
  std::size_t data_elem_size = 0;
  rsd::ArrayLayout data_layout;  ///< used by kDirect sections

  /// For kDirect: section of the data array.  For kIndirect: section of the
  /// indirection array whose *values* index the data array.
  rsd::RegularSection section;

  /// Indirection array (kIndirect only).  Elements must be std::int32_t.
  GlobalAddr ind_base = 0;
  rsd::ArrayLayout ind_layout;
};

/// Thin shims over core::DescriptorBuilder (src/core/descriptor.hpp), the
/// fluent typed builder that is now the primary way to assemble
/// descriptors.  Kept for the compiler lowering path and existing call
/// sites; prefer the builder in new code.
AccessDescriptor direct_desc(GlobalAddr base, std::size_t elem_size,
                             rsd::ArrayLayout data_layout,
                             rsd::RegularSection section, Access access,
                             std::uint32_t schedule);
AccessDescriptor indirect_desc(GlobalAddr data_base, std::size_t data_elem_size,
                               GlobalAddr ind_base, rsd::ArrayLayout ind_layout,
                               rsd::RegularSection ind_section, Access access,
                               std::uint32_t schedule);

// ---------------------------------------------------------------------------
// Per-page protocol state.
// ---------------------------------------------------------------------------

enum class PageState : std::uint8_t {
  kInvalid,    ///< PROT_NONE: unseen remote modifications pending
  kReadOnly,   ///< PROT_READ: valid copy
  kReadWrite,  ///< PROT_READ|WRITE: valid + locally modified (twinned)
};

/// A write notice that has invalidated the local copy but whose diff has not
/// been applied yet.
struct PendingNotice {
  IntervalId ival;
  bool whole_page = false;
  /// Encoded diff pushed by the writer of a coherence-classified page
  /// (adaptive only).  When every pending notice of a page carries one,
  /// the page is brought current at barrier release with no fetch.
  std::vector<std::uint8_t> inline_diff;
};

struct PageMeta {
  PageState state = PageState::kReadOnly;
  /// Current hardware protection.  Usually implied by `state`, except for
  /// watched indirection pages (write-protected while dirty).  Tracked so
  /// redundant mprotect calls — expensive process-wide operations — can be
  /// skipped and runs of pages changed with one syscall.
  vm::Prot prot = vm::Prot::kRead;
  bool dirty = false;
  bool write_all = false;  ///< dirty in whole-page mode (no twin)
  std::unique_ptr<std::byte[]> twin;
  /// Write notices learned but not yet applied to this copy.
  std::vector<PendingNotice> pending;
  /// Schedules watching this page for indirection-array changes.
  std::vector<std::uint32_t> watchers;
  /// Adaptive-coherence heat, folded into the page's own metadata so the
  /// fault path touches no other structure (coherence::HeatTracker holds
  /// the decay arithmetic).  Untouched under the static policy.
  std::uint16_t read_heat = 0;
  std::uint16_t write_heat = 0;
  std::uint32_t heat_epoch = 0;
};

/// Dense per-creator interval log that supports discarding a prefix at GC:
/// entries cover seqs [base+1, base+v.size()].
struct MetaLog {
  std::uint32_t base = 0;
  std::vector<IntervalMeta> v;

  const IntervalMeta& get(std::uint32_t seq) const {
    SDSM_ASSERT(seq > base && seq <= max_seq());
    return v[seq - base - 1];
  }
  std::uint32_t max_seq() const {
    return base + static_cast<std::uint32_t>(v.size());
  }
  void push(IntervalMeta m) { v.push_back(std::move(m)); }
  /// Discards entries with seq <= through (GC).  Entries beyond `through`
  /// are kept: a fast peer may already have raced past the GC rendezvous
  /// and pushed post-GC metas into this table via the service thread.
  void drop_through(std::uint32_t through) {
    SDSM_ASSERT(through >= base && through <= max_seq());
    v.erase(v.begin(), v.begin() + (through - base));
    base = through;
  }
};

/// Cached page set of one Validate schedule (pages[sch] in Figure 3).
struct ScheduleState {
  bool valid = false;
  bool indirection_changed = false;
  std::vector<PageId> pages;
  /// Adaptive coherence: consecutive validate epochs the schedule stayed
  /// ready (no recompute).  At CoherenceTuning::ghost_epochs the schedule
  /// becomes a ghost zone: read-only validates skip its page scan
  /// entirely while the node holds no invalid pages.  Any indirection
  /// change demotes it through the normal recompute path.
  std::uint32_t epochs_stable = 0;
  bool ghost = false;
};

class DsmRuntime;

// ---------------------------------------------------------------------------
// DsmNode
// ---------------------------------------------------------------------------

class DsmNode {
 public:
  DsmNode(DsmRuntime& rt, NodeId id);
  ~DsmNode();

  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  NodeId id() const { return id_; }
  std::uint32_t num_nodes() const;
  std::size_t page_size() const { return region_.page_size(); }

  /// Translates a shared handle to this node's private mapping.
  template <typename T>
  T* ptr(const GlobalArray<T>& ga) {
    return reinterpret_cast<T*>(region_.base() + ga.addr);
  }
  std::byte* raw(GlobalAddr addr) { return region_.base() + addr; }

  // --- Synchronization (the TreadMarks primitives) ------------------------

  /// Global barrier over all nodes (centralized manager at node 0).
  /// Doubles as the GC rendezvous: arrivals piggyback a GC request when the
  /// local diff store is over threshold, and the release orders a global
  /// flush-and-drop round.
  void barrier();

  /// Control-plane rendezvous: returns once every node has entered the
  /// fence.  Unlike barrier(), it moves no protocol state — no interval is
  /// closed, no write notices travel — and its messages (net::kControlSync)
  /// are excluded from the message/byte accounting, so a run's counters are
  /// identical with and without it.  The process-mode harness uses it to cut
  /// a consistent statistics snapshot across workers: each worker snapshots
  /// its counters, enters the fence, and no worker can trigger remote
  /// service work for the next phase until all have passed.  (Threads mode
  /// never needs it: a single process snapshots all nodes after join, and
  /// calling it from a serial loop over local nodes would deadlock.)
  void quiesce_fence();

  /// Distributed lock; home is lock_id % num_nodes.
  void lock_acquire(LockId lock);
  void lock_release(LockId lock);

  // --- Validate (the paper's contribution, Figure 3) ----------------------

  /// Prefetches and pre-twins the pages named by the descriptors,
  /// aggregating all diff requests to the same node into one message.
  void validate(const std::vector<AccessDescriptor>& descs);

  /// Cross-step prefetch (prefetch past synchronization): posts the
  /// aggregated diff requests a later validate() of the same descriptors
  /// would post, without waiting for the replies.  Sound only when the
  /// descriptors' pages are *final* — no node will write them between this
  /// call and their first use — which holds at a barrier exit for data the
  /// deterministic round schedule fixed before the barrier.  The posted
  /// requests complete at first use: the next validate() naming any of the
  /// pages, a fault on one of them, or (as a safety net) the next
  /// synchronization operation, whichever comes first.  At most one
  /// prefetch is outstanding; posting another completes the previous one.
  /// Stale indirect descriptors (whose cached page set needs a
  /// Read_indices scan) are skipped — validate() handles them as usual —
  /// so the message/byte traffic of a run is identical with and without
  /// prefetching; only the wait moves.
  void post_validate_prefetch(const std::vector<AccessDescriptor>& descs);

  /// Completes the outstanding cross-step prefetch, if any, counting it as
  /// drained rather than consumed.  Called by DsmRuntime::run on each
  /// node's compute thread after the body returns: a data-dependent early
  /// exit (rebuild_when / a convergence flag ending the step loop between
  /// a barrier exit and the next validate) can leave a posted prefetch in
  /// flight, and its tickets must not outlive the run — peers' service
  /// threads have already sent the replies, so the drain never blocks on
  /// new work.  Accounting invariant, asserted in tests:
  /// cross_prefetch_posts == cross_prefetch_consumes +
  /// cross_prefetch_drains.
  void drain_prefetch();

  // --- Application-data plane (hybrid execution) ---------------------------

  /// Sends an application payload to `dst`'s compute thread, outside the
  /// coherence protocol.  The hybrid backend's inspector/executor exchanges
  /// ride this plane so their traffic shares the run's fabric (and its
  /// accounting) with the page protocol.  Self-sends are not allowed.
  void send_app_data(NodeId dst, std::vector<std::uint8_t> payload);

  /// Blocks until an application payload arrives and returns (src, bytes)
  /// in arrival order.  Pairing and per-peer ordering discipline is the
  /// caller's (plan::DsmExchange mirrors ChaosNode's stash).
  std::pair<NodeId, std::vector<std::uint8_t>> recv_app_data();

  // --- Introspection -------------------------------------------------------

  PageState page_state(PageId page) const { return pages_[page].state; }
  const VectorClock& clock() const { return vc_; }
  /// Bytes of encoded diffs currently held (own + cached).  Thread-safe.
  std::size_t diff_store_bytes() {
    std::lock_guard<std::mutex> g(meta_mu_);
    return diff_store_bytes_;
  }
  DsmStats& stats();
  const DsmConfig& config() const;

 private:
  friend class DsmRuntime;

  // Fault path (runs inside the SIGSEGV handler on the compute thread).
  void handle_fault(void* addr, vm::FaultAccess access);

  // Demand fetch of a single invalid page (base TreadMarks behaviour).
  void fetch_one_page(PageId page);

  /// Fetch plan: which interval diffs are needed for each page, after the
  /// whole-page supersede rule, and from whom.  As in TreadMarks, a page's
  /// whole pending stack is requested from the *most recent modifier*: any
  /// node whose write happened-after an interval has applied — and cached —
  /// that interval's diff, so one request/response pair per dominant writer
  /// suffices (this is what makes base TreadMarks ship "multiple
  /// overlapping diffs" per request in the paper's reduction loops).
  /// Concurrent (incomparable) top intervals are requested from each of
  /// their creators.
  struct FetchItem {
    PageId page;
    std::vector<IntervalId> ivals;  ///< diffs to pull from this target
  };
  /// Groups needed diffs by target node: result[target] lists items.
  std::map<NodeId, std::vector<FetchItem>> plan_fetch(
      const std::vector<PageId>& pages);

  /// One in-flight aggregated diff fetch: the requests are on the wire,
  /// the pages are still kInvalid until complete_fetch applies the
  /// replies.  Between post and complete the compute thread may do any
  /// work that does not touch the named pages (Validate overlaps its
  /// descriptor bookkeeping and later fetch planning here).
  struct PendingFetch {
    std::vector<net::Ticket> tickets;
    std::vector<PageId> pages;  ///< sorted, deduplicated
    std::uint64_t plan_ns = 0;  ///< time spent planning/posting

    bool empty() const { return pages.empty(); }
    /// True when `page` is named by this in-flight fetch.
    bool covers(PageId page) const {
      return std::binary_search(pages.begin(), pages.end(), page);
    }
  };

  /// Split-phase fetch, phase 1: plans the aggregated requests (one
  /// kGetDiffs per target, see plan_fetch) and posts them all.  `pages`
  /// must be sorted, deduplicated, and kInvalid.
  PendingFetch post_fetch(std::vector<PageId> pages);
  /// Split-phase fetch, phase 2: waits for all replies (handling holder
  /// misses with a retry round), applies diffs in HB order, marks pages
  /// kReadOnly.
  void complete_fetch(PendingFetch pf);
  /// Encodes and posts one target's request batch.
  net::Ticket post_get_diffs(NodeId target, const std::vector<FetchItem>& items);

  /// Blocking wrapper: post_fetch + complete_fetch.
  void fetch_pages(const std::vector<PageId>& pages);

  /// Completes the outstanding cross-step prefetch, if any.  Called at
  /// first use (validate / fault) and from every acquire path, so a posted
  /// prefetch can never straddle a synchronization operation.
  void consume_prefetch();

  /// Creates a twin (or enters whole-page mode) and marks the page dirty.
  /// The caller must make the page writable afterwards (set_prot /
  /// set_prot_batch) — batched by Validate, immediate in the fault path.
  void pre_twin(PageId page, bool whole_page_mode);

  /// Protection setters that skip no-ops and (for the batch form) coalesce
  /// contiguous runs into single mprotect calls.
  void set_prot(PageId page, vm::Prot prot);
  void set_prot_batch(std::vector<PageId> pages, vm::Prot prot);

  /// Closes the current interval: encodes diffs of dirty pages, stores
  /// them, downgrades pages to kReadOnly, returns the interval meta
  /// (nullopt when nothing was written).
  std::optional<IntervalMeta> close_interval();

  /// Records foreign metas in the table (for later forwarding) and applies
  /// the write notices (invalidations) of every meta this compute thread
  /// has not applied yet.  Application is tracked by applied_vc_, which is
  /// independent of the table: the service thread may have learned a meta
  /// (e.g. as barrier manager) long before the compute thread acquires it.
  void process_metas(std::vector<IntervalMeta> metas);

  /// Metas from this node's table that `peer` may lack, given a lower bound
  /// on the peer's clock.  Caller holds meta_mu_.
  std::vector<IntervalMeta> metas_not_covered_locked(const VectorClock& bound);

  /// Inserts metas into the table, ignoring duplicates.  Caller holds
  /// meta_mu_.
  void insert_metas_locked(const std::vector<IntervalMeta>& metas);

  /// Returns all compute-thread protocol state to its post-construction
  /// default.  Part of DsmRuntime::reset_arena(); callable only when no
  /// compute thread is running and the fabric is quiescent.
  void reset_for_reuse();

  // Service side.
  void service_loop();
  void serve_get_diffs(const net::Message& msg);

  // Lock/barrier manager state lives in sync.cpp helpers.
  struct LockHome {
    bool held = false;
    NodeId holder = 0;
    VectorClock last_release_vc;
    struct Waiter {
      NodeId node;
      std::uint64_t request_id;
      VectorClock vc;
    };
    std::vector<Waiter> queue;
  };
  struct BarrierMgr {
    struct Arrival {
      NodeId node;
      std::uint64_t request_id;
      VectorClock vc;
    };
    std::vector<Arrival> arrivals;
    bool want_gc = false;
  };

  void barrier_round(bool allow_gc);
  /// Adaptive coherence, once per barrier(): advance the policy epoch,
  /// reclassify pages, count migrations, and issue the ownership-transfer
  /// fetch for pages this node just took over.
  void coherence_tick();
  /// Adaptive coherence: applies inline diffs deposited by process_metas
  /// for the given pages, validating them at barrier release with no
  /// fetch.  Pages whose pending stack is not fully inline are left for
  /// the normal fetch path.
  void eager_apply_inline(std::vector<PageId> pages);
  /// GC flush: fetches every page with pending write notices, emptying the
  /// pending sets so the diff stores can be dropped.
  void flush_all_pending();
  /// Drops diff store and interval logs (post-flush, all-nodes-synced).
  void gc_drop();

  void serve_lock_acquire(const net::Message& msg);
  void serve_lock_release(const net::Message& msg);
  void serve_barrier_arrive(const net::Message& msg);
  void serve_control_sync(const net::Message& msg);
  void grant_lock_locked(LockId lock, const LockHome::Waiter& to);

  // Validate internals (validate.cpp).
  std::vector<PageId> read_indices(const AccessDescriptor& desc);
  std::vector<PageId> direct_pages(const AccessDescriptor& desc) const;
  void watch_indirection_pages(const AccessDescriptor& desc,
                               std::uint32_t schedule);
  void notice_watched_page(PageId page);  ///< flags watching schedules

  DsmRuntime& rt_;
  const NodeId id_;
  vm::PageRegion region_;

  // Compute-thread-private protocol state.
  std::vector<PageMeta> pages_;
  VectorClock vc_;
  /// Highest interval per creator whose write notices this compute thread
  /// has applied.  May run ahead of vc_ (a grant can carry extra metas) but
  /// never behind it.
  VectorClock applied_vc_;
  std::vector<PageId> dirty_pages_;
  std::unordered_map<std::uint32_t, ScheduleState> schedules_;
  /// The one outstanding cross-step prefetch (empty when none).
  PendingFetch prefetch_;
  /// Adaptive coherence (null under the static policy).  Compute-thread
  /// private: folds happen at interval close and meta application, the
  /// tick at barrier return — all on the compute thread.
  std::unique_ptr<coherence::PolicyEngine> policy_;
  /// Exact count of pages in PageState::kInvalid; lets ghost-zone
  /// validates prove "nothing pending anywhere" in O(1).
  std::uint32_t invalid_pages_ = 0;

  // Shared between compute and service threads of this node.
  std::mutex meta_mu_;
  std::vector<MetaLog> table_;  // [creator]
  /// Diffs held by this node, keyed by (page, creator, seq): its own plus
  /// every remote diff it has applied (TreadMarks diff caching — the basis
  /// of most-recent-modifier fetching).
  std::unordered_map<std::uint64_t, std::vector<Diff>> diff_store_;
  std::size_t diff_store_bytes_ = 0;  ///< encoded bytes held in diff_store_
  std::vector<VectorClock> last_seen_vc_;  // lower bound on peers' knowledge
  std::map<LockId, LockHome> lock_homes_;
  BarrierMgr barrier_mgr_;
  /// quiesce_fence arrivals (node, request_id); manager side, node 0 only.
  std::vector<std::pair<NodeId, std::uint64_t>> fence_waiters_;

  /// Application-data inbox: kAppData payloads deposited by the service
  /// thread in arrival order, consumed by the compute thread.
  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> inbox_;

  std::thread service_thread_;
};

// ---------------------------------------------------------------------------
// DsmRuntime
// ---------------------------------------------------------------------------

class DsmRuntime {
 public:
  /// Threads mode: hosts all num_nodes nodes in this process over a
  /// transport built from config (config.mode must be kThreads).
  explicit DsmRuntime(DsmConfig config);

  /// Process mode: hosts exactly config.local_node over the injected
  /// cross-process transport (config.mode must be kProcesses).  The
  /// transport's num_nodes spans the whole job; only the local node's
  /// service thread runs here, and the destructor stops only it.
  DsmRuntime(DsmConfig config, std::unique_ptr<net::Transport> transport);

  ~DsmRuntime();

  DsmRuntime(const DsmRuntime&) = delete;
  DsmRuntime& operator=(const DsmRuntime&) = delete;

  const DsmConfig& config() const { return config_; }
  std::uint32_t num_nodes() const { return config_.num_nodes; }

  /// The nodes hosted by this process: all of them in threads mode, one in
  /// process mode.  Aggregations over "every node" (run bodies, result
  /// assembly, arena reset) iterate these.
  const std::vector<NodeId>& local_ids() const { return local_ids_; }
  std::uint32_t num_local_nodes() const {
    return static_cast<std::uint32_t>(local_ids_.size());
  }
  NodeId first_local_node() const { return local_ids_.front(); }
  bool is_local(NodeId n) const { return nodes_[n] != nullptr; }

  /// Page size of every node's region (uniform; does not require any
  /// particular node to be hosted here).
  std::size_t page_size() const { return vm::system_page_size(); }

  /// Allocates a shared array visible to all nodes.  Must not be called
  /// while run() is active.  Page-aligned unless packed is true.
  template <typename T>
  GlobalArray<T> alloc_global(std::size_t count, bool packed = false) {
    if (!packed) heap_.align_to_page();
    const GlobalAddr addr = heap_.alloc(count * sizeof(T), alignof(T));
    return GlobalArray<T>{addr, count};
  }

  /// Runs `body` on every locally hosted node's compute thread and joins.
  /// In process mode that is one thread; the peers run the same body in
  /// their own processes and meet this one at the protocol's barriers.
  void run(const std::function<void(DsmNode&)>& body);

  DsmNode& node(NodeId n) {
    SDSM_REQUIRE_MSG(nodes_[n] != nullptr,
                     "DsmRuntime::node: node not hosted by this process");
    return *nodes_[n];
  }
  net::Transport& network() { return *net_; }
  DsmStats& stats() { return stats_; }

  /// Total messages / payload bytes on the fabric (the paper's metrics).
  std::uint64_t total_messages() { return net_->stats().messages(); }
  double total_megabytes() { return net_->stats().megabytes(); }

  void reset_stats();

  /// Shared-heap bytes currently allocated.  Zero after reset_arena().
  std::size_t shared_bytes_used() const { return heap_.used(); }

  /// Returns the arena to its just-constructed state so the runtime can be
  /// reused for another independent kernel: frees every allocation, zeroes
  /// and re-protects every node's region (punching holes so physical pages
  /// are released), and clears all per-node protocol state — clocks,
  /// interval tables, diff stores, schedules, lock/barrier managers.
  /// Transport, service threads, and cumulative statistics survive.  Must
  /// only be called between run() invocations (no compute threads live, no
  /// sync operation in flight).
  void reset_arena();

 private:
  friend class DsmNode;

  DsmConfig config_;
  std::unique_ptr<net::Transport> net_;
  DsmStats stats_;
  SharedHeap heap_;
  /// Indexed by NodeId; non-hosted slots are null in process mode.
  std::vector<std::unique_ptr<DsmNode>> nodes_;
  std::vector<NodeId> local_ids_;
};

}  // namespace sdsm::core
