// Shared-heap allocation.
//
// TreadMarks programs allocate shared memory dynamically with Tmk_malloc;
// every node addresses the same object through the same offset.  Here the
// host allocates before (or between) parallel phases through
// DsmRuntime::alloc_global<T>(), which returns a GlobalArray handle — an
// (offset, count) pair valid on every node.  Nodes translate handles to raw
// pointers into their private mapping of the region.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace sdsm::core {

/// Typed handle to a shared array.  Trivially copyable: safe to capture in
/// the lambdas handed to DsmRuntime::run().
template <typename T>
struct GlobalArray {
  GlobalAddr addr = 0;
  std::size_t count = 0;

  /// Handle to the subarray [first, first+n).
  GlobalArray<T> slice(std::size_t first, std::size_t n) const {
    SDSM_REQUIRE(first + n <= count);
    return GlobalArray<T>{addr + first * sizeof(T), n};
  }
};

/// Bump allocator over the shared offset space.  Page-aligned by default so
/// distinct arrays never share a page unless the caller asks for packed
/// placement (used by the false-sharing experiments).
class SharedHeap {
 public:
  SharedHeap(std::size_t capacity, std::size_t page_size)
      : capacity_(capacity), page_size_(page_size) {}

  GlobalAddr alloc(std::size_t bytes, std::size_t align);

  /// Next allocation starts on a fresh page.
  void align_to_page();

  std::size_t used() const { return cursor_; }
  std::size_t capacity() const { return capacity_; }

  /// Forgets every allocation; outstanding GlobalArray handles become
  /// invalid.  Only DsmRuntime::reset_arena() may call this, at a point
  /// where no node thread is running.
  void reset() { cursor_ = 0; }

 private:
  std::size_t capacity_;
  std::size_t page_size_;
  std::size_t cursor_ = 0;
};

}  // namespace sdsm::core
