// Lock and barrier implementation.
//
// Locks: each lock has a statically assigned home node (lock % num_nodes).
// Acquire requests go to the home, which either grants immediately or
// queues the requester; the grant carries the last releaser's vector clock
// and the interval metas the requester lacks, per lazy release consistency.
// Releases close the releaser's current interval and push its consistency
// data to the home.
//
// Barriers: centralized manager on node 0.  Arrivals close the arriver's
// interval and carry its new interval metas; the release broadcast carries
// the global clock and, per node, exactly the metas it lacks.  A node's
// message to itself is a local operation and is not counted (see the
// loopback rule in the transport's accounting).
//
// Both round trips use the transport's split-phase post/wait pair: the
// request is on the wire before wait blocks, which matters because wait
// is where remote metas overlap with local close_interval work on the
// manager side.
#include <algorithm>

#include "src/common/timer.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::core {

namespace {

constexpr NodeId kBarrierManager = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Locks: compute side
// ---------------------------------------------------------------------------

void DsmNode::lock_acquire(LockId lock) {
  // The adaptive engine's determinism argument (identical write census on
  // every node, folded at barrier rendezvous) has no analogue for the
  // pairwise lock paths, so adaptive runs are barrier-only by contract.
  SDSM_REQUIRE_MSG(policy_ == nullptr,
                   "adaptive coherence supports barrier-only synchronization");
  consume_prefetch();  // a prefetch never straddles a synchronization op
  stats().lock_acquires.add(1);
  const NodeId home = lock % num_nodes();

  Writer w;
  w.put<std::uint32_t>(lock);
  vc_.serialize(w);

  net::Message msg;
  msg.type = kLockAcquire;
  msg.src = id_;
  msg.dst = home;
  msg.payload = w.take();
  const net::Ticket ticket = rt_.net_->post(std::move(msg));

  net::Message grant = rt_.net_->wait(ticket);
  SDSM_ASSERT(grant.type == kLockGrant);
  Reader r(grant.payload);
  VectorClock release_vc = VectorClock::deserialize(r);
  std::vector<IntervalMeta> metas = deserialize_metas(r);
  process_metas(std::move(metas));
  vc_.merge(release_vc);
}

void DsmNode::lock_release(LockId lock) {
  const NodeId home = lock % num_nodes();
  close_interval();

  Writer w;
  w.put<std::uint32_t>(lock);
  vc_.serialize(w);
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    serialize_metas(w, metas_not_covered_locked(last_seen_vc_[home]));
  }

  net::Message msg;
  msg.type = kLockRelease;
  msg.src = id_;
  msg.dst = home;
  msg.request_id = 0;  // one-way
  msg.payload = w.take();
  rt_.net_->send(net::Port::kService, std::move(msg));
}

// ---------------------------------------------------------------------------
// Locks: home (service thread)
// ---------------------------------------------------------------------------

void DsmNode::grant_lock_locked(LockId lock, const LockHome::Waiter& to) {
  LockHome& lh = lock_homes_[lock];
  Writer w;
  lh.last_release_vc.serialize(w);
  serialize_metas(w, metas_not_covered_locked(to.vc));

  net::Message grant;
  grant.type = kLockGrant;
  grant.src = id_;
  grant.dst = to.node;
  grant.request_id = to.request_id;
  grant.payload = w.take();
  rt_.net_->send(net::Port::kReply, std::move(grant));
}

void DsmNode::serve_lock_acquire(const net::Message& msg) {
  Reader r(msg.payload);
  const auto lock = r.get<std::uint32_t>();
  VectorClock vc = VectorClock::deserialize(r);

  std::lock_guard<std::mutex> g(meta_mu_);
  last_seen_vc_[msg.src].merge(vc);
  auto [it, inserted] = lock_homes_.try_emplace(lock);
  LockHome& lh = it->second;
  if (inserted) lh.last_release_vc = VectorClock(num_nodes());

  const LockHome::Waiter waiter{msg.src, msg.request_id, std::move(vc)};
  if (!lh.held) {
    lh.held = true;
    lh.holder = msg.src;
    grant_lock_locked(lock, waiter);
  } else {
    lh.queue.push_back(waiter);
  }
}

void DsmNode::serve_lock_release(const net::Message& msg) {
  Reader r(msg.payload);
  const auto lock = r.get<std::uint32_t>();
  VectorClock vc = VectorClock::deserialize(r);
  std::vector<IntervalMeta> metas = deserialize_metas(r);

  std::lock_guard<std::mutex> g(meta_mu_);
  insert_metas_locked(std::move(metas));
  last_seen_vc_[msg.src].merge(vc);

  auto it = lock_homes_.find(lock);
  SDSM_ASSERT(it != lock_homes_.end());
  LockHome& lh = it->second;
  SDSM_ASSERT(lh.held && lh.holder == msg.src);
  lh.last_release_vc.merge(vc);
  if (lh.queue.empty()) {
    lh.held = false;
    return;
  }
  const LockHome::Waiter next = lh.queue.front();
  lh.queue.erase(lh.queue.begin());
  lh.holder = next.node;
  grant_lock_locked(lock, next);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void DsmNode::barrier() {
  consume_prefetch();  // a prefetch never straddles a synchronization op
  const Timer phase;
  stats().barriers.add(1);
  barrier_round(/*allow_gc=*/true);
  if (policy_) coherence_tick();
  stats().t_barrier_ns.add(static_cast<std::uint64_t>(phase.elapsed_s() * 1e9));
}

void DsmNode::coherence_tick() {
  // One policy epoch per barrier(), ticked after release processing so
  // every node has folded exactly the same set of intervals (a GC's inner
  // round folds before the tick too).  Identical census + identical
  // tuning => identical classification on every node, with no directory
  // traffic.
  const coherence::PolicyEngine::TickResult tr = policy_->tick();
  if (tr.migrations > 0) stats().migrations.add(tr.migrations);

  // Ownership transfers: the new home brings itself current immediately —
  // the counted ownership-transfer message — so it can serve readers and
  // push inline updates from a valid copy.
  std::vector<PageId> need;
  for (const PageId page : tr.newly_owned) {
    if (pages_[page].state == PageState::kInvalid) need.push_back(page);
  }
  if (!need.empty()) fetch_pages(need);
}

void DsmNode::barrier_round(bool allow_gc) {
  close_interval();

  bool want_gc = false;
  Writer w;
  vc_.serialize(w);
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    serialize_metas(w, metas_not_covered_locked(last_seen_vc_[kBarrierManager]));
    want_gc = allow_gc && config().gc_threshold_bytes > 0 &&
              diff_store_bytes_ > config().gc_threshold_bytes;
  }
  w.put<std::uint8_t>(want_gc ? 1 : 0);

  net::Message msg;
  msg.type = kBarrierArrive;
  msg.src = id_;
  msg.dst = kBarrierManager;
  msg.payload = w.take();
  const net::Ticket ticket = rt_.net_->post(std::move(msg));

  net::Message release = rt_.net_->wait(ticket);
  SDSM_ASSERT(release.type == kBarrierRelease);
  Reader r(release.payload);
  VectorClock global_vc = VectorClock::deserialize(r);
  std::vector<IntervalMeta> metas = deserialize_metas(r);
  const bool do_gc = r.get<std::uint8_t>() != 0;
  process_metas(std::move(metas));
  vc_.merge(global_vc);
  {
    // Every node's clock covers global_vc once it leaves this barrier, so
    // it is a sound lower bound for future meta selection.
    std::lock_guard<std::mutex> g(meta_mu_);
    for (NodeId p = 0; p < num_nodes(); ++p) {
      last_seen_vc_[p].merge(global_vc);
    }
  }

  if (do_gc) {
    // TreadMarks GC: bring every page current (emptying the pending sets),
    // re-synchronize so no node can still request an old diff, then drop
    // the stores and logs.  The flush itself creates no new intervals.
    SDSM_ASSERT(allow_gc);
    flush_all_pending();
    barrier_round(/*allow_gc=*/false);
    gc_drop();
  }
}

void DsmNode::serve_barrier_arrive(const net::Message& msg) {
  SDSM_ASSERT(id_ == kBarrierManager);
  Reader r(msg.payload);
  VectorClock vc = VectorClock::deserialize(r);
  std::vector<IntervalMeta> metas = deserialize_metas(r);
  const bool want_gc = r.get<std::uint8_t>() != 0;

  std::lock_guard<std::mutex> g(meta_mu_);
  insert_metas_locked(std::move(metas));
  last_seen_vc_[msg.src].merge(vc);
  barrier_mgr_.want_gc |= want_gc;
  barrier_mgr_.arrivals.push_back(
      BarrierMgr::Arrival{msg.src, msg.request_id, std::move(vc)});

  if (barrier_mgr_.arrivals.size() < num_nodes()) return;

  VectorClock global(num_nodes());
  for (const auto& a : barrier_mgr_.arrivals) global.merge(a.vc);

  // The manager's own (loopback, uncounted) release goes out LAST: its
  // compute thread wakes on it, and after the run's final barrier nothing
  // downstream ever waits on the released peers again — so if it woke
  // first it could finish the run and snapshot the stats while this
  // service thread was still sending (and counting) the peers' releases,
  // splitting those sends across a process-mode worker's snapshot cut.
  // With the self-release last, every counted release precedes the wake.
  const auto release_one = [&](const BarrierMgr::Arrival& a) {
    Writer w;
    global.serialize(w);
    serialize_metas(w, metas_not_covered_locked(a.vc));
    w.put<std::uint8_t>(barrier_mgr_.want_gc ? 1 : 0);
    net::Message release;
    release.type = kBarrierRelease;
    release.src = id_;
    release.dst = a.node;
    release.request_id = a.request_id;
    release.payload = w.take();
    rt_.net_->send(net::Port::kReply, std::move(release));
  };
  for (const auto& a : barrier_mgr_.arrivals) {
    if (a.node != id_) release_one(a);
  }
  for (const auto& a : barrier_mgr_.arrivals) {
    if (a.node == id_) release_one(a);
  }
  barrier_mgr_.arrivals.clear();
  barrier_mgr_.want_gc = false;
}

// ---------------------------------------------------------------------------
// Quiescence fence
// ---------------------------------------------------------------------------

void DsmNode::quiesce_fence() {
  net::Message msg;
  msg.type = net::kControlSync;
  msg.src = id_;
  msg.dst = kBarrierManager;
  const net::Ticket ticket = rt_.net_->post(std::move(msg));
  const net::Message release = rt_.net_->wait(ticket);
  SDSM_ASSERT(release.type == net::kControlSync);
}

void DsmNode::serve_control_sync(const net::Message& msg) {
  SDSM_ASSERT(id_ == kBarrierManager);
  std::lock_guard<std::mutex> g(meta_mu_);
  fence_waiters_.emplace_back(msg.src, msg.request_id);
  if (fence_waiters_.size() < num_nodes()) return;

  for (const auto& [node, request_id] : fence_waiters_) {
    net::Message release;
    release.type = net::kControlSync;
    release.src = id_;
    release.dst = node;
    release.request_id = request_id;
    rt_.net_->send(net::Port::kReply, std::move(release));
  }
  fence_waiters_.clear();
}

}  // namespace sdsm::core
