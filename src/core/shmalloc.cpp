#include "src/core/shmalloc.hpp"

namespace sdsm::core {

GlobalAddr SharedHeap::alloc(std::size_t bytes, std::size_t align) {
  SDSM_REQUIRE(bytes > 0);
  SDSM_REQUIRE(align > 0 && (align & (align - 1)) == 0);
  std::size_t start = (cursor_ + align - 1) & ~(align - 1);
  SDSM_REQUIRE(start + bytes <= capacity_);
  cursor_ = start + bytes;
  return static_cast<GlobalAddr>(start);
}

void SharedHeap::align_to_page() {
  cursor_ = (cursor_ + page_size_ - 1) / page_size_ * page_size_;
}

}  // namespace sdsm::core
