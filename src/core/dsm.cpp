// Core protocol paths of the DSM node: fault handling, demand fetch,
// aggregated fetch, twin management, interval lifecycle, and the runtime
// scaffolding.  Synchronization (locks/barriers) lives in sync.cpp, the
// Validate front door in validate.cpp.
#include "src/core/dsm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <span>

#include "src/common/timer.hpp"

namespace sdsm::core {

namespace {

/// Debug tracing of one page's protocol events, enabled by setting the
/// SDSM_TRACE_PAGE environment variable to the page id.
std::int64_t trace_page() {
  static const std::int64_t page = [] {
    const char* env = std::getenv("SDSM_TRACE_PAGE");
    return env != nullptr ? std::atoll(env) : -1;
  }();
  return page;
}
#define SDSM_TRACE(pg, ...)                                         do {                                                                if (static_cast<std::int64_t>(pg) == trace_page()) {                std::fprintf(stderr, "[trace n%u] ", id_);                        std::fprintf(stderr, __VA_ARGS__);                                std::fprintf(stderr, "\n");                                     }                                                               } while (0)

/// Key of one interval's diff of one page: page (24 bits) | creator
/// (8 bits) | seq (32 bits).
std::uint64_t diff_key(PageId page, NodeId creator, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(page) << 40) |
         (static_cast<std::uint64_t>(creator) << 32) | seq;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

DsmNode::DsmNode(DsmRuntime& rt, NodeId id)
    : rt_(rt),
      id_(id),
      region_(rt.config().region_bytes, vm::Prot::kRead,
              rt.config().arena_base),
      pages_(region_.num_pages()),
      vc_(rt.config().num_nodes),
      applied_vc_(rt.config().num_nodes),
      table_(rt.config().num_nodes),
      last_seen_vc_(rt.config().num_nodes,
                    VectorClock(rt.config().num_nodes)) {
  if (rt.config().coherence == coherence::CoherencePolicy::kAdaptive) {
    policy_ = std::make_unique<coherence::PolicyEngine>(
        id, rt.config().coherence_tuning);
  }
  vm::FaultDispatcher::instance().register_region(
      region_.base(), region_.size(),
      [this](void* addr, vm::FaultAccess access) { handle_fault(addr, access); });
  service_thread_ = std::thread([this] { service_loop(); });
}

DsmNode::~DsmNode() {
  SDSM_ASSERT(!service_thread_.joinable());  // runtime joins before destruction
  // No prefetch ticket may outlive its run: DsmRuntime::run drains any the
  // body left in flight (early exit between barrier and next validate).
  SDSM_ASSERT(prefetch_.empty());
  vm::FaultDispatcher::instance().unregister_region(region_.base());
}

std::uint32_t DsmNode::num_nodes() const { return rt_.config().num_nodes; }
DsmStats& DsmNode::stats() { return rt_.stats_; }
const DsmConfig& DsmNode::config() const { return rt_.config(); }

// ---------------------------------------------------------------------------
// Fault handling (compute thread, inside SIGSEGV)
// ---------------------------------------------------------------------------

void DsmNode::handle_fault(void* addr, vm::FaultAccess access) {
  const PageId page = region_.page_of(addr);
  PageMeta& pm = pages_[page];

  // First use of a cross-step-prefetched page: the diff requests are
  // already on the wire, so completing them here replaces the demand
  // round trip a cold fault would pay.  As with a cold invalid-page
  // fault, anything but a known write is done once the page is valid (an
  // actual write simply faults once more and lands in the write path).
  if (pm.state == PageState::kInvalid && prefetch_.covers(page)) {
    stats().read_faults.add(1);
    if (policy_) {
      coherence::HeatTracker::bump_read(pm.read_heat, pm.write_heat,
                                        pm.heat_epoch, policy_->epoch());
    }
    consume_prefetch();
    if (access != vm::FaultAccess::kWrite) return;
  }

  // When the architecture did not expose the access type, a fault on a
  // valid page can only be a write; a fault on an invalid page is treated
  // as a read (an actual write simply faults once more, then lands here
  // with the page valid).
  const bool is_write =
      access == vm::FaultAccess::kWrite ||
      (access == vm::FaultAccess::kUnknown && pm.state != PageState::kInvalid);

  if (pm.state == PageState::kInvalid) {
    stats().read_faults.add(1);
    if (policy_) {
      coherence::HeatTracker::bump_read(pm.read_heat, pm.write_heat,
                                        pm.heat_epoch, policy_->epoch());
    }
    fetch_one_page(page);
    if (!is_write) return;
  }

  if (!is_write) {
    std::fprintf(stderr,
                 "sdsm: unexpected read fault: node=%u page=%u state=%d "
                 "dirty=%d pending=%zu watchers=%zu access=%d\n",
                 id_, page, static_cast<int>(pm.state), pm.dirty ? 1 : 0,
                 pm.pending.size(), pm.watchers.size(),
                 static_cast<int>(access));
  }
  SDSM_ASSERT(is_write);

  if (!pm.watchers.empty()) {
    // A local write to a watched indirection-array page: flag the schedules
    // and stop watching until the next Validate re-protects it.
    notice_watched_page(page);
    pm.watchers.clear();
    if (pm.state == PageState::kReadWrite) {
      // Page was dirty when Validate downgraded it; just restore access.
      set_prot(page, vm::Prot::kReadWrite);
      return;
    }
  }

  stats().write_faults.add(1);
  if (policy_) {
    coherence::HeatTracker::bump_write(pm.read_heat, pm.write_heat,
                                       pm.heat_epoch, policy_->epoch());
  }
  pre_twin(page, /*whole_page_mode=*/false);
  set_prot(page, vm::Prot::kReadWrite);
}

// ---------------------------------------------------------------------------
// Fetch paths
// ---------------------------------------------------------------------------

void DsmNode::fetch_one_page(PageId page) { fetch_pages({page}); }

void DsmNode::set_prot(PageId page, vm::Prot prot) {
  PageMeta& pm = pages_[page];
  if (pm.prot == prot) return;
  region_.protect(page, 1, prot);
  pm.prot = prot;
  stats().mprotect_calls.add(1);
}

void DsmNode::set_prot_batch(std::vector<PageId> pages, vm::Prot prot) {
  std::erase_if(pages, [&](PageId p) { return pages_[p].prot == prot; });
  if (pages.empty()) return;
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  for (const PageId p : pages) pages_[p].prot = prot;
  region_.protect_pages(pages, prot);
  std::size_t runs = 1;
  for (std::size_t i = 1; i < pages.size(); ++i) {
    if (pages[i] != pages[i - 1] + 1) ++runs;
  }
  stats().mprotect_calls.add(runs);
}

std::map<NodeId, std::vector<DsmNode::FetchItem>> DsmNode::plan_fetch(
    const std::vector<PageId>& pages) {
  std::map<NodeId, std::vector<FetchItem>> plan;
  std::lock_guard<std::mutex> g(meta_mu_);

  for (const PageId page : pages) {
    PageMeta& pm = pages_[page];
    SDSM_ASSERT(pm.state == PageState::kInvalid);
    SDSM_ASSERT(!pm.pending.empty());

    // Sort the pending notices into an HB-consistent total order.
    std::vector<PendingNotice> order = pm.pending;
    std::sort(order.begin(), order.end(),
              [&](const PendingNotice& a, const PendingNotice& b) {
                const auto& ma = table_[a.ival.node].get(a.ival.seq);
                const auto& mb = table_[b.ival.node].get(b.ival.seq);
                return order_key(ma) < order_key(mb);
              });

    // Whole-page supersede rule: any pending interval that happened before
    // a pending WRITE_ALL interval is dead — the whole-page rewrite covers
    // every byte it touched (concurrent intervals touch disjoint bytes
    // under the data-race-free contract, so they survive).  This is also
    // exactly what every intermediate writer discarded, which keeps the
    // most-recent-modifier holder guarantee below sound.
    const auto meta_of = [&](const PendingNotice& pn) -> const IntervalMeta& {
      return table_[pn.ival.node].get(pn.ival.seq);
    };
    std::vector<PendingNotice> kept;
    kept.reserve(order.size());
    for (const PendingNotice& cand : order) {
      bool dead = false;
      for (const PendingNotice& w : order) {
        if (!w.whole_page || w.ival == cand.ival) continue;
        if (meta_of(w).vc.dominates(meta_of(cand).vc)) {
          dead = true;
          break;
        }
      }
      if (!dead) kept.push_back(cand);
    }
    SDSM_ASSERT(!kept.empty());

    // Most-recent-modifier assignment: find the maximal (undominated)
    // intervals; each maximal element is requested from its own creator,
    // and every dominated interval from the first maximal writer that
    // covers it — that writer applied (and cached) the interval's diff
    // before its own write, so one message pulls the whole stack.
    const std::size_t n = kept.size();
    std::vector<std::size_t> maximal;
    for (std::size_t i = 0; i < n; ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < n && !dominated; ++j) {
        if (j == i) continue;
        dominated = meta_of(kept[j]).vc.dominates(meta_of(kept[i]).vc);
      }
      if (!dominated) maximal.push_back(i);
    }
    SDSM_ASSERT(!maximal.empty());

    const auto add_to = [&](NodeId target, IntervalId ival) {
      auto& items = plan[target];
      if (items.empty() || items.back().page != page) {
        items.push_back(FetchItem{page, {}});
      }
      items.back().ivals.push_back(ival);
    };

    for (std::size_t i = 0; i < n; ++i) {
      NodeId target = kept[i].ival.node;  // fallback: its own creator
      for (const std::size_t m : maximal) {
        if (m == i) break;  // i is itself maximal
        if (meta_of(kept[m]).vc.dominates(meta_of(kept[i]).vc)) {
          target = kept[m].ival.node;
          break;
        }
      }
      SDSM_ASSERT(target != id_);
      SDSM_TRACE(page, "plan ival=(%u,%u) target=%u whole=%d", kept[i].ival.node,
                 kept[i].ival.seq, target, kept[i].whole_page ? 1 : 0);
      add_to(target, kept[i].ival);
    }
  }
  return plan;
}

void DsmNode::fetch_pages(const std::vector<PageId>& pages) {
  std::vector<PageId> sorted(pages);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  complete_fetch(post_fetch(std::move(sorted)));
}

net::Ticket DsmNode::post_get_diffs(NodeId target,
                                    const std::vector<FetchItem>& items) {
  Writer w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
  for (const FetchItem& it : items) {
    w.put<std::uint32_t>(it.page);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(it.ivals.size()));
    for (const IntervalId ival : it.ivals) {
      w.put<std::uint32_t>(ival.node);
      w.put<std::uint32_t>(ival.seq);
    }
  }
  net::Message msg;
  msg.type = kGetDiffs;
  msg.src = id_;
  msg.dst = target;
  msg.payload = w.take();
  return rt_.net_->post(std::move(msg));
}

DsmNode::PendingFetch DsmNode::post_fetch(std::vector<PageId> pages) {
  PendingFetch pf;
  if (pages.empty()) return pf;
  const Timer phase;
  pf.pages = std::move(pages);
  // One aggregated request per target node, each on the wire as soon as
  // it is planned.
  auto plan = plan_fetch(pf.pages);
  pf.tickets.reserve(plan.size());
  for (const auto& [target, items] : plan) {
    pf.tickets.push_back(post_get_diffs(target, items));
  }
  pf.plan_ns = static_cast<std::uint64_t>(phase.elapsed_s() * 1e9);
  return pf;
}

void DsmNode::complete_fetch(PendingFetch pf) {
  if (pf.empty()) return;
  const Timer phase;

  // Collect contributions from all replies.
  struct Contribution {
    IntervalId ival;
    std::vector<Diff> diffs;
  };
  std::map<PageId, std::vector<Contribution>> got;
  std::map<NodeId, std::vector<FetchItem>> retry;  // misses -> creators
  const Timer wait_timer;
  const auto drain_replies = [&](std::span<const net::Ticket> tickets,
                                 bool allow_miss) {
    for (net::Message& reply : rt_.net_->wait_all(tickets)) {
      SDSM_ASSERT(reply.type == kDiffsReply);
      Reader r(reply.payload);
      const auto npages = r.get<std::uint32_t>();
      for (std::uint32_t p = 0; p < npages; ++p) {
        const auto page = r.get<std::uint32_t>();
        const auto nivals = r.get<std::uint32_t>();
        for (std::uint32_t s = 0; s < nivals; ++s) {
          Contribution c;
          const auto node = r.get<std::uint32_t>();
          c.ival =
              IntervalId{static_cast<NodeId>(node), r.get<std::uint32_t>()};
          const auto ndiffs = r.get<std::uint32_t>();
          if (ndiffs == 0xffffffffu) {
            // Holder miss (see serve_get_diffs): fall back to the creator,
            // which cannot miss its own diffs.
            SDSM_ASSERT(allow_miss);
            SDSM_ASSERT(c.ival.node != id_ && c.ival.node != reply.src);
            auto& items = retry[c.ival.node];
            if (items.empty() || items.back().page != page) {
              items.push_back(FetchItem{page, {}});
            }
            items.back().ivals.push_back(c.ival);
            continue;
          }
          c.diffs.reserve(ndiffs);
          for (std::uint32_t d = 0; d < ndiffs; ++d) {
            c.diffs.push_back(Diff::from_bytes(r.get_vector<std::uint8_t>()));
          }
          got[page].push_back(std::move(c));
        }
      }
    }
  };
  drain_replies(pf.tickets, /*allow_miss=*/true);
  if (!retry.empty()) {
    std::vector<net::Ticket> retry_tickets;
    retry_tickets.reserve(retry.size());
    for (const auto& [target, items] : retry) {
      retry_tickets.push_back(post_get_diffs(target, items));
    }
    drain_replies(retry_tickets, /*allow_miss=*/false);
  }

  stats().t_wait_ns.add(static_cast<std::uint64_t>(wait_timer.elapsed_s() * 1e9));

  // Sort each page's contributions into HB order.  Only the interval-table
  // reads need meta_mu_; the byte work below runs without it so this node's
  // service thread stays responsive to other nodes' requests.
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    for (auto& [page, contribs] : got) {
      std::sort(contribs.begin(), contribs.end(),
                [&](const Contribution& a, const Contribution& b) {
                  const auto& ma = table_[a.ival.node].get(a.ival.seq);
                  const auto& mb = table_[b.ival.node].get(b.ival.seq);
                  return order_key(ma) < order_key(mb);
                });
    }
  }

  // Apply in HB order per page; patch dirty pages' twins as well so later
  // local diffs do not re-ship remote bytes.  Diffs land through the
  // always-writable mirror view: no protection flip is needed to apply.
  const Timer apply_timer;
  std::vector<PageId> to_read, to_rw;
  for (auto& [page, contribs] : got) {
    PageMeta& pm = pages_[page];
    std::span<std::byte> data(region_.mirror_ptr(page), region_.page_size());
    for (const Contribution& c : contribs) {
      for (const Diff& d : c.diffs) {
        SDSM_TRACE(page, "apply ival=(%u,%u) bytes=%zu dirty=%d", c.ival.node,
                   c.ival.seq, d.encoded_size(), pm.dirty ? 1 : 0);
        d.apply(data);
        if (pm.dirty && pm.twin) {
          d.apply(std::span<std::byte>(pm.twin.get(), region_.page_size()));
        }
        stats().diffs_applied.add(1);
      }
    }
    pm.pending.clear();
    if (pm.state == PageState::kInvalid) --invalid_pages_;
    if (policy_) {
      coherence::HeatTracker::bump_read(pm.read_heat, pm.write_heat,
                                        pm.heat_epoch, policy_->epoch());
    }
    if (pm.dirty) {
      pm.state = PageState::kReadWrite;  // restore write access
      to_rw.push_back(page);
    } else {
      pm.state = PageState::kReadOnly;
      to_read.push_back(page);
    }
  }
  stats().diff_apply_ns.add(
      static_cast<std::uint64_t>(apply_timer.elapsed_s() * 1e9));
  set_prot_batch(std::move(to_read), vm::Prot::kRead);
  set_prot_batch(std::move(to_rw), vm::Prot::kReadWrite);

  // Cache the applied diffs: this node is now a holder and can serve the
  // stacks to later requesters (most-recent-modifier fetching).
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    for (auto& [page, contribs] : got) {
      for (Contribution& c : contribs) {
        for (const Diff& d : c.diffs) diff_store_bytes_ += d.encoded_size();
        diff_store_[diff_key(page, c.ival.node, c.ival.seq)] =
            std::move(c.diffs);
      }
    }
  }

  stats().t_fetch_ns.add(pf.plan_ns +
                         static_cast<std::uint64_t>(phase.elapsed_s() * 1e9));

  // Pages whose every pending interval was superseded out of the plan can
  // still be sitting invalid with pending notices that nobody will send:
  // that only happens when the *entire* page plan collapsed, which the
  // supersede rule never produces (it always keeps at least the whole-page
  // interval itself).  Assert the invariant.
  for (const PageId page : pf.pages) {
    SDSM_ASSERT(pages_[page].state != PageState::kInvalid);
  }
}

// ---------------------------------------------------------------------------
// Twins and intervals
// ---------------------------------------------------------------------------

void DsmNode::pre_twin(PageId page, bool whole_page_mode) {
  PageMeta& pm = pages_[page];
  SDSM_ASSERT(pm.state != PageState::kInvalid);
  if (pm.dirty) {
    // Already twinned in this interval; nothing to set up.
    pm.state = PageState::kReadWrite;
    return;
  }
  if (whole_page_mode && config().write_all_enabled) {
    pm.write_all = true;
  } else {
    pm.twin = std::make_unique<std::byte[]>(region_.page_size());
    std::memcpy(pm.twin.get(), region_.mirror_ptr(page), region_.page_size());
    stats().twins_created.add(1);
  }
  pm.dirty = true;
  pm.state = PageState::kReadWrite;
  dirty_pages_.push_back(page);
}

std::optional<IntervalMeta> DsmNode::close_interval() {
  if (dirty_pages_.empty()) return std::nullopt;
  const Timer phase;

  const std::uint32_t seq = vc_.get(id_) + 1;
  IntervalMeta meta;
  meta.id = IntervalId{id_, seq};

  // Phase 1 (no lock): encode the diffs.  Twins and page bytes are
  // compute-thread-private; only the diff store and table need meta_mu_,
  // and keeping the encode outside it keeps the service thread responsive.
  struct Encoded {
    PageId page;
    Diff diff;
    bool whole;
  };
  std::vector<Encoded> encoded;
  std::vector<PageId> banked_only;  // early-diff pages (mods already stored)
  std::vector<PageId> downgrade;
  downgrade.reserve(dirty_pages_.size());
  const Timer create_timer;
  for (const PageId page : dirty_pages_) {
    PageMeta& pm = pages_[page];
    SDSM_ASSERT(pm.dirty);
    if (pm.state == PageState::kInvalid) {
      // Early-diff path: an acquire invalidated this dirty page mid-interval
      // and banked its modifications under this interval's key at that
      // moment.  The page is PROT_NONE, and it has no newer local writes by
      // construction — any write after the invalidation would have
      // re-validated it first.
      banked_only.push_back(page);
      pm.twin.reset();
      pm.dirty = false;
      pm.write_all = false;
      continue;
    }
    std::span<const std::byte> data(region_.mirror_ptr(page),
                                    region_.page_size());
    if (pm.write_all) {
      encoded.push_back(Encoded{page, Diff::whole(data), true});
    } else {
      Diff d = Diff::create(
          data, std::span<const std::byte>(pm.twin.get(), region_.page_size()),
          config().diff_engine);
      if (!d.empty()) {
        encoded.push_back(Encoded{page, std::move(d), false});
      } else {
        banked_only.push_back(page);  // counts only if previously banked
      }
    }
    pm.twin.reset();
    pm.dirty = false;
    pm.write_all = false;
    if (pm.state == PageState::kReadWrite) {
      pm.state = PageState::kReadOnly;
      downgrade.push_back(page);
    }
  }
  stats().diff_create_ns.add(
      static_cast<std::uint64_t>(create_timer.elapsed_s() * 1e9));
  set_prot_batch(std::move(downgrade), vm::Prot::kRead);
  dirty_pages_.clear();

  // Phase 2 (locked): bank the diffs and publish the interval.
  std::lock_guard<std::mutex> g(meta_mu_);
  for (Encoded& e : encoded) {
    SDSM_TRACE(e.page, "close seq=%u encoded=%zu whole=%d", seq,
               e.diff.encoded_size(), e.whole ? 1 : 0);
    WriteNotice wn;
    wn.page = e.page;
    wn.whole_page = e.whole;
    if (policy_) {
      // Adaptive coherence: publish the diff size for the write census,
      // and for classified pages push the encoded diff inside the notice
      // itself so readers skip the fetch round trip entirely.
      wn.diff_bytes = static_cast<std::uint32_t>(e.diff.encoded_size());
      if (policy_->should_inline(e.page)) {
        wn.inline_diff = e.diff.bytes();
        if (policy_->page_class(e.page) ==
            coherence::PageClass::kReplicated) {
          stats().replications.add(1);
        }
      }
      policy_->fold_write(e.page, id_, wn.diff_bytes);
    }
    diff_store_bytes_ += e.diff.encoded_size();
    diff_store_[diff_key(e.page, id_, seq)].push_back(std::move(e.diff));
    stats().diffs_created.add(1);
    meta.notices.push_back(std::move(wn));
  }
  for (const PageId page : banked_only) {
    SDSM_TRACE(page, "close banked seq=%u have=%d", seq,
               diff_store_.count(diff_key(page, id_, seq)) != 0 ? 1 : 0);
    if (diff_store_.count(diff_key(page, id_, seq)) != 0) {
      // The early-diff path (acquire-time invalidation of a dirty page)
      // already banked modifications for this interval.
      WriteNotice banked;
      banked.page = page;
      meta.notices.push_back(std::move(banked));
    }
  }
  if (meta.notices.empty()) return std::nullopt;

  vc_.bump(id_);
  SDSM_ASSERT(vc_.get(id_) == seq);
  meta.vc = vc_;
  SDSM_ASSERT(table_[id_].max_seq() == seq - 1);
  table_[id_].push(meta);
  stats().t_close_ns.add(static_cast<std::uint64_t>(phase.elapsed_s() * 1e9));
  return meta;
}

void DsmNode::process_metas(std::vector<IntervalMeta> metas) {
  if (metas.empty()) return;
  const Timer phase;
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    insert_metas_locked(metas);
  }
  // Apply notices in per-creator seq order; skip own intervals and metas
  // whose notices were already applied at an earlier acquire.
  std::sort(metas.begin(), metas.end(),
            [](const IntervalMeta& a, const IntervalMeta& b) {
              return std::tie(a.id.node, a.id.seq) <
                     std::tie(b.id.node, b.id.seq);
            });
  const std::uint32_t my_open_seq = vc_.get(id_) + 1;
  std::vector<PageId> invalidate;
  std::vector<PageId> touched;  // adaptive: candidates for eager apply
  for (IntervalMeta& m : metas) {
    if (m.id.node == id_) continue;
    if (m.id.seq <= applied_vc_.get(m.id.node)) continue;
    SDSM_ASSERT(m.id.seq == applied_vc_.get(m.id.node) + 1);
    applied_vc_.set(m.id.node, m.id.seq);
    for (WriteNotice& wn : m.notices) {
      PageMeta& pm = pages_[wn.page];
      if (!pm.watchers.empty()) notice_watched_page(wn.page);
      if (policy_) {
        // Census fold happens exactly once per (page, creator, seq) — the
        // applied_vc_ guard above — and, because every node folds a
        // barrier's intervals before the next policy tick, at the same
        // epoch everywhere.
        policy_->fold_write(wn.page, m.id.node, wn.diff_bytes);
        touched.push_back(wn.page);
      }
      pm.pending.push_back(
          PendingNotice{m.id, wn.whole_page, std::move(wn.inline_diff)});
      SDSM_TRACE(wn.page, "notice ival=(%u,%u) state=%d dirty=%d", m.id.node,
                 m.id.seq, static_cast<int>(pm.state), pm.dirty ? 1 : 0);
      if (pm.state == PageState::kInvalid) continue;
      if (pm.dirty) {
        // Acquire-time invalidation of a locally dirty page (false
        // sharing under locks): bank the local modifications now so the
        // remote diffs can merge underneath them later.
        SDSM_ASSERT(!pm.write_all);  // WRITE_ALL pages are barrier-ordered
        const Timer create_timer;
        std::span<const std::byte> data(region_.page_ptr(wn.page),
                                        region_.page_size());
        Diff d = Diff::create(data,
                              std::span<const std::byte>(pm.twin.get(),
                                                         region_.page_size()),
                              config().diff_engine);
        stats().diff_create_ns.add(
            static_cast<std::uint64_t>(create_timer.elapsed_s() * 1e9));
        SDSM_TRACE(wn.page, "early-diff open_seq=%u bytes=%zu", my_open_seq,
                   d.encoded_size());
        if (!d.empty()) {
          std::lock_guard<std::mutex> g(meta_mu_);
          diff_store_bytes_ += d.encoded_size();
          diff_store_[diff_key(wn.page, id_, my_open_seq)].push_back(std::move(d));
          stats().diffs_created.add(1);
        }
        std::memcpy(pm.twin.get(), region_.page_ptr(wn.page),
                    region_.page_size());
      }
      pm.state = PageState::kInvalid;
      ++invalid_pages_;
      invalidate.push_back(wn.page);
      stats().pages_invalidated.add(1);
    }
  }
  set_prot_batch(std::move(invalidate), vm::Prot::kNone);
  if (policy_ && !touched.empty()) eager_apply_inline(std::move(touched));
  stats().t_metas_ns.add(static_cast<std::uint64_t>(phase.elapsed_s() * 1e9));
}

void DsmNode::eager_apply_inline(std::vector<PageId> pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  // Pass 1 (locked, interval-table reads): keep only pages whose entire
  // pending stack arrived with inline diffs, and sort each stack into HB
  // order.  Mixed stacks — older notices predate the page's classification
  // — go through the normal fetch path untouched.
  std::vector<PageId> ready;
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    for (const PageId page : pages) {
      PageMeta& pm = pages_[page];
      if (pm.state != PageState::kInvalid || pm.pending.empty()) continue;
      const bool all_inline =
          std::all_of(pm.pending.begin(), pm.pending.end(),
                      [](const PendingNotice& pn) {
                        return !pn.inline_diff.empty();
                      });
      if (!all_inline) continue;
      // Adaptive runs are barrier-only, and the local interval closed
      // before the arrival that delivered these notices, so the page
      // cannot be locally dirty here.
      SDSM_ASSERT(!pm.dirty);
      std::sort(pm.pending.begin(), pm.pending.end(),
                [&](const PendingNotice& a, const PendingNotice& b) {
                  return order_key(table_[a.ival.node].get(a.ival.seq)) <
                         order_key(table_[b.ival.node].get(b.ival.seq));
                });
      ready.push_back(page);
    }
  }
  if (ready.empty()) return;

  // Pass 2 (no lock): apply through the always-writable mirror, exactly
  // like complete_fetch.  A whole-page diff anywhere in the stack simply
  // overwrites what earlier entries wrote; entries HB-after it are
  // disjoint from it under the data-race-free contract.
  const Timer apply_timer;
  std::vector<PageId> to_read;
  to_read.reserve(ready.size());
  for (const PageId page : ready) {
    PageMeta& pm = pages_[page];
    std::span<std::byte> data(region_.mirror_ptr(page), region_.page_size());
    for (const PendingNotice& pn : pm.pending) {
      const Diff d = Diff::from_bytes(pn.inline_diff);
      d.apply(data);
      stats().diffs_applied.add(1);
    }
    pm.state = PageState::kReadOnly;
    --invalid_pages_;
    to_read.push_back(page);
  }
  stats().diff_apply_ns.add(
      static_cast<std::uint64_t>(apply_timer.elapsed_s() * 1e9));
  set_prot_batch(std::move(to_read), vm::Prot::kRead);

  // Pass 3 (locked): cache the applied diffs — this node is now a holder
  // for these stacks (most-recent-modifier fetching), same as after a
  // demand fetch.  The caching completes before this node's next barrier
  // arrival, so no peer can learn an interval that makes this node a
  // fetch target before the bytes are servable.
  std::lock_guard<std::mutex> g(meta_mu_);
  for (const PageId page : ready) {
    PageMeta& pm = pages_[page];
    for (PendingNotice& pn : pm.pending) {
      Diff d = Diff::from_bytes(std::move(pn.inline_diff));
      diff_store_bytes_ += d.encoded_size();
      diff_store_[diff_key(page, pn.ival.node, pn.ival.seq)].push_back(
          std::move(d));
    }
    pm.pending.clear();
  }
}

void DsmNode::flush_all_pending() {
  std::vector<PageId> pages;
  for (PageId p = 0; p < pages_.size(); ++p) {
    if (!pages_[p].pending.empty()) pages.push_back(p);
  }
  stats().gc_pages_flushed.add(pages.size());
  fetch_pages(pages);
}

void DsmNode::gc_drop() {
  std::lock_guard<std::mutex> g(meta_mu_);
  for (NodeId n = 0; n < num_nodes(); ++n) {
    // The preceding barrier shipped every interval up to the global clock,
    // so dropping that prefix cannot orphan a future lookup.  The table may
    // already hold *newer* metas — a fast peer can leave the GC rendezvous,
    // create intervals, and push them to this node's service thread before
    // this compute thread reaches gc_drop — so only the covered prefix is
    // dropped.
    SDSM_ASSERT(table_[n].max_seq() >= vc_.get(n));
    table_[n].drop_through(vc_.get(n));
  }
  diff_store_.clear();
  diff_store_bytes_ = 0;
  stats().gc_runs.add(1);
}

void DsmNode::insert_metas_locked(const std::vector<IntervalMeta>& metas) {
  // Per-creator seq order so the dense per-creator vectors stay contiguous.
  std::vector<const IntervalMeta*> ordered;
  ordered.reserve(metas.size());
  for (const auto& m : metas) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const IntervalMeta* a, const IntervalMeta* b) {
              return std::tie(a->id.node, a->id.seq) <
                     std::tie(b->id.node, b->id.seq);
            });
  for (const IntervalMeta* m : ordered) {
    auto& log = table_[m->id.node];
    if (m->id.seq <= log.max_seq()) continue;  // duplicate
    SDSM_ASSERT(m->id.seq == log.max_seq() + 1);  // senders never leave gaps
    log.push(*m);
  }
}

std::vector<IntervalMeta> DsmNode::metas_not_covered_locked(
    const VectorClock& bound) {
  std::vector<IntervalMeta> out;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const auto& log = table_[n];
    for (std::uint32_t s = std::max(bound.get(n), log.base) + 1;
         s <= log.max_seq(); ++s) {
      out.push_back(log.get(s));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Service side
// ---------------------------------------------------------------------------

void DsmNode::service_loop() {
  for (;;) {
    net::Message msg = rt_.net_->recv(net::Port::kService, id_);
    switch (msg.type) {
      case net::kControlStop:
        return;
      case net::kControlSync:
        serve_control_sync(msg);
        break;
      case kGetDiffs:
        serve_get_diffs(msg);
        break;
      case kLockAcquire:
        serve_lock_acquire(msg);
        break;
      case kLockRelease:
        serve_lock_release(msg);
        break;
      case kBarrierArrive:
        serve_barrier_arrive(msg);
        break;
      case kAppData: {
        std::lock_guard<std::mutex> g(inbox_mu_);
        inbox_.emplace_back(msg.src, std::move(msg.payload));
        inbox_cv_.notify_one();
        break;
      }
      default:
        SDSM_UNREACHABLE("unexpected message type on service port");
    }
  }
}

void DsmNode::send_app_data(NodeId dst, std::vector<std::uint8_t> payload) {
  SDSM_ASSERT(dst != id_);
  net::Message msg;
  msg.type = kAppData;
  msg.src = id_;
  msg.dst = dst;
  msg.payload = std::move(payload);
  rt_.net_->send(net::Port::kService, std::move(msg));
}

std::pair<NodeId, std::vector<std::uint8_t>> DsmNode::recv_app_data() {
  std::unique_lock<std::mutex> g(inbox_mu_);
  inbox_cv_.wait(g, [this] { return !inbox_.empty(); });
  auto front = std::move(inbox_.front());
  inbox_.pop_front();
  return front;
}

void DsmNode::serve_get_diffs(const net::Message& msg) {
  Reader r(msg.payload);
  Writer w;
  const auto npages = r.get<std::uint32_t>();
  w.put<std::uint32_t>(npages);
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    for (std::uint32_t p = 0; p < npages; ++p) {
      const auto page = r.get<std::uint32_t>();
      const auto nivals = r.get<std::uint32_t>();
      w.put<std::uint32_t>(page);
      w.put<std::uint32_t>(nivals);
      for (std::uint32_t k = 0; k < nivals; ++k) {
        const auto node = r.get<std::uint32_t>();
        const auto seq = r.get<std::uint32_t>();
        // Usually our own diff or one we applied and cached (the most-
        // recent-modifier rule).  One legitimate miss exists: we modified
        // the page, then an acquire delivered this interval's notice while
        // our copy was dirty (early-diff banking) and we never touched the
        // page again before closing — our interval covers the notice by
        // vector clock, yet its diff is still pending here.  Report the
        // miss; the requester falls back to the interval's creator.
        const auto it =
            diff_store_.find(diff_key(page, static_cast<NodeId>(node), seq));
        w.put<std::uint32_t>(node);
        w.put<std::uint32_t>(seq);
        if (it == diff_store_.end()) {
          SDSM_ASSERT(static_cast<NodeId>(node) != id_);  // own diffs exist
          w.put<std::uint32_t>(0xffffffffu);  // miss marker
          continue;
        }
        w.put<std::uint32_t>(static_cast<std::uint32_t>(it->second.size()));
        for (const Diff& d : it->second) {
          w.put_span<std::uint8_t>(d.bytes());
          stats().diff_bytes.add(d.encoded_size());
          if (d.is_whole(region_.page_size())) stats().whole_pages.add(1);
        }
      }
    }
  }
  net::Message reply;
  reply.type = kDiffsReply;
  reply.src = id_;
  reply.dst = msg.src;
  reply.request_id = msg.request_id;
  reply.payload = w.take();
  rt_.net_->send(net::Port::kReply, std::move(reply));
}

// ---------------------------------------------------------------------------
// DsmRuntime
// ---------------------------------------------------------------------------

DsmRuntime::DsmRuntime(DsmConfig config)
    : config_(config),
      net_(net::make_transport(config.transport, config.num_nodes,
                               config.wire)),
      heap_(config.region_bytes, vm::system_page_size()) {
  SDSM_REQUIRE(config.num_nodes >= 1);
  SDSM_REQUIRE_MSG(config.mode == DeployMode::kThreads,
                   "DsmRuntime: process mode needs the transport ctor");
  nodes_.reserve(config.num_nodes);
  for (NodeId n = 0; n < config.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<DsmNode>(*this, n));
    local_ids_.push_back(n);
  }
}

DsmRuntime::DsmRuntime(DsmConfig config,
                       std::unique_ptr<net::Transport> transport)
    : config_(config),
      net_(std::move(transport)),
      heap_(config.region_bytes, vm::system_page_size()) {
  SDSM_REQUIRE(config.num_nodes >= 1);
  SDSM_REQUIRE_MSG(config.mode == DeployMode::kProcesses,
                   "DsmRuntime: transport ctor is for process mode");
  SDSM_REQUIRE(net_ != nullptr && net_->num_nodes() == config.num_nodes);
  SDSM_REQUIRE(config.local_node < config.num_nodes);
  // Only the hosted node gets a region + service thread; the rest of the
  // slots stay null so stray cross-node access trips node()'s check
  // instead of silently reading another process's memory.
  nodes_.resize(config.num_nodes);
  nodes_[config.local_node] = std::make_unique<DsmNode>(*this,
                                                        config.local_node);
  local_ids_.push_back(config.local_node);
}

DsmRuntime::~DsmRuntime() {
  // Stop exactly the services hosted here: in process mode a blanket
  // stop_all_services() would shoot down peers that are still serving
  // their own teardown-time fetches.
  for (const NodeId n : local_ids_) net_->stop_service(n);
  for (auto& node : nodes_) {
    if (node != nullptr && node->service_thread_.joinable()) {
      node->service_thread_.join();
    }
  }
}

void DsmRuntime::run(const std::function<void(DsmNode&)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(local_ids_.size());
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    workers.emplace_back([&body, &node] {
      body(*node);
      // Still on the node's compute thread, with every peer's service
      // thread alive: the only safe point to settle a prefetch the body's
      // early exit left on the wire.
      node->drain_prefetch();
    });
  }
  for (auto& t : workers) t.join();
}

void DsmRuntime::reset_stats() {
  stats_.reset();
  net_->stats().reset();
}

void DsmNode::reset_for_reuse() {
  // No compute thread exists and the fabric is quiescent (reset_arena's
  // contract), so the compute-thread-private state can be reset from the
  // host thread.
  SDSM_REQUIRE(prefetch_.empty());
  region_.reset(vm::Prot::kRead);
  // PageMeta owns a unique_ptr twin, so the vector cannot be assign()ed;
  // move-assign a default into each slot instead.
  for (auto& pm : pages_) pm = PageMeta{};
  vc_ = VectorClock(rt_.config().num_nodes);
  applied_vc_ = VectorClock(rt_.config().num_nodes);
  dirty_pages_.clear();
  schedules_.clear();
  // Warm engines must not carry heat, census, or directory state from one
  // job into the next (PageMeta heat was reset with the metas above).
  if (policy_) policy_->reset();
  invalid_pages_ = 0;
  {
    std::lock_guard<std::mutex> g(meta_mu_);
    table_.assign(rt_.config().num_nodes, MetaLog{});
    diff_store_.clear();
    diff_store_bytes_ = 0;
    last_seen_vc_.assign(rt_.config().num_nodes,
                         VectorClock(rt_.config().num_nodes));
    lock_homes_.clear();
    barrier_mgr_ = BarrierMgr{};
    fence_waiters_.clear();
  }
  {
    std::lock_guard<std::mutex> g(inbox_mu_);
    inbox_.clear();
  }
}

void DsmRuntime::reset_arena() {
  for (auto& node : nodes_) {
    if (node != nullptr) node->reset_for_reuse();
  }
  heap_.reset();
}

}  // namespace sdsm::core
