// Fluent typed builder for Validate access descriptors.
//
// The paper's Figure 3 passes descriptor structs to Validate; assembling
// them field by field (or through the original direct_desc/indirect_desc
// free functions, which survive as thin shims over this builder) is easy to
// get silently wrong — a forgotten layout, an indirection array that is not
// int32, a WRITE_ALL on an indirect section.  The builder names each
// ingredient, checks the combination at finalization, and reads like the
// descriptor it produces:
//
//   DescriptorBuilder::array(x, layout)         // the data array accessed
//       .section(RegularSection::dense1d(lo, hi))
//       .schedule(3)
//       .read();                                // -> AccessDescriptor
//
//   DescriptorBuilder::array(forces, layout)
//       .via(list, list_layout, list_section)   // indirection array
//       .schedule(4)
//       .read_write();
#pragma once

#include <cstdint>

#include "src/core/dsm.hpp"
#include "src/core/shmalloc.hpp"
#include "src/rsd/regular_section.hpp"

namespace sdsm::core {

class DescriptorBuilder {
 public:
  /// Starts a descriptor for the shared data array being accessed.
  static DescriptorBuilder array(GlobalAddr base, std::size_t elem_size,
                                 rsd::ArrayLayout layout);

  /// Typed form: element size comes from the handle.
  template <typename T>
  static DescriptorBuilder array(const GlobalArray<T>& a,
                                 rsd::ArrayLayout layout) {
    return array(a.addr, sizeof(T), std::move(layout));
  }

  /// Typed 1-D form: the layout is the dense [0, count) line.
  template <typename T>
  static DescriptorBuilder array(const GlobalArray<T>& a) {
    return array(a.addr, sizeof(T),
                 rsd::ArrayLayout{{static_cast<std::int64_t>(a.count)}, true});
  }

  /// Direct section of the data array itself.
  DescriptorBuilder& section(rsd::RegularSection s);

  /// Sugar for the common dense 1-D section [lo, hi] of the data array.
  DescriptorBuilder& elements(std::int64_t lo, std::int64_t hi) {
    return section(rsd::RegularSection::dense1d(lo, hi));
  }

  /// Makes the descriptor INDIRECT: `ind_section` describes the slice of
  /// the indirection array whose *values* (int32 element indices) select
  /// the data-array elements.
  DescriptorBuilder& via(GlobalAddr ind_base, rsd::ArrayLayout ind_layout,
                         rsd::RegularSection ind_section);

  /// Typed form: only int32 indirection arrays are accepted, matching the
  /// runtime's Read_indices contract.
  DescriptorBuilder& via(const GlobalArray<std::int32_t>& ind,
                         rsd::ArrayLayout ind_layout,
                         rsd::RegularSection ind_section) {
    return via(ind.addr, std::move(ind_layout), std::move(ind_section));
  }

  /// Identifier of the cached page set (pages[sch] in Figure 3).
  DescriptorBuilder& schedule(std::uint32_t id);

  // Finalizers, one per access mode of Figure 3.  Each validates the
  // combination: a section must have been given, its rank must match the
  // owning array's layout, and the whole-section modes are only meaningful
  // for direct sections.
  AccessDescriptor read() const { return finish(Access::kRead); }
  AccessDescriptor write() const { return finish(Access::kWrite); }
  AccessDescriptor read_write() const { return finish(Access::kReadWrite); }
  AccessDescriptor write_all() const { return finish(Access::kWriteAll); }
  AccessDescriptor read_write_all() const {
    return finish(Access::kReadWriteAll);
  }

  /// Generic finalizer for access modes chosen at run time.
  AccessDescriptor finish(Access access) const;

 private:
  AccessDescriptor d_;
  bool have_section_ = false;
};

}  // namespace sdsm::core
