// Vector timestamps ordering the intervals of lazy release consistency.
//
// Component vc[n] counts the intervals of node n that this timestamp
// covers.  An interval (n, s) "happened before" a state with clock vc iff
// vc[n] >= s.  Interval metadata carries the creator's clock at creation;
// two intervals are HB-ordered iff one clock dominates the other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/buffer.hpp"
#include "src/common/types.hpp"

namespace sdsm::core {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::uint32_t num_nodes) : c_(num_nodes, 0) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(c_.size()); }

  std::uint32_t get(NodeId n) const {
    SDSM_REQUIRE(n < c_.size());
    return c_[n];
  }
  void set(NodeId n, std::uint32_t v) {
    SDSM_REQUIRE(n < c_.size());
    c_[n] = v;
  }
  void bump(NodeId n) {
    SDSM_REQUIRE(n < c_.size());
    ++c_[n];
  }

  /// True when this clock covers interval (n, seq).
  bool covers(NodeId n, std::uint32_t seq) const { return get(n) >= seq; }

  /// Componentwise maximum.
  void merge(const VectorClock& other);

  /// True when every component of this clock >= the other's ("other
  /// happened before or equals this").
  bool dominates(const VectorClock& other) const;

  bool concurrent_with(const VectorClock& other) const {
    return !dominates(other) && !other.dominates(*this);
  }

  /// Sum of components: a monotone function of the happened-before order,
  /// used to build an HB-consistent total order for diff application.
  std::uint64_t total() const;

  void serialize(Writer& w) const;
  static VectorClock deserialize(Reader& r);

  std::string to_string() const;

  bool operator==(const VectorClock&) const = default;

 private:
  std::vector<std::uint32_t> c_;
};

}  // namespace sdsm::core
