#include "src/core/interval.hpp"

namespace sdsm::core {

void IntervalMeta::serialize(Writer& w) const {
  w.put<std::uint32_t>(id.node);
  w.put<std::uint32_t>(id.seq);
  vc.serialize(w);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(notices.size()));
  for (const auto& n : notices) {
    w.put<std::uint32_t>(n.page);
    w.put<std::uint8_t>(n.whole_page ? 1 : 0);
  }
}

IntervalMeta IntervalMeta::deserialize(Reader& r) {
  IntervalMeta m;
  m.id.node = r.get<std::uint32_t>();
  m.id.seq = r.get<std::uint32_t>();
  m.vc = VectorClock::deserialize(r);
  const auto n = r.get<std::uint32_t>();
  m.notices.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WriteNotice wn;
    wn.page = r.get<std::uint32_t>();
    wn.whole_page = r.get<std::uint8_t>() != 0;
    m.notices.push_back(wn);
  }
  return m;
}

void serialize_metas(Writer& w, const std::vector<IntervalMeta>& metas) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(metas.size()));
  for (const auto& m : metas) m.serialize(w);
}

std::vector<IntervalMeta> deserialize_metas(Reader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<IntervalMeta> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(IntervalMeta::deserialize(r));
  }
  return out;
}

}  // namespace sdsm::core
