#include "src/core/interval.hpp"

namespace sdsm::core {

void IntervalMeta::serialize(Writer& w) const {
  w.put<std::uint32_t>(id.node);
  w.put<std::uint32_t>(id.seq);
  vc.serialize(w);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(notices.size()));
  for (const auto& n : notices) {
    w.put<std::uint32_t>(n.page);
    // Flag byte: bit 0 = whole page, bit 1 = inline diff follows, bit 2 =
    // census size field follows.  The static policy never sets bits 1-2,
    // so its encoding is byte-for-byte the historical {0, 1} byte.
    std::uint8_t flags = n.whole_page ? 1 : 0;
    if (!n.inline_diff.empty()) flags |= 2;
    if (n.inline_diff.empty() && n.diff_bytes != 0) flags |= 4;
    w.put<std::uint8_t>(flags);
    if (flags & 2) {
      w.put<std::uint32_t>(static_cast<std::uint32_t>(n.inline_diff.size()));
      w.put_raw(n.inline_diff.data(), n.inline_diff.size());
    } else if (flags & 4) {
      w.put<std::uint32_t>(n.diff_bytes);
    }
  }
}

IntervalMeta IntervalMeta::deserialize(Reader& r) {
  IntervalMeta m;
  m.id.node = r.get<std::uint32_t>();
  m.id.seq = r.get<std::uint32_t>();
  m.vc = VectorClock::deserialize(r);
  const auto n = r.get<std::uint32_t>();
  m.notices.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WriteNotice wn;
    wn.page = r.get<std::uint32_t>();
    const auto flags = r.get<std::uint8_t>();
    wn.whole_page = (flags & 1) != 0;
    if (flags & 2) {
      const auto size = r.get<std::uint32_t>();
      wn.inline_diff.resize(size);
      r.get_raw(wn.inline_diff.data(), size);
      wn.diff_bytes = size;
    } else if (flags & 4) {
      wn.diff_bytes = r.get<std::uint32_t>();
    }
    m.notices.push_back(std::move(wn));
  }
  return m;
}

void serialize_metas(Writer& w, const std::vector<IntervalMeta>& metas) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(metas.size()));
  for (const auto& m : metas) m.serialize(w);
}

std::vector<IntervalMeta> deserialize_metas(Reader& r) {
  const auto n = r.get<std::uint32_t>();
  std::vector<IntervalMeta> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(IntervalMeta::deserialize(r));
  }
  return out;
}

}  // namespace sdsm::core
