// Intervals and write notices: the bookkeeping units of lazy release
// consistency.  A node's execution is divided into intervals delimited by
// release operations (lock releases, barrier arrivals).  Closing an interval
// produces one write notice per page modified during it; the notices travel
// with synchronization messages and invalidate remote copies at acquire
// time.  The diffs themselves stay with the creator until demanded.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/buffer.hpp"
#include "src/common/types.hpp"
#include "src/core/vector_clock.hpp"

namespace sdsm::core {

struct IntervalId {
  NodeId node = 0;
  std::uint32_t seq = 0;  ///< 1-based per-node interval counter

  bool operator==(const IntervalId&) const = default;
  auto operator<=>(const IntervalId&) const = default;
};

struct WriteNotice {
  PageId page = 0;
  /// True when the creator rewrote the page in its entirety (WRITE_ALL):
  /// the stored "diff" is the whole page and supersedes older diffs.
  bool whole_page = false;
  /// Adaptive coherence only.  When the policy engine has classified the
  /// page, the creator embeds the encoded diff right here so readers can
  /// apply it at barrier release instead of faulting and fetching.  Empty
  /// under the static policy, where the notice wire format is unchanged.
  std::vector<std::uint8_t> inline_diff;
  /// Encoded size of the interval's diff for this page; feeds the write
  /// census that classifies pages.  0 under the static policy.
  std::uint32_t diff_bytes = 0;
};

/// Metadata describing one closed interval: identity, creation timestamp,
/// and the pages it modified.  Shipped inside synchronization messages;
/// kept by every node that has learned of the interval.
struct IntervalMeta {
  IntervalId id;
  VectorClock vc;  ///< creator's clock *after* closing the interval
  std::vector<WriteNotice> notices;

  void serialize(Writer& w) const;
  static IntervalMeta deserialize(Reader& r);
};

/// Serializes a batch of interval metas.
void serialize_metas(Writer& w, const std::vector<IntervalMeta>& metas);
std::vector<IntervalMeta> deserialize_metas(Reader& r);

/// HB-consistent total-order key: sort by (vc.total, node, seq).  If
/// interval a happened before b then key(a) < key(b); concurrent intervals
/// order arbitrarily but deterministically.
struct IntervalOrderKey {
  std::uint64_t vc_total;
  NodeId node;
  std::uint32_t seq;

  auto operator<=>(const IntervalOrderKey&) const = default;
};

inline IntervalOrderKey order_key(const IntervalMeta& m) {
  return IntervalOrderKey{m.vc.total(), m.id.node, m.id.seq};
}

}  // namespace sdsm::core
