// TreadMarks-backed execution of irregular kernels, in the paper's two
// configurations: base (demand paging does all the communication) and
// optimized (compiler-driven Validate aggregation).
//
// In optimized mode the backend does not hand-write its Validate calls for
// the compute loop: every KernelSpec shares one mini-Fortran shape (K
// references per item through LIST select the X reads and F reductions),
// so that generic kernel is run through the real front-end once — parse,
// section analysis, Validate insertion — and the resulting statement is
// lowered to runtime descriptors with each node's loop bounds.  This is
// the paper's Parascope -> TreadMarks tool path, applied uniformly to
// every workload the API hosts.
#pragma once

#include "src/api/runtime.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::api {

struct RunSession;

class TmkBackend final : public IrregularRuntime {
 public:
  TmkBackend(std::uint32_t num_nodes, bool optimized, BackendOptions options)
      : TmkBackend(num_nodes,
                   optimized ? Backend::kTmkOptimized : Backend::kTmkBase,
                   options) {}

  /// Any DSM-substrate backend kind: kTmkBase, kTmkOptimized, or kHybrid
  /// (the mixed per-region plan — see src/api/plan/dsm_driver.hpp).
  TmkBackend(std::uint32_t num_nodes, Backend kind, BackendOptions options)
      : num_nodes_(num_nodes), kind_(kind), options_(options) {}

  Backend backend() const override { return kind_; }
  std::uint32_t num_nodes() const override { return num_nodes_; }

  KernelResult run(const KernelSpec<double>& spec) override;
  KernelResult run(const KernelSpec<double3>& spec) override;

  /// Executes on a caller-owned (long-lived) runtime instead of building a
  /// fresh one: the serving path.  The runtime must match this backend's
  /// node count and have an empty shared heap (reset_arena() between
  /// jobs).  `session`, when non-null, supplies the schedule-cache hooks
  /// (src/api/reuse.hpp); statistics are delta-scoped, so the runtime's
  /// cumulative counters are never reset.
  KernelResult run_on(core::DsmRuntime& rt, const KernelSpec<double>& spec,
                      RunSession* session);
  KernelResult run_on(core::DsmRuntime& rt, const KernelSpec<double3>& spec,
                      RunSession* session);

  /// The DsmConfig run() would build from these options — exposed so a
  /// serving engine constructs its long-lived runtime identically.
  static core::DsmConfig dsm_config(std::uint32_t num_nodes,
                                    const BackendOptions& options);

 private:
  std::uint32_t num_nodes_;
  Backend kind_;
  BackendOptions options_;
};

}  // namespace sdsm::api
