// The backend-agnostic irregular-kernel abstraction (sdsm::api).
//
// An irregular kernel, in the sense of the paper's Figure 1, is:
//
//   x : T[num_elements]    state array, block-partitioned over the nodes
//   f : T[num_elements]    per-step contribution (reduction) array
//   items                  this node's slice of the indirection structure:
//                          each item names `arity` global element indices
//   compute                the per-step loop body: reads x at the item
//                          references, accumulates into f at the same
//   update                 the owner update x[i] op= f[i] after reduction
//
// A KernelSpec describes that structure once; each backend executes it its
// own way — demand paging (Tmk base), compiler-style Validate prefetch and
// WRITE_ALL pipelined reduction (Tmk optimized), or inspector/executor
// gather/scatter over ghost regions (CHAOS).  The body is written against
// *localized* int32 references: global indices on the DSM backends, local +
// ghost offsets on CHAOS — the remapping CHAOS performs is invisible to the
// kernel author.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/api/backend.hpp"
#include "src/common/assert.hpp"
#include "src/common/types.hpp"
#include "src/common/vec.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::api {

/// Per-node handle the kernel callbacks receive.  Backends implement it
/// over DsmNode / ChaosNode.
class IrregularNode {
 public:
  virtual ~IrregularNode() = default;
  virtual NodeId id() const = 0;
  virtual std::uint32_t num_nodes() const = 0;
  /// Global barrier over all nodes of the backend.
  virtual void barrier() = 0;
};

/// One node's work items, as produced by KernelSpec::build_items: a
/// flattened item-major list of global element references (`arity` per
/// item) plus an optional per-item scalar payload (e.g. an edge weight).
struct WorkItems {
  std::vector<std::int64_t> refs;
  std::vector<double> payload;
};

/// Everything the per-step body sees.  All references are localized by the
/// backend; the body must index `x` and `f` only through `refs`.
template <typename T>
struct KernelCtx {
  std::span<const std::int32_t> refs;  ///< localized, item-major
  std::span<const double> payload;     ///< per-item payload (may be empty)
  std::span<const T> x;                ///< state, indexed by localized ref
  std::span<T> f;                      ///< accumulator, same indexing
  std::size_t arity = 0;

  std::size_t num_items() const { return arity == 0 ? 0 : refs.size() / arity; }
};

/// The kernel description — the single thing an application writes.
template <typename T>
struct KernelSpec {
  std::string name;

  /// Global problem shape: element count and the contiguous per-node
  /// partition (owner_range[p] is node p's block; ranges must cover
  /// [0, num_elements) in ascending node order).
  std::int64_t num_elements = 0;
  std::vector<part::Range> owner_range;
  std::vector<T> initial_state;  ///< size num_elements

  int num_steps = 1;     ///< timed steps
  int warmup_steps = 0;  ///< untimed leading steps (one-time costs land here)
  /// Rebuild the indirection structure every this many steps; 0 means the
  /// structure is static and built once before the first step.
  int update_interval = 0;

  std::size_t arity = 0;                ///< global references per item
  std::int64_t max_items_per_node = 0;  ///< capacity bound for the backends
  /// True when build_items reads the current state (all_x): the backends
  /// then materialize a coherent global view first (Validate prefetch /
  /// allgather).  Static structures leave it false.
  bool rebuild_reads_state = false;

  /// Builds this node's items from the current global state view (all_x is
  /// empty unless rebuild_reads_state).  Must be deterministic.
  std::function<WorkItems(IrregularNode&, std::span<const T> all_x)>
      build_items;

  /// The per-step loop body.
  std::function<void(IrregularNode&, const KernelCtx<T>&)> compute;

  /// Owner update after the reduction; spans are the node's owned slices of
  /// x and f.  Null means no update phase.
  std::function<void(std::span<T> x_owned, std::span<const T> f_owned)> update;

  /// Order-insensitive digest of an owned slice; backends sum it across
  /// nodes into KernelResult::checksum.
  std::function<double(std::span<const T> x_owned)> checksum;

  /// True when the indirection structure is (re)built at this step — the
  /// single cadence both backends must share for cross-backend parity.
  bool rebuild_at(int global_step) const {
    return update_interval > 0 ? global_step % update_interval == 0
                               : global_step == 0;
  }

  void require_valid(std::uint32_t nprocs) const {
    SDSM_REQUIRE(num_elements > 0);
    SDSM_REQUIRE(owner_range.size() == nprocs);
    SDSM_REQUIRE(initial_state.size() ==
                 static_cast<std::size_t>(num_elements));
    SDSM_REQUIRE(arity > 0 && max_items_per_node > 0);
    SDSM_REQUIRE(num_elements < INT32_MAX);  // refs localize to int32
    SDSM_REQUIRE(build_items && compute && checksum);
    std::int64_t covered = 0;
    for (const part::Range& r : owner_range) {
      SDSM_REQUIRE(r.begin == covered && r.end >= r.begin);
      covered = r.end;
    }
    SDSM_REQUIRE(covered == num_elements);
  }
};

/// TreadMarks-side protocol counters surfaced for tests and ablations
/// (zero for the CHAOS backend).  Counted over the timed steps only.
struct TmkCounters {
  std::uint64_t validate_calls = 0;
  std::uint64_t validate_recomputes = 0;  ///< Read_indices executions
  std::uint64_t read_faults = 0;
  std::uint64_t pages_prefetched = 0;
  std::uint64_t twins_created = 0;
  std::uint64_t whole_pages = 0;
  std::uint64_t diff_bytes = 0;
};

/// Result of one kernel execution, uniform across backends.
struct KernelResult {
  Backend backend = Backend::kChaos;
  double checksum = 0;
  double seconds = 0;  ///< timed steps, max over nodes
  std::uint64_t messages = 0;
  double megabytes = 0;
  /// Per-node overhead of keeping the communication structure current:
  /// inspector time on CHAOS, Read_indices scan time on Tmk.
  double overhead_seconds = 0;
  std::int64_t rebuilds = 0;  ///< item-list rebuilds (= inspector runs)
  TmkCounters tmk;
};

/// Owner of global element g under a contiguous partition (binary search).
inline NodeId owner_of(const std::vector<part::Range>& owner_range,
                       std::int64_t g) {
  std::size_t lo = 0, hi = owner_range.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (g < owner_range[mid].end) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<NodeId>(lo);
}

}  // namespace sdsm::api
