// The backend-agnostic irregular-kernel abstraction (sdsm::api).
//
// An irregular kernel, in the sense of the paper's Figure 1, is:
//
//   x : T[num_elements]    state array, block-partitioned over the nodes
//   f : T[num_elements]    per-step contribution (reduction) array
//   items                  this node's slice of the indirection structure:
//                          CSR rows — item i names the element indices
//                          refs[row_offsets[i] .. row_offsets[i+1])
//   compute                the per-step loop body: reads x at the item
//                          references, accumulates into f at the same
//   update                 the owner update x[i] op= f[i] after reduction
//
// Items are variable-arity: each row may name any number of element
// references (a molecule's partner list, a vertex's out-edges, an edge's two
// endpoints).  Fixed arity survives only as the degenerate uniform-offsets
// case (WorkItems::finish_uniform), so edge-shaped kernels stay one-liners
// while CSR workloads — per-vertex adjacency rows, variable-length partner
// lists — need no padding.
//
// A KernelSpec describes that structure once; each backend executes it its
// own way — demand paging (Tmk base), compiler-style Validate prefetch and
// WRITE_ALL pipelined reduction (Tmk optimized), or inspector/executor
// gather/scatter over ghost regions (CHAOS).  The body is written against
// *localized* int32 references: global indices on the DSM backends, local +
// ghost offsets on CHAOS — the remapping CHAOS performs is invisible to the
// kernel author.  Row offsets are node-local positions into the refs span
// and are identical on every backend.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/api/backend.hpp"
#include "src/common/assert.hpp"
#include "src/common/types.hpp"
#include "src/common/vec.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::api {

namespace plan {
// Complete upon declaration (fixed underlying type); the full vocabulary
// lives in src/api/plan/plan.hpp and is needed only by hybrid callers.
enum class AccessStrategy : std::uint8_t;
}  // namespace plan

/// Per-node handle the kernel callbacks receive.  Backends implement it
/// over DsmNode / ChaosNode.
class IrregularNode {
 public:
  virtual ~IrregularNode() = default;
  virtual NodeId id() const = 0;
  virtual std::uint32_t num_nodes() const = 0;
  /// Global barrier over all nodes of the backend.
  virtual void barrier() = 0;
};

/// One node's work items, as produced by KernelSpec::build_items: a CSR
/// structure.  Row i references the global elements
/// refs[row_offsets[i] .. row_offsets[i+1]), and may carry one scalar
/// payload (e.g. an edge weight).  `row_offsets` has num_items()+1 entries
/// starting at 0 and ending at refs.size(); an entirely empty WorkItems
/// (both vectors empty) means zero items.
///
/// The empty contract: zero items is a first-class state, not an error.
/// A node whose build_items returns an empty WorkItems (an empty frontier)
/// still participates in every collective phase — it publishes an all-zero
/// touch-matrix row (so the tournament bracket simply never pairs it), its
/// reduction contribution is exactly f_identity, and the CHAOS inspector
/// and exchanges run with zero references — so one node's (or every
/// node's) empty frontier can never wedge a barrier, bracket, or exchange.
struct WorkItems {
  std::vector<std::int64_t> row_offsets;
  std::vector<std::int64_t> refs;
  std::vector<double> payload;  ///< optional, one entry per item

  std::size_t num_items() const {
    return row_offsets.size() <= 1 ? 0 : row_offsets.size() - 1;
  }

  /// Closes the current row: everything appended to `refs` since the last
  /// end_row() (or since the start) becomes one item.  Rows may be empty.
  void end_row() {
    if (row_offsets.empty()) row_offsets.push_back(0);
    row_offsets.push_back(static_cast<std::int64_t>(refs.size()));
  }

  /// Appends one complete row.
  void push_row(std::span<const std::int64_t> row) {
    refs.insert(refs.end(), row.begin(), row.end());
    end_row();
  }
  void push_row(std::initializer_list<std::int64_t> row) {
    push_row(std::span<const std::int64_t>(row.begin(), row.size()));
  }

  /// The degenerate fixed-arity case: `refs` was filled item-major with
  /// exactly `arity` references per item; derive the uniform offsets.
  /// Exclusive with push_row/end_row — mixing the two would silently
  /// recompute the explicit rows' boundaries.
  void finish_uniform(std::size_t arity) {
    SDSM_REQUIRE_MSG(row_offsets.empty(),
                     "WorkItems.finish_uniform: row_offsets already built");
    SDSM_REQUIRE_MSG(arity > 0 && refs.size() % arity == 0,
                     "WorkItems.finish_uniform: refs not a multiple of arity");
    const std::size_t items = refs.size() / arity;
    row_offsets.resize(items + 1);
    for (std::size_t i = 0; i <= items; ++i) {
      row_offsets[i] = static_cast<std::int64_t>(i * arity);
    }
  }
};

/// Shape summary of a validated WorkItems (see
/// KernelSpec::require_valid_items).
struct ItemsShape {
  std::size_t num_items = 0;
  std::size_t num_refs = 0;
  std::size_t max_row = 0;  ///< longest row, in references
};

/// The reduction operator combining per-node contributions into f.  The
/// compute body must accumulate into its (identity-seeded) view of f with
/// the same operator, and KernelSpec::f_identity must be the operator's
/// identity: every backend seeds accumulators, scratch slices, and ghost
/// regions with it, and nodes whose items never touch a chunk contribute
/// exactly the identity there.
///
/// kSum is the paper's force/mass accumulation; kMin is what the
/// frontier-driven graph algorithms reduce with (BFS relaxes tentative
/// distances, label propagation relaxes component labels).
enum class Reduce : std::uint8_t {
  kSum,  ///< f[i] = f[i] + contribution; identity 0
  kMin,  ///< f[i] = min(f[i], contribution); identity = an unreachable max
};

inline double reduce_combine(Reduce op, double a, double b) {
  return op == Reduce::kSum ? a + b : std::min(a, b);
}
inline double3 reduce_combine(Reduce op, const double3& a, const double3& b) {
  if (op == Reduce::kSum) return a + b;
  return double3{std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

struct RowBuckets;  // degree-bucketed iteration order (src/api/bucketed.hpp)

/// Everything the per-step body sees.  All references are localized by the
/// backend; the body must index `x` and `f` only through `refs` /
/// `refs_of`.  Row offsets are positions into `refs` and are
/// backend-independent.
template <typename T>
struct KernelCtx {
  std::span<const std::int64_t> row_offsets;  ///< num_items()+1 entries
  std::span<const std::int32_t> refs;         ///< localized, row-major
  std::span<const double> payload;  ///< per-item payload (may be empty)
  std::span<const T> x;             ///< state, indexed by localized ref
  std::span<T> f;                   ///< accumulator, same indexing
  /// Non-null iff ExecEngine::kBucketed: the degree buckets built from
  /// `row_offsets` at the last rebuild.  Kernels that iterate through
  /// api::for_each_row pick the bucketed order up automatically; a pure
  /// function of row_offsets, so identical on every backend.
  const RowBuckets* buckets = nullptr;

  std::size_t num_items() const {
    return row_offsets.size() <= 1 ? 0 : row_offsets.size() - 1;
  }
  std::size_t row_size(std::size_t i) const {
    return static_cast<std::size_t>(row_offsets[i + 1] - row_offsets[i]);
  }
  /// The localized references of item i.
  std::span<const std::int32_t> refs_of(std::size_t i) const {
    return refs.subspan(static_cast<std::size_t>(row_offsets[i]),
                        row_size(i));
  }
};

/// The kernel description — the single thing an application writes.
template <typename T>
struct KernelSpec {
  std::string name;

  /// Global problem shape: element count and the contiguous per-node
  /// partition (owner_range[p] is node p's block; ranges must cover
  /// [0, num_elements) in ascending node order).
  std::int64_t num_elements = 0;
  std::vector<part::Range> owner_range;
  std::vector<T> initial_state;  ///< size num_elements

  int num_steps = 1;     ///< timed steps (an upper bound when `converged` set)
  int warmup_steps = 0;  ///< untimed leading steps (one-time costs land here)
  /// Rebuild the indirection structure every this many steps; 0 means the
  /// structure is static and built once before the first step (unless
  /// `rebuild_when` says otherwise).
  int update_interval = 0;
  /// Data-dependent rebuild cadence, consulted alongside `update_interval`
  /// (see rebuild_needed): the structure is rebuilt at global step s when
  /// the fixed cadence fires OR rebuild_when(s) returns true.  Frontier
  /// algorithms return true every step — the item list is the frontier.
  /// Must be deterministic and node-agnostic: every node evaluates it at
  /// every step and all evaluations of the same step must agree, or the
  /// backends' collective rebuild phases (allgather, touch-matrix
  /// republish, schedule refresh) would wedge.  State-dependence belongs
  /// in build_items (via rebuild_reads_state), not here.
  std::function<bool(int global_step)> rebuild_when;

  /// The reduction operator and its identity (see Reduce).  f_identity
  /// MUST be the identity of `reduce` — backends seed every accumulator
  /// with it, including on nodes whose WorkItems are empty.
  Reduce reduce = Reduce::kSum;
  T f_identity = T{};

  std::int64_t max_items_per_node = 0;  ///< row-count bound for the backends
  std::int64_t max_refs_per_node = 0;   ///< flattened-reference bound
  /// True when build_items reads the current state (all_x): the backends
  /// then materialize a coherent global view first (Validate prefetch /
  /// allgather).  Static structures leave it false.
  bool rebuild_reads_state = false;

  /// Declared AccessStrategy for the indirection region under
  /// Backend::kHybrid (ignored by the fixed-assignment backends).  When
  /// unset, the hybrid driver derives the strategy from the write census
  /// of the state layout it would allocate (plan::classify_indirection).
  std::optional<plan::AccessStrategy> indirection_strategy;

  /// True when build_items is a pure function of (node, step-ordinal,
  /// all_x-at-that-ordinal) — i.e. re-running the kernel over the same
  /// initial state reproduces the identical sequence of WorkItems, and the
  /// builder keeps no hidden per-run state.  Only such kernels may have
  /// their rebuild artifacts (item lists, CHAOS schedules, translation
  /// tables) captured and replayed by the serving layer's ScheduleCache.
  /// Kernels whose builders mutate captured state across calls (e.g. a
  /// frontier level counter or a label stash) must leave this false.
  bool structure_cacheable = false;

  /// Builds this node's items from the current global state view (all_x is
  /// empty unless rebuild_reads_state).  Must be deterministic.
  std::function<WorkItems(IrregularNode&, std::span<const T> all_x)>
      build_items;

  /// The per-step loop body.
  std::function<void(IrregularNode&, const KernelCtx<T>&)> compute;

  /// Owner update after the reduction; spans are the node's owned slices of
  /// x and f.  Null means no update phase.
  std::function<void(std::span<T> x_owned, std::span<const T> f_owned)> update;

  /// Convergence test, evaluated on every node after each step's update
  /// over the node's owned slice.  The backends publish every node's
  /// verdict — through a shared flag array on the DSM, an allgather on
  /// CHAOS — and terminate the step loop at the end of the first step
  /// where ALL nodes report true, so termination needs no side channel
  /// and every backend stops after the identical number of steps
  /// (KernelResult::steps_run).  Null means the loop always runs
  /// num_steps.  May be stateful per node (e.g. compare against labels
  /// stashed at the last build), which is why it receives the node.
  std::function<bool(IrregularNode&, std::span<const T> x_owned)> converged;

  /// Order-insensitive digest of an owned slice; backends sum it across
  /// nodes into KernelResult::checksum.
  std::function<double(std::span<const T> x_owned)> checksum;

  /// True when the indirection structure must be (re)built before
  /// executing `global_step` — the single cadence every backend must share
  /// for cross-backend parity.  Step-0 semantics are explicit: the
  /// bootstrap build at step 0 IS that step's rebuild, exactly once, even
  /// when the `update_interval` cadence divides 0 and `rebuild_when(0)`
  /// fires too (a naive "initial build, then check the cadence" runs the
  /// inspector twice at step 0; KernelResult::rebuilds is asserted against
  /// this schedule in test_api).
  bool rebuild_needed(int global_step) const {
    if (global_step == 0) return true;
    if (update_interval > 0 && global_step % update_interval == 0) return true;
    return rebuild_when && rebuild_when(global_step);
  }

  /// The reduction combine, dispatching on `reduce`.
  T combine(const T& a, const T& b) const {
    return reduce_combine(reduce, a, b);
  }

  void require_valid(std::uint32_t nprocs) const {
    SDSM_REQUIRE(num_elements > 0);
    SDSM_REQUIRE(owner_range.size() == nprocs);
    SDSM_REQUIRE(initial_state.size() ==
                 static_cast<std::size_t>(num_elements));
    SDSM_REQUIRE_MSG(max_items_per_node > 0,
                     "KernelSpec.max_items_per_node: must be positive");
    SDSM_REQUIRE_MSG(max_refs_per_node > 0,
                     "KernelSpec.max_refs_per_node: must be positive");
    SDSM_REQUIRE(num_elements < INT32_MAX);  // refs localize to int32
    SDSM_REQUIRE(build_items && compute && checksum);
    std::int64_t covered = 0;
    for (const part::Range& r : owner_range) {
      SDSM_REQUIRE(r.begin == covered && r.end >= r.begin);
      covered = r.end;
    }
    SDSM_REQUIRE(covered == num_elements);
  }

  /// Validates one node's WorkItems against the CSR invariants and this
  /// spec's capacity contract, naming the violating field on failure.
  /// Every backend calls this on every build_items result, so a spec that
  /// passes on one backend can never abort on another.  Normalizes the
  /// zero-item case: empty row_offsets (legal only with empty refs)
  /// becomes {0}, so downstream KernelCtx spans always carry
  /// num_items()+1 entries.
  ItemsShape require_valid_items(WorkItems& items) const {
    ItemsShape shape;
    shape.num_refs = items.refs.size();
    if (items.row_offsets.empty()) {
      SDSM_REQUIRE_MSG(items.refs.empty(),
                       "WorkItems.row_offsets: empty but refs is not");
      SDSM_REQUIRE_MSG(items.payload.empty(),
                       "WorkItems.payload: must be empty or one entry per "
                       "item (not per ref)");
      items.row_offsets.push_back(0);
      return shape;
    }
    SDSM_REQUIRE_MSG(items.row_offsets.front() == 0,
                     "WorkItems.row_offsets: must start at 0");
    SDSM_REQUIRE_MSG(items.row_offsets.back() ==
                         static_cast<std::int64_t>(items.refs.size()),
                     "WorkItems.row_offsets: must end at refs.size()");
    shape.num_items = items.row_offsets.size() - 1;
    for (std::size_t i = 0; i < shape.num_items; ++i) {
      SDSM_REQUIRE_MSG(items.row_offsets[i] <= items.row_offsets[i + 1],
                       "WorkItems.row_offsets: not monotone");
      shape.max_row = std::max(
          shape.max_row, static_cast<std::size_t>(items.row_offsets[i + 1] -
                                                  items.row_offsets[i]));
    }
    SDSM_REQUIRE_MSG(
        shape.num_items <= static_cast<std::size_t>(max_items_per_node),
        "WorkItems.row_offsets: more items than max_items_per_node");
    SDSM_REQUIRE_MSG(
        shape.num_refs <= static_cast<std::size_t>(max_refs_per_node),
        "WorkItems.refs: more references than max_refs_per_node");
    SDSM_REQUIRE_MSG(
        items.payload.empty() || items.payload.size() == shape.num_items,
        "WorkItems.payload: must be empty or one entry per item (not per "
        "ref)");
    for (const std::int64_t g : items.refs) {
      SDSM_REQUIRE_MSG(g >= 0 && g < num_elements,
                       "WorkItems.refs: reference outside [0, num_elements)");
    }
    return shape;
  }
};

/// TreadMarks-side protocol counters surfaced for tests and ablations
/// (zero for the CHAOS backend).  Counted over the timed steps only.
struct TmkCounters {
  std::uint64_t validate_calls = 0;
  std::uint64_t validate_recomputes = 0;  ///< Read_indices executions
  std::uint64_t read_faults = 0;
  std::uint64_t pages_prefetched = 0;
  std::uint64_t twins_created = 0;
  std::uint64_t whole_pages = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t cross_prefetch_posts = 0;  ///< barrier-exit prefetches posted
  /// Every posted prefetch is accounted for exactly once:
  /// posts == consumes (completed at first use) + drains (completed at
  /// backend teardown after an early exit left one in flight).
  std::uint64_t cross_prefetch_consumes = 0;
  std::uint64_t cross_prefetch_drains = 0;
  /// Adaptive coherence decisions (src/coherence/); all zero under the
  /// static policy.  Migrations are counted on every node (the directory
  /// update is node-local), so the figure scales with nprocs in both
  /// deploy modes alike.
  std::uint64_t replications = 0;
  std::uint64_t migrations = 0;
  std::uint64_t ghost_promotions = 0;
};

/// Result of one kernel execution, uniform across backends.
struct KernelResult {
  Backend backend = Backend::kChaos;
  double checksum = 0;
  double seconds = 0;  ///< timed steps, max over nodes
  std::uint64_t messages = 0;
  double megabytes = 0;
  /// Exact payload-byte count backing `megabytes` (megabytes = bytes/1e6).
  /// Process-mode aggregation sums this integer across workers so the
  /// combined megabytes figure is bit-identical to a threaded run's.
  std::uint64_t bytes = 0;
  /// Per-node overhead of keeping the communication structure current:
  /// inspector time on CHAOS, Read_indices scan time on Tmk.
  double overhead_seconds = 0;
  /// Per-node wall time in the diff hot paths (Tmk backends; zero on
  /// CHAOS): twin-vs-page scans (Diff::create/whole) and Diff::apply
  /// loops.  These are what the scalar/word engine A/B moves — traffic is
  /// byte-identical across engines by construction.
  double diff_create_seconds = 0;
  double diff_apply_seconds = 0;
  std::int64_t rebuilds = 0;  ///< item-list rebuilds (= inspector runs)
  /// Timed steps actually executed: num_steps, or fewer when `converged`
  /// terminated the loop early.  Identical on every backend (the
  /// convergence flag is globally agreed), so it is a parity metric too.
  std::int64_t steps_run = 0;
  /// Shape of the last-built structure, summed/maxed over nodes: total
  /// flattened references and the longest row — the degree-skew audit
  /// trail for CSR workloads.
  std::uint64_t refs = 0;
  std::uint64_t max_row = 0;
  /// Global barriers per timed step, per node (deterministic — the metric
  /// the round schedules are judged by; timing on a shared 1-core box is
  /// not).  The serial schedule pays nprocs reduction rounds plus the step
  /// barrier; the tournament schedule ceil(log2(contributors)) rounds.
  double barriers_per_step = 0;
  TmkCounters tmk;
};

/// Owner of global element g under a contiguous partition (binary search).
inline NodeId owner_of(const std::vector<part::Range>& owner_range,
                       std::int64_t g) {
  SDSM_REQUIRE_MSG(!owner_range.empty(),
                   "owner_of: empty owner_range has no owner");
  std::size_t lo = 0, hi = owner_range.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (g < owner_range[mid].end) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<NodeId>(lo);
}

}  // namespace sdsm::api
