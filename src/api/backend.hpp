// Backend selection for the unified irregular-kernel API.
//
// The paper's experiment is exactly a backend sweep: the same irregular
// application run on CHAOS (hand-written inspector/executor), on base
// TreadMarks (demand paging), and on TreadMarks with the compiler-inserted
// Validate optimization.  This enum names those three execution strategies
// so harnesses can sweep them uniformly and applications never mention a
// concrete runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/chaos/translation_table.hpp"
#include "src/coherence/coherence.hpp"
#include "src/common/types.hpp"
#include "src/core/diff.hpp"
#include "src/net/transport.hpp"

namespace sdsm::api {

enum class Backend : std::uint8_t {
  kChaos,         ///< CHAOS-style message passing: inspector/executor
  kTmkBase,       ///< TreadMarks DSM, demand paging only
  kTmkOptimized,  ///< TreadMarks DSM + compiler-driven Validate aggregation
  /// Mixed per-region assignment (src/api/plan/): the state partition
  /// stays under the Tmk page protocol while the indirection-driven reads
  /// and reductions are resolved by inspector-built schedules riding the
  /// DSM's application-data plane.
  kHybrid,
};

/// The paper's three-way sweep.  kHybrid is deliberately NOT here: the
/// committed baselines (BENCH_api.json, test_api checksum tables) enumerate
/// exactly the paper's backends, and hybrid rows/groups are additive.
inline constexpr Backend kAllBackends[] = {Backend::kChaos, Backend::kTmkBase,
                                           Backend::kTmkOptimized};

/// Stable display name: "CHAOS" | "Tmk base" | "Tmk optimized" (the labels
/// the paper's tables use) | "hybrid".
const char* backend_name(Backend b);

/// Parses "chaos" | "tmk-base" | "tmk-optimized" | "hybrid" (plus the
/// display names, case-insensitively); nullopt when unrecognized.
std::optional<Backend> parse_backend(std::string_view name);

/// How the Tmk backends order the pipelined update of the shared reduction
/// array (the f accumulation after each compute step).
enum class RoundSchedule : std::uint8_t {
  /// The rotation pipeline: nprocs rounds, round r updates chunk
  /// (me + r) % nprocs in place, one barrier per round.  Per chunk the
  /// contributions form a serial read-modify-write chain, which is what
  /// costs nprocs barriers per step.
  kSerial,
  /// The tournament (round-robin pairing) schedule: per chunk, the
  /// contributing nodes pair off and combine partial sums through a shared
  /// scratch array, halving the field each fused round, and only the owner
  /// writes f.  Rounds whose chunk ranges do not conflict share one
  /// barrier, so the per-step barrier count drops from nprocs to
  /// ceil(log2(max contributors per chunk)).  Which nodes contribute to
  /// which chunk is read from a touch matrix the nodes publish through the
  /// DSM at each rebuild, so every node derives the identical schedule.
  kTournament,
};

inline constexpr RoundSchedule kAllSchedules[] = {RoundSchedule::kSerial,
                                                 RoundSchedule::kTournament};

/// Stable display name: "serial" | "tournament".
const char* round_schedule_name(RoundSchedule s);

/// Parses "serial" | "tournament" case-insensitively; nullopt otherwise.
std::optional<RoundSchedule> parse_round_schedule(std::string_view name);

/// How a backend iterates the CSR work items inside one compute step.
enum class ExecEngine : std::uint8_t {
  /// Original row order, one generic variable-arity loop (the committed
  /// baseline: checksums in BENCH_api.json were produced this way).
  kRows,
  /// Degree-bucketed: rows are grouped into power-of-two degree buckets at
  /// rebuild and the uniform buckets run through fixed-arity inner loops
  /// the compiler can vectorize; the irregular tail keeps the generic loop.
  /// Reorders floating-point accumulation, so it is a different (still
  /// deterministic) checksum — every backend buckets identically, keeping
  /// cross-backend parity bit-exact.
  kBucketed,
};

inline constexpr ExecEngine kAllExecEngines[] = {ExecEngine::kRows,
                                                 ExecEngine::kBucketed};

/// Stable display name: "rows" | "bucketed".
const char* exec_engine_name(ExecEngine e);

/// Parses "rows" | "bucketed" case-insensitively; nullopt otherwise.
std::optional<ExecEngine> parse_exec_engine(std::string_view name);

/// Stable display name: "threads" | "processes".
const char* deploy_mode_name(DeployMode m);

/// Parses "threads" | "processes" (and a few aliases) case-insensitively;
/// nullopt otherwise.
std::optional<DeployMode> parse_deploy_mode(std::string_view name);

/// Per-run tuning knobs that are about the *execution substrate*, not the
/// kernel.  Each backend reads the subset that applies to it.
struct BackendOptions {
  /// Which fabric carries the traffic (all backends share it, so
  /// message/byte counts stay comparable — the paper's premise):
  /// in-process channels with the simulated `wire` cost below, or real
  /// TCP sockets over localhost where wire cost is measured instead.
  net::TransportKind transport = net::TransportKind::kInProc;
  /// Simulated interconnect cost model (in-process transport only).
  net::WireModel wire{};
  /// Nodes as threads of this process (default) or as spawned worker
  /// processes (sdsm::proc).  The api layer itself always executes in the
  /// current process; process-mode runs are launched by proc::run_job,
  /// which the examples/benches route to when this knob says kProcesses.
  /// Tmk backends only — CHAOS is not deployed multi-process.
  DeployMode mode = DeployMode::kThreads;

  // --- TreadMarks backends --------------------------------------------------
  std::size_t region_bytes = 256u << 20;        ///< shared-region size
  std::size_t gc_threshold_bytes = 256u << 20;  ///< diff-store GC trigger
  bool write_all_enabled = true;  ///< WRITE_ALL twin elision (ablations)
  /// Reduction-round engine; serial is the committed-baseline default.
  RoundSchedule round_schedule = RoundSchedule::kSerial;
  /// Post the next reduction round's aggregated diff requests from the
  /// barrier return path (DsmNode::post_validate_prefetch), completing
  /// them at first use.  Optimized Tmk backend only; traffic is provably
  /// identical with and without it — only the wait moves.
  bool cross_step_prefetch = false;
  /// Adaptive coherence engine (src/coherence/): kStatic (default) keeps
  /// the protocol byte-identical to the committed baseline; kAdaptive lets
  /// the per-page heat census replicate, migrate, or ghost hot regions.
  /// Tmk backends only — CHAOS has no page protocol to adapt.
  coherence::CoherencePolicy coherence = coherence::CoherencePolicy::kStatic;
  /// Twin-vs-page scan engine for diff creation (Tmk backends).  Both
  /// engines emit byte-identical encodings — traffic is exact-gated across
  /// the A/B — so this knob moves only diff_create_seconds.
  core::DiffEngine diff_engine = core::kDefaultDiffEngine;

  // --- All backends ---------------------------------------------------------
  /// Work-item iteration engine (see ExecEngine).  kRows is the
  /// committed-baseline default; kBucketed is applied identically by every
  /// backend so cross-backend checksum parity stays bit-exact.
  ExecEngine exec_engine = ExecEngine::kRows;

  // --- CHAOS backend --------------------------------------------------------
  chaos::TableKind table = chaos::TableKind::kDistributed;
};

}  // namespace sdsm::api
