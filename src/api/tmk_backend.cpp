#include "src/api/tmk_backend.hpp"

#include "src/api/plan/dsm_driver.hpp"

// The step loop, access strategies, and accounting that used to live here
// as a monolith are now the shared plan layer: plan::run_dsm drives every
// DSM-substrate backend (base, optimized, hybrid) through the one
// StepDriver, dispatching per region on the resolved ExecutionPlan.  This
// file only adapts the IrregularRuntime surface.

namespace sdsm::api {

core::DsmConfig TmkBackend::dsm_config(std::uint32_t num_nodes,
                                       const BackendOptions& options) {
  core::DsmConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.region_bytes = options.region_bytes;
  cfg.transport = options.transport;
  cfg.wire = options.wire;
  cfg.gc_threshold_bytes = options.gc_threshold_bytes;
  cfg.write_all_enabled = options.write_all_enabled;
  cfg.coherence = options.coherence;
  cfg.diff_engine = options.diff_engine;
  return cfg;
}

KernelResult TmkBackend::run(const KernelSpec<double>& spec) {
  core::DsmRuntime rt(dsm_config(num_nodes_, options_));
  return plan::run_dsm(rt, spec, nullptr, options_, num_nodes_, kind_);
}

KernelResult TmkBackend::run(const KernelSpec<double3>& spec) {
  core::DsmRuntime rt(dsm_config(num_nodes_, options_));
  return plan::run_dsm(rt, spec, nullptr, options_, num_nodes_, kind_);
}

KernelResult TmkBackend::run_on(core::DsmRuntime& rt,
                                const KernelSpec<double>& spec,
                                RunSession* session) {
  return plan::run_dsm(rt, spec, session, options_, num_nodes_, kind_);
}

KernelResult TmkBackend::run_on(core::DsmRuntime& rt,
                                const KernelSpec<double3>& spec,
                                RunSession* session) {
  return plan::run_dsm(rt, spec, session, options_, num_nodes_, kind_);
}

}  // namespace sdsm::api
