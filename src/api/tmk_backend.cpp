#include "src/api/tmk_backend.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "src/api/bucketed.hpp"
#include "src/api/reuse.hpp"
#include "src/common/timer.hpp"
#include "src/compiler/lowering.hpp"
#include "src/compiler/parser.hpp"
#include "src/compiler/transform.hpp"
#include "src/core/descriptor.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::api {

namespace {

// Hand-issued schedule ids, disjoint from the compiled kernel's (which
// start at 1) and from each other: rebuild prefetch, list rewrite, the
// per-chunk pipelined reduction, the owner-update pair, and the tournament
// schedule's touch-matrix and scratch traffic.
constexpr std::uint32_t kSchedRebuildRead = 100;
constexpr std::uint32_t kSchedListWrite = 101;
constexpr std::uint32_t kSchedTouchWrite = 102;
constexpr std::uint32_t kSchedTouchRead = 103;
constexpr std::uint32_t kSchedConvWrite = 104;
constexpr std::uint32_t kSchedConvRead = 105;
constexpr std::uint32_t kSchedReduceBase = 1000;   // + chunk owner
constexpr std::uint32_t kSchedUpdateRead = 2000;
constexpr std::uint32_t kSchedUpdateWrite = 2001;
constexpr std::uint32_t kSchedScratchPubBase = 3000;   // + chunk owner
constexpr std::uint32_t kSchedScratchReadBase = 4000;  // + chunk owner

// The generic irregular kernel in the repository's mini-Fortran.  Every
// KernelSpec has this shape: the node's CSR rows are concatenated into its
// slice of the shared flat index array LIST, so one offset-driven scan
// J = MY_REF_START .. MY_REF_END walks every reference of every row —
// rows of any length, no K stride, no padding.  Running it through the
// real front-end — parse, section analysis, reduction privatization,
// Validate insertion — reproduces the paper's tool path for every
// workload; only the bindings (array addresses, per-node ref bounds)
// differ per kernel and per node.  Row boundaries are irrelevant to the
// communication set (they partition the same references), so they stay in
// the node-private row_offsets the C++ body receives.
constexpr const char* kIrregularKernelSource =
    "SUBROUTINE IRREGULARKERNEL\n"
    "  SHARED REAL X(N), F(N)\n"
    "  SHARED INTEGER LIST(L)\n"
    "  INTEGER J, Q\n"
    "  REAL D\n"
    "DO J = MY_REF_START, MY_REF_END\n"
    "  Q = LIST(J)\n"
    "  D = X(Q)\n"
    "  F(Q) = F(Q) + D\n"
    "ENDDO\n"
    "END\n";

/// The Validate statement the transform inserts for the generic kernel,
/// compiled once per process.
const compiler::Stmt& compiled_validate_stmt() {
  static const compiler::TransformResult* result = [] {
    auto* r = new compiler::TransformResult(
        compiler::transform(compiler::parse(kIrregularKernelSource)));
    SDSM_REQUIRE(r->validates_inserted == 1);
    return r;
  }();
  return *result->transformed.units[0].body[0];
}

class TmkIrregularNode final : public IrregularNode {
 public:
  explicit TmkIrregularNode(core::DsmNode& n) : n_(n) {}
  NodeId id() const override { return n_.id(); }
  std::uint32_t num_nodes() const override { return n_.num_nodes(); }
  void barrier() override { n_.barrier(); }

 private:
  core::DsmNode& n_;
};

// ---------------------------------------------------------------------------
// Tournament (round-robin pairing) reduction schedule.
//
// The serial rotation pipeline orders each chunk's contributions as one
// read-modify-write chain through the shared f array: nprocs rounds, one
// barrier each.  The tournament instead pairs a chunk's contributors off
// and combines partial sums pairwise through per-node scratch slices,
// halving the field every round; only the chunk's owner ever writes f.
// Rounds of different chunks never conflict (a node publishes only to its
// own scratch slice, and each pair reads a distinct loser), so one global
// barrier fuses every chunk's round k, and the per-step barrier count
// drops from nprocs to ceil(log2(max contributors per chunk)).
// ---------------------------------------------------------------------------

/// One node's work in one fused round, for one chunk: publish copies the
/// private partial for `range` into this node's scratch slice; combine
/// reads `partner`'s published partial and adds it into the private one.
struct RoundOp {
  part::Range range;   ///< the chunk's element range in x/f space
  NodeId chunk = 0;    ///< chunk owner (names the schedule id)
  NodeId partner = 0;  ///< combine only: whose scratch slice to read
};

struct TournamentPlan {
  int rounds = 0;  ///< global fused-round count (max over chunks)
  std::vector<std::vector<RoundOp>> publish;  ///< [round] -> losers' copies
  std::vector<std::vector<RoundOp>> combine;  ///< [round] -> winners' adds
};

/// Derives node `me`'s bracket from the global touch matrix
/// (touch[w * nprocs + c] != 0 iff node w's items reference chunk c).
/// Every node runs this on the identical matrix, so all brackets agree.
/// Contributors are ordered owner-first, then in the serial schedule's
/// accumulation order, making the pairing deterministic.
///
/// All-zero rows are first-class: a node with an empty frontier
/// contributes to no chunk, so it appears in no contributor list except
/// as the (unconditional) owner seed of its own chunk, and an all-zero
/// MATRIX — every node's frontier empty, e.g. the steps after a BFS
/// exhausts a component — degenerates to zero fused rounds, every chunk
/// reduced by its owner alone.  The round count is a pure function of the
/// shared matrix, so empty rows can never desynchronize the per-round
/// barriers.
TournamentPlan build_tournament_plan(NodeId me, std::uint32_t nprocs,
                                     const std::vector<part::Range>& owner_range,
                                     const std::vector<std::uint8_t>& touch) {
  TournamentPlan plan;
  std::vector<std::vector<NodeId>> contributors(nprocs);
  for (NodeId c = 0; c < nprocs; ++c) {
    if (owner_range[c].size() == 0) continue;
    auto& cs = contributors[c];
    cs.push_back(c);  // the owner seeds the chunk whether or not it touches
    for (std::uint32_t d = 1; d < nprocs; ++d) {
      const NodeId w = (c + nprocs - d) % nprocs;
      if (touch[w * nprocs + c] != 0) cs.push_back(w);
    }
    int r = 0;
    while ((std::size_t{1} << r) < cs.size()) ++r;
    plan.rounds = std::max(plan.rounds, r);
  }
  plan.publish.resize(static_cast<std::size_t>(plan.rounds));
  plan.combine.resize(static_cast<std::size_t>(plan.rounds));
  for (NodeId c = 0; c < nprocs; ++c) {
    const auto& cs = contributors[c];
    for (int k = 0; (std::size_t{1} << k) < cs.size(); ++k) {
      const std::size_t step = std::size_t{1} << k;
      for (std::size_t j = 0; j + step < cs.size(); j += 2 * step) {
        if (cs[j + step] == me) {
          plan.publish[k].push_back(RoundOp{owner_range[c], c, cs[j]});
        }
        if (cs[j] == me) {
          plan.combine[k].push_back(RoundOp{owner_range[c], c, cs[j + step]});
        }
      }
    }
  }
  return plan;
}

}  // namespace

core::DsmConfig TmkBackend::dsm_config(std::uint32_t num_nodes,
                                       const BackendOptions& options) {
  core::DsmConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.region_bytes = options.region_bytes;
  cfg.transport = options.transport;
  cfg.wire = options.wire;
  cfg.gc_threshold_bytes = options.gc_threshold_bytes;
  cfg.write_all_enabled = options.write_all_enabled;
  cfg.coherence = options.coherence;
  cfg.diff_engine = options.diff_engine;
  return cfg;
}

template <typename T>
KernelResult TmkBackend::run_impl(core::DsmRuntime& rt,
                                  const KernelSpec<T>& spec,
                                  RunSession* session) {
  spec.require_valid(num_nodes_);
  const std::uint32_t nprocs = num_nodes_;
  const auto n = static_cast<std::size_t>(spec.num_elements);

  // The runtime may be a warm, long-lived arena (serving path): it must
  // match this backend's shape and have been reset since its last job so
  // allocation addresses — and therefore page layout and traffic — are
  // identical to a fresh one-shot runtime.
  SDSM_REQUIRE(rt.num_nodes() == nprocs);
  SDSM_REQUIRE(rt.config().transport == options_.transport);
  SDSM_REQUIRE(rt.config().write_all_enabled == options_.write_all_enabled);
  SDSM_REQUIRE(rt.config().coherence == options_.coherence);
  SDSM_REQUIRE_MSG(rt.shared_bytes_used() == 0,
                   "TmkBackend.run_on: runtime arena not reset");

  // All statistics are interval-scoped by snapshot subtraction: a shared
  // runtime's cumulative counters survive each job.
  const DsmStats::Snapshot stats_entry = rt.stats().snapshot();

  auto x = rt.alloc_global<T>(n);
  auto f = rt.alloc_global<T>(n);

  // Per-node slice of the shared flat index array: int32 refs, each node's
  // CSR rows concatenated.  Page-aligned so one node's WRITE_ALL rebuild
  // never ships a page carrying a neighbour's references; sized by the
  // declared reference capacity, not items * max-arity — the unpadded CSR
  // footprint is exactly what variable-length rows save.
  const std::size_t page_ints = rt.page_size() / sizeof(std::int32_t);
  const std::size_t slice_ints =
      (static_cast<std::size_t>(spec.max_refs_per_node) + page_ints - 1) /
      page_ints * page_ints;
  auto list = rt.alloc_global<std::int32_t>(slice_ints * nprocs);

  const bool tournament =
      options_.round_schedule == RoundSchedule::kTournament;
  // Cross-step prefetch rides the Validate machinery, so it exists only on
  // the optimized backend; base demand paging would fetch page-by-page and
  // the prefetch-vs-not traffic-equality contract could not hold.
  const bool prefetch = options_.cross_step_prefetch && optimized_;

  // Tournament state, absent in serial mode so the serial schedule's heap
  // layout and traffic stay bit-identical to the committed baseline: each
  // node's touch-matrix row (published at every rebuild so all nodes
  // derive the same pairing) and its scratch slice (where losers publish
  // partial sums for winners to combine).  Separate page-aligned
  // allocations, so no slice ever shares a page with a neighbour's.
  // Footprint: the slices add nprocs * n * sizeof(T) of shared region —
  // the same full-size-per-node memory/latency trade the paper notes for
  // Tmk's private reduction arrays, paid again in shared space; a run
  // near region_bytes under the serial schedule needs a larger region
  // before flipping the tournament on.  (A node can publish up to every
  // chunk it contributes to, so per-slice demand is only bounded by n;
  // packing touched chunks would need a per-rebuild layout + remap.)
  std::vector<core::GlobalArray<std::uint8_t>> touch_rows;
  std::vector<core::GlobalArray<T>> scratch;
  if (tournament) {
    touch_rows.reserve(nprocs);
    scratch.reserve(nprocs);
    for (std::uint32_t q = 0; q < nprocs; ++q) {
      touch_rows.push_back(rt.alloc_global<std::uint8_t>(nprocs));
    }
    for (std::uint32_t q = 0; q < nprocs; ++q) {
      scratch.push_back(rt.alloc_global<T>(n));
    }
  }

  // The DSM-published convergence flag: one byte per node in one shared
  // array (the multiple-writer protocol merges the per-node writes).  Each
  // node writes its verdict before the step barrier and reads all of them
  // after it, so every node derives the identical termination decision
  // with no side channel.  Allocated only when the kernel converges, so
  // non-converging kernels keep a bit-identical heap layout and traffic.
  const bool has_conv = static_cast<bool>(spec.converged);
  core::GlobalArray<std::uint8_t> conv_flags{};
  if (has_conv) conv_flags = rt.alloc_global<std::uint8_t>(nprocs);

  const rsd::ArrayLayout x_layout{{spec.num_elements}, true};
  const rsd::ArrayLayout list_layout{
      {static_cast<std::int64_t>(slice_ints * nprocs)}, true};
  const rsd::ArrayLayout touch_layout{{static_cast<std::int64_t>(nprocs)},
                                      true};
  const rsd::ArrayLayout conv_layout{{static_cast<std::int64_t>(nprocs)},
                                     true};
  compiler::Bindings bindings;
  bindings["X"] = compiler::ArrayBinding{x.addr, sizeof(T), x_layout};
  bindings["F"] = compiler::ArrayBinding{f.addr, sizeof(T), x_layout};
  bindings["LIST"] =
      compiler::ArrayBinding{list.addr, sizeof(std::int32_t), list_layout};

  struct PerNode {
    std::vector<T> accum;  ///< private full-size reduction array (the
                           ///< memory cost the paper notes for Tmk)
    std::vector<std::int64_t> row_offsets;
    RowBuckets buckets;  ///< degree buckets (ExecEngine::kBucketed only)
    std::vector<double> payload;
    std::vector<bool> touches;  ///< chunks this node's items reference
    TournamentPlan plan;        ///< this node's bracket (tournament mode)
    std::size_t refs = 0;       ///< flattened references this rebuild
    std::size_t max_row = 0;
    std::int64_t rebuilds = 0;
    std::int64_t steps_run = 0;  ///< steps executed (warmup + timed)
    bool done = false;           ///< globally converged: no further steps
    double checksum = 0;
  };
  std::vector<PerNode> state(nprocs);

  // Node 0 seeds the shared state before the (un)timed sections.
  rt.run([&](core::DsmNode& self) {
    if (self.id() == 0) {
      std::copy(spec.initial_state.begin(), spec.initial_state.end(),
                self.ptr(x));
    }
    self.barrier();
  });

  int steps_done = 0;
  auto body = [&](core::DsmNode& self, int steps) {
    const NodeId me = self.id();
    const part::Range mine = spec.owner_range[me];
    T* xp = self.ptr(x);
    T* fp = self.ptr(f);
    std::int32_t* lp = self.ptr(list) + me * slice_ints;
    PerNode& st = state[me];
    st.accum.resize(n);
    st.touches.resize(nprocs);
    TmkIrregularNode node(self);
    const std::int64_t my_ref0 =
        static_cast<std::int64_t>(me) * static_cast<std::int64_t>(slice_ints);

    // The rebuild's whole-state read: issued by validate at the rebuild
    // itself, and — when cross-step prefetch is on — posted identically
    // from the previous step's barrier exit, so the same pages fly the
    // same way and only the wait moves.
    const auto rebuild_read_desc = [&] {
      return core::DescriptorBuilder::array(x, x_layout)
          .elements(0, spec.num_elements - 1)
          .schedule(kSchedRebuildRead)
          .read();
    };

    for (int s = 0; s < steps; ++s) {
      if (st.done) break;  // globally converged in an earlier (warmup) call
      const int global_step = steps_done + s;
      if (spec.rebuild_needed(global_step)) {
        // This node's rebuild ordinal: the schedule-cache index for both
        // the hit (replay) and miss (record) paths.
        const std::int64_t ordinal = st.rebuilds;
        const CachedRebuild* cached =
            (session != nullptr && session->lookup)
                ? session->lookup(me, ordinal)
                : nullptr;
        if (optimized_ && spec.rebuild_reads_state) {
          // Prefetch the whole state with one aggregated exchange per
          // producer before the structure builder scans it.
          self.validate({rebuild_read_desc()});
        }
        WorkItems items;
        if (cached != nullptr) {
          if (!optimized_ && spec.rebuild_reads_state) {
            // Base backend, state-reading builder: on a miss the builder's
            // scan of x demand-fetches every invalid page.  Replaying the
            // structure skips the scan, so walk the pages explicitly — one
            // volatile touch per page — to keep the hit's fault traffic
            // identical to the miss's.
            const auto* xb = reinterpret_cast<const volatile std::byte*>(xp);
            const std::size_t xbytes = n * sizeof(T);
            for (std::size_t off = 0; off < xbytes;
                 off += self.page_size()) {
              (void)xb[off];
            }
          }
          items.row_offsets = cached->items.row_offsets;
          items.refs = cached->items.refs;
          items.payload = cached->items.payload;
          st.refs = cached->shape.num_refs;
          st.max_row = cached->shape.max_row;
          session->cached_builds.fetch_add(1, std::memory_order_relaxed);
        } else {
          items = spec.build_items(node, std::span<const T>(xp, n));
          const ItemsShape shape = spec.require_valid_items(items);
          st.refs = shape.num_refs;
          st.max_row = shape.max_row;
          if (session != nullptr) {
            session->fresh_builds.fetch_add(1, std::memory_order_relaxed);
            if (session->store) {
              CachedRebuild record;
              record.items = items;  // copy: `items` is consumed below
              record.shape = shape;
              session->store(me, ordinal, std::move(record));
            }
          }
        }
        if (optimized_) {
          // The whole slice is rewritten: whole-page shipping, no twins.
          // Declaring the write also notifies any schedule watching these
          // indirection pages, exactly as a faulting write would.
          self.validate(
              {core::DescriptorBuilder::array(list, list_layout)
                   .elements(static_cast<std::int64_t>(me * slice_ints),
                             static_cast<std::int64_t>((me + 1) * slice_ints) -
                                 1)
                   .schedule(kSchedListWrite)
                   .write_all()});
        }
        std::fill(st.touches.begin(), st.touches.end(), false);
        for (std::size_t k = 0; k < items.refs.size(); ++k) {
          const std::int64_t g = items.refs[k];
          lp[k] = static_cast<std::int32_t>(g);
          st.touches[owner_of(spec.owner_range, g)] = true;
        }
        st.row_offsets = std::move(items.row_offsets);
        if (options_.exec_engine == ExecEngine::kBucketed) {
          st.buckets = RowBuckets::build(st.row_offsets);
        }
        st.payload = std::move(items.payload);
        ++st.rebuilds;
        if (tournament) {
          // Publish this node's touch-matrix row; the rebuild barrier
          // below makes every row visible to every node.
          if (optimized_) {
            self.validate({core::DescriptorBuilder::array(touch_rows[me],
                                                          touch_layout)
                               .elements(0, nprocs - 1)
                               .schedule(kSchedTouchWrite)
                               .write()});
          }
          std::uint8_t* tp = self.ptr(touch_rows[me]);
          for (std::uint32_t q = 0; q < nprocs; ++q) {
            tp[q] = st.touches[q] ? 1 : 0;
          }
        }
        self.barrier();
        if (tournament) {
          // Read the full matrix (one aggregated fetch per producer under
          // Validate, demand faults on the base backend) and derive the
          // bracket.  Every node sees the identical matrix, so the fused
          // rounds agree globally without any extra coordination.
          if (optimized_) {
            std::vector<core::AccessDescriptor> reads;
            for (std::uint32_t q = 0; q < nprocs; ++q) {
              if (q == me) continue;
              reads.push_back(core::DescriptorBuilder::array(touch_rows[q],
                                                             touch_layout)
                                  .elements(0, nprocs - 1)
                                  .schedule(kSchedTouchRead)
                                  .read());
            }
            self.validate(reads);
          }
          std::vector<std::uint8_t> matrix(
              static_cast<std::size_t>(nprocs) * nprocs);
          for (std::uint32_t q = 0; q < nprocs; ++q) {
            const std::uint8_t* row = self.ptr(touch_rows[q]);
            std::copy(row, row + nprocs, matrix.begin() + q * nprocs);
          }
          st.plan =
              build_tournament_plan(me, nprocs, spec.owner_range, matrix);
        }
      }

      // The compute loop (the compiled kernel), accumulating privately.
      // Seeded with the reduction identity, NOT zero: for a min-reduction
      // every untouched element — including every element of a node whose
      // frontier is empty — must contribute nothing, and the serial
      // round-0 owner write / tournament owner write publish this
      // accumulator verbatim.
      std::fill(st.accum.begin(), st.accum.end(), spec.f_identity);
      if (optimized_) {
        // Offset-driven bounds: this node's rows occupy the flat range
        // [my_ref0, my_ref0 + refs) of LIST, whatever their lengths
        // (1-based inclusive in the mini-Fortran; empty when refs == 0).
        const compiler::Env env{
            {"MY_REF_START", static_cast<long long>(my_ref0) + 1},
            {"MY_REF_END", static_cast<long long>(my_ref0) +
                               static_cast<long long>(st.refs)}};
        self.validate(
            compiler::lower_validate(compiled_validate_stmt(), bindings, env));
      }
      KernelCtx<T> ctx;
      ctx.row_offsets = std::span<const std::int64_t>(st.row_offsets);
      ctx.refs = std::span<const std::int32_t>(lp, st.refs);
      ctx.payload = std::span<const double>(st.payload);
      ctx.x = std::span<const T>(xp, n);
      ctx.f = std::span<T>(st.accum);
      if (options_.exec_engine == ExecEngine::kBucketed) {
        ctx.buckets = &st.buckets;
      }
      spec.compute(node, ctx);

      if (!tournament) {
        // Serial rotation pipeline: nprocs rounds, round r updates chunk
        // (me + r) % nprocs in place.  Round 0 is the owner initializing
        // its own chunk (WRITE_ALL); later rounds accumulate
        // (READ&WRITE_ALL) and are skipped for chunks this node's items
        // never touch.
        const auto reduce_desc = [&](std::uint32_t r) {
          const NodeId c = (me + r) % nprocs;
          const part::Range chunk = spec.owner_range[c];
          return core::DescriptorBuilder::array(f, x_layout)
              .elements(chunk.begin, chunk.end - 1)
              .schedule(kSchedReduceBase + c)
              .finish(r == 0 ? core::Access::kWriteAll
                             : core::Access::kReadWriteAll);
        };
        const auto participates = [&](std::uint32_t r) {
          const NodeId c = (me + r) % nprocs;
          return spec.owner_range[c].size() > 0 && (r == 0 || st.touches[c]);
        };
        for (std::uint32_t r = 0; r < nprocs; ++r) {
          if (participates(r)) {
            const NodeId c = (me + r) % nprocs;
            const part::Range chunk = spec.owner_range[c];
            if (optimized_) self.validate({reduce_desc(r)});
            if (r == 0) {
              for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
                fp[i] = st.accum[static_cast<std::size_t>(i)];
              }
            } else {
              for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
                fp[i] =
                    spec.combine(fp[i], st.accum[static_cast<std::size_t>(i)]);
              }
            }
          }
          self.barrier();
          // Cross-step prefetch: the schedule is deterministic, so round
          // r+1's chunk — and the diffs its pages need — is final the
          // moment this barrier returns.  Posting the same aggregated
          // requests the next validate would post moves their flight time
          // under the validate's own bookkeeping; the traffic is
          // message-for-message identical either way.
          if (prefetch && r + 1 < nprocs && participates(r + 1)) {
            self.post_validate_prefetch({reduce_desc(r + 1)});
          }
        }
      } else {
        // Tournament schedule: ceil(log2(contributors)) fused rounds.  In
        // round k every loser publishes its running partial for its chunk
        // into its own scratch slice, the barrier makes the publishes
        // visible, and every winner combines its partner's partial into
        // its private accumulator.  After the last round each chunk's
        // total sits with its owner, which alone writes f.
        const TournamentPlan& plan = st.plan;
        const auto combine_descs = [&](int k) {
          std::vector<core::AccessDescriptor> descs;
          for (const RoundOp& op : plan.combine[static_cast<std::size_t>(k)]) {
            descs.push_back(
                core::DescriptorBuilder::array(scratch[op.partner], x_layout)
                    .elements(op.range.begin, op.range.end - 1)
                    .schedule(kSchedScratchReadBase + op.chunk)
                    .read());
          }
          return descs;
        };
        for (int k = 0; k < plan.rounds; ++k) {
          const auto& pubs = plan.publish[static_cast<std::size_t>(k)];
          if (!pubs.empty()) {
            if (optimized_) {
              std::vector<core::AccessDescriptor> writes;
              for (const RoundOp& op : pubs) {
                writes.push_back(
                    core::DescriptorBuilder::array(scratch[me], x_layout)
                        .elements(op.range.begin, op.range.end - 1)
                        .schedule(kSchedScratchPubBase + op.chunk)
                        .write_all());
              }
              self.validate(writes);
            }
            T* sp = self.ptr(scratch[me]);
            for (const RoundOp& op : pubs) {
              for (std::int64_t i = op.range.begin; i < op.range.end; ++i) {
                sp[i] = st.accum[static_cast<std::size_t>(i)];
              }
            }
          }
          self.barrier();
          const auto& combs = plan.combine[static_cast<std::size_t>(k)];
          if (!combs.empty()) {
            // The partners' partials are final at the barrier exit, so
            // their aggregated requests can fly while the validate below
            // plans (and while this node runs its own publishes' copies
            // next round on the base path).
            const auto descs = combine_descs(k);
            if (prefetch) self.post_validate_prefetch(descs);
            if (optimized_) self.validate(descs);
            for (const RoundOp& op : combs) {
              const T* sp = self.ptr(scratch[op.partner]);
              for (std::int64_t i = op.range.begin; i < op.range.end; ++i) {
                st.accum[static_cast<std::size_t>(i)] = spec.combine(
                    st.accum[static_cast<std::size_t>(i)], sp[i]);
              }
            }
          }
        }
        // Owner-only write of the shared reduction array; everyone else's
        // contribution already arrived through the bracket.  No barrier
        // needed before the update below reads it — the write is local —
        // and the step barrier publishes it for the next compute validate.
        if (mine.size() > 0) {
          if (optimized_) {
            self.validate({core::DescriptorBuilder::array(f, x_layout)
                               .elements(mine.begin, mine.end - 1)
                               .schedule(kSchedReduceBase + me)
                               .write_all()});
          }
          for (std::int64_t i = mine.begin; i < mine.end; ++i) {
            fp[i] = st.accum[static_cast<std::size_t>(i)];
          }
        }
      }

      // Owner update of the state from the reduced contributions.
      if (spec.update) {
        if (optimized_ && mine.size() > 0) {
          self.validate({core::DescriptorBuilder::array(f, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(kSchedUpdateRead)
                             .read(),
                         core::DescriptorBuilder::array(x, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(kSchedUpdateWrite)
                             .read_write_all()});
        }
        spec.update(
            std::span<T>(xp + mine.begin, static_cast<std::size_t>(mine.size())),
            std::span<const T>(fp + mine.begin,
                               static_cast<std::size_t>(mine.size())));
      }

      // Convergence verdict: published into this node's flag byte before
      // the step barrier, so the barrier's write notices carry every
      // node's verdict to every node.
      if (has_conv) {
        const bool mine_done = spec.converged(
            node, std::span<const T>(xp + mine.begin,
                                     static_cast<std::size_t>(mine.size())));
        if (optimized_) {
          self.validate({core::DescriptorBuilder::array(conv_flags,
                                                        conv_layout)
                             .elements(me, me)
                             .schedule(kSchedConvWrite)
                             .write()});
        }
        self.ptr(conv_flags)[me] = mine_done ? 1 : 0;
      }
      self.barrier();
      ++st.steps_run;

      // Cross-step prefetch of the next rebuild's whole-state read: at the
      // barrier exit the state is final (nothing writes x until the next
      // update phase), so the aggregated requests the rebuild validate
      // would post can fly under the convergence check below.  If that
      // check ends the loop, the post is left in flight and settled by the
      // teardown drain (DsmRuntime::run) — the one case where prefetching
      // costs traffic a non-prefetched run would not pay.
      if (prefetch && spec.rebuild_reads_state && s + 1 < steps &&
          spec.rebuild_needed(global_step + 1)) {
        self.post_validate_prefetch({rebuild_read_desc()});
      }

      // Read every node's verdict (aggregated fetch under Validate, demand
      // faults on the base backend); all nodes see the identical flags, so
      // the loop terminates globally or not at all.
      if (has_conv) {
        if (optimized_) {
          self.validate({core::DescriptorBuilder::array(conv_flags,
                                                        conv_layout)
                             .elements(0, nprocs - 1)
                             .schedule(kSchedConvRead)
                             .read()});
        }
        const std::uint8_t* cp = self.ptr(conv_flags);
        bool all = true;
        for (std::uint32_t q = 0; q < nprocs; ++q) all = all && cp[q] != 0;
        if (all) st.done = true;
      }
    }
  };

  // Warmup (untimed; one-time costs such as the first Read_indices scan of
  // a static list land here, as in the paper's first iteration).
  if (spec.warmup_steps > 0) {
    rt.run([&](core::DsmNode& self) { body(self, spec.warmup_steps); });
    steps_done += spec.warmup_steps;
  }
  const double warm_scan_s =
      static_cast<double>(
          (rt.stats().snapshot() - stats_entry).scan_ns) /
      1e9;
  // Timed-section baselines (the former reset_stats() point): everything
  // below is reported as a delta from here, so a warm shared runtime's
  // prior-job counters never leak into this job's result.
  const DsmStats::Snapshot stats_warm = rt.stats().snapshot();
  const net::NetStats::Snapshot net_warm = rt.network().stats().snapshot();
  // Process mode needs a consistent cut here: each worker snapshots its own
  // counters, but without a fence a fast peer's first timed-section diff
  // request could be served by this worker's service thread *before* the
  // snapshot above, landing the reply in the warm delta while a threaded
  // run (which snapshots globally after join) counts it timed-side —
  // breaking the bit-exact parity between the modes.  The fence is
  // uncounted control traffic, so the counters themselves are unchanged.
  // Threads mode takes no fence: its snapshot is already a perfect cut,
  // and a serial loop over hosted nodes would deadlock the rendezvous.
  if (rt.config().mode == DeployMode::kProcesses) {
    for (const NodeId q : rt.local_ids()) rt.node(q).quiesce_fence();
  }
  // Per-node aggregation below covers the locally hosted nodes: all of
  // them in threads mode; in process mode each worker reports its own and
  // the launcher sums/maxes across workers.  Steps and rebuilds are
  // globally uniform, so any hosted representative stands for them.
  const NodeId rep = rt.first_local_node();
  const std::int64_t warm_steps_run = state[rep].steps_run;

  const Timer wall;
  rt.run([&](core::DsmNode& self) {
    body(self, spec.num_steps);
    const part::Range mine = spec.owner_range[self.id()];
    state[self.id()].checksum = spec.checksum(std::span<const T>(
        self.ptr(x) + mine.begin, static_cast<std::size_t>(mine.size())));
  });
  // The end-of-timed cut needs the same fence: the post-barrier checksum
  // can fault on a partition-boundary page a neighbour wrote (elements
  // need not be page-aligned), and the owning peer's service thread
  // answers that fetch AFTER its own compute finished — without the fence
  // it could count the reply after snapshotting below.  Entering the
  // fence requires every node's checksum (and so every reply it consumed)
  // to be complete, ordering all counted sends before every snapshot.
  if (rt.config().mode == DeployMode::kProcesses) {
    for (const NodeId q : rt.local_ids()) rt.node(q).quiesce_fence();
  }
  const DsmStats::Snapshot timed = rt.stats().snapshot() - stats_warm;
  const net::NetStats::Snapshot net_timed =
      rt.network().stats().snapshot() - net_warm;

  KernelResult res;
  res.backend = backend();
  res.seconds = wall.elapsed_s();
  res.messages = net_timed.messages();
  res.megabytes = net_timed.megabytes();
  res.bytes = net_timed.bytes();
  res.overhead_seconds =
      (warm_scan_s + static_cast<double>(timed.scan_ns) / 1e9) /
      rt.num_local_nodes();
  res.diff_create_seconds =
      static_cast<double>(timed.diff_create_ns) / 1e9 / rt.num_local_nodes();
  res.diff_apply_seconds =
      static_cast<double>(timed.diff_apply_ns) / 1e9 / rt.num_local_nodes();
  res.rebuilds = state[rep].rebuilds;
  for (const NodeId q : rt.local_ids()) {
    const PerNode& st = state[q];
    res.checksum += st.checksum;
    res.refs += st.refs;
    res.max_row = std::max<std::uint64_t>(res.max_row, st.max_row);
  }
  res.steps_run = state[rep].steps_run - warm_steps_run;
  // Every node executes the same global barriers, so the per-node count is
  // the total divided by the hosted-node count (the stats only see hosted
  // nodes); the delta is taken from the post-warmup snapshot, so this
  // covers exactly the timed steps actually executed (fewer than num_steps
  // when the convergence flag ended the loop early).
  if (res.steps_run > 0) {
    res.barriers_per_step = static_cast<double>(timed.barriers) /
                            rt.num_local_nodes() /
                            static_cast<double>(res.steps_run);
  }
  res.tmk.cross_prefetch_posts = timed.cross_prefetch_posts;
  res.tmk.cross_prefetch_consumes = timed.cross_prefetch_consumes;
  res.tmk.cross_prefetch_drains = timed.cross_prefetch_drains;
  res.tmk.validate_calls = timed.validate_calls;
  res.tmk.validate_recomputes = timed.validate_recomputes;
  res.tmk.read_faults = timed.read_faults;
  res.tmk.pages_prefetched = timed.pages_prefetched;
  res.tmk.twins_created = timed.twins_created;
  res.tmk.whole_pages = timed.whole_pages;
  res.tmk.diff_bytes = timed.diff_bytes;
  res.tmk.replications = timed.replications;
  res.tmk.migrations = timed.migrations;
  res.tmk.ghost_promotions = timed.ghost_promotions;
  return res;
}

KernelResult TmkBackend::run(const KernelSpec<double>& spec) {
  core::DsmRuntime rt(dsm_config(num_nodes_, options_));
  return run_impl(rt, spec, nullptr);
}

KernelResult TmkBackend::run(const KernelSpec<double3>& spec) {
  core::DsmRuntime rt(dsm_config(num_nodes_, options_));
  return run_impl(rt, spec, nullptr);
}

KernelResult TmkBackend::run_on(core::DsmRuntime& rt,
                                const KernelSpec<double>& spec,
                                RunSession* session) {
  return run_impl(rt, spec, session);
}

KernelResult TmkBackend::run_on(core::DsmRuntime& rt,
                                const KernelSpec<double3>& spec,
                                RunSession* session) {
  return run_impl(rt, spec, session);
}

}  // namespace sdsm::api
