#include "src/api/tmk_backend.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "src/common/timer.hpp"
#include "src/compiler/lowering.hpp"
#include "src/compiler/parser.hpp"
#include "src/compiler/transform.hpp"
#include "src/core/descriptor.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::api {

namespace {

// Hand-issued schedule ids, disjoint from the compiled kernel's (which
// start at 1) and from each other: rebuild prefetch, list rewrite, the
// per-chunk pipelined reduction, and the owner-update pair.
constexpr std::uint32_t kSchedRebuildRead = 100;
constexpr std::uint32_t kSchedListWrite = 101;
constexpr std::uint32_t kSchedReduceBase = 1000;  // + chunk owner
constexpr std::uint32_t kSchedUpdateRead = 2000;
constexpr std::uint32_t kSchedUpdateWrite = 2001;

// The generic irregular kernel in the repository's mini-Fortran.  Every
// KernelSpec has this shape: the node's CSR rows are concatenated into its
// slice of the shared flat index array LIST, so one offset-driven scan
// J = MY_REF_START .. MY_REF_END walks every reference of every row —
// rows of any length, no K stride, no padding.  Running it through the
// real front-end — parse, section analysis, reduction privatization,
// Validate insertion — reproduces the paper's tool path for every
// workload; only the bindings (array addresses, per-node ref bounds)
// differ per kernel and per node.  Row boundaries are irrelevant to the
// communication set (they partition the same references), so they stay in
// the node-private row_offsets the C++ body receives.
constexpr const char* kIrregularKernelSource =
    "SUBROUTINE IRREGULARKERNEL\n"
    "  SHARED REAL X(N), F(N)\n"
    "  SHARED INTEGER LIST(L)\n"
    "  INTEGER J, Q\n"
    "  REAL D\n"
    "DO J = MY_REF_START, MY_REF_END\n"
    "  Q = LIST(J)\n"
    "  D = X(Q)\n"
    "  F(Q) = F(Q) + D\n"
    "ENDDO\n"
    "END\n";

/// The Validate statement the transform inserts for the generic kernel,
/// compiled once per process.
const compiler::Stmt& compiled_validate_stmt() {
  static const compiler::TransformResult* result = [] {
    auto* r = new compiler::TransformResult(
        compiler::transform(compiler::parse(kIrregularKernelSource)));
    SDSM_REQUIRE(r->validates_inserted == 1);
    return r;
  }();
  return *result->transformed.units[0].body[0];
}

class TmkIrregularNode final : public IrregularNode {
 public:
  explicit TmkIrregularNode(core::DsmNode& n) : n_(n) {}
  NodeId id() const override { return n_.id(); }
  std::uint32_t num_nodes() const override { return n_.num_nodes(); }
  void barrier() override { n_.barrier(); }

 private:
  core::DsmNode& n_;
};

}  // namespace

template <typename T>
KernelResult TmkBackend::run_impl(const KernelSpec<T>& spec) {
  spec.require_valid(num_nodes_);
  const std::uint32_t nprocs = num_nodes_;
  const auto n = static_cast<std::size_t>(spec.num_elements);

  core::DsmConfig cfg;
  cfg.num_nodes = nprocs;
  cfg.region_bytes = options_.region_bytes;
  cfg.transport = options_.transport;
  cfg.wire = options_.wire;
  cfg.gc_threshold_bytes = options_.gc_threshold_bytes;
  cfg.write_all_enabled = options_.write_all_enabled;
  core::DsmRuntime rt(cfg);

  auto x = rt.alloc_global<T>(n);
  auto f = rt.alloc_global<T>(n);

  // Per-node slice of the shared flat index array: int32 refs, each node's
  // CSR rows concatenated.  Page-aligned so one node's WRITE_ALL rebuild
  // never ships a page carrying a neighbour's references; sized by the
  // declared reference capacity, not items * max-arity — the unpadded CSR
  // footprint is exactly what variable-length rows save.
  const std::size_t page_ints = rt.node(0).page_size() / sizeof(std::int32_t);
  const std::size_t slice_ints =
      (static_cast<std::size_t>(spec.max_refs_per_node) + page_ints - 1) /
      page_ints * page_ints;
  auto list = rt.alloc_global<std::int32_t>(slice_ints * nprocs);

  const rsd::ArrayLayout x_layout{{spec.num_elements}, true};
  const rsd::ArrayLayout list_layout{
      {static_cast<std::int64_t>(slice_ints * nprocs)}, true};
  compiler::Bindings bindings;
  bindings["X"] = compiler::ArrayBinding{x.addr, sizeof(T), x_layout};
  bindings["F"] = compiler::ArrayBinding{f.addr, sizeof(T), x_layout};
  bindings["LIST"] =
      compiler::ArrayBinding{list.addr, sizeof(std::int32_t), list_layout};

  struct PerNode {
    std::vector<T> accum;  ///< private full-size reduction array (the
                           ///< memory cost the paper notes for Tmk)
    std::vector<std::int64_t> row_offsets;
    std::vector<double> payload;
    std::vector<bool> touches;  ///< chunks this node's items reference
    std::size_t refs = 0;       ///< flattened references this rebuild
    std::size_t max_row = 0;
    std::int64_t rebuilds = 0;
    double checksum = 0;
  };
  std::vector<PerNode> state(nprocs);

  // Node 0 seeds the shared state before the (un)timed sections.
  rt.run([&](core::DsmNode& self) {
    if (self.id() == 0) {
      std::copy(spec.initial_state.begin(), spec.initial_state.end(),
                self.ptr(x));
    }
    self.barrier();
  });

  int steps_done = 0;
  auto body = [&](core::DsmNode& self, int steps) {
    const NodeId me = self.id();
    const part::Range mine = spec.owner_range[me];
    T* xp = self.ptr(x);
    T* fp = self.ptr(f);
    std::int32_t* lp = self.ptr(list) + me * slice_ints;
    PerNode& st = state[me];
    st.accum.resize(n);
    st.touches.resize(nprocs);
    TmkIrregularNode node(self);
    const std::int64_t my_ref0 =
        static_cast<std::int64_t>(me) * static_cast<std::int64_t>(slice_ints);

    for (int s = 0; s < steps; ++s) {
      const int global_step = steps_done + s;
      if (spec.rebuild_at(global_step)) {
        if (optimized_ && spec.rebuild_reads_state) {
          // Prefetch the whole state with one aggregated exchange per
          // producer before the structure builder scans it.
          self.validate({core::DescriptorBuilder::array(x, x_layout)
                             .elements(0, spec.num_elements - 1)
                             .schedule(kSchedRebuildRead)
                             .read()});
        }
        WorkItems items = spec.build_items(node, std::span<const T>(xp, n));
        const ItemsShape shape = spec.require_valid_items(items);
        st.refs = shape.num_refs;
        st.max_row = shape.max_row;
        if (optimized_) {
          // The whole slice is rewritten: whole-page shipping, no twins.
          // Declaring the write also notifies any schedule watching these
          // indirection pages, exactly as a faulting write would.
          self.validate(
              {core::DescriptorBuilder::array(list, list_layout)
                   .elements(static_cast<std::int64_t>(me * slice_ints),
                             static_cast<std::int64_t>((me + 1) * slice_ints) -
                                 1)
                   .schedule(kSchedListWrite)
                   .write_all()});
        }
        std::fill(st.touches.begin(), st.touches.end(), false);
        for (std::size_t k = 0; k < items.refs.size(); ++k) {
          const std::int64_t g = items.refs[k];
          lp[k] = static_cast<std::int32_t>(g);
          st.touches[owner_of(spec.owner_range, g)] = true;
        }
        st.row_offsets = std::move(items.row_offsets);
        st.payload = std::move(items.payload);
        ++st.rebuilds;
        self.barrier();
      }

      // The compute loop (the compiled kernel), accumulating privately.
      std::fill(st.accum.begin(), st.accum.end(), T{});
      if (optimized_) {
        // Offset-driven bounds: this node's rows occupy the flat range
        // [my_ref0, my_ref0 + refs) of LIST, whatever their lengths
        // (1-based inclusive in the mini-Fortran; empty when refs == 0).
        const compiler::Env env{
            {"MY_REF_START", static_cast<long long>(my_ref0) + 1},
            {"MY_REF_END", static_cast<long long>(my_ref0) +
                               static_cast<long long>(st.refs)}};
        self.validate(
            compiler::lower_validate(compiled_validate_stmt(), bindings, env));
      }
      KernelCtx<T> ctx;
      ctx.row_offsets = std::span<const std::int64_t>(st.row_offsets);
      ctx.refs = std::span<const std::int32_t>(lp, st.refs);
      ctx.payload = std::span<const double>(st.payload);
      ctx.x = std::span<const T>(xp, n);
      ctx.f = std::span<T>(st.accum);
      spec.compute(node, ctx);

      // Pipelined update of the shared reduction array in nprocs rounds:
      // round r updates chunk (me + r) % nprocs.  Round 0 is the owner
      // initializing its own chunk (WRITE_ALL); later rounds accumulate
      // (READ&WRITE_ALL) and are skipped for chunks this node's items never
      // touch.
      for (std::uint32_t r = 0; r < nprocs; ++r) {
        const NodeId c = (me + r) % nprocs;
        const part::Range chunk = spec.owner_range[c];
        const bool participate =
            chunk.size() > 0 && (r == 0 || st.touches[c]);
        if (participate) {
          if (optimized_) {
            self.validate(
                {core::DescriptorBuilder::array(f, x_layout)
                     .elements(chunk.begin, chunk.end - 1)
                     .schedule(kSchedReduceBase + c)
                     .finish(r == 0 ? core::Access::kWriteAll
                                    : core::Access::kReadWriteAll)});
          }
          if (r == 0) {
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              fp[i] = st.accum[static_cast<std::size_t>(i)];
            }
          } else {
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              fp[i] += st.accum[static_cast<std::size_t>(i)];
            }
          }
        }
        self.barrier();
      }

      // Owner update of the state from the reduced contributions.
      if (spec.update) {
        if (optimized_ && mine.size() > 0) {
          self.validate({core::DescriptorBuilder::array(f, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(kSchedUpdateRead)
                             .read(),
                         core::DescriptorBuilder::array(x, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(kSchedUpdateWrite)
                             .read_write_all()});
        }
        spec.update(
            std::span<T>(xp + mine.begin, static_cast<std::size_t>(mine.size())),
            std::span<const T>(fp + mine.begin,
                               static_cast<std::size_t>(mine.size())));
      }
      self.barrier();
    }
  };

  // Warmup (untimed; one-time costs such as the first Read_indices scan of
  // a static list land here, as in the paper's first iteration).
  if (spec.warmup_steps > 0) {
    rt.run([&](core::DsmNode& self) { body(self, spec.warmup_steps); });
    steps_done += spec.warmup_steps;
  }
  const double warm_scan_s =
      static_cast<double>(rt.stats().scan_ns.get()) / 1e9;
  rt.reset_stats();

  const Timer wall;
  rt.run([&](core::DsmNode& self) {
    body(self, spec.num_steps);
    const part::Range mine = spec.owner_range[self.id()];
    state[self.id()].checksum = spec.checksum(std::span<const T>(
        self.ptr(x) + mine.begin, static_cast<std::size_t>(mine.size())));
  });

  KernelResult res;
  res.backend = backend();
  res.seconds = wall.elapsed_s();
  res.messages = rt.total_messages();
  res.megabytes = rt.total_megabytes();
  res.overhead_seconds =
      (warm_scan_s + static_cast<double>(rt.stats().scan_ns.get()) / 1e9) /
      nprocs;
  res.rebuilds = state[0].rebuilds;
  for (const PerNode& st : state) {
    res.checksum += st.checksum;
    res.refs += st.refs;
    res.max_row = std::max<std::uint64_t>(res.max_row, st.max_row);
  }
  res.tmk.validate_calls = rt.stats().validate_calls.get();
  res.tmk.validate_recomputes = rt.stats().validate_recomputes.get();
  res.tmk.read_faults = rt.stats().read_faults.get();
  res.tmk.pages_prefetched = rt.stats().pages_prefetched.get();
  res.tmk.twins_created = rt.stats().twins_created.get();
  res.tmk.whole_pages = rt.stats().whole_pages.get();
  res.tmk.diff_bytes = rt.stats().diff_bytes.get();
  return res;
}

KernelResult TmkBackend::run(const KernelSpec<double>& spec) {
  return run_impl(spec);
}

KernelResult TmkBackend::run(const KernelSpec<double3>& spec) {
  return run_impl(spec);
}

}  // namespace sdsm::api
