#include "src/api/runtime.hpp"

#include "src/api/chaos_backend.hpp"
#include "src/api/tmk_backend.hpp"
#include "src/common/assert.hpp"

namespace sdsm::api {

std::unique_ptr<IrregularRuntime> make_runtime(Backend backend,
                                               std::uint32_t num_nodes,
                                               BackendOptions options) {
  SDSM_REQUIRE(num_nodes > 0);
  switch (backend) {
    case Backend::kChaos:
      return std::make_unique<ChaosBackend>(num_nodes, options);
    case Backend::kTmkBase:
      return std::make_unique<TmkBackend>(num_nodes, /*optimized=*/false,
                                          options);
    case Backend::kTmkOptimized:
      return std::make_unique<TmkBackend>(num_nodes, /*optimized=*/true,
                                          options);
    case Backend::kHybrid:
      // DSM substrate with the mixed per-region plan (src/api/plan/).
      return std::make_unique<TmkBackend>(num_nodes, Backend::kHybrid,
                                          options);
  }
  SDSM_UNREACHABLE("unknown backend");
}

}  // namespace sdsm::api
