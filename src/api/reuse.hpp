// Runtime-reuse hooks connecting the backends to the serving layer
// (src/serve/): a RunSession lets a long-lived engine observe and replay
// the per-rebuild artifacts of a kernel execution.
//
// The cacheable artifact of an irregular run is what the paper's
// inspector produces: the item list (CSR references) plus, on CHAOS, the
// communication schedule and localized references derived from it, and
// the translation table shared by all of a job's nodes.  A backend given
// a RunSession consults `lookup` before rebuilding — a hit replays the
// cached artifact executor-only — and offers every fresh build to `store`.
// Without a session (one-shot runs) the backends behave exactly as
// before.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/api/kernel.hpp"
#include "src/chaos/schedule.hpp"
#include "src/chaos/translation_table.hpp"

namespace sdsm::api {

/// Everything one (node, rebuild-ordinal) pair produced that a repeat run
/// can replay instead of recomputing: the built items and shape always;
/// the inspector outputs additionally on the CHAOS backend.
struct CachedRebuild {
  WorkItems items;
  ItemsShape shape;

  // CHAOS-only (null/empty on the Tmk backends).
  std::shared_ptr<const chaos::Schedule> chaos_schedule;
  std::vector<std::int32_t> chaos_localized;
};

/// Per-job context a serving engine threads through a backend run.
///
/// `lookup(node, ordinal)` returns the cached artifact for the node's
/// `ordinal`-th rebuild, or nullptr to force a fresh build (cache miss, or
/// the trace is shorter than this run needs).  `store(node, ordinal,
/// artifact)` offers a fresh build for caching; the serving layer stages
/// these per node and commits them only after the job succeeds.  Either
/// function may be null (hit-only or record-only sessions).
///
/// The counters are bumped from node compute threads; `fresh_builds` and
/// `cached_builds` count per-node rebuild events (divide by nprocs for
/// the per-job inspector-run count).  `structure_*` accumulates the
/// fabric traffic attributable to structure maintenance during *timed*
/// steps — allgather + inspector exchange on CHAOS — measured by the
/// backend via per-node NetStats send deltas around the rebuild section
/// (a node's send counters are only bumped by its own compute thread, so
/// the delta is race-free).
struct RunSession {
  std::function<const CachedRebuild*(NodeId node, std::int64_t ordinal)>
      lookup;
  std::function<void(NodeId node, std::int64_t ordinal, CachedRebuild&&)>
      store;

  /// CHAOS translation table reuse: when set, the backend uses it instead
  /// of rebuilding; when unset, the backend publishes the table it built
  /// here (before node fan-out, so no synchronization is needed).
  std::shared_ptr<const chaos::TranslationTable> table;

  std::atomic<std::uint64_t> fresh_builds{0};
  std::atomic<std::uint64_t> cached_builds{0};
  std::atomic<std::uint64_t> structure_messages{0};
  std::atomic<std::uint64_t> structure_bytes{0};
};

}  // namespace sdsm::api
