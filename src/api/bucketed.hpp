// Degree-bucketed execution (ExecEngine::kBucketed): the Intelligent-
// Unrolling idea applied to CSR work items.  At rebuild, rows are grouped by
// exact power-of-two degree (1, 2, 4, 8, 16, 32); each uniform bucket then
// runs through a fixed-arity inner loop — the row span carries its extent in
// the type, so the compiler can fully unroll and vectorize the body — while
// every other row takes the generic variable-arity tail loop.
//
// Bucket assignment is a pure function of `row_offsets`, which the kernel
// contract guarantees identical on every backend, so bucketed runs reorder
// the floating-point accumulation identically everywhere: the checksum
// differs from the rows engine (FP addition is not associative) but stays
// bit-exact across backends, transports, and schedules.  A workload whose
// rows all share one power-of-two degree (moldyn pairs, spmv edges) lands in
// a single bucket in original order, making bucketed execution bit-identical
// to the rows engine there.
//
// Traffic is untouched: buckets change the order of f accumulation within a
// step, not which pages or elements are referenced, so messages and bytes
// are exact-gated across the A/B in the bench.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/api/kernel.hpp"
#include "src/common/assert.hpp"

namespace sdsm::api {

/// Row indices grouped by degree.  Within each bucket (and the tail) rows
/// keep ascending original order, so the full iteration order is
/// deterministic given row_offsets alone.
struct RowBuckets {
  /// Uniform bucket b holds exactly the rows of degree 2^b.
  static constexpr std::size_t kNumUniform = 6;  // degrees 1,2,4,8,16,32

  static constexpr std::size_t bucket_degree(std::size_t b) {
    return std::size_t{1} << b;
  }

  std::array<std::vector<std::uint32_t>, kNumUniform> uniform;
  std::vector<std::uint32_t> tail;  ///< every other degree (0 included)

  static RowBuckets build(std::span<const std::int64_t> row_offsets) {
    RowBuckets rb;
    const std::size_t n =
        row_offsets.size() <= 1 ? 0 : row_offsets.size() - 1;
    for (std::size_t i = 0; i < n; ++i) {
      const auto deg =
          static_cast<std::size_t>(row_offsets[i + 1] - row_offsets[i]);
      bool placed = false;
      for (std::size_t b = 0; b < kNumUniform; ++b) {
        if (deg == bucket_degree(b)) {
          rb.uniform[b].push_back(static_cast<std::uint32_t>(i));
          placed = true;
          break;
        }
      }
      if (!placed) rb.tail.push_back(static_cast<std::uint32_t>(i));
    }
    return rb;
  }
};

namespace detail {

template <std::size_t D, typename T, typename Body>
void run_uniform_bucket(const KernelCtx<T>& ctx,
                        std::span<const std::uint32_t> rows, Body& body) {
  for (const std::uint32_t i : rows) {
    // Fixed-extent span: D is a compile-time constant inside the body.
    body(static_cast<std::size_t>(i),
         std::span<const std::int32_t, D>(
             ctx.refs.data() + ctx.row_offsets[i], D));
  }
}

}  // namespace detail

/// Iterates every work item exactly once, invoking
/// `body(std::size_t i, auto row)` with row = the item's localized
/// references.  Under the rows engine (ctx.buckets == nullptr) this is the
/// plain 0..num_items() loop with dynamic-extent rows; under the bucketed
/// engine the uniform buckets come first (ascending degree, fixed-extent
/// rows) and the irregular tail last.  `body` must be degree-agnostic and
/// order-independent up to the reduction's associativity — exactly the
/// contract KernelSpec::compute already has across backends.
template <typename T, typename Body>
void for_each_row(const KernelCtx<T>& ctx, Body&& body) {
  if (ctx.buckets == nullptr) {
    const std::size_t n = ctx.num_items();
    for (std::size_t i = 0; i < n; ++i) body(i, ctx.refs_of(i));
    return;
  }
  const RowBuckets& rb = *ctx.buckets;
  static_assert(RowBuckets::kNumUniform == 6);
  detail::run_uniform_bucket<1>(ctx, rb.uniform[0], body);
  detail::run_uniform_bucket<2>(ctx, rb.uniform[1], body);
  detail::run_uniform_bucket<4>(ctx, rb.uniform[2], body);
  detail::run_uniform_bucket<8>(ctx, rb.uniform[3], body);
  detail::run_uniform_bucket<16>(ctx, rb.uniform[4], body);
  detail::run_uniform_bucket<32>(ctx, rb.uniform[5], body);
  for (const std::uint32_t i : rb.tail) {
    body(static_cast<std::size_t>(i), ctx.refs_of(i));
  }
}

}  // namespace sdsm::api
