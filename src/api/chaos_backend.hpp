// CHAOS-backed execution of irregular kernels: translation table from the
// kernel's partition, inspector at every indirection rebuild, executor
// gather/scatter around the compute loop — the hand-written
// inspector/executor structure of the paper's Section 4, derived
// automatically from the same KernelSpec the DSM backends run.
#pragma once

#include "src/api/runtime.hpp"

namespace sdsm::api {

class ChaosBackend final : public IrregularRuntime {
 public:
  ChaosBackend(std::uint32_t num_nodes, BackendOptions options)
      : num_nodes_(num_nodes), options_(options) {}

  Backend backend() const override { return Backend::kChaos; }
  std::uint32_t num_nodes() const override { return num_nodes_; }

  KernelResult run(const KernelSpec<double>& spec) override;
  KernelResult run(const KernelSpec<double3>& spec) override;

 private:
  template <typename T>
  KernelResult run_impl(const KernelSpec<T>& spec);

  std::uint32_t num_nodes_;
  BackendOptions options_;
};

}  // namespace sdsm::api
