// CHAOS-backed execution of irregular kernels: translation table from the
// kernel's partition, inspector at every indirection rebuild, executor
// gather/scatter around the compute loop — the hand-written
// inspector/executor structure of the paper's Section 4, derived
// automatically from the same KernelSpec the DSM backends run.
#pragma once

#include "src/api/runtime.hpp"
#include "src/chaos/chaos_runtime.hpp"

namespace sdsm::api {

struct RunSession;

class ChaosBackend final : public IrregularRuntime {
 public:
  ChaosBackend(std::uint32_t num_nodes, BackendOptions options)
      : num_nodes_(num_nodes), options_(options) {}

  Backend backend() const override { return Backend::kChaos; }
  std::uint32_t num_nodes() const override { return num_nodes_; }

  KernelResult run(const KernelSpec<double>& spec) override;
  KernelResult run(const KernelSpec<double3>& spec) override;

  /// Executes on a caller-owned (long-lived) runtime: the serving path.
  /// ChaosNode state is constructed fresh inside every ChaosRuntime::run
  /// call, so a warm runtime needs no reset between jobs.  `session`, when
  /// non-null, supplies the schedule-cache hooks (src/api/reuse.hpp): a
  /// hit replays the cached inspector outputs executor-only, and the
  /// translation table is reused across jobs through session->table.
  KernelResult run_on(chaos::ChaosRuntime& rt, const KernelSpec<double>& spec,
                      RunSession* session);
  KernelResult run_on(chaos::ChaosRuntime& rt,
                      const KernelSpec<double3>& spec, RunSession* session);

 private:
  std::uint32_t num_nodes_;
  BackendOptions options_;
};

}  // namespace sdsm::api
