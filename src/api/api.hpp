// sdsm::api — the single façade header for writing and running irregular
// kernels.  Pulls in the kernel abstraction, the backend enum, the runtime
// factory, and the fluent descriptor builder (re-exported from core for
// programs that drop down to raw Validate calls).
//
//   #include "src/api/api.hpp"
//
//   api::KernelSpec<double> spec = ...;   // written once
//   for (api::Backend b : api::kAllBackends) {
//     api::KernelResult r = api::run_kernel(b, spec);
//   }
#pragma once

#include "src/api/backend.hpp"
#include "src/api/kernel.hpp"
#include "src/api/runtime.hpp"
#include "src/core/descriptor.hpp"

namespace sdsm::api {

/// The fluent typed AccessDescriptor builder (see src/core/descriptor.hpp).
using core::DescriptorBuilder;

}  // namespace sdsm::api
