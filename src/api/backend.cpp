#include "src/api/backend.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace sdsm::api {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kChaos:
      return "CHAOS";
    case Backend::kTmkBase:
      return "Tmk base";
    case Backend::kTmkOptimized:
      return "Tmk optimized";
    case Backend::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return c == ' ' || c == '_' ? '-' : static_cast<char>(std::tolower(c));
  });
  if (s == "chaos") return Backend::kChaos;
  if (s == "tmk-base" || s == "tmk" || s == "base") return Backend::kTmkBase;
  if (s == "tmk-optimized" || s == "tmk-opt" || s == "optimized") {
    return Backend::kTmkOptimized;
  }
  if (s == "hybrid") return Backend::kHybrid;
  return std::nullopt;
}

const char* round_schedule_name(RoundSchedule s) {
  switch (s) {
    case RoundSchedule::kSerial:
      return "serial";
    case RoundSchedule::kTournament:
      return "tournament";
  }
  return "?";
}

std::optional<RoundSchedule> parse_round_schedule(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "serial") return RoundSchedule::kSerial;
  if (s == "tournament") return RoundSchedule::kTournament;
  return std::nullopt;
}

const char* exec_engine_name(ExecEngine e) {
  switch (e) {
    case ExecEngine::kRows:
      return "rows";
    case ExecEngine::kBucketed:
      return "bucketed";
  }
  return "?";
}

std::optional<ExecEngine> parse_exec_engine(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "rows" || s == "row") return ExecEngine::kRows;
  if (s == "bucketed" || s == "buckets" || s == "bucket") {
    return ExecEngine::kBucketed;
  }
  return std::nullopt;
}

const char* deploy_mode_name(DeployMode m) {
  switch (m) {
    case DeployMode::kThreads:
      return "threads";
    case DeployMode::kProcesses:
      return "processes";
  }
  return "?";
}

std::optional<DeployMode> parse_deploy_mode(std::string_view name) {
  std::string s(name);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "threads" || s == "thread") return DeployMode::kThreads;
  if (s == "processes" || s == "process" || s == "proc") {
    return DeployMode::kProcesses;
  }
  return std::nullopt;
}

}  // namespace sdsm::api
