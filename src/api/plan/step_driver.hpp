// StepDriver: the one copy of the outer step loop.
//
// Every backend used to carry its own rebuild-cadence / step-execution /
// convergence loop; the three copies have been folded into drive_steps(),
// parameterized by a Strategy that knows how one region assignment
// (plan::ExecutionPlan) realizes each phase.  The Strategy duck-type
// contract:
//
//   void rebuild(int global_step);
//       Structure (re)build for this step.  Called only when
//       spec.rebuild_needed(global_step) says so.
//   void execute_step(int global_step);
//       The computational step: gather/compute/reduce/update under the
//       plan's strategies.
//   bool finish_step(int global_step, bool last_in_section);
//       Step epilogue — convergence verdict exchange, step barrier, any
//       cross-step prefetch (suppressed when last_in_section).  Returns
//       true when the kernel has globally converged.
//
// The loop runs a *section* (warmup or timed) of at most `steps` steps;
// `done` persists across sections so a kernel converged during warmup
// never executes a timed step, matching the historical backends.
#pragma once

#include <cstdint>

namespace sdsm::api::plan {

/// A Strategy composed from three callables — how the drivers assemble a
/// concrete strategy for one plan::ExecutionPlan without naming a class
/// per assignment.
template <typename R, typename E, typename F>
struct ComposedStrategy {
  R rebuild_fn;
  E execute_fn;
  F finish_fn;
  void rebuild(int global_step) { rebuild_fn(global_step); }
  void execute_step(int global_step) { execute_fn(global_step); }
  bool finish_step(int global_step, bool last_in_section) {
    return finish_fn(global_step, last_in_section);
  }
};

template <typename R, typename E, typename F>
ComposedStrategy<R, E, F> make_strategy(R rebuild, E execute, F finish) {
  return {std::move(rebuild), std::move(execute), std::move(finish)};
}

template <typename Spec, typename Strategy>
void drive_steps(const Spec& spec, Strategy& strat, int steps,
                 int first_global_step, std::int64_t& steps_run, bool& done) {
  for (int s = 0; s < steps; ++s) {
    if (done) break;
    const int global_step = first_global_step + s;
    if (spec.rebuild_needed(global_step)) strat.rebuild(global_step);
    strat.execute_step(global_step);
    done = strat.finish_step(global_step, /*last_in_section=*/s + 1 >= steps);
    ++steps_run;
  }
}

}  // namespace sdsm::api::plan
