// One copy of the counter/checksum fold.
//
// Three call sites used to carry their own: the two backend monoliths
// folded per-node partials into a KernelResult, and the multi-process
// launcher folded per-worker KernelResults into a job-level one.  The
// arithmetic is part of the bit-exactness contract — checksums are summed
// in node order, so a process-mode aggregate is bit-identical to a
// threaded run's — which is exactly the kind of invariant that should not
// exist in triplicate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "src/api/kernel.hpp"
#include "src/common/stats.hpp"

namespace sdsm::api::plan {

/// One node's contribution to a KernelResult.
struct NodeAccount {
  double checksum = 0;
  std::uint64_t refs = 0;
  std::uint64_t max_row = 0;
};

/// Folds node accounts into `res`, in the order given: checksum summed
/// (node order — the summation order is part of the bit-exactness
/// contract), refs summed, max_row maxed.  Adds to whatever `res` already
/// holds, so process-mode callers can fold worker by worker.
inline void fold_accounts(KernelResult& res,
                          std::span<const NodeAccount> accounts) {
  for (const NodeAccount& a : accounts) {
    res.checksum += a.checksum;
    res.refs += a.refs;
    res.max_row = std::max(res.max_row, a.max_row);
  }
}

/// The timed-window protocol counters a DSM-substrate run reports, copied
/// out of a stats delta.
inline TmkCounters counters_from(const DsmStats::Snapshot& timed) {
  TmkCounters c;
  c.validate_calls = timed.validate_calls;
  c.validate_recomputes = timed.validate_recomputes;
  c.read_faults = timed.read_faults;
  c.pages_prefetched = timed.pages_prefetched;
  c.twins_created = timed.twins_created;
  c.whole_pages = timed.whole_pages;
  c.diff_bytes = timed.diff_bytes;
  c.cross_prefetch_posts = timed.cross_prefetch_posts;
  c.cross_prefetch_consumes = timed.cross_prefetch_consumes;
  c.cross_prefetch_drains = timed.cross_prefetch_drains;
  c.replications = timed.replications;
  c.migrations = timed.migrations;
  c.ghost_promotions = timed.ghost_promotions;
  return c;
}

/// Adds `b`'s protocol counters into `a` — the cross-worker half of the
/// fold (process mode: each worker's snapshot covers only its own nodes).
inline void add_counters(TmkCounters& a, const TmkCounters& b) {
  a.validate_calls += b.validate_calls;
  a.validate_recomputes += b.validate_recomputes;
  a.read_faults += b.read_faults;
  a.pages_prefetched += b.pages_prefetched;
  a.twins_created += b.twins_created;
  a.whole_pages += b.whole_pages;
  a.diff_bytes += b.diff_bytes;
  a.cross_prefetch_posts += b.cross_prefetch_posts;
  a.cross_prefetch_consumes += b.cross_prefetch_consumes;
  a.cross_prefetch_drains += b.cross_prefetch_drains;
  a.replications += b.replications;
  a.migrations += b.migrations;
  a.ghost_promotions += b.ghost_promotions;
}

}  // namespace sdsm::api::plan
