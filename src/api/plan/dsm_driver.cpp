#include "src/api/plan/dsm_driver.hpp"

#include "src/compiler/parser.hpp"
#include "src/compiler/transform.hpp"

namespace sdsm::api::plan::detail {

namespace {

// The generic irregular kernel in the repository's mini-Fortran.  Every
// KernelSpec has this shape: the node's CSR rows are concatenated into its
// slice of the shared flat index array LIST, so one offset-driven scan
// J = MY_REF_START .. MY_REF_END walks every reference of every row —
// rows of any length, no K stride, no padding.  Running it through the
// real front-end — parse, section analysis, reduction privatization,
// Validate insertion — reproduces the paper's tool path for every
// workload; only the bindings (array addresses, per-node ref bounds)
// differ per kernel and per node.  Row boundaries are irrelevant to the
// communication set (they partition the same references), so they stay in
// the node-private row_offsets the C++ body receives.
constexpr const char* kIrregularKernelSource =
    "SUBROUTINE IRREGULARKERNEL\n"
    "  SHARED REAL X(N), F(N)\n"
    "  SHARED INTEGER LIST(L)\n"
    "  INTEGER J, Q\n"
    "  REAL D\n"
    "DO J = MY_REF_START, MY_REF_END\n"
    "  Q = LIST(J)\n"
    "  D = X(Q)\n"
    "  F(Q) = F(Q) + D\n"
    "ENDDO\n"
    "END\n";

}  // namespace

const compiler::Stmt& compiled_validate_stmt() {
  static const compiler::TransformResult* result = [] {
    auto* r = new compiler::TransformResult(
        compiler::transform(compiler::parse(kIrregularKernelSource)));
    SDSM_REQUIRE(r->validates_inserted == 1);
    return r;
  }();
  return *result->transformed.units[0].body[0];
}

TournamentPlan build_tournament_plan(
    NodeId me, std::uint32_t nprocs,
    const std::vector<part::Range>& owner_range,
    const std::vector<std::uint8_t>& touch) {
  TournamentPlan plan;
  std::vector<std::vector<NodeId>> contributors(nprocs);
  for (NodeId c = 0; c < nprocs; ++c) {
    if (owner_range[c].size() == 0) continue;
    auto& cs = contributors[c];
    cs.push_back(c);  // the owner seeds the chunk whether or not it touches
    for (std::uint32_t d = 1; d < nprocs; ++d) {
      const NodeId w = (c + nprocs - d) % nprocs;
      if (touch[w * nprocs + c] != 0) cs.push_back(w);
    }
    int r = 0;
    while ((std::size_t{1} << r) < cs.size()) ++r;
    plan.rounds = std::max(plan.rounds, r);
  }
  plan.publish.resize(static_cast<std::size_t>(plan.rounds));
  plan.combine.resize(static_cast<std::size_t>(plan.rounds));
  for (NodeId c = 0; c < nprocs; ++c) {
    const auto& cs = contributors[c];
    for (int k = 0; (std::size_t{1} << k) < cs.size(); ++k) {
      const std::size_t step = std::size_t{1} << k;
      for (std::size_t j = 0; j + step < cs.size(); j += 2 * step) {
        if (cs[j + step] == me) {
          plan.publish[k].push_back(RoundOp{owner_range[c], c, cs[j]});
        }
        if (cs[j] == me) {
          plan.combine[k].push_back(RoundOp{owner_range[c], c, cs[j + step]});
        }
      }
    }
  }
  return plan;
}

}  // namespace sdsm::api::plan::detail
