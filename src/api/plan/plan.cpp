#include "src/api/plan/plan.hpp"

#include "src/common/assert.hpp"

namespace sdsm::api::plan {

const char* access_strategy_name(AccessStrategy s) {
  switch (s) {
    case AccessStrategy::kPageDsm:
      return "page-dsm";
    case AccessStrategy::kInspectorGather:
      return "inspector-gather";
  }
  return "?";
}

ExecutionPlan plan_for(Backend b) {
  switch (b) {
    case Backend::kChaos:
      return {AccessStrategy::kInspectorGather,
              AccessStrategy::kInspectorGather, false};
    case Backend::kTmkBase:
      return {AccessStrategy::kPageDsm, AccessStrategy::kPageDsm, false};
    case Backend::kTmkOptimized:
      return {AccessStrategy::kPageDsm, AccessStrategy::kPageDsm, true};
    case Backend::kHybrid:
      return {AccessStrategy::kPageDsm, AccessStrategy::kInspectorGather,
              true};
  }
  SDSM_REQUIRE_MSG(false, "plan_for: unknown backend");
  return {};
}

AccessStrategy classify_indirection(const coherence::WriteCensus& census) {
  for (const auto& [page, entry] : census.pages()) {
    (void)page;
    if (entry.writers.size() != 1) return AccessStrategy::kPageDsm;
  }
  return AccessStrategy::kInspectorGather;
}

coherence::WriteCensus census_for_layout(
    const std::vector<part::Range>& owner_range, std::size_t elem_size,
    std::size_t page_bytes) {
  SDSM_REQUIRE(page_bytes > 0 && elem_size > 0);
  // Slice stride: every node's slice is rounded up to the widest
  // partition, so page ids stay disjoint per owner (mirrors the hybrid's
  // page-aligned per-node slice allocation).
  std::int64_t max_elems = 0;
  for (const part::Range& r : owner_range) {
    if (r.size() > max_elems) max_elems = r.size();
  }
  const std::uint64_t slice_pages =
      (static_cast<std::uint64_t>(max_elems) * elem_size + page_bytes - 1) /
      page_bytes;
  coherence::WriteCensus census;
  for (std::size_t q = 0; q < owner_range.size(); ++q) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(owner_range[q].size()) * elem_size;
    const std::uint64_t pages = (bytes + page_bytes - 1) / page_bytes;
    for (std::uint64_t k = 0; k < pages; ++k) {
      const PageId page = static_cast<PageId>(q * slice_pages + k);
      const std::uint32_t page_fill = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(page_bytes, bytes - k * page_bytes));
      census.fold(page, static_cast<NodeId>(q), page_fill, /*epoch=*/1);
    }
  }
  return census;
}

}  // namespace sdsm::api::plan
