// The DSM-substrate driver: every ExecutionPlan with at least one region
// under AccessStrategy::kPageDsm.
//
// Two assignments run here:
//
//  - run_page_dsm: both regions under the page protocol — the former
//    TmkBackend monolith (base = demand paging, optimized = Validate
//    aggregation), restructured around the shared StepDriver
//    (plan/step_driver.hpp) and fold helpers (plan/fold.hpp).
//
//  - run_hybrid: the first *mixed* assignment (Backend::kHybrid).  The
//    state partition stays under the Tmk page protocol — per-node
//    page-aligned slices, owner WRITE_ALL updates, rebuild state reads
//    via aggregated Validate — while the indirection-driven reads and
//    reductions are resolved by inspector-built communication schedules
//    whose gather/scatter travels as application-plane payloads on the
//    same DSM transport (plan/dsm_exchange.hpp).
//
// run_dsm() dispatches between them from the resolved ExecutionPlan.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "src/api/bucketed.hpp"
#include "src/api/kernel.hpp"
#include "src/api/plan/dsm_exchange.hpp"
#include "src/api/plan/fold.hpp"
#include "src/api/plan/msg_driver.hpp"
#include "src/api/plan/plan.hpp"
#include "src/api/plan/step_driver.hpp"
#include "src/api/reuse.hpp"
#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/common/timer.hpp"
#include "src/compiler/lowering.hpp"
#include "src/core/descriptor.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::api::plan {

namespace detail {

// Hand-issued schedule ids, disjoint from the compiled kernel's (which
// start at 1) and from each other: rebuild prefetch, list rewrite, the
// per-chunk pipelined reduction, the owner-update pair, and the tournament
// schedule's touch-matrix and scratch traffic.
constexpr std::uint32_t kSchedRebuildRead = 100;
constexpr std::uint32_t kSchedListWrite = 101;
constexpr std::uint32_t kSchedTouchWrite = 102;
constexpr std::uint32_t kSchedTouchRead = 103;
constexpr std::uint32_t kSchedConvWrite = 104;
constexpr std::uint32_t kSchedConvRead = 105;
constexpr std::uint32_t kSchedReduceBase = 1000;   // + chunk owner
constexpr std::uint32_t kSchedUpdateRead = 2000;
constexpr std::uint32_t kSchedUpdateWrite = 2001;
constexpr std::uint32_t kSchedScratchPubBase = 3000;   // + chunk owner
constexpr std::uint32_t kSchedScratchReadBase = 4000;  // + chunk owner

/// The Validate statement the transform inserts for the generic irregular
/// kernel (the repository's mini-Fortran shape), compiled once per
/// process.  See dsm_driver.cpp for the kernel source and the tool path.
const compiler::Stmt& compiled_validate_stmt();

class TmkIrregularNode final : public IrregularNode {
 public:
  explicit TmkIrregularNode(core::DsmNode& n) : n_(n) {}
  NodeId id() const override { return n_.id(); }
  std::uint32_t num_nodes() const override { return n_.num_nodes(); }
  void barrier() override { n_.barrier(); }

 private:
  core::DsmNode& n_;
};

// ---------------------------------------------------------------------------
// Tournament (round-robin pairing) reduction schedule.
//
// The serial rotation pipeline orders each chunk's contributions as one
// read-modify-write chain through the shared f array: nprocs rounds, one
// barrier each.  The tournament instead pairs a chunk's contributors off
// and combines partial sums pairwise through per-node scratch slices,
// halving the field every round; only the chunk's owner ever writes f.
// Rounds of different chunks never conflict (a node publishes only to its
// own scratch slice, and each pair reads a distinct loser), so one global
// barrier fuses every chunk's round k, and the per-step barrier count
// drops from nprocs to ceil(log2(max contributors per chunk)).
// ---------------------------------------------------------------------------

/// One node's work in one fused round, for one chunk: publish copies the
/// private partial for `range` into this node's scratch slice; combine
/// reads `partner`'s published partial and adds it into the private one.
struct RoundOp {
  part::Range range;   ///< the chunk's element range in x/f space
  NodeId chunk = 0;    ///< chunk owner (names the schedule id)
  NodeId partner = 0;  ///< combine only: whose scratch slice to read
};

struct TournamentPlan {
  int rounds = 0;  ///< global fused-round count (max over chunks)
  std::vector<std::vector<RoundOp>> publish;  ///< [round] -> losers' copies
  std::vector<std::vector<RoundOp>> combine;  ///< [round] -> winners' adds
};

/// Derives node `me`'s bracket from the global touch matrix
/// (touch[w * nprocs + c] != 0 iff node w's items reference chunk c).
/// Every node runs this on the identical matrix, so all brackets agree.
/// Contributors are ordered owner-first, then in the serial schedule's
/// accumulation order, making the pairing deterministic.
///
/// All-zero rows are first-class: a node with an empty frontier
/// contributes to no chunk, so it appears in no contributor list except
/// as the (unconditional) owner seed of its own chunk, and an all-zero
/// MATRIX — every node's frontier empty, e.g. the steps after a BFS
/// exhausts a component — degenerates to zero fused rounds, every chunk
/// reduced by its owner alone.  The round count is a pure function of the
/// shared matrix, so empty rows can never desynchronize the per-round
/// barriers.
TournamentPlan build_tournament_plan(
    NodeId me, std::uint32_t nprocs,
    const std::vector<part::Range>& owner_range,
    const std::vector<std::uint8_t>& touch);

}  // namespace detail

/// The timed-window accounting of one DSM-substrate run.
struct SectionTimes {
  double warm_scan_s = 0;   ///< Read_indices time accrued during warmup
  double wall_seconds = 0;  ///< wall time of the timed section
  DsmStats::Snapshot timed{};
  net::NetStats::Snapshot net_timed{};
};

/// One copy of the warmup/timed-section accounting for the DSM substrate.
///
/// `body(self, steps, first_global_step)` runs one section on one node;
/// `at_cut()` fires on the host thread at the warm/timed boundary (after
/// the warm snapshots and process-mode fence — where callers record
/// pre-timed step counts); `checksum(self)` computes each node's partial
/// after the timed section.
///
/// All statistics are interval-scoped by snapshot subtraction: a shared
/// runtime's cumulative counters survive each job, and everything reported
/// is a delta from the post-warmup snapshot, so a warm shared runtime's
/// prior-job counters never leak into this job's result.
///
/// Process mode needs a consistent cut at both snapshot points: each
/// worker snapshots its own counters, but without a fence a fast peer's
/// first timed-section diff request could be served by this worker's
/// service thread *before* the snapshot, landing the reply in the warm
/// delta while a threaded run (which snapshots globally after join)
/// counts it timed-side — breaking the bit-exact parity between the
/// modes.  The fence is uncounted control traffic, so the counters
/// themselves are unchanged.  Threads mode takes no fence: its snapshot
/// is already a perfect cut, and a serial loop over hosted nodes would
/// deadlock the rendezvous.  (The end-of-timed fence additionally orders
/// the post-barrier checksum's boundary-page fetches — and the replies
/// peers consumed — before every snapshot.)
template <typename Body, typename AtCut, typename Checksum>
SectionTimes run_sections(core::DsmRuntime& rt,
                          const DsmStats::Snapshot& stats_entry,
                          int warmup_steps, int num_steps, Body&& body,
                          AtCut&& at_cut, Checksum&& checksum) {
  SectionTimes out;
  // Warmup (untimed; one-time costs such as the first Read_indices scan of
  // a static list land here, as in the paper's first iteration).
  if (warmup_steps > 0) {
    rt.run([&](core::DsmNode& self) { body(self, warmup_steps, 0); });
  }
  out.warm_scan_s =
      static_cast<double>((rt.stats().snapshot() - stats_entry).scan_ns) /
      1e9;
  const DsmStats::Snapshot stats_warm = rt.stats().snapshot();
  const net::NetStats::Snapshot net_warm = rt.network().stats().snapshot();
  if (rt.config().mode == DeployMode::kProcesses) {
    for (const NodeId q : rt.local_ids()) rt.node(q).quiesce_fence();
  }
  at_cut();

  const Timer wall;
  rt.run([&](core::DsmNode& self) {
    body(self, num_steps, warmup_steps);
    checksum(self);
  });
  if (rt.config().mode == DeployMode::kProcesses) {
    for (const NodeId q : rt.local_ids()) rt.node(q).quiesce_fence();
  }
  out.timed = rt.stats().snapshot() - stats_warm;
  out.net_timed = rt.network().stats().snapshot() - net_warm;
  out.wall_seconds = wall.elapsed_s();
  return out;
}

// ---------------------------------------------------------------------------
// run_page_dsm: both regions under the page protocol (kTmkBase/kTmkOpt,
// and a kHybrid whose planner kept the indirection region on kPageDsm).
// ---------------------------------------------------------------------------

template <typename T>
KernelResult run_page_dsm(core::DsmRuntime& rt, const KernelSpec<T>& spec,
                          RunSession* session, const BackendOptions& options,
                          std::uint32_t num_nodes, bool optimized,
                          Backend kind) {
  const std::uint32_t nprocs = num_nodes;
  const auto n = static_cast<std::size_t>(spec.num_elements);

  const DsmStats::Snapshot stats_entry = rt.stats().snapshot();

  auto x = rt.alloc_global<T>(n);
  auto f = rt.alloc_global<T>(n);

  // Per-node slice of the shared flat index array: int32 refs, each node's
  // CSR rows concatenated.  Page-aligned so one node's WRITE_ALL rebuild
  // never ships a page carrying a neighbour's references; sized by the
  // declared reference capacity, not items * max-arity — the unpadded CSR
  // footprint is exactly what variable-length rows save.
  const std::size_t page_ints = rt.page_size() / sizeof(std::int32_t);
  const std::size_t slice_ints =
      (static_cast<std::size_t>(spec.max_refs_per_node) + page_ints - 1) /
      page_ints * page_ints;
  auto list = rt.alloc_global<std::int32_t>(slice_ints * nprocs);

  const bool tournament =
      options.round_schedule == RoundSchedule::kTournament;
  // Cross-step prefetch rides the Validate machinery, so it exists only on
  // the optimized backend; base demand paging would fetch page-by-page and
  // the prefetch-vs-not traffic-equality contract could not hold.
  const bool prefetch = options.cross_step_prefetch && optimized;

  // Tournament state, absent in serial mode so the serial schedule's heap
  // layout and traffic stay bit-identical to the committed baseline: each
  // node's touch-matrix row (published at every rebuild so all nodes
  // derive the same pairing) and its scratch slice (where losers publish
  // partial sums for winners to combine).  Separate page-aligned
  // allocations, so no slice ever shares a page with a neighbour's.
  // Footprint: the slices add nprocs * n * sizeof(T) of shared region —
  // the same full-size-per-node memory/latency trade the paper notes for
  // Tmk's private reduction arrays, paid again in shared space; a run
  // near region_bytes under the serial schedule needs a larger region
  // before flipping the tournament on.  (A node can publish up to every
  // chunk it contributes to, so per-slice demand is only bounded by n;
  // packing touched chunks would need a per-rebuild layout + remap.)
  std::vector<core::GlobalArray<std::uint8_t>> touch_rows;
  std::vector<core::GlobalArray<T>> scratch;
  if (tournament) {
    touch_rows.reserve(nprocs);
    scratch.reserve(nprocs);
    for (std::uint32_t q = 0; q < nprocs; ++q) {
      touch_rows.push_back(rt.alloc_global<std::uint8_t>(nprocs));
    }
    for (std::uint32_t q = 0; q < nprocs; ++q) {
      scratch.push_back(rt.alloc_global<T>(n));
    }
  }

  // The DSM-published convergence flag: one byte per node in one shared
  // array (the multiple-writer protocol merges the per-node writes).  Each
  // node writes its verdict before the step barrier and reads all of them
  // after it, so every node derives the identical termination decision
  // with no side channel.  Allocated only when the kernel converges, so
  // non-converging kernels keep a bit-identical heap layout and traffic.
  const bool has_conv = static_cast<bool>(spec.converged);
  core::GlobalArray<std::uint8_t> conv_flags{};
  if (has_conv) conv_flags = rt.alloc_global<std::uint8_t>(nprocs);

  const rsd::ArrayLayout x_layout{{spec.num_elements}, true};
  const rsd::ArrayLayout list_layout{
      {static_cast<std::int64_t>(slice_ints * nprocs)}, true};
  const rsd::ArrayLayout touch_layout{{static_cast<std::int64_t>(nprocs)},
                                      true};
  const rsd::ArrayLayout conv_layout{{static_cast<std::int64_t>(nprocs)},
                                     true};
  compiler::Bindings bindings;
  bindings["X"] = compiler::ArrayBinding{x.addr, sizeof(T), x_layout};
  bindings["F"] = compiler::ArrayBinding{f.addr, sizeof(T), x_layout};
  bindings["LIST"] =
      compiler::ArrayBinding{list.addr, sizeof(std::int32_t), list_layout};

  struct PerNode {
    std::vector<T> accum;  ///< private full-size reduction array (the
                           ///< memory cost the paper notes for Tmk)
    std::vector<std::int64_t> row_offsets;
    RowBuckets buckets;  ///< degree buckets (ExecEngine::kBucketed only)
    std::vector<double> payload;
    std::vector<bool> touches;  ///< chunks this node's items reference
    detail::TournamentPlan plan;  ///< this node's bracket (tournament mode)
    std::size_t refs = 0;         ///< flattened references this rebuild
    std::size_t max_row = 0;
    std::int64_t rebuilds = 0;
    std::int64_t steps_run = 0;  ///< steps executed (warmup + timed)
    bool done = false;           ///< globally converged: no further steps
    double checksum = 0;
  };
  std::vector<PerNode> state(nprocs);

  // Node 0 seeds the shared state before the (un)timed sections.
  rt.run([&](core::DsmNode& self) {
    if (self.id() == 0) {
      std::copy(spec.initial_state.begin(), spec.initial_state.end(),
                self.ptr(x));
    }
    self.barrier();
  });

  auto body = [&](core::DsmNode& self, int steps, int first_global) {
    const NodeId me = self.id();
    const part::Range mine = spec.owner_range[me];
    T* xp = self.ptr(x);
    T* fp = self.ptr(f);
    std::int32_t* lp = self.ptr(list) + me * slice_ints;
    PerNode& st = state[me];
    st.accum.resize(n);
    st.touches.resize(nprocs);
    detail::TmkIrregularNode node(self);
    const std::int64_t my_ref0 =
        static_cast<std::int64_t>(me) * static_cast<std::int64_t>(slice_ints);

    // The rebuild's whole-state read: issued by validate at the rebuild
    // itself, and — when cross-step prefetch is on — posted identically
    // from the previous step's barrier exit, so the same pages fly the
    // same way and only the wait moves.
    const auto rebuild_read_desc = [&] {
      return core::DescriptorBuilder::array(x, x_layout)
          .elements(0, spec.num_elements - 1)
          .schedule(detail::kSchedRebuildRead)
          .read();
    };

    // --- AccessStrategy::kPageDsm, Region::kIndirection: the structure
    // rebuild.  The whole-state read arrives by aggregated Validate
    // (optimized) or demand paging (base); the rebuilt reference list is
    // published through the shared LIST slice.
    auto rebuild_fn = [&](int /*global_step*/) {
      // This node's rebuild ordinal: the schedule-cache index for both
      // the hit (replay) and miss (record) paths.
      const std::int64_t ordinal = st.rebuilds;
      const CachedRebuild* cached =
          (session != nullptr && session->lookup)
              ? session->lookup(me, ordinal)
              : nullptr;
      if (optimized && spec.rebuild_reads_state) {
        // Prefetch the whole state with one aggregated exchange per
        // producer before the structure builder scans it.
        self.validate({rebuild_read_desc()});
      }
      WorkItems items;
      if (cached != nullptr) {
        if (!optimized && spec.rebuild_reads_state) {
          // Base backend, state-reading builder: on a miss the builder's
          // scan of x demand-fetches every invalid page.  Replaying the
          // structure skips the scan, so walk the pages explicitly — one
          // volatile touch per page — to keep the hit's fault traffic
          // identical to the miss's.
          const auto* xb = reinterpret_cast<const volatile std::byte*>(xp);
          const std::size_t xbytes = n * sizeof(T);
          for (std::size_t off = 0; off < xbytes;
               off += self.page_size()) {
            (void)xb[off];
          }
        }
        items.row_offsets = cached->items.row_offsets;
        items.refs = cached->items.refs;
        items.payload = cached->items.payload;
        st.refs = cached->shape.num_refs;
        st.max_row = cached->shape.max_row;
        session->cached_builds.fetch_add(1, std::memory_order_relaxed);
      } else {
        items = spec.build_items(node, std::span<const T>(xp, n));
        const ItemsShape shape = spec.require_valid_items(items);
        st.refs = shape.num_refs;
        st.max_row = shape.max_row;
        if (session != nullptr) {
          session->fresh_builds.fetch_add(1, std::memory_order_relaxed);
          if (session->store) {
            CachedRebuild record;
            record.items = items;  // copy: `items` is consumed below
            record.shape = shape;
            session->store(me, ordinal, std::move(record));
          }
        }
      }
      if (optimized) {
        // The whole slice is rewritten: whole-page shipping, no twins.
        // Declaring the write also notifies any schedule watching these
        // indirection pages, exactly as a faulting write would.
        self.validate(
            {core::DescriptorBuilder::array(list, list_layout)
                 .elements(static_cast<std::int64_t>(me * slice_ints),
                           static_cast<std::int64_t>((me + 1) * slice_ints) -
                               1)
                 .schedule(detail::kSchedListWrite)
                 .write_all()});
      }
      std::fill(st.touches.begin(), st.touches.end(), false);
      for (std::size_t k = 0; k < items.refs.size(); ++k) {
        const std::int64_t g = items.refs[k];
        lp[k] = static_cast<std::int32_t>(g);
        st.touches[owner_of(spec.owner_range, g)] = true;
      }
      st.row_offsets = std::move(items.row_offsets);
      if (options.exec_engine == ExecEngine::kBucketed) {
        st.buckets = RowBuckets::build(st.row_offsets);
      }
      st.payload = std::move(items.payload);
      ++st.rebuilds;
      if (tournament) {
        // Publish this node's touch-matrix row; the rebuild barrier
        // below makes every row visible to every node.
        if (optimized) {
          self.validate({core::DescriptorBuilder::array(touch_rows[me],
                                                        touch_layout)
                             .elements(0, nprocs - 1)
                             .schedule(detail::kSchedTouchWrite)
                             .write()});
        }
        std::uint8_t* tp = self.ptr(touch_rows[me]);
        for (std::uint32_t q = 0; q < nprocs; ++q) {
          tp[q] = st.touches[q] ? 1 : 0;
        }
      }
      self.barrier();
      if (tournament) {
        // Read the full matrix (one aggregated fetch per producer under
        // Validate, demand faults on the base backend) and derive the
        // bracket.  Every node sees the identical matrix, so the fused
        // rounds agree globally without any extra coordination.
        if (optimized) {
          std::vector<core::AccessDescriptor> reads;
          for (std::uint32_t q = 0; q < nprocs; ++q) {
            if (q == me) continue;
            reads.push_back(core::DescriptorBuilder::array(touch_rows[q],
                                                           touch_layout)
                                .elements(0, nprocs - 1)
                                .schedule(detail::kSchedTouchRead)
                                .read());
          }
          self.validate(reads);
        }
        std::vector<std::uint8_t> matrix(
            static_cast<std::size_t>(nprocs) * nprocs);
        for (std::uint32_t q = 0; q < nprocs; ++q) {
          const std::uint8_t* row = self.ptr(touch_rows[q]);
          std::copy(row, row + nprocs, matrix.begin() + q * nprocs);
        }
        st.plan = detail::build_tournament_plan(me, nprocs, spec.owner_range,
                                                matrix);
      }
    };

    // --- AccessStrategy::kPageDsm, both regions: the computational step.
    // Indirection reads fault in (base) or arrive by compiler-lowered
    // Validate (optimized); the reduction flows through the shared f
    // array under the selected round schedule; the owner update writes
    // the state region in place.
    auto execute_fn = [&](int /*global_step*/) {
      // The compute loop (the compiled kernel), accumulating privately.
      // Seeded with the reduction identity, NOT zero: for a min-reduction
      // every untouched element — including every element of a node whose
      // frontier is empty — must contribute nothing, and the serial
      // round-0 owner write / tournament owner write publish this
      // accumulator verbatim.
      std::fill(st.accum.begin(), st.accum.end(), spec.f_identity);
      if (optimized) {
        // Offset-driven bounds: this node's rows occupy the flat range
        // [my_ref0, my_ref0 + refs) of LIST, whatever their lengths
        // (1-based inclusive in the mini-Fortran; empty when refs == 0).
        const compiler::Env env{
            {"MY_REF_START", static_cast<long long>(my_ref0) + 1},
            {"MY_REF_END", static_cast<long long>(my_ref0) +
                               static_cast<long long>(st.refs)}};
        self.validate(compiler::lower_validate(
            detail::compiled_validate_stmt(), bindings, env));
      }
      KernelCtx<T> ctx;
      ctx.row_offsets = std::span<const std::int64_t>(st.row_offsets);
      ctx.refs = std::span<const std::int32_t>(lp, st.refs);
      ctx.payload = std::span<const double>(st.payload);
      ctx.x = std::span<const T>(xp, n);
      ctx.f = std::span<T>(st.accum);
      if (options.exec_engine == ExecEngine::kBucketed) {
        ctx.buckets = &st.buckets;
      }
      spec.compute(node, ctx);

      if (!tournament) {
        // Serial rotation pipeline: nprocs rounds, round r updates chunk
        // (me + r) % nprocs in place.  Round 0 is the owner initializing
        // its own chunk (WRITE_ALL); later rounds accumulate
        // (READ&WRITE_ALL) and are skipped for chunks this node's items
        // never touch.
        const auto reduce_desc = [&](std::uint32_t r) {
          const NodeId c = (me + r) % nprocs;
          const part::Range chunk = spec.owner_range[c];
          return core::DescriptorBuilder::array(f, x_layout)
              .elements(chunk.begin, chunk.end - 1)
              .schedule(detail::kSchedReduceBase + c)
              .finish(r == 0 ? core::Access::kWriteAll
                             : core::Access::kReadWriteAll);
        };
        const auto participates = [&](std::uint32_t r) {
          const NodeId c = (me + r) % nprocs;
          return spec.owner_range[c].size() > 0 && (r == 0 || st.touches[c]);
        };
        for (std::uint32_t r = 0; r < nprocs; ++r) {
          if (participates(r)) {
            const NodeId c = (me + r) % nprocs;
            const part::Range chunk = spec.owner_range[c];
            if (optimized) self.validate({reduce_desc(r)});
            if (r == 0) {
              for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
                fp[i] = st.accum[static_cast<std::size_t>(i)];
              }
            } else {
              for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
                fp[i] =
                    spec.combine(fp[i], st.accum[static_cast<std::size_t>(i)]);
              }
            }
          }
          self.barrier();
          // Cross-step prefetch: the schedule is deterministic, so round
          // r+1's chunk — and the diffs its pages need — is final the
          // moment this barrier returns.  Posting the same aggregated
          // requests the next validate would post moves their flight time
          // under the validate's own bookkeeping; the traffic is
          // message-for-message identical either way.
          if (prefetch && r + 1 < nprocs && participates(r + 1)) {
            self.post_validate_prefetch({reduce_desc(r + 1)});
          }
        }
      } else {
        // Tournament schedule: ceil(log2(contributors)) fused rounds.  In
        // round k every loser publishes its running partial for its chunk
        // into its own scratch slice, the barrier makes the publishes
        // visible, and every winner combines its partner's partial into
        // its private accumulator.  After the last round each chunk's
        // total sits with its owner, which alone writes f.
        const detail::TournamentPlan& plan = st.plan;
        const auto combine_descs = [&](int k) {
          std::vector<core::AccessDescriptor> descs;
          for (const detail::RoundOp& op :
               plan.combine[static_cast<std::size_t>(k)]) {
            descs.push_back(
                core::DescriptorBuilder::array(scratch[op.partner], x_layout)
                    .elements(op.range.begin, op.range.end - 1)
                    .schedule(detail::kSchedScratchReadBase + op.chunk)
                    .read());
          }
          return descs;
        };
        for (int k = 0; k < plan.rounds; ++k) {
          const auto& pubs = plan.publish[static_cast<std::size_t>(k)];
          if (!pubs.empty()) {
            if (optimized) {
              std::vector<core::AccessDescriptor> writes;
              for (const detail::RoundOp& op : pubs) {
                writes.push_back(
                    core::DescriptorBuilder::array(scratch[me], x_layout)
                        .elements(op.range.begin, op.range.end - 1)
                        .schedule(detail::kSchedScratchPubBase + op.chunk)
                        .write_all());
              }
              self.validate(writes);
            }
            T* sp = self.ptr(scratch[me]);
            for (const detail::RoundOp& op : pubs) {
              for (std::int64_t i = op.range.begin; i < op.range.end; ++i) {
                sp[i] = st.accum[static_cast<std::size_t>(i)];
              }
            }
          }
          self.barrier();
          const auto& combs = plan.combine[static_cast<std::size_t>(k)];
          if (!combs.empty()) {
            // The partners' partials are final at the barrier exit, so
            // their aggregated requests can fly while the validate below
            // plans (and while this node runs its own publishes' copies
            // next round on the base path).
            const auto descs = combine_descs(k);
            if (prefetch) self.post_validate_prefetch(descs);
            if (optimized) self.validate(descs);
            for (const detail::RoundOp& op : combs) {
              const T* sp = self.ptr(scratch[op.partner]);
              for (std::int64_t i = op.range.begin; i < op.range.end; ++i) {
                st.accum[static_cast<std::size_t>(i)] = spec.combine(
                    st.accum[static_cast<std::size_t>(i)], sp[i]);
              }
            }
          }
        }
        // Owner-only write of the shared reduction array; everyone else's
        // contribution already arrived through the bracket.  No barrier
        // needed before the update below reads it — the write is local —
        // and the step barrier publishes it for the next compute validate.
        if (mine.size() > 0) {
          if (optimized) {
            self.validate({core::DescriptorBuilder::array(f, x_layout)
                               .elements(mine.begin, mine.end - 1)
                               .schedule(detail::kSchedReduceBase + me)
                               .write_all()});
          }
          for (std::int64_t i = mine.begin; i < mine.end; ++i) {
            fp[i] = st.accum[static_cast<std::size_t>(i)];
          }
        }
      }

      // Owner update of the state from the reduced contributions.
      if (spec.update) {
        if (optimized && mine.size() > 0) {
          self.validate({core::DescriptorBuilder::array(f, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(detail::kSchedUpdateRead)
                             .read(),
                         core::DescriptorBuilder::array(x, x_layout)
                             .elements(mine.begin, mine.end - 1)
                             .schedule(detail::kSchedUpdateWrite)
                             .read_write_all()});
        }
        spec.update(
            std::span<T>(xp + mine.begin, static_cast<std::size_t>(mine.size())),
            std::span<const T>(fp + mine.begin,
                               static_cast<std::size_t>(mine.size())));
      }
    };

    auto finish_fn = [&](int global_step, bool last) -> bool {
      // Convergence verdict: published into this node's flag byte before
      // the step barrier, so the barrier's write notices carry every
      // node's verdict to every node.
      if (has_conv) {
        const bool mine_done = spec.converged(
            node, std::span<const T>(xp + mine.begin,
                                     static_cast<std::size_t>(mine.size())));
        if (optimized) {
          self.validate({core::DescriptorBuilder::array(conv_flags,
                                                        conv_layout)
                             .elements(me, me)
                             .schedule(detail::kSchedConvWrite)
                             .write()});
        }
        self.ptr(conv_flags)[me] = mine_done ? 1 : 0;
      }
      self.barrier();

      // Cross-step prefetch of the next rebuild's whole-state read: at the
      // barrier exit the state is final (nothing writes x until the next
      // update phase), so the aggregated requests the rebuild validate
      // would post can fly under the convergence check below.  If that
      // check ends the loop, the post is left in flight and settled by the
      // teardown drain (DsmRuntime::run) — the one case where prefetching
      // costs traffic a non-prefetched run would not pay.
      if (prefetch && spec.rebuild_reads_state && !last &&
          spec.rebuild_needed(global_step + 1)) {
        self.post_validate_prefetch({rebuild_read_desc()});
      }

      // Read every node's verdict (aggregated fetch under Validate, demand
      // faults on the base backend); all nodes see the identical flags, so
      // the loop terminates globally or not at all.
      if (has_conv) {
        if (optimized) {
          self.validate({core::DescriptorBuilder::array(conv_flags,
                                                        conv_layout)
                             .elements(0, nprocs - 1)
                             .schedule(detail::kSchedConvRead)
                             .read()});
        }
        const std::uint8_t* cp = self.ptr(conv_flags);
        bool all = true;
        for (std::uint32_t q = 0; q < nprocs; ++q) all = all && cp[q] != 0;
        if (all) st.done = true;
      }
      return st.done;
    };

    auto strat = make_strategy(rebuild_fn, execute_fn, finish_fn);
    drive_steps(spec, strat, steps, first_global, st.steps_run, st.done);
  };

  // Per-node aggregation below covers the locally hosted nodes: all of
  // them in threads mode; in process mode each worker reports its own and
  // the launcher sums/maxes across workers.  Steps and rebuilds are
  // globally uniform, so any hosted representative stands for them.
  const NodeId rep = rt.first_local_node();
  std::int64_t warm_steps_run = 0;
  const SectionTimes t = run_sections(
      rt, stats_entry, spec.warmup_steps, spec.num_steps, body,
      [&] { warm_steps_run = state[rep].steps_run; },
      [&](core::DsmNode& self) {
        const part::Range mine = spec.owner_range[self.id()];
        state[self.id()].checksum = spec.checksum(std::span<const T>(
            self.ptr(x) + mine.begin, static_cast<std::size_t>(mine.size())));
      });

  KernelResult res;
  res.backend = kind;
  res.seconds = t.wall_seconds;
  res.messages = t.net_timed.messages();
  res.megabytes = t.net_timed.megabytes();
  res.bytes = t.net_timed.bytes();
  res.overhead_seconds =
      (t.warm_scan_s + static_cast<double>(t.timed.scan_ns) / 1e9) /
      rt.num_local_nodes();
  res.diff_create_seconds =
      static_cast<double>(t.timed.diff_create_ns) / 1e9 /
      rt.num_local_nodes();
  res.diff_apply_seconds =
      static_cast<double>(t.timed.diff_apply_ns) / 1e9 /
      rt.num_local_nodes();
  res.rebuilds = state[rep].rebuilds;
  std::vector<NodeAccount> accounts;
  accounts.reserve(rt.num_local_nodes());
  for (const NodeId q : rt.local_ids()) {
    const PerNode& st = state[q];
    accounts.push_back({st.checksum, st.refs, st.max_row});
  }
  fold_accounts(res, accounts);
  res.steps_run = state[rep].steps_run - warm_steps_run;
  // Every node executes the same global barriers, so the per-node count is
  // the total divided by the hosted-node count (the stats only see hosted
  // nodes); the delta is taken from the post-warmup snapshot, so this
  // covers exactly the timed steps actually executed (fewer than num_steps
  // when the convergence flag ended the loop early).
  if (res.steps_run > 0) {
    res.barriers_per_step = static_cast<double>(t.timed.barriers) /
                            rt.num_local_nodes() /
                            static_cast<double>(res.steps_run);
  }
  res.tmk = counters_from(t.timed);
  return res;
}

// ---------------------------------------------------------------------------
// run_hybrid: the mixed assignment.  Region::kState under kPageDsm,
// Region::kIndirection under kInspectorGather.
// ---------------------------------------------------------------------------

template <typename T>
KernelResult run_hybrid(core::DsmRuntime& rt, const KernelSpec<T>& spec,
                        RunSession* session, const BackendOptions& options,
                        std::uint32_t num_nodes) {
  const std::uint32_t nprocs = num_nodes;
  const auto n = static_cast<std::size_t>(spec.num_elements);
  SDSM_REQUIRE_MSG(
      options.coherence == coherence::CoherencePolicy::kStatic,
      "hybrid backend: adaptive coherence is not supported (the write "
      "census is consumed at plan time instead)");

  const DsmStats::Snapshot stats_entry = rt.stats().snapshot();

  // Region::kState under the page protocol, laid out as per-node
  // page-aligned slices: every page of the state has exactly one writer —
  // its owner — which is precisely the single-writer census that sends the
  // indirection region to the inspector (plan::classify_indirection), and
  // what makes the owner's WRITE_ALL update twin-free with no boundary-page
  // cross-invalidation.
  std::vector<core::GlobalArray<T>> xs(nprocs);
  std::vector<rsd::ArrayLayout> slice_layout(nprocs);
  for (std::uint32_t q = 0; q < nprocs; ++q) {
    const std::int64_t sz = spec.owner_range[q].size();
    if (sz > 0) {
      xs[q] = rt.alloc_global<T>(static_cast<std::size_t>(sz));
      slice_layout[q] = rsd::ArrayLayout{{sz}, true};
    }
  }

  const bool has_conv = static_cast<bool>(spec.converged);

  // Region::kIndirection under the inspector: same translation table the
  // message driver builds (and caches through the session).
  std::shared_ptr<const chaos::TranslationTable> table_ptr =
      table_for(spec, nprocs, options.table, session);
  const chaos::TranslationTable& table = *table_ptr;

  struct PerNode {
    std::vector<T> x_all;  ///< private mirror: owned block + ghost region
    std::vector<T> f_all;  ///< private accumulators (owned + ghost)
    std::vector<T> all_state;
    std::shared_ptr<const chaos::Schedule> sched;
    std::vector<std::int32_t> localized;
    std::vector<std::int64_t> row_offsets;
    RowBuckets buckets;  ///< degree buckets (ExecEngine::kBucketed only)
    std::vector<double> payload;
    /// The app-data ExchangeNode; persists across sections so payloads a
    /// fast peer sent ahead (stash) are never dropped at a section join.
    std::unique_ptr<DsmExchange> exch;
    double inspector_seconds = 0;
    std::int64_t rebuilds = 0;
    std::int64_t ordinals = 0;
    std::int64_t steps_run = 0;
    std::size_t refs = 0;
    std::size_t max_row = 0;
    bool done = false;
    double checksum = 0;
  };
  std::vector<PerNode> state(nprocs);

  // Seed: each owner writes its own slice (single writer from the first
  // byte) and mirrors it privately — the same initial values the message
  // driver copies into x_all.
  rt.run([&](core::DsmNode& self) {
    const NodeId me = self.id();
    const part::Range mine = spec.owner_range[me];
    const auto local_n = static_cast<std::size_t>(mine.size());
    PerNode& st = state[me];
    st.x_all.resize(local_n);
    std::copy(spec.initial_state.begin() + mine.begin,
              spec.initial_state.begin() + mine.end, st.x_all.begin());
    if (local_n > 0) {
      self.validate({core::DescriptorBuilder::array(xs[me], slice_layout[me])
                         .elements(0, mine.size() - 1)
                         .schedule(detail::kSchedUpdateWrite)
                         .write_all()});
      std::copy(st.x_all.begin(), st.x_all.end(), self.ptr(xs[me]));
    }
    self.barrier();
  });

  bool timed_section = false;

  auto body = [&](core::DsmNode& self, int steps, int first_global) {
    const NodeId me = self.id();
    const part::Range mine = spec.owner_range[me];
    const auto local_n = static_cast<std::size_t>(mine.size());
    PerNode& st = state[me];
    if (!st.exch) st.exch = std::make_unique<DsmExchange>(self);
    DsmExchange& dx = *st.exch;
    detail::TmkIrregularNode node(self);
    T* xp = local_n > 0 ? self.ptr(xs[me]) : nullptr;

    auto fresh_rebuild = [&](std::int64_t ordinal) {
      std::span<const T> view{};
      if (spec.rebuild_reads_state) {
        // The rebuild's whole-state read stays under the page protocol:
        // one aggregated Validate over every owner's slice — request +
        // reply per producer, the same 2(N-1) messages per node the
        // optimized Tmk rebuild pays — then a local copy into the
        // contiguous view the structure builder expects.  (The message
        // driver performs this read as an explicit allgather instead.)
        st.all_state.resize(n);
        std::vector<core::AccessDescriptor> reads;
        for (std::uint32_t q = 0; q < nprocs; ++q) {
          if (q == me || spec.owner_range[q].size() == 0) continue;
          reads.push_back(
              core::DescriptorBuilder::array(xs[q], slice_layout[q])
                  .elements(0, spec.owner_range[q].size() - 1)
                  .schedule(detail::kSchedRebuildRead)
                  .read());
        }
        self.validate(reads);
        for (std::uint32_t q = 0; q < nprocs; ++q) {
          const part::Range range = spec.owner_range[q];
          if (range.size() == 0) continue;
          const T* qp = self.ptr(xs[q]);
          std::copy(qp, qp + range.size(),
                    st.all_state.begin() + range.begin);
        }
        view = st.all_state;
      }

      WorkItems items = spec.build_items(node, view);
      const ItemsShape shape = spec.require_valid_items(items);
      st.refs = shape.num_refs;
      st.max_row = shape.max_row;

      // Inspector over the app-data plane: identical schedule, ghost-slot
      // assignment, and message count as the message driver's — only the
      // fabric underneath differs.
      chaos::InspectorStats istats;
      st.sched = std::make_shared<const chaos::Schedule>(
          chaos::build_schedule(dx, items.refs, table, &istats));
      st.inspector_seconds += istats.seconds;
      ++st.rebuilds;
      st.localized =
          chaos::localize_references(me, items.refs, table, *st.sched);
      if (session != nullptr) {
        session->fresh_builds.fetch_add(1, std::memory_order_relaxed);
        if (session->store) {
          CachedRebuild record;
          record.items = items;  // copy: payload/offsets are moved below
          record.shape = shape;
          record.chaos_schedule = st.sched;
          record.chaos_localized = st.localized;
          session->store(me, ordinal, std::move(record));
        }
      }
      st.payload = std::move(items.payload);
      st.row_offsets = std::move(items.row_offsets);
    };

    auto rebuild_fn = [&](int /*global_step*/) {
      // Ordinal-indexed schedule cache, exactly as in the message driver:
      // hit/miss decisions are uniform across nodes (the cache is
      // committed whole), so the collective Validate inside fresh_rebuild
      // can never be entered by only some of them.
      const std::int64_t ordinal = st.ordinals++;
      const CachedRebuild* cached =
          (session != nullptr && session->lookup)
              ? session->lookup(me, ordinal)
              : nullptr;
      const net::Traffic sent0 = rt.network().stats().node_traffic(me);

      if (cached != nullptr) {
        st.refs = cached->shape.num_refs;
        st.max_row = cached->shape.max_row;
        st.payload = cached->items.payload;
        st.row_offsets = cached->items.row_offsets;
        st.sched = cached->chaos_schedule;
        st.localized = cached->chaos_localized;
        session->cached_builds.fetch_add(1, std::memory_order_relaxed);
      } else {
        fresh_rebuild(ordinal);
      }
      if (options.exec_engine == ExecEngine::kBucketed) {
        st.buckets = RowBuckets::build(st.row_offsets);
      }
      st.x_all.resize(local_n + static_cast<std::size_t>(st.sched->num_ghosts));
      st.f_all.assign(local_n + static_cast<std::size_t>(st.sched->num_ghosts),
                      spec.f_identity);
      if (session != nullptr && timed_section) {
        const net::Traffic sent =
            rt.network().stats().node_traffic(me) - sent0;
        session->structure_messages.fetch_add(sent.messages,
                                              std::memory_order_relaxed);
        session->structure_bytes.fetch_add(sent.bytes,
                                           std::memory_order_relaxed);
      }
    };

    auto execute_fn = [&](int /*global_step*/) {
      const auto ghosts = static_cast<std::size_t>(st.sched->num_ghosts);

      // Gather sources read the owner's slice — the state region's local
      // read path — and land in the private ghost region; schedule-order
      // identical to the message driver, so ghost values are bitwise
      // equal.
      chaos::gather<T>(dx, *st.sched, std::span<const T>(xp, local_n),
                       std::span<T>(st.x_all.data() + local_n, ghosts));
      std::fill(st.f_all.begin(), st.f_all.end(), spec.f_identity);
      KernelCtx<T> ctx;
      ctx.row_offsets = st.row_offsets;
      ctx.refs = st.localized;
      ctx.payload = st.payload;
      ctx.x = st.x_all;
      ctx.f = st.f_all;
      if (options.exec_engine == ExecEngine::kBucketed) {
        ctx.buckets = &st.buckets;
      }
      spec.compute(node, ctx);
      chaos::scatter<T>(dx, *st.sched, std::span<T>(st.f_all.data(), local_n),
                        std::span<const T>(st.f_all.data() + local_n, ghosts),
                        [&spec](T a, T b) { return spec.combine(a, b); });

      if (spec.update) {
        // Owner update of the state slice under the page protocol:
        // READ&WRITE_ALL — the owner's pages are always valid locally, so
        // no fetch; every byte is rewritten, so the step barrier ships
        // whole pages and no twins are created.  The private mirror is
        // refreshed afterwards so the next compute reads current values.
        if (local_n > 0) {
          self.validate(
              {core::DescriptorBuilder::array(xs[me], slice_layout[me])
                   .elements(0, mine.size() - 1)
                   .schedule(detail::kSchedUpdateWrite)
                   .read_write_all()});
        }
        spec.update(std::span<T>(xp, local_n),
                    std::span<const T>(st.f_all.data(), local_n));
        std::copy(xp, xp + local_n, st.x_all.begin());
      }
    };

    auto finish_fn = [&](int /*global_step*/, bool /*last*/) -> bool {
      // Convergence by allgather of the verdict byte over the app-data
      // plane — the indirection region's strategy owns the irregular
      // communication, and the byte counts match the message driver's.
      bool all_done = false;
      if (has_conv) {
        const bool mine_done = spec.converged(
            node, std::span<const T>(st.x_all.data(), local_n));
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) out[q] = {static_cast<std::uint8_t>(mine_done ? 1 : 0)};
        }
        auto in = dx.all_to_all(std::move(out));
        all_done = mine_done;
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) all_done = all_done && !in[q].empty() && in[q][0] != 0;
        }
      }
      // The step barrier is the DSM barrier: it publishes the slice
      // update's write notices (piggybacked — no extra messages) and
      // counts the same 2(N-1) messages the message driver's barrier
      // does, preserving message-count comparability.
      self.barrier();
      return all_done;
    };

    auto strat = make_strategy(rebuild_fn, execute_fn, finish_fn);
    drive_steps(spec, strat, steps, first_global, st.steps_run, st.done);
  };

  const NodeId rep = rt.first_local_node();
  std::int64_t warm_steps_run = 0;
  const SectionTimes t = run_sections(
      rt, stats_entry, spec.warmup_steps, spec.num_steps, body,
      [&] {
        warm_steps_run = state[rep].steps_run;
        timed_section = true;
      },
      [&](core::DsmNode& self) {
        const NodeId me = self.id();
        const auto local_n =
            static_cast<std::size_t>(spec.owner_range[me].size());
        state[me].checksum = spec.checksum(
            std::span<const T>(state[me].x_all.data(), local_n));
      });

  KernelResult res;
  res.backend = Backend::kHybrid;
  res.seconds = t.wall_seconds;
  res.messages = t.net_timed.messages();
  res.megabytes = t.net_timed.megabytes();
  res.bytes = t.net_timed.bytes();
  // Structure-currency overhead has both flavors here: inspector time
  // (chaos-style, per node) plus any Read_indices scans (none today — the
  // hybrid shares no LIST array — but accounted for honesty).
  double insp = 0;
  for (const NodeId q : rt.local_ids()) insp += state[q].inspector_seconds;
  res.overhead_seconds =
      insp / rt.num_local_nodes() +
      (t.warm_scan_s + static_cast<double>(t.timed.scan_ns) / 1e9) /
          rt.num_local_nodes();
  res.diff_create_seconds =
      static_cast<double>(t.timed.diff_create_ns) / 1e9 /
      rt.num_local_nodes();
  res.diff_apply_seconds =
      static_cast<double>(t.timed.diff_apply_ns) / 1e9 /
      rt.num_local_nodes();
  res.rebuilds = state[rep].rebuilds;
  std::vector<NodeAccount> accounts;
  accounts.reserve(rt.num_local_nodes());
  for (const NodeId q : rt.local_ids()) {
    const PerNode& st = state[q];
    accounts.push_back({st.checksum, st.refs, st.max_row});
  }
  fold_accounts(res, accounts);
  res.steps_run = state[rep].steps_run - warm_steps_run;
  if (res.steps_run > 0) {
    res.barriers_per_step = static_cast<double>(t.timed.barriers) /
                            rt.num_local_nodes() /
                            static_cast<double>(res.steps_run);
  }
  res.tmk = counters_from(t.timed);
  return res;
}

// ---------------------------------------------------------------------------
// run_dsm: resolve the plan, dispatch.
// ---------------------------------------------------------------------------

template <typename T>
KernelResult run_dsm(core::DsmRuntime& rt, const KernelSpec<T>& spec,
                     RunSession* session, const BackendOptions& options,
                     std::uint32_t num_nodes, Backend kind) {
  spec.require_valid(num_nodes);
  // The runtime may be a warm, long-lived arena (serving path): it must
  // match this backend's shape and have been reset since its last job so
  // allocation addresses — and therefore page layout and traffic — are
  // identical to a fresh one-shot runtime.
  SDSM_REQUIRE(rt.num_nodes() == num_nodes);
  SDSM_REQUIRE(rt.config().transport == options.transport);
  SDSM_REQUIRE(rt.config().write_all_enabled == options.write_all_enabled);
  SDSM_REQUIRE(rt.config().coherence == options.coherence);
  // The diff engine is baked into the arena's config at construction, so
  // a warm engine keyed without it would silently scan with the wrong
  // engine; fail loudly instead (the serve layer keys engines on it).
  SDSM_REQUIRE_MSG(rt.config().diff_engine == options.diff_engine,
                   "run_dsm: runtime was built with a different diff engine "
                   "than this run requests");
  SDSM_REQUIRE_MSG(rt.shared_bytes_used() == 0,
                   "run_dsm: runtime arena not reset");

  ExecutionPlan p = plan_for(kind);
  if (kind == Backend::kHybrid) {
    if (spec.indirection_strategy.has_value()) {
      p.indirection = *spec.indirection_strategy;
    } else {
      // Derive from the write census of the state layout the hybrid would
      // allocate: page-aligned per-node slices are single-writer, so this
      // normally resolves to kInspectorGather; a spec whose layout folds
      // multi-writer pages falls back to the pure page-protocol path.
      p.indirection = classify_indirection(
          census_for_layout(spec.owner_range, sizeof(T), rt.page_size()));
    }
  }
  if (p.mixed()) {
    return run_hybrid(rt, spec, session, options, num_nodes);
  }
  return run_page_dsm(rt, spec, session, options, num_nodes,
                      p.validate_aggregation, kind);
}

}  // namespace sdsm::api::plan
