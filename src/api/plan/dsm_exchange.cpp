#include "src/api/plan/dsm_exchange.hpp"

#include "src/common/assert.hpp"

namespace sdsm::api::plan {

std::vector<std::vector<std::uint8_t>> DsmExchange::exchange(
    std::vector<std::vector<std::uint8_t>> to_peers,
    const std::vector<bool>& recv_from, bool send_empty) {
  const NodeId me = id();
  const std::uint32_t nprocs = num_nodes();
  SDSM_REQUIRE(to_peers.size() == nprocs);
  SDSM_REQUIRE(recv_from.size() == nprocs);
  // Split phase: all sends go out before any payload is drained, exactly
  // as in ChaosNode::exchange, so peer service work overlaps.
  for (NodeId p = 0; p < nprocs; ++p) {
    if (p == me) continue;
    if (to_peers[p].empty() && !send_empty) continue;
    node_.send_app_data(p, std::move(to_peers[p]));
  }

  std::vector<std::vector<std::uint8_t>> from_peers(nprocs);
  std::vector<bool> expected(nprocs, false);
  std::uint32_t need = 0;
  for (NodeId p = 0; p < nprocs; ++p) {
    if (p == me || !recv_from[p]) continue;
    if (!stash_[p].empty()) {
      from_peers[p] = std::move(stash_[p].front());
      stash_[p].pop_front();
    } else {
      expected[p] = true;
      ++need;
    }
  }
  while (need > 0) {
    auto [src, payload] = node_.recv_app_data();
    if (expected[src]) {
      from_peers[src] = std::move(payload);
      expected[src] = false;
      --need;
    } else {
      stash_[src].push_back(std::move(payload));
    }
  }
  return from_peers;
}

}  // namespace sdsm::api::plan
