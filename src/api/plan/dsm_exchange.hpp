// chaos::ExchangeNode over a DSM node's application-data plane.
//
// This is the piece that lets inspector-built schedules execute while the
// rest of the run sits under the page protocol: build_schedule() and the
// executor gather/scatter templates only need an ExchangeNode, and here
// the messages travel as core kAppData payloads on the same transport,
// counted by the same NetStats as every protocol message.  The exchange
// discipline mirrors chaos::ChaosNode exactly — split-phase sends, drain
// in arrival order, per-peer stash for a fast peer's next-phase traffic —
// so schedule-driven traffic has the same message count on either fabric.
#pragma once

#include <deque>
#include <vector>

#include "src/chaos/exchange.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::api::plan {

class DsmExchange final : public chaos::ExchangeNode {
 public:
  explicit DsmExchange(core::DsmNode& node)
      : node_(node), stash_(node.num_nodes()) {}

  NodeId id() const override { return node_.id(); }
  std::uint32_t num_nodes() const override { return node_.num_nodes(); }

  std::vector<std::vector<std::uint8_t>> all_to_all(
      std::vector<std::vector<std::uint8_t>> to_peers) override {
    std::vector<bool> recv_from(num_nodes(), true);
    recv_from[id()] = false;
    return exchange(std::move(to_peers), recv_from, /*send_empty=*/true);
  }

  std::vector<std::vector<std::uint8_t>> sparse_exchange(
      std::vector<std::vector<std::uint8_t>> to_peers,
      const std::vector<bool>& recv_from) override {
    return exchange(std::move(to_peers), recv_from, /*send_empty=*/false);
  }

 private:
  std::vector<std::vector<std::uint8_t>> exchange(
      std::vector<std::vector<std::uint8_t>> to_peers,
      const std::vector<bool>& recv_from, bool send_empty);

  core::DsmNode& node_;
  // Payloads that arrived ahead of their exchange (a fast peer already in
  // its next phase).  Served before the inbox, preserving per-peer FIFO.
  std::vector<std::deque<std::vector<std::uint8_t>>> stash_;
};

}  // namespace sdsm::api::plan
