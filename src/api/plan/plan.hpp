// Per-region execution planning (sdsm::api::plan).
//
// The paper's comparison — CHAOS inspector/executor vs TreadMarks SDSM —
// is a whole-program choice in the classic backends.  This layer names the
// choice per *shared region* instead: the owner-partitioned state array
// and the indirection-driven remote accesses each get an AccessStrategy,
// and an ExecutionPlan is one assignment of strategies to regions.  The
// three classic backends are fixed assignments; Backend::kHybrid is the
// first mixed one (state under the page protocol, indirection reads
// resolved by inspector-built communication schedules), the
// selective-aggregation idea from the PGAS compiler line of work.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/api/backend.hpp"
#include "src/coherence/heat.hpp"
#include "src/common/types.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::api::plan {

/// The shared regions of an irregular kernel (Figure 1 of the paper).
enum class Region : std::uint8_t {
  /// The owner-partitioned state array x: written only by each element's
  /// owner (the update phase), read globally at structure rebuilds.
  kState,
  /// The indirection-driven accesses: x[LIST(j)] reads and the f
  /// reductions whose element set is known only after inspecting LIST.
  kIndirection,
};

/// How a region's remote accesses are resolved.
enum class AccessStrategy : std::uint8_t {
  /// The Tmk path: page faults + Validate aggregation + twin/diff
  /// coherence over core::DsmNode.
  kPageDsm,
  /// The CHAOS path: translation table + inspector-built communication
  /// schedule, executor gather/scatter over ghost regions.
  kInspectorGather,
};

/// Stable display name: "page-dsm" | "inspector-gather".
const char* access_strategy_name(AccessStrategy s);

/// One run's assignment of strategies to regions.
struct ExecutionPlan {
  AccessStrategy state = AccessStrategy::kPageDsm;
  AccessStrategy indirection = AccessStrategy::kPageDsm;
  /// Compiler-driven Validate aggregation on the kPageDsm paths (the
  /// base-vs-optimized Tmk lever; irrelevant to kInspectorGather regions).
  bool validate_aggregation = false;

  AccessStrategy of(Region r) const {
    return r == Region::kState ? state : indirection;
  }
  /// True when any region runs under the page protocol (the run needs a
  /// DSM substrate).
  bool uses_dsm() const {
    return state == AccessStrategy::kPageDsm ||
           indirection == AccessStrategy::kPageDsm;
  }
  /// True when the regions run under different strategies (the hybrid).
  bool mixed() const { return state != indirection; }
};

/// The fixed strategy assignment of each backend.  kHybrid's indirection
/// slot defaults to kInspectorGather; the driver overrides it with the
/// KernelSpec-declared strategy or the census-derived one
/// (classify_indirection) before executing.
ExecutionPlan plan_for(Backend b);

/// Census-driven classification of the indirection region (kHybrid with no
/// declared strategy): when every censused page has exactly one writer —
/// the stable single-owner pattern the update phase produces over
/// page-aligned per-node state slices — remote reads of the state are pure
/// consumer traffic that inspector schedules aggregate into one message
/// per producer, so the indirection region goes to kInspectorGather.  Any
/// multi-writer page means concurrent writes land in the region the
/// indirection reads flow through, which needs the multiple-writer diff
/// protocol: the region stays under kPageDsm.
AccessStrategy classify_indirection(const coherence::WriteCensus& census);

/// Synthetic pre-run write census for a partitioned state array laid out
/// as page-aligned per-node slices: each owner writes its whole slice once
/// per step (exactly what the update phase does), folded with the same
/// WriteCensus arithmetic the sdsm::coherence engine folds barrier write
/// notices with.  Page ids are slice-relative (slice q starts at page
/// q * pages_per_slice(max range)), matching the hybrid's allocation.
coherence::WriteCensus census_for_layout(
    const std::vector<part::Range>& owner_range, std::size_t elem_size,
    std::size_t page_bytes);

}  // namespace sdsm::api::plan
