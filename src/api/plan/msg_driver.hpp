// The message-substrate driver: both regions under
// AccessStrategy::kInspectorGather (the CHAOS assignment).
//
// This is the former ChaosBackend monolith with its hand-rolled step loop
// replaced by the shared StepDriver (plan/step_driver.hpp) and its result
// fold replaced by the shared fold helpers (plan/fold.hpp).  The strategy
// realizes every phase with inspector/executor machinery: structure
// rebuilds run the inspector over an allgathered state view, the compute
// step gathers ghosts / scatters contributions per schedule, and the
// convergence verdict is an allgather of one byte per node.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/api/bucketed.hpp"
#include "src/api/kernel.hpp"
#include "src/api/plan/fold.hpp"
#include "src/api/plan/plan.hpp"
#include "src/api/plan/step_driver.hpp"
#include "src/api/reuse.hpp"
#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/chaos/translation_table.hpp"
#include "src/common/buffer.hpp"
#include "src/common/timer.hpp"

namespace sdsm::api::plan {

namespace detail {

class ChaosIrregularNode final : public IrregularNode {
 public:
  explicit ChaosIrregularNode(chaos::ChaosNode& n) : n_(n) {}
  NodeId id() const override { return n_.id(); }
  std::uint32_t num_nodes() const override { return n_.num_nodes(); }
  void barrier() override { n_.barrier(); }

 private:
  chaos::ChaosNode& n_;
};

}  // namespace detail

/// Builds (or reuses, via the session) the translation table for a
/// contiguous owner partition — shared by the message driver and the
/// hybrid's inspector side.
template <typename T>
std::shared_ptr<const chaos::TranslationTable> table_for(
    const KernelSpec<T>& spec, std::uint32_t nprocs, chaos::TableKind kind,
    RunSession* session) {
  // Owner map and translation table (remapping: owner-contiguous offsets,
  // which for a contiguous partition makes local offset = global - begin).
  // On the serving path the table is itself a cached artifact: built once
  // per (graph, kernel) on the host thread (before node fan-out, so
  // publishing it back needs no synchronization) and reused on repeats.
  if (session != nullptr && session->table) return session->table;
  std::vector<NodeId> owner(static_cast<std::size_t>(spec.num_elements));
  for (std::int64_t g = 0; g < spec.num_elements; ++g) {
    owner[static_cast<std::size_t>(g)] = owner_of(spec.owner_range, g);
  }
  auto table = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(owner, nprocs, kind));
  if (session != nullptr) session->table = table;
  return table;
}

template <typename T>
KernelResult run_msg(chaos::ChaosRuntime& rt, const KernelSpec<T>& spec,
                     RunSession* session, const BackendOptions& options,
                     std::uint32_t num_nodes) {
  spec.require_valid(num_nodes);
  const std::uint32_t nprocs = num_nodes;
  SDSM_REQUIRE(rt.num_nodes() == nprocs);

  std::shared_ptr<const chaos::TranslationTable> table_ptr =
      table_for(spec, nprocs, options.table, session);
  const chaos::TranslationTable& table = *table_ptr;

  std::vector<double> inspector_seconds(nprocs, 0.0);
  std::vector<std::int64_t> rebuilds(nprocs, 0);  ///< fresh inspector runs
  std::vector<std::int64_t> ordinals(nprocs, 0);  ///< all rebuild events
  std::vector<std::int64_t> steps_run(nprocs, 0);
  std::vector<std::size_t> refs_built(nprocs, 0);
  std::vector<std::size_t> max_row(nprocs, 0);
  std::vector<double> timed_seconds(nprocs, 0.0);
  std::vector<double> partial(nprocs, 0.0);
  std::atomic<std::uint64_t> msgs_start{0}, msgs_end{0};
  std::atomic<std::uint64_t> bytes_start{0}, bytes_end{0};
  std::atomic<std::uint64_t> barr_start{0}, barr_end{0};

  // No stats reset: all accounting below is snapshot-delta scoped, so a
  // warm shared runtime's cumulative totals survive each job.
  rt.run([&](chaos::ChaosNode& cn) {
    const NodeId me = cn.id();
    const part::Range mine = spec.owner_range[me];
    const auto local_n = static_cast<std::size_t>(mine.size());
    detail::ChaosIrregularNode node(cn);

    std::vector<T> x_all(local_n);  // owned block, ghost region appended
    std::copy(spec.initial_state.begin() + mine.begin,
              spec.initial_state.begin() + mine.end, x_all.begin());
    std::vector<T> f_all;

    std::shared_ptr<const chaos::Schedule> sched;
    std::vector<std::int32_t> localized;
    std::vector<std::int64_t> row_offsets;
    RowBuckets buckets;  // degree buckets (ExecEngine::kBucketed only)
    std::vector<double> payload;
    std::vector<T> all_state;
    bool timed_section = false;
    bool done = false;

    auto fresh_rebuild = [&](std::int64_t ordinal) {
      std::span<const T> view{};
      if (spec.rebuild_reads_state) {
        // Allgather the owned blocks into a full copy: CHAOS has no shared
        // memory, and the structure builder needs the global view (this is
        // the rebuild communication the DSM performs via paging/Validate).
        all_state.resize(static_cast<std::size_t>(spec.num_elements));
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        {
          Writer w;
          w.put_span<T>(std::span<const T>(x_all.data(), local_n));
          for (NodeId q = 0; q < nprocs; ++q) {
            if (q != me) out[q] = w.bytes();
          }
        }
        auto in = cn.all_to_all(std::move(out));
        for (NodeId q = 0; q < nprocs; ++q) {
          const part::Range range = spec.owner_range[q];
          if (q == me) {
            std::copy(x_all.begin(), x_all.begin() + local_n,
                      all_state.begin() + range.begin);
          } else {
            Reader r(in[q]);
            const auto block = r.template get_vector<T>();
            std::copy(block.begin(), block.end(),
                      all_state.begin() + range.begin);
          }
        }
        view = all_state;
      }

      WorkItems items = spec.build_items(node, view);
      // Same CSR + capacity contract the Tmk backends enforce: a spec must
      // not pass on one backend and abort on another.
      const ItemsShape shape = spec.require_valid_items(items);
      refs_built[me] = shape.num_refs;
      max_row[me] = shape.max_row;

      // Inspector: schedule + localization from the flattened row
      // references — rows of any length land in the same duplicate
      // elimination, translation lookups, and ghost-slot assignment, so
      // variable-arity rows localize exactly like fixed-arity ones.
      chaos::InspectorStats istats;
      sched = std::make_shared<const chaos::Schedule>(
          chaos::build_schedule(cn, items.refs, table, &istats));
      inspector_seconds[me] += istats.seconds;
      ++rebuilds[me];
      localized = chaos::localize_references(me, items.refs, table, *sched);
      if (session != nullptr) {
        session->fresh_builds.fetch_add(1, std::memory_order_relaxed);
        if (session->store) {
          CachedRebuild record;
          record.items = items;  // copy: payload/offsets are moved below
          record.shape = shape;
          record.chaos_schedule = sched;
          record.chaos_localized = localized;
          session->store(me, ordinal, std::move(record));
        }
      }
      payload = std::move(items.payload);
      row_offsets = std::move(items.row_offsets);
    };

    auto rebuild_fn = [&](int /*global_step*/) {
      // This node's rebuild ordinal: the schedule-cache index for both the
      // replay and record paths.  The cache is committed whole (every
      // node's trace for an ordinal, or none), so hit/miss decisions are
      // uniform across nodes and the collective allgather inside
      // fresh_rebuild can never be entered by only some of them.
      const std::int64_t ordinal = ordinals[me]++;
      const CachedRebuild* cached =
          (session != nullptr && session->lookup)
              ? session->lookup(me, ordinal)
              : nullptr;
      // Structure-traffic attribution: this node's sends during its
      // rebuild section (allgather share + inspector exchange).  Only the
      // node's own compute thread bumps its send counters, so the delta
      // is race-free; only timed rebuilds accumulate, matching the
      // message-count window of the result.
      const net::Traffic sent0 = rt.network().stats().node_traffic(me);

      if (cached != nullptr) {
        refs_built[me] = cached->shape.num_refs;
        max_row[me] = cached->shape.max_row;
        payload = cached->items.payload;
        row_offsets = cached->items.row_offsets;
        sched = cached->chaos_schedule;
        localized = cached->chaos_localized;
        session->cached_builds.fetch_add(1, std::memory_order_relaxed);
      } else {
        fresh_rebuild(ordinal);
      }
      if (options.exec_engine == ExecEngine::kBucketed) {
        // Built from row_offsets alone — byte-identical input on every
        // backend — so the bucketed iteration order matches Tmk's exactly.
        buckets = RowBuckets::build(row_offsets);
      }
      x_all.resize(local_n + static_cast<std::size_t>(sched->num_ghosts));
      f_all.assign(local_n + static_cast<std::size_t>(sched->num_ghosts),
                   spec.f_identity);
      if (session != nullptr && timed_section) {
        const net::Traffic sent =
            rt.network().stats().node_traffic(me) - sent0;
        session->structure_messages.fetch_add(sent.messages,
                                              std::memory_order_relaxed);
        session->structure_bytes.fetch_add(sent.bytes,
                                           std::memory_order_relaxed);
      }
    };

    auto execute_fn = [&](int /*global_step*/) {
      const auto ghosts = static_cast<std::size_t>(sched->num_ghosts);

      // Executor: gather remote state, compute, scatter contributions.
      // Accumulators (owned and ghost) seed with the reduction identity so
      // untouched elements — all of them, on an empty frontier —
      // contribute nothing under either operator.
      chaos::gather<T>(cn, *sched, std::span<const T>(x_all.data(), local_n),
                       std::span<T>(x_all.data() + local_n, ghosts));
      std::fill(f_all.begin(), f_all.end(), spec.f_identity);
      KernelCtx<T> ctx;
      ctx.row_offsets = row_offsets;
      ctx.refs = localized;
      ctx.payload = payload;
      ctx.x = x_all;
      ctx.f = f_all;
      if (options.exec_engine == ExecEngine::kBucketed) {
        ctx.buckets = &buckets;
      }
      spec.compute(node, ctx);
      chaos::scatter<T>(cn, *sched, std::span<T>(f_all.data(), local_n),
                        std::span<const T>(f_all.data() + local_n, ghosts),
                        [&spec](T a, T b) { return spec.combine(a, b); });

      if (spec.update) {
        spec.update(std::span<T>(x_all.data(), local_n),
                    std::span<const T>(f_all.data(), local_n));
      }
    };

    auto finish_fn = [&](int /*global_step*/, bool /*last*/) -> bool {
      // Convergence: CHAOS has no shared memory, so the published flag is
      // an allgather of one verdict byte per node — every pair exchanges
      // (even when the local frontier was empty), so all nodes reach the
      // identical decision with no side channel.
      bool all_done = false;
      if (spec.converged) {
        const bool mine_done = spec.converged(
            node, std::span<const T>(x_all.data(), local_n));
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) out[q] = {static_cast<std::uint8_t>(mine_done ? 1 : 0)};
        }
        auto in = cn.all_to_all(std::move(out));
        all_done = mine_done;
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) all_done = all_done && !in[q].empty() && in[q][0] != 0;
        }
      }
      cn.barrier();
      return all_done;
    };

    auto strat = make_strategy(rebuild_fn, execute_fn, finish_fn);

    std::int64_t warm_steps = 0;  // warmup steps are not reported
    drive_steps(spec, strat, spec.warmup_steps, 0, warm_steps, done);
    // Quiescent snapshots: taken by node 0 while every other node is
    // blocked inside the barrier, so the counts are deterministic.
    cn.barrier([&] {
      msgs_start = rt.total_messages();
      bytes_start = static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
      barr_start = rt.total_barriers();
    });

    timed_section = true;
    const Timer timer;
    drive_steps(spec, strat, spec.num_steps, spec.warmup_steps, steps_run[me],
                done);
    timed_seconds[me] = timer.elapsed_s();
    cn.barrier([&] {
      msgs_end = rt.total_messages();
      bytes_end = static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
      barr_end = rt.total_barriers();
    });

    partial[me] = spec.checksum(std::span<const T>(x_all.data(), local_n));
  });

  KernelResult res;
  res.backend = Backend::kChaos;
  for (const double t : timed_seconds) res.seconds = std::max(res.seconds, t);
  // Between the two snapshots lie the timed steps plus exactly one barrier
  // release (N-1 messages) and one barrier arrival (N-1).
  res.messages =
      msgs_end.load() - msgs_start.load() - 2 * (nprocs - 1);
  res.megabytes =
      static_cast<double>(bytes_end.load() - bytes_start.load()) / 1e6;
  res.bytes = bytes_end.load() - bytes_start.load();
  // Barrier arrivals between the snapshots: the timed steps' barriers plus
  // the end snapshot's own (fully counted at its quiescent point, like the
  // start's is in barr_start).  Measured, not asserted: CHAOS synchronizes
  // through its gather/scatter exchanges, so this is normally the one
  // step-closing barrier — and the bench column will say so the day that
  // stops being true.
  res.steps_run = steps_run[0];
  if (res.steps_run > 0) {
    res.barriers_per_step =
        static_cast<double>(barr_end.load() - barr_start.load() - nprocs) /
        nprocs / static_cast<double>(res.steps_run);
  }
  std::vector<NodeAccount> accounts(nprocs);
  for (NodeId q = 0; q < nprocs; ++q) {
    accounts[q] = {partial[q], refs_built[q], max_row[q]};
  }
  fold_accounts(res, accounts);
  double insp = 0;
  for (const double s : inspector_seconds) insp += s;
  res.overhead_seconds = insp / nprocs;
  res.rebuilds = rebuilds[0];
  return res;
}

}  // namespace sdsm::api::plan
