#include "src/api/chaos_backend.hpp"

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/chaos/translation_table.hpp"
#include "src/common/buffer.hpp"
#include "src/common/timer.hpp"

namespace sdsm::api {

namespace {

class ChaosIrregularNode final : public IrregularNode {
 public:
  explicit ChaosIrregularNode(chaos::ChaosNode& n) : n_(n) {}
  NodeId id() const override { return n_.id(); }
  std::uint32_t num_nodes() const override { return n_.num_nodes(); }
  void barrier() override { n_.barrier(); }

 private:
  chaos::ChaosNode& n_;
};

}  // namespace

template <typename T>
KernelResult ChaosBackend::run_impl(const KernelSpec<T>& spec) {
  spec.require_valid(num_nodes_);
  const std::uint32_t nprocs = num_nodes_;

  // Owner map and translation table (remapping: owner-contiguous offsets,
  // which for a contiguous partition makes local offset = global - begin).
  std::vector<NodeId> owner(static_cast<std::size_t>(spec.num_elements));
  for (std::int64_t g = 0; g < spec.num_elements; ++g) {
    owner[static_cast<std::size_t>(g)] = owner_of(spec.owner_range, g);
  }
  const auto table =
      chaos::TranslationTable::build(owner, nprocs, options_.table);

  chaos::ChaosRuntime rt(nprocs, options_.wire, options_.transport);

  std::vector<double> inspector_seconds(nprocs, 0.0);
  std::vector<std::int64_t> rebuilds(nprocs, 0);
  std::vector<std::int64_t> steps_run(nprocs, 0);
  std::vector<std::size_t> refs_built(nprocs, 0);
  std::vector<std::size_t> max_row(nprocs, 0);
  std::vector<double> timed_seconds(nprocs, 0.0);
  std::vector<double> partial(nprocs, 0.0);
  std::atomic<std::uint64_t> msgs_start{0}, msgs_end{0};
  std::atomic<std::uint64_t> bytes_start{0}, bytes_end{0};
  std::atomic<std::uint64_t> barr_start{0}, barr_end{0};

  rt.reset_stats();
  rt.run([&](chaos::ChaosNode& cn) {
    const NodeId me = cn.id();
    const part::Range mine = spec.owner_range[me];
    const auto local_n = static_cast<std::size_t>(mine.size());
    ChaosIrregularNode node(cn);

    std::vector<T> x_all(local_n);  // owned block, ghost region appended
    std::copy(spec.initial_state.begin() + mine.begin,
              spec.initial_state.begin() + mine.end, x_all.begin());
    std::vector<T> f_all;

    chaos::Schedule sched;
    std::vector<std::int32_t> localized;
    std::vector<std::int64_t> row_offsets;
    std::vector<double> payload;
    std::vector<T> all_state;

    auto rebuild_fn = [&] {
      std::span<const T> view{};
      if (spec.rebuild_reads_state) {
        // Allgather the owned blocks into a full copy: CHAOS has no shared
        // memory, and the structure builder needs the global view (this is
        // the rebuild communication the DSM performs via paging/Validate).
        all_state.resize(static_cast<std::size_t>(spec.num_elements));
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        {
          Writer w;
          w.put_span<T>(std::span<const T>(x_all.data(), local_n));
          for (NodeId q = 0; q < nprocs; ++q) {
            if (q != me) out[q] = w.bytes();
          }
        }
        auto in = cn.all_to_all(std::move(out));
        for (NodeId q = 0; q < nprocs; ++q) {
          const part::Range range = spec.owner_range[q];
          if (q == me) {
            std::copy(x_all.begin(), x_all.begin() + local_n,
                      all_state.begin() + range.begin);
          } else {
            Reader r(in[q]);
            const auto block = r.template get_vector<T>();
            std::copy(block.begin(), block.end(),
                      all_state.begin() + range.begin);
          }
        }
        view = all_state;
      }

      WorkItems items = spec.build_items(node, view);
      // Same CSR + capacity contract the Tmk backends enforce: a spec must
      // not pass on one backend and abort on another.
      const ItemsShape shape = spec.require_valid_items(items);
      refs_built[me] = shape.num_refs;
      max_row[me] = shape.max_row;
      payload = std::move(items.payload);
      row_offsets = std::move(items.row_offsets);

      // Inspector: schedule + localization from the flattened row
      // references — rows of any length land in the same duplicate
      // elimination, translation lookups, and ghost-slot assignment, so
      // variable-arity rows localize exactly like fixed-arity ones.
      chaos::InspectorStats istats;
      sched = chaos::build_schedule(cn, items.refs, table, &istats);
      inspector_seconds[me] += istats.seconds;
      ++rebuilds[me];
      localized = chaos::localize_references(me, items.refs, table, sched);
      x_all.resize(local_n + static_cast<std::size_t>(sched.num_ghosts));
      f_all.assign(local_n + static_cast<std::size_t>(sched.num_ghosts),
                   spec.f_identity);
    };

    // Runs one step; returns true when every node reported convergence
    // (the caller then stops the loop).
    auto step_fn = [&](int global_step) -> bool {
      if (spec.rebuild_needed(global_step)) rebuild_fn();
      const auto ghosts = static_cast<std::size_t>(sched.num_ghosts);

      // Executor: gather remote state, compute, scatter contributions.
      // Accumulators (owned and ghost) seed with the reduction identity so
      // untouched elements — all of them, on an empty frontier —
      // contribute nothing under either operator.
      chaos::gather<T>(cn, sched, std::span<const T>(x_all.data(), local_n),
                       std::span<T>(x_all.data() + local_n, ghosts));
      std::fill(f_all.begin(), f_all.end(), spec.f_identity);
      KernelCtx<T> ctx;
      ctx.row_offsets = row_offsets;
      ctx.refs = localized;
      ctx.payload = payload;
      ctx.x = x_all;
      ctx.f = f_all;
      spec.compute(node, ctx);
      chaos::scatter<T>(cn, sched, std::span<T>(f_all.data(), local_n),
                        std::span<const T>(f_all.data() + local_n, ghosts),
                        [&spec](T a, T b) { return spec.combine(a, b); });

      if (spec.update) {
        spec.update(std::span<T>(x_all.data(), local_n),
                    std::span<const T>(f_all.data(), local_n));
      }

      // Convergence: CHAOS has no shared memory, so the published flag is
      // an allgather of one verdict byte per node — every pair exchanges
      // (even when the local frontier was empty), so all nodes reach the
      // identical decision with no side channel.
      bool all_done = false;
      if (spec.converged) {
        const bool mine_done = spec.converged(
            node, std::span<const T>(x_all.data(), local_n));
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) out[q] = {static_cast<std::uint8_t>(mine_done ? 1 : 0)};
        }
        auto in = cn.all_to_all(std::move(out));
        all_done = mine_done;
        for (NodeId q = 0; q < nprocs; ++q) {
          if (q != me) all_done = all_done && !in[q].empty() && in[q][0] != 0;
        }
      }
      cn.barrier();
      return all_done;
    };

    bool done = false;
    for (int s = 0; s < spec.warmup_steps && !done; ++s) done = step_fn(s);
    // Quiescent snapshots: taken by node 0 while every other node is
    // blocked inside the barrier, so the counts are deterministic.
    cn.barrier([&] {
      msgs_start = rt.total_messages();
      bytes_start = static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
      barr_start = rt.total_barriers();
    });

    const Timer timer;
    for (int s = 0; s < spec.num_steps && !done; ++s) {
      done = step_fn(spec.warmup_steps + s);
      ++steps_run[me];
    }
    timed_seconds[me] = timer.elapsed_s();
    cn.barrier([&] {
      msgs_end = rt.total_messages();
      bytes_end = static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
      barr_end = rt.total_barriers();
    });

    partial[me] = spec.checksum(std::span<const T>(x_all.data(), local_n));
  });

  KernelResult res;
  res.backend = Backend::kChaos;
  for (const double t : timed_seconds) res.seconds = std::max(res.seconds, t);
  // Between the two snapshots lie the timed steps plus exactly one barrier
  // release (N-1 messages) and one barrier arrival (N-1).
  res.messages =
      msgs_end.load() - msgs_start.load() - 2 * (nprocs - 1);
  res.megabytes =
      static_cast<double>(bytes_end.load() - bytes_start.load()) / 1e6;
  // Barrier arrivals between the snapshots: the timed steps' barriers plus
  // the end snapshot's own (fully counted at its quiescent point, like the
  // start's is in barr_start).  Measured, not asserted: CHAOS synchronizes
  // through its gather/scatter exchanges, so this is normally the one
  // step-closing barrier — and the bench column will say so the day that
  // stops being true.
  res.steps_run = steps_run[0];
  if (res.steps_run > 0) {
    res.barriers_per_step =
        static_cast<double>(barr_end.load() - barr_start.load() - nprocs) /
        nprocs / static_cast<double>(res.steps_run);
  }
  for (const double c : partial) res.checksum += c;
  double insp = 0;
  for (const double s : inspector_seconds) insp += s;
  res.overhead_seconds = insp / nprocs;
  res.rebuilds = rebuilds[0];
  for (const std::size_t r : refs_built) res.refs += r;
  for (const std::size_t m : max_row) {
    res.max_row = std::max<std::uint64_t>(res.max_row, m);
  }
  return res;
}

KernelResult ChaosBackend::run(const KernelSpec<double>& spec) {
  return run_impl(spec);
}

KernelResult ChaosBackend::run(const KernelSpec<double3>& spec) {
  return run_impl(spec);
}

}  // namespace sdsm::api
