#include "src/api/chaos_backend.hpp"

#include "src/api/plan/msg_driver.hpp"

// The inspector/executor step loop and accounting that used to live here
// as a monolith are now the shared plan layer: plan::run_msg drives the
// all-message assignment (both regions under kInspectorGather) through the
// one StepDriver.  This file only adapts the IrregularRuntime surface.

namespace sdsm::api {

KernelResult ChaosBackend::run(const KernelSpec<double>& spec) {
  chaos::ChaosRuntime rt(num_nodes_, options_.wire, options_.transport);
  return plan::run_msg(rt, spec, nullptr, options_, num_nodes_);
}

KernelResult ChaosBackend::run(const KernelSpec<double3>& spec) {
  chaos::ChaosRuntime rt(num_nodes_, options_.wire, options_.transport);
  return plan::run_msg(rt, spec, nullptr, options_, num_nodes_);
}

KernelResult ChaosBackend::run_on(chaos::ChaosRuntime& rt,
                                  const KernelSpec<double>& spec,
                                  RunSession* session) {
  return plan::run_msg(rt, spec, session, options_, num_nodes_);
}

KernelResult ChaosBackend::run_on(chaos::ChaosRuntime& rt,
                                  const KernelSpec<double3>& spec,
                                  RunSession* session) {
  return plan::run_msg(rt, spec, session, options_, num_nodes_);
}

}  // namespace sdsm::api
