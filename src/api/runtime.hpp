// IrregularRuntime: the backend-agnostic execution interface.
//
// A runtime is bound to a backend, a node count, and a set of
// BackendOptions; each run() executes one KernelSpec end to end on a fresh
// underlying substrate (DSM region or CHAOS fabric) and returns uniform
// metrics.  Applications and harnesses hold only this interface; the
// concrete TmkBackend / ChaosBackend types live behind make_runtime.
#pragma once

#include <memory>

#include "src/api/backend.hpp"
#include "src/api/kernel.hpp"

namespace sdsm::api {

class IrregularRuntime {
 public:
  virtual ~IrregularRuntime() = default;

  virtual Backend backend() const = 0;
  virtual std::uint32_t num_nodes() const = 0;

  virtual KernelResult run(const KernelSpec<double>& spec) = 0;
  virtual KernelResult run(const KernelSpec<double3>& spec) = 0;
};

/// Factory over the three concrete backends.
std::unique_ptr<IrregularRuntime> make_runtime(Backend backend,
                                               std::uint32_t num_nodes,
                                               BackendOptions options = {});

/// One-shot convenience: node count comes from the spec's partition.
template <typename T>
KernelResult run_kernel(Backend backend, const KernelSpec<T>& spec,
                        BackendOptions options = {}) {
  return make_runtime(backend,
                      static_cast<std::uint32_t>(spec.owner_range.size()),
                      std::move(options))
      ->run(spec);
}

}  // namespace sdsm::api
