// Experiment harness: runs application variants and prints rows shaped like
// the paper's Tables 1 and 2 (time, speedup, messages, data volume), plus
// machine-readable forms: a CSV line per row for EXPERIMENTS.md bookkeeping
// and a JSON document (write_json) so successive PRs can diff benchmark
// trajectories mechanically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdsm::harness {

struct Row {
  std::string group;    ///< e.g. "Every 12 iterations (seq = 1.23 s)"
  std::string variant;  ///< "CHAOS" | "Tmk base" | "Tmk optimized"
  double seconds = 0;
  double speedup = 0;
  std::uint64_t messages = 0;
  double megabytes = 0;
  /// Inspector time (CHAOS) or indirection-scan time (Tmk), per node.
  double overhead_seconds = 0;
  std::string note;
  /// The sequential baseline that `speedup` was computed against
  /// (speedup = seq_seconds / seconds).  Recorded per row so the
  /// denominator of every speedup in a bench JSON is auditable instead of
  /// implied.  Kept after `note` so existing positional initializers stay
  /// valid.
  double seq_seconds = 0;
  /// Shape of the workload's indirection structure (CSR rows): total
  /// flattened references and the longest row.  Zero for rows that are not
  /// kernel runs.  Recorded so degree skew — and what padding it would
  /// cost a fixed-arity layout — is auditable from the bench JSON alone.
  std::uint64_t refs = 0;
  std::uint64_t max_row = 0;
  /// Reduction-round schedule the run used ("serial" | "tournament"; "-"
  /// where the notion does not apply, e.g. CHAOS rows).
  std::string schedule = "-";
  /// Global barriers per timed step per node — the deterministic metric
  /// the round schedules are compared by (timing on a 1-core shared
  /// runner is oversubscribed noise; barrier and message counts are not).
  double barriers_per_step = 0;
  /// Item-list rebuilds over the run (inspector runs / Read_indices
  /// refreshes, warmup included).  Frontier workloads rebuild every step,
  /// so this column is what makes rebuild-heavy rows auditable in the
  /// bench trajectory; static structures report 1.
  std::int64_t rebuilds = 0;
  /// Serving-layer throughput: completed jobs per wall-clock second over
  /// the row's job stream.  Zero for non-serving rows (omitted from the
  /// printed table; JSON/CSV carry it).  Appended after `rebuilds` so
  /// existing positional initializers stay valid.
  double jobs_per_sec = 0;
  /// Schedule-cache hits the row's job stream scored (serving rows only).
  /// Deterministic when the stream runs on one worker, so it is an exact
  /// gate column like messages.
  std::int64_t cache_hits = 0;
  /// Adaptive-coherence decision counters (exact-gate columns).  Emitted
  /// in JSON/CSV only when `coherence_cols` is set, so every pre-existing
  /// static row stays byte-identical.  Appended after `cache_hits` so
  /// existing positional initializers stay valid.
  bool coherence_cols = false;
  std::uint64_t replications = 0;
  std::uint64_t migrations = 0;
  std::uint64_t ghost_promotions = 0;
  /// Per-node wall time in the diff hot paths (Tmk rows; zero on CHAOS and
  /// non-kernel rows): twin-vs-page scans and Diff::apply loops.  The
  /// columns the --diff-engine A/B moves — its traffic is byte-identical
  /// by construction.  Appended after the coherence counters so existing
  /// positional initializers stay valid.
  double diff_create_seconds = 0;
  double diff_apply_seconds = 0;
};

class Table {
 public:
  Table(std::string title, std::vector<std::string> extra_columns = {});

  void add(Row row);
  const std::vector<Row>& rows() const { return rows_; }

  /// Paper-style fixed-width table.
  void print(std::ostream& os) const;

  /// One CSV line per row (header first), for scripting.
  void print_csv(std::ostream& os) const;

  /// The table as a JSON document: {"title": ..., "rows": [{...}, ...]}.
  void print_json(std::ostream& os) const;

  /// Writes print_json() to `path` (e.g. BENCH_api.json).  Returns false
  /// when the file cannot be opened.
  bool write_json(const std::string& path) const;

 private:
  std::string title_;
  std::vector<Row> rows_;
};

/// speedup = seq / parallel, guarded against zero.
double speedup(double seq_seconds, double par_seconds);

}  // namespace sdsm::harness
