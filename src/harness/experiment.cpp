#include "src/harness/experiment.hpp"

#include <iomanip>
#include <ostream>

namespace sdsm::harness {

Table::Table(std::string title, std::vector<std::string> /*extra_columns*/)
    : title_(std::move(title)) {}

void Table::add(Row row) { rows_.push_back(std::move(row)); }

double speedup(double seq_seconds, double par_seconds) {
  if (par_seconds <= 0) return 0;
  return seq_seconds / par_seconds;
}

void Table::print(std::ostream& os) const {
  os << "=== " << title_ << " ===\n";
  os << std::left << std::setw(34) << "Group" << std::setw(16) << "Variant"
     << std::right << std::setw(10) << "Time(s)" << std::setw(9) << "Speedup"
     << std::setw(10) << "Messages" << std::setw(10) << "Data(MB)"
     << std::setw(12) << "Ovhd(s)"
     << "  Note\n";
  std::string last_group;
  for (const Row& r : rows_) {
    const bool first_of_group = r.group != last_group;
    os << std::left << std::setw(34) << (first_of_group ? r.group : "")
       << std::setw(16) << r.variant << std::right << std::fixed
       << std::setprecision(3) << std::setw(10) << r.seconds
       << std::setprecision(2) << std::setw(9) << r.speedup << std::setw(10)
       << r.messages << std::setprecision(2) << std::setw(10) << r.megabytes
       << std::setprecision(4) << std::setw(12) << r.overhead_seconds << "  "
       << r.note << "\n";
    last_group = r.group;
  }
  os << "\n";
}

void Table::print_csv(std::ostream& os) const {
  os << "# csv: group,variant,seconds,speedup,messages,megabytes,"
        "overhead_seconds\n";
  for (const Row& r : rows_) {
    os << "# csv: " << r.group << ',' << r.variant << ',' << std::fixed
       << std::setprecision(6) << r.seconds << ',' << std::setprecision(3)
       << r.speedup << ',' << r.messages << ',' << std::setprecision(3)
       << r.megabytes << ',' << std::setprecision(6) << r.overhead_seconds
       << "\n";
  }
}

}  // namespace sdsm::harness
