#include "src/harness/experiment.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

namespace sdsm::harness {

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> /*extra_columns*/)
    : title_(std::move(title)) {}

void Table::add(Row row) { rows_.push_back(std::move(row)); }

double speedup(double seq_seconds, double par_seconds) {
  if (par_seconds <= 0) return 0;
  return seq_seconds / par_seconds;
}

void Table::print(std::ostream& os) const {
  os << "=== " << title_ << " ===\n";
  os << std::left << std::setw(34) << "Group" << std::setw(16) << "Variant"
     << std::right << std::setw(10) << "Time(s)" << std::setw(9) << "Speedup"
     << std::setw(10) << "Messages" << std::setw(10) << "Data(MB)"
     << std::setw(12) << "Ovhd(s)" << std::setw(10) << "Barr/step"
     << std::setw(10) << "Rebuilds" << "  Note\n";
  std::string last_group;
  for (const Row& r : rows_) {
    const bool first_of_group = r.group != last_group;
    os << std::left << std::setw(34) << (first_of_group ? r.group : "")
       << std::setw(16) << r.variant << std::right << std::fixed
       << std::setprecision(3) << std::setw(10) << r.seconds
       << std::setprecision(2) << std::setw(9) << r.speedup << std::setw(10)
       << r.messages << std::setprecision(2) << std::setw(10) << r.megabytes
       << std::setprecision(4) << std::setw(12) << r.overhead_seconds
       << std::setprecision(1) << std::setw(10) << r.barriers_per_step
       << std::setw(10) << r.rebuilds << "  " << r.note << "\n";
    last_group = r.group;
  }
  os << "\n";
}

void Table::print_csv(std::ostream& os) const {
  os << "# csv: group,variant,seconds,speedup,seq_seconds,messages,"
        "megabytes,overhead_seconds,diff_create_seconds,diff_apply_seconds,"
        "refs,max_row,schedule,barriers_per_step,"
        "rebuilds,jobs_per_sec,cache_hits\n";
  for (const Row& r : rows_) {
    os << "# csv: " << r.group << ',' << r.variant << ',' << std::fixed
       << std::setprecision(6) << r.seconds << ',' << std::setprecision(3)
       << r.speedup << ',' << std::setprecision(6) << r.seq_seconds << ','
       << r.messages << ',' << std::setprecision(3) << r.megabytes << ','
       << std::setprecision(6) << r.overhead_seconds << ','
       << r.diff_create_seconds << ',' << r.diff_apply_seconds << ','
       << r.refs << ','
       << r.max_row << ',' << r.schedule << ',' << std::setprecision(3)
       << r.barriers_per_step << ',' << r.rebuilds << ','
       << std::setprecision(3) << r.jobs_per_sec << ',' << r.cache_hits
       << "\n";
  }
}

void Table::print_json(std::ostream& os) const {
  os << "{\n  \"title\": ";
  json_string(os, title_);
  os << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"group\": ";
    json_string(os, r.group);
    os << ", \"variant\": ";
    json_string(os, r.variant);
    os << ", \"seconds\": " << std::fixed << std::setprecision(6) << r.seconds
       << ", \"speedup\": " << std::setprecision(3) << r.speedup
       << ", \"seq_seconds\": " << std::setprecision(6) << r.seq_seconds
       << ", \"messages\": " << r.messages << ", \"megabytes\": "
       << std::setprecision(3) << r.megabytes << ", \"overhead_seconds\": "
       << std::setprecision(6) << r.overhead_seconds
       << ", \"diff_create_seconds\": " << r.diff_create_seconds
       << ", \"diff_apply_seconds\": " << r.diff_apply_seconds
       << ", \"refs\": "
       << r.refs << ", \"max_row\": " << r.max_row << ", \"schedule\": ";
    json_string(os, r.schedule);
    os << ", \"barriers_per_step\": " << std::setprecision(3)
       << r.barriers_per_step << ", \"rebuilds\": " << r.rebuilds
       << ", \"jobs_per_sec\": " << std::setprecision(3) << r.jobs_per_sec
       << ", \"cache_hits\": " << r.cache_hits;
    if (r.coherence_cols) {
      os << ", \"replications\": " << r.replications << ", \"migrations\": "
         << r.migrations << ", \"ghost_promotions\": " << r.ghost_promotions;
    }
    os << ", \"note\": ";
    json_string(os, r.note);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

bool Table::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_json(f);
  return static_cast<bool>(f);
}

}  // namespace sdsm::harness
