#include "src/harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <algorithm>

namespace sdsm::harness {

namespace {

[[noreturn]] void usage_exit(const char* flag, std::string_view got,
                             const char* expected) {
  std::fprintf(stderr, "unknown %s value '%.*s' (expected %s)\n", flag,
               static_cast<int>(got.size()), got.data(), expected);
  std::exit(2);
}

/// Splits "--flag=value" / "--flag value" for one known flag; advances `i`
/// past a detached value.  Returns nullopt when argv[i] is not `flag`.
std::optional<std::string_view> take_value(int argc, char** argv, int& i,
                                           std::string_view flag) {
  const std::string_view arg(argv[i]);
  if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    return arg.substr(flag.size() + 1);
  }
  if (arg == flag) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%.*s needs a value\n",
                   static_cast<int>(flag.size()), flag.data());
      std::exit(2);
    }
    return std::string_view(argv[++i]);
  }
  return std::nullopt;
}

}  // namespace

Options Options::parse(int argc, char** argv) {
  Options o;
  std::vector<api::Backend> picked;
  for (int i = 1; i < argc; ++i) {
    if (const auto v = take_value(argc, argv, i, "--transport")) {
      if (const auto kind = net::parse_transport(*v)) {
        o.transport = *kind;
      } else {
        usage_exit("--transport", *v, "inproc|socket");
      }
    } else if (const auto v = take_value(argc, argv, i, "--backend")) {
      std::string_view rest = *v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view one = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (const auto b = api::parse_backend(one)) {
          picked.push_back(*b);
        } else {
          usage_exit("--backend", one, "chaos|tmk-base|tmk-optimized|hybrid");
        }
      }
    } else if (const auto v = take_value(argc, argv, i, "--schedule")) {
      if (const auto s = api::parse_round_schedule(*v)) {
        o.schedule = *s;
      } else {
        usage_exit("--schedule", *v, "serial|tournament");
      }
    } else if (const auto v = take_value(argc, argv, i, "--mode")) {
      if (const auto m = api::parse_deploy_mode(*v)) {
        o.mode = *m;
      } else {
        usage_exit("--mode", *v, "threads|processes");
      }
    } else if (const auto v = take_value(argc, argv, i, "--coherence")) {
      if (const auto c = coherence::parse_coherence_policy(*v)) {
        o.coherence = *c;
      } else {
        usage_exit("--coherence", *v, "static|adaptive");
      }
    } else if (const auto v = take_value(argc, argv, i, "--diff-engine")) {
      if (const auto e = core::parse_diff_engine(*v)) {
        o.diff_engine = *e;
      } else {
        usage_exit("--diff-engine", *v, "scalar|word");
      }
    } else if (const auto v = take_value(argc, argv, i, "--exec")) {
      if (const auto e = api::parse_exec_engine(*v)) {
        o.exec_engine = *e;
      } else {
        usage_exit("--exec", *v, "rows|bucketed");
      }
    } else {
      o.extras_.emplace_back(argv[i]);
    }
  }
  // Sweep order (and dedup) always follows kAllBackends, so tables keep a
  // stable row order no matter how the flags were spelled.  Hybrid is not
  // part of the default sweep (kAllBackends is the paper's three-way), so
  // it joins the list only when asked for, ordered last.
  for (const api::Backend b : api::kAllBackends) {
    if (picked.empty() || std::find(picked.begin(), picked.end(), b) !=
                              picked.end()) {
      o.backends.push_back(b);
    }
  }
  if (std::find(picked.begin(), picked.end(), api::Backend::kHybrid) !=
      picked.end()) {
    o.backends.push_back(api::Backend::kHybrid);
  }
  return o;
}

bool Options::flag(std::string_view name) const {
  for (const std::string& e : extras_) {
    const std::string_view arg(e);
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      const std::string_view body = arg.substr(2);
      if (body == name) return true;
      if (body.size() > name.size() && body.substr(0, name.size()) == name &&
          body[name.size()] == '=') {
        return true;
      }
    }
  }
  return false;
}

std::optional<std::string> Options::value(std::string_view name) const {
  for (std::size_t i = 0; i < extras_.size(); ++i) {
    const std::string_view arg(extras_[i]);
    if (arg.size() < 2 || arg.substr(0, 2) != "--") continue;
    const std::string_view body = arg.substr(2);
    if (body.size() > name.size() && body.substr(0, name.size()) == name &&
        body[name.size()] == '=') {
      return std::string(body.substr(name.size() + 1));
    }
    if (body == name && i + 1 < extras_.size() &&
        extras_[i + 1].rfind("--", 0) != 0) {
      return extras_[i + 1];
    }
  }
  return std::nullopt;
}

}  // namespace sdsm::harness
