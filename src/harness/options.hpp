// harness::Options — the one command-line surface every sdsm binary
// shares, replacing the per-binary copies of --transport / --backend /
// --schedule parsing that had drifted apart.
//
//   --transport=inproc|socket          fabric (default inproc)
//   --backend=chaos|tmk-base|tmk-optimized|hybrid
//                                      restrict the backend sweep; repeat
//                                      the flag (or comma-separate) for a
//                                      subset; default is all three
//   --schedule=serial|tournament       Tmk reduction-round engine
//   --mode=threads|processes           deployment: node threads in this
//                                      process, or spawned worker
//                                      processes (sdsm::proc; Tmk only)
//   --coherence=static|adaptive        page-coherence policy (default
//                                      static; adaptive enables the heat-
//                                      driven replicate/migrate/ghost
//                                      engine on the Tmk backends)
//   --diff-engine=scalar|word          twin-vs-page scan engine for diff
//                                      creation (default word; encodings
//                                      are byte-identical either way, so
//                                      only diff_create_seconds moves)
//   --exec=rows|bucketed               work-item iteration engine (default
//                                      rows; bucketed groups CSR rows into
//                                      power-of-two degree buckets and runs
//                                      the uniform buckets through
//                                      fixed-arity vectorizable loops)
//
// Unrecognized arguments are kept verbatim and queryable through flag() /
// value(), so binary-specific switches (serve_app's --smoke, --port)
// parse through the same object.  A malformed recognized flag exits(2)
// with a usage message — a typo must never silently bench the wrong
// configuration.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/backend.hpp"
#include "src/coherence/coherence.hpp"
#include "src/net/transport.hpp"

namespace sdsm::harness {

class Options {
 public:
  /// Parses argv (argv[0] ignored).  Exits(2) on malformed recognized
  /// flags; everything unrecognized lands in the extras.
  static Options parse(int argc, char** argv);

  net::TransportKind transport = net::TransportKind::kInProc;
  /// The backends to sweep, in kAllBackends order (deduplicated).
  std::vector<api::Backend> backends;
  api::RoundSchedule schedule = api::RoundSchedule::kSerial;
  DeployMode mode = DeployMode::kThreads;
  coherence::CoherencePolicy coherence = coherence::CoherencePolicy::kStatic;
  core::DiffEngine diff_engine = core::kDefaultDiffEngine;
  api::ExecEngine exec_engine = api::ExecEngine::kRows;

  /// True when `--name` appeared among the extras (with or without value).
  bool flag(std::string_view name) const;

  /// The value of `--name=V` or `--name V` among the extras, if present.
  std::optional<std::string> value(std::string_view name) const;

 private:
  std::vector<std::string> extras_;
};

}  // namespace sdsm::harness
