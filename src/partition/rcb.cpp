#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::part {

namespace {

double coord(const Point3& p, int axis) {
  switch (axis) {
    case 0: return p.x;
    case 1: return p.y;
    default: return p.z;
  }
}

/// Recursively assigns `procs` processors (ids [proc_lo, proc_lo+procs)) to
/// the points indexed by idx[lo, hi).
void rcb_recurse(std::span<const Point3> points, std::vector<std::int64_t>& idx,
                 std::int64_t lo, std::int64_t hi, std::uint32_t proc_lo,
                 std::uint32_t procs, std::vector<NodeId>& owner) {
  if (procs == 1) {
    for (std::int64_t i = lo; i < hi; ++i) {
      owner[static_cast<std::size_t>(idx[i])] = proc_lo;
    }
    return;
  }

  // Choose the widest spatial dimension of this box.
  double mins[3] = {1e300, 1e300, 1e300};
  double maxs[3] = {-1e300, -1e300, -1e300};
  for (std::int64_t i = lo; i < hi; ++i) {
    const Point3& p = points[static_cast<std::size_t>(idx[i])];
    for (int a = 0; a < 3; ++a) {
      mins[a] = std::min(mins[a], coord(p, a));
      maxs[a] = std::max(maxs[a], coord(p, a));
    }
  }
  int axis = 0;
  double best = -1;
  for (int a = 0; a < 3; ++a) {
    const double width = maxs[a] - mins[a];
    if (width > best) {
      best = width;
      axis = a;
    }
  }

  // Split processors in half (left gets the ceiling) and points
  // proportionally, at the coordinate median.
  const std::uint32_t left_procs = (procs + 1) / 2;
  const std::int64_t n = hi - lo;
  const std::int64_t left_n =
      static_cast<std::int64_t>(std::llround(static_cast<double>(n) * left_procs / procs));
  const std::int64_t cut = lo + std::clamp<std::int64_t>(left_n, 0, n);

  auto cmp = [&](std::int64_t a, std::int64_t b) {
    const double ca = coord(points[static_cast<std::size_t>(a)], axis);
    const double cb = coord(points[static_cast<std::size_t>(b)], axis);
    if (ca != cb) return ca < cb;
    return a < b;  // deterministic tie-break
  };
  if (cut > lo && cut < hi) {
    std::nth_element(idx.begin() + lo, idx.begin() + cut, idx.begin() + hi, cmp);
  }

  rcb_recurse(points, idx, lo, cut, proc_lo, left_procs, owner);
  rcb_recurse(points, idx, cut, hi, proc_lo + left_procs, procs - left_procs,
              owner);
}

}  // namespace

std::vector<NodeId> rcb_partition(std::span<const Point3> points,
                                  std::uint32_t nprocs) {
  SDSM_REQUIRE(nprocs >= 1);
  std::vector<NodeId> owner(points.size(), 0);
  if (points.empty()) return owner;
  std::vector<std::int64_t> idx(points.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<std::int64_t>(i);
  rcb_recurse(points, idx, 0, static_cast<std::int64_t>(points.size()), 0,
              nprocs, owner);
  return owner;
}

}  // namespace sdsm::part
