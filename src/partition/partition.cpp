#include "src/partition/partition.hpp"

#include "src/common/assert.hpp"

namespace sdsm::part {

std::vector<Range> block_partition(std::int64_t n, std::uint32_t nprocs) {
  SDSM_REQUIRE(n >= 0 && nprocs >= 1);
  std::vector<Range> out(nprocs);
  const std::int64_t base = n / nprocs;
  const std::int64_t extra = n % nprocs;
  std::int64_t cursor = 0;
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const std::int64_t len = base + (p < static_cast<std::uint32_t>(extra) ? 1 : 0);
    out[p] = Range{cursor, cursor + len};
    cursor += len;
  }
  SDSM_ENSURE(cursor == n);
  return out;
}

NodeId block_owner(std::int64_t i, std::int64_t n, std::uint32_t nprocs) {
  SDSM_REQUIRE(i >= 0 && i < n);
  const std::int64_t base = n / nprocs;
  const std::int64_t extra = n % nprocs;
  const std::int64_t fat = (base + 1) * extra;  // elements in the fat ranges
  if (i < fat) return static_cast<NodeId>(i / (base + 1));
  if (base == 0) return static_cast<NodeId>(nprocs - 1);
  return static_cast<NodeId>(extra + (i - fat) / base);
}

NodeId cyclic_owner(std::int64_t i, std::uint32_t nprocs) {
  SDSM_REQUIRE(i >= 0);
  return static_cast<NodeId>(i % nprocs);
}

std::vector<std::vector<std::int64_t>> owners_to_lists(
    std::span<const NodeId> owner, std::uint32_t nprocs) {
  std::vector<std::vector<std::int64_t>> out(nprocs);
  for (std::size_t i = 0; i < owner.size(); ++i) {
    SDSM_REQUIRE(owner[i] < nprocs);
    out[owner[i]].push_back(static_cast<std::int64_t>(i));
  }
  return out;
}

}  // namespace sdsm::part
