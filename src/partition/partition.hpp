// Data and iteration partitioners.
//
// CHAOS supports several parallel partitioners (Section 4 of the paper);
// both the CHAOS applications and the TreadMarks applications use the same
// RCB decomposition, so this library is shared between the two runtimes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace sdsm::part {

/// Contiguous index range [begin, end).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
  bool contains(std::int64_t i) const { return i >= begin && i < end; }
  bool operator==(const Range&) const = default;
};

/// BLOCK partition of n elements over nprocs processors: processor p owns
/// one contiguous range; remainders spread over the first ranges.
std::vector<Range> block_partition(std::int64_t n, std::uint32_t nprocs);

/// Owner of element i under block_partition(n, nprocs).
NodeId block_owner(std::int64_t i, std::int64_t n, std::uint32_t nprocs);

/// CYCLIC partition: element i belongs to processor i % nprocs.
NodeId cyclic_owner(std::int64_t i, std::uint32_t nprocs);

/// 3-D point used by the RCB partitioner.
struct Point3 {
  double x = 0, y = 0, z = 0;
};

/// Recursive Coordinate Bisection: splits the point set along the widest
/// spatial dimension at the weighted median, recursively, until each leaf
/// holds the points of one processor.  Returns owner[i] for every point.
/// Deterministic for a fixed input (ties broken by point index).
std::vector<NodeId> rcb_partition(std::span<const Point3> points,
                                  std::uint32_t nprocs);

/// Groups element indices by owner: result[p] lists the elements owned by p,
/// each list sorted ascending.
std::vector<std::vector<std::int64_t>> owners_to_lists(
    std::span<const NodeId> owner, std::uint32_t nprocs);

}  // namespace sdsm::part
