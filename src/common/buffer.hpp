// Byte-buffer serialization used for all message payloads.
//
// Writer appends POD values and ranges; Reader consumes them in the same
// order.  Values are stored in native byte order: all simulated nodes live
// in one process, exactly as all SP2 nodes in the paper shared one
// architecture.  Reader performs bounds checking on every extraction so a
// malformed message fails loudly instead of corrupting protocol state.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/assert.hpp"

namespace sdsm {

class Writer {
 public:
  Writer() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  /// Writes a length-prefixed span of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> values) {
    put<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    bytes_.insert(bytes_.end(), p, p + values.size_bytes());
  }

  void put_string(const std::string& s) {
    put_span<char>(std::span<const char>(s.data(), s.size()));
  }

  /// Writes raw bytes without a length prefix (caller encodes the length).
  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    SDSM_REQUIRE(pos_ + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    SDSM_REQUIRE(pos_ + n * sizeof(T) <= bytes_.size());
    std::vector<T> values(n);
    if (n > 0) {  // data() may be null on empty vectors/spans (UB in memcpy)
      std::memcpy(values.data(), bytes_.data() + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return values;
  }

  std::string get_string() {
    const auto chars = get_vector<char>();
    return std::string(chars.begin(), chars.end());
  }

  /// Copies n raw bytes into dst (no length prefix).
  void get_raw(void* dst, std::size_t n) {
    SDSM_REQUIRE(pos_ + n <= bytes_.size());
    if (n > 0) std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace sdsm
