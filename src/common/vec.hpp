// Small inline vector types stored in shared arrays.
#pragma once

namespace sdsm {

/// 3-D vector stored inline in shared arrays (24 bytes, trivially
/// copyable).  Moldyn's coordinate and force arrays are arrays of these.
struct double3 {
  double x = 0, y = 0, z = 0;

  double3 operator-(const double3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  double3 operator+(const double3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  double3& operator+=(const double3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  double3& operator-=(const double3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  double3 operator*(double k) const { return {x * k, y * k, z * k}; }

  double norm2() const { return x * x + y * y + z * z; }
};

static_assert(sizeof(double3) == 24);

}  // namespace sdsm
