// Fundamental identifier types shared by every sdsm library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdsm {

/// Identifier of a simulated processor (one compute thread + one service
/// thread).  Nodes are numbered 0 .. num_nodes-1.
using NodeId = std::uint32_t;

/// Index of a virtual-memory page within the shared region.
using PageId = std::uint32_t;

/// Identifier of a distributed lock.
using LockId = std::uint32_t;

/// Offset into the global shared address space (byte granularity).  Every
/// node maps the same offsets at a node-private base address.
using GlobalAddr = std::uint64_t;

inline constexpr PageId kInvalidPage = ~PageId{0};

/// How the nodes of a run are deployed: as threads of one process (every
/// node's region lives in one address space) or as spawned worker
/// processes connected by a real socket mesh (sdsm::proc), where page
/// faults are resolved by fetching diffs over the wire from the owning
/// process.
enum class DeployMode : std::uint8_t {
  kThreads,
  kProcesses,
};

}  // namespace sdsm
