// Assertion macros used throughout the sdsm libraries.
//
// SDSM_ASSERT / SDSM_REQUIRE / SDSM_ENSURE follow the C++ Core Guidelines
// Expects/Ensures discipline: REQUIRE checks preconditions at public API
// boundaries, ENSURE checks postconditions, ASSERT checks internal
// invariants.  All three are active in every build type: this library's
// correctness depends on protocol invariants (vector-clock ordering, page
// state machines) whose violation must never be silently ignored.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sdsm {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  // fprintf is used instead of iostreams so the message survives even when
  // the failure happens inside a signal handler.
  std::fprintf(stderr, "sdsm: %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace sdsm

#define SDSM_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                       \
          : ::sdsm::assert_fail("assertion", #expr, __FILE__, __LINE__))

#define SDSM_REQUIRE(expr)                                                \
  ((expr) ? static_cast<void>(0)                                          \
          : ::sdsm::assert_fail("precondition", #expr, __FILE__, __LINE__))

// Precondition with a caller-supplied diagnosis.  `msg` must be a string
// literal; it leads the failure output so the violated contract (e.g. which
// WorkItems field is malformed) is readable without consulting the source.
#define SDSM_REQUIRE_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                        \
          : ::sdsm::assert_fail("precondition", msg " [" #expr "]",     \
                                __FILE__, __LINE__))

#define SDSM_ENSURE(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::sdsm::assert_fail("postcondition", #expr, __FILE__, __LINE__))

#define SDSM_UNREACHABLE(msg) \
  ::sdsm::assert_fail("unreachable", msg, __FILE__, __LINE__)
