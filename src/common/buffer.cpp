// buffer.hpp is header-only; this translation unit anchors the library and
// verifies the header is self-contained.
#include "src/common/buffer.hpp"
