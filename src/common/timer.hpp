// Monotonic wall-clock timer used by the experiment harness.
#pragma once

#include <chrono>

namespace sdsm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdsm
