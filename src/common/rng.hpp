// Deterministic pseudo-random number generation for workload construction
// and property-based tests.  Uses SplitMix64 for seeding and xoshiro256**
// for the stream: fast, high quality, and fully reproducible across
// platforms (unlike std::mt19937 distributions, whose mapping to ranges is
// implementation defined through std::uniform_int_distribution).
#pragma once

#include <cstdint>

#include "src/common/assert.hpp"

namespace sdsm {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    SDSM_REQUIRE(bound > 0);
    // Debiased multiply-shift (Lemire).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    SDSM_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace sdsm
