// Run statistics gathered by the DSM runtime and the network fabric.
//
// Counters are plain atomics: they are bumped from compute threads, service
// threads, and SIGSEGV handlers, so they must be lock-free and
// async-signal-safe (std::atomic<uint64_t> on x86-64 is both).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sdsm {

/// A named monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Communication + protocol statistics for one run.  Mirrors the metrics the
/// paper reports in Tables 1 and 2 (messages, data volume) plus protocol
/// internals used by the ablation benches.
struct DsmStats {
  Counter messages;        ///< every request and every reply, as in the paper
  Counter bytes;           ///< payload bytes carried by those messages
  Counter read_faults;     ///< SIGSEGV-driven page fetches
  Counter write_faults;    ///< SIGSEGV-driven twin creations
  Counter diffs_created;
  Counter diffs_applied;
  Counter diff_bytes;      ///< bytes of encoded diffs shipped
  Counter whole_pages;     ///< WRITE_ALL pages shipped whole
  Counter twins_created;
  Counter pages_invalidated;
  Counter validate_calls;
  Counter validate_recomputes;  ///< Read_indices executions (indirection changed)
  Counter pages_prefetched;     ///< pages fetched through Validate aggregation
  Counter cross_prefetch_posts;  ///< cross-step prefetches posted at sync exit
  Counter cross_prefetch_pages;  ///< pages those prefetches requested
  /// Prefetch lifecycle closure: every post ends as exactly one consume
  /// (completed at first use — validate, fault, or sync op) or one drain
  /// (completed at teardown because an early exit — rebuild_when /
  /// convergence ending the step loop between a barrier exit and the next
  /// validate — left it in flight).  posts == consumes + drains.
  Counter cross_prefetch_consumes;
  Counter cross_prefetch_drains;
  Counter scan_ns;              ///< wall time spent inside Read_indices
  Counter mprotect_calls;       ///< actual mprotect syscalls after batching
  Counter lock_acquires;
  Counter barriers;
  Counter gc_runs;           ///< diff-store garbage collections completed
  Counter gc_pages_flushed;  ///< pages force-fetched by GC flush rounds

  // Phase timers (wall ns summed over nodes): protocol cost breakdown.
  Counter t_barrier_ns;    ///< inside barrier(): close + round trip + apply
  Counter t_fetch_ns;      ///< inside fetch_pages(): plan + wait + apply
  Counter t_close_ns;      ///< inside close_interval()
  Counter t_metas_ns;      ///< inside process_metas()
  Counter t_wait_ns;       ///< inside fetch_pages(): blocked on replies

  void reset() {
    messages.reset();
    bytes.reset();
    read_faults.reset();
    write_faults.reset();
    diffs_created.reset();
    diffs_applied.reset();
    diff_bytes.reset();
    whole_pages.reset();
    twins_created.reset();
    pages_invalidated.reset();
    validate_calls.reset();
    validate_recomputes.reset();
    pages_prefetched.reset();
    cross_prefetch_posts.reset();
    cross_prefetch_pages.reset();
    cross_prefetch_consumes.reset();
    cross_prefetch_drains.reset();
    scan_ns.reset();
    mprotect_calls.reset();
    t_barrier_ns.reset();
    t_fetch_ns.reset();
    t_close_ns.reset();
    t_metas_ns.reset();
    t_wait_ns.reset();
    lock_acquires.reset();
    barriers.reset();
    gc_runs.reset();
    gc_pages_flushed.reset();
  }

  std::string summary() const;
  double megabytes() const { return static_cast<double>(bytes.get()) / 1e6; }
};

}  // namespace sdsm
