// Run statistics gathered by the DSM runtime and the network fabric.
//
// Counters are plain atomics: they are bumped from compute threads, service
// threads, and SIGSEGV handlers, so they must be lock-free and
// async-signal-safe (std::atomic<uint64_t> on x86-64 is both).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace sdsm {

/// A named monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Communication + protocol statistics for one run.  Mirrors the metrics the
/// paper reports in Tables 1 and 2 (messages, data volume) plus protocol
/// internals used by the ablation benches.
struct DsmStats {
  Counter messages;        ///< every request and every reply, as in the paper
  Counter bytes;           ///< payload bytes carried by those messages
  Counter read_faults;     ///< SIGSEGV-driven page fetches
  Counter write_faults;    ///< SIGSEGV-driven twin creations
  Counter diffs_created;
  Counter diffs_applied;
  Counter diff_bytes;      ///< bytes of encoded diffs shipped
  Counter whole_pages;     ///< WRITE_ALL pages shipped whole
  Counter twins_created;
  Counter pages_invalidated;
  Counter validate_calls;
  Counter validate_recomputes;  ///< Read_indices executions (indirection changed)
  Counter pages_prefetched;     ///< pages fetched through Validate aggregation
  Counter cross_prefetch_posts;  ///< cross-step prefetches posted at sync exit
  Counter cross_prefetch_pages;  ///< pages those prefetches requested
  /// Prefetch lifecycle closure: every post ends as exactly one consume
  /// (completed at first use — validate, fault, or sync op) or one drain
  /// (completed at teardown because an early exit — rebuild_when /
  /// convergence ending the step loop between a barrier exit and the next
  /// validate — left it in flight).  posts == consumes + drains.
  Counter cross_prefetch_consumes;
  Counter cross_prefetch_drains;
  Counter scan_ns;              ///< wall time spent inside Read_indices
  Counter mprotect_calls;       ///< actual mprotect syscalls after batching
  Counter lock_acquires;
  Counter barriers;
  Counter gc_runs;           ///< diff-store garbage collections completed
  Counter gc_pages_flushed;  ///< pages force-fetched by GC flush rounds

  // Adaptive coherence (src/coherence/); all zero under the static policy.
  Counter replications;      ///< inline whole-update pushes by page owners
  Counter migrations;        ///< directory ownership transfers (all nodes)
  Counter ghost_promotions;  ///< schedules promoted to ghost zones

  // Phase timers (wall ns summed over nodes): protocol cost breakdown.
  Counter t_barrier_ns;    ///< inside barrier(): close + round trip + apply
  Counter t_fetch_ns;      ///< inside fetch_pages(): plan + wait + apply
  Counter t_close_ns;      ///< inside close_interval()
  Counter t_metas_ns;      ///< inside process_metas()
  Counter t_wait_ns;       ///< inside fetch_pages(): blocked on replies
  Counter diff_create_ns;  ///< twin-vs-page scans (Diff::create/whole)
  Counter diff_apply_ns;   ///< Diff::apply loops (fetch replies + inline)

  /// Point-in-time copy of every counter.  Subtracting two snapshots scopes
  /// the stats to the interval between them, so a long-lived runtime (the
  /// serving layer) can attribute protocol work to individual jobs without
  /// destroying process-lifetime totals the way reset() does.
  struct Snapshot {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t read_faults = 0;
    std::uint64_t write_faults = 0;
    std::uint64_t diffs_created = 0;
    std::uint64_t diffs_applied = 0;
    std::uint64_t diff_bytes = 0;
    std::uint64_t whole_pages = 0;
    std::uint64_t twins_created = 0;
    std::uint64_t pages_invalidated = 0;
    std::uint64_t validate_calls = 0;
    std::uint64_t validate_recomputes = 0;
    std::uint64_t pages_prefetched = 0;
    std::uint64_t cross_prefetch_posts = 0;
    std::uint64_t cross_prefetch_pages = 0;
    std::uint64_t cross_prefetch_consumes = 0;
    std::uint64_t cross_prefetch_drains = 0;
    std::uint64_t scan_ns = 0;
    std::uint64_t mprotect_calls = 0;
    std::uint64_t lock_acquires = 0;
    std::uint64_t barriers = 0;
    std::uint64_t gc_runs = 0;
    std::uint64_t gc_pages_flushed = 0;
    std::uint64_t replications = 0;
    std::uint64_t migrations = 0;
    std::uint64_t ghost_promotions = 0;
    std::uint64_t t_barrier_ns = 0;
    std::uint64_t t_fetch_ns = 0;
    std::uint64_t t_close_ns = 0;
    std::uint64_t t_metas_ns = 0;
    std::uint64_t t_wait_ns = 0;
    std::uint64_t diff_create_ns = 0;
    std::uint64_t diff_apply_ns = 0;

    Snapshot operator-(const Snapshot& rhs) const {
      Snapshot d;
      d.messages = messages - rhs.messages;
      d.bytes = bytes - rhs.bytes;
      d.read_faults = read_faults - rhs.read_faults;
      d.write_faults = write_faults - rhs.write_faults;
      d.diffs_created = diffs_created - rhs.diffs_created;
      d.diffs_applied = diffs_applied - rhs.diffs_applied;
      d.diff_bytes = diff_bytes - rhs.diff_bytes;
      d.whole_pages = whole_pages - rhs.whole_pages;
      d.twins_created = twins_created - rhs.twins_created;
      d.pages_invalidated = pages_invalidated - rhs.pages_invalidated;
      d.validate_calls = validate_calls - rhs.validate_calls;
      d.validate_recomputes = validate_recomputes - rhs.validate_recomputes;
      d.pages_prefetched = pages_prefetched - rhs.pages_prefetched;
      d.cross_prefetch_posts = cross_prefetch_posts - rhs.cross_prefetch_posts;
      d.cross_prefetch_pages = cross_prefetch_pages - rhs.cross_prefetch_pages;
      d.cross_prefetch_consumes =
          cross_prefetch_consumes - rhs.cross_prefetch_consumes;
      d.cross_prefetch_drains =
          cross_prefetch_drains - rhs.cross_prefetch_drains;
      d.scan_ns = scan_ns - rhs.scan_ns;
      d.mprotect_calls = mprotect_calls - rhs.mprotect_calls;
      d.lock_acquires = lock_acquires - rhs.lock_acquires;
      d.barriers = barriers - rhs.barriers;
      d.gc_runs = gc_runs - rhs.gc_runs;
      d.gc_pages_flushed = gc_pages_flushed - rhs.gc_pages_flushed;
      d.replications = replications - rhs.replications;
      d.migrations = migrations - rhs.migrations;
      d.ghost_promotions = ghost_promotions - rhs.ghost_promotions;
      d.t_barrier_ns = t_barrier_ns - rhs.t_barrier_ns;
      d.t_fetch_ns = t_fetch_ns - rhs.t_fetch_ns;
      d.t_close_ns = t_close_ns - rhs.t_close_ns;
      d.t_metas_ns = t_metas_ns - rhs.t_metas_ns;
      d.t_wait_ns = t_wait_ns - rhs.t_wait_ns;
      d.diff_create_ns = diff_create_ns - rhs.diff_create_ns;
      d.diff_apply_ns = diff_apply_ns - rhs.diff_apply_ns;
      return d;
    }

    double megabytes() const { return static_cast<double>(bytes) / 1e6; }
  };

  /// Only meaningful at quiescent points (no node thread mid-operation).
  Snapshot snapshot() const {
    Snapshot s;
    s.messages = messages.get();
    s.bytes = bytes.get();
    s.read_faults = read_faults.get();
    s.write_faults = write_faults.get();
    s.diffs_created = diffs_created.get();
    s.diffs_applied = diffs_applied.get();
    s.diff_bytes = diff_bytes.get();
    s.whole_pages = whole_pages.get();
    s.twins_created = twins_created.get();
    s.pages_invalidated = pages_invalidated.get();
    s.validate_calls = validate_calls.get();
    s.validate_recomputes = validate_recomputes.get();
    s.pages_prefetched = pages_prefetched.get();
    s.cross_prefetch_posts = cross_prefetch_posts.get();
    s.cross_prefetch_pages = cross_prefetch_pages.get();
    s.cross_prefetch_consumes = cross_prefetch_consumes.get();
    s.cross_prefetch_drains = cross_prefetch_drains.get();
    s.scan_ns = scan_ns.get();
    s.mprotect_calls = mprotect_calls.get();
    s.lock_acquires = lock_acquires.get();
    s.barriers = barriers.get();
    s.gc_runs = gc_runs.get();
    s.gc_pages_flushed = gc_pages_flushed.get();
    s.replications = replications.get();
    s.migrations = migrations.get();
    s.ghost_promotions = ghost_promotions.get();
    s.t_barrier_ns = t_barrier_ns.get();
    s.t_fetch_ns = t_fetch_ns.get();
    s.t_close_ns = t_close_ns.get();
    s.t_metas_ns = t_metas_ns.get();
    s.t_wait_ns = t_wait_ns.get();
    s.diff_create_ns = diff_create_ns.get();
    s.diff_apply_ns = diff_apply_ns.get();
    return s;
  }

  void reset() {
    messages.reset();
    bytes.reset();
    read_faults.reset();
    write_faults.reset();
    diffs_created.reset();
    diffs_applied.reset();
    diff_bytes.reset();
    whole_pages.reset();
    twins_created.reset();
    pages_invalidated.reset();
    validate_calls.reset();
    validate_recomputes.reset();
    pages_prefetched.reset();
    cross_prefetch_posts.reset();
    cross_prefetch_pages.reset();
    cross_prefetch_consumes.reset();
    cross_prefetch_drains.reset();
    scan_ns.reset();
    mprotect_calls.reset();
    t_barrier_ns.reset();
    t_fetch_ns.reset();
    t_close_ns.reset();
    t_metas_ns.reset();
    t_wait_ns.reset();
    diff_create_ns.reset();
    diff_apply_ns.reset();
    lock_acquires.reset();
    barriers.reset();
    gc_runs.reset();
    gc_pages_flushed.reset();
    replications.reset();
    migrations.reset();
    ghost_promotions.reset();
  }

  std::string summary() const;
  double megabytes() const { return static_cast<double>(bytes.get()) / 1e6; }
};

}  // namespace sdsm
