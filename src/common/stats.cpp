#include "src/common/stats.hpp"

#include <cstdio>

namespace sdsm {

std::string DsmStats::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "msgs=%llu bytes=%llu (%.2f MB) rd_faults=%llu wr_faults=%llu "
                "diffs=%llu/%llu twins=%llu inval=%llu validate=%llu/%llu "
                "prefetched=%llu locks=%llu barriers=%llu",
                static_cast<unsigned long long>(messages.get()),
                static_cast<unsigned long long>(bytes.get()), megabytes(),
                static_cast<unsigned long long>(read_faults.get()),
                static_cast<unsigned long long>(write_faults.get()),
                static_cast<unsigned long long>(diffs_created.get()),
                static_cast<unsigned long long>(diffs_applied.get()),
                static_cast<unsigned long long>(twins_created.get()),
                static_cast<unsigned long long>(pages_invalidated.get()),
                static_cast<unsigned long long>(validate_calls.get()),
                static_cast<unsigned long long>(validate_recomputes.get()),
                static_cast<unsigned long long>(pages_prefetched.get()),
                static_cast<unsigned long long>(lock_acquires.get()),
                static_cast<unsigned long long>(barriers.get()));
  char buf2[256];
  std::snprintf(buf2, sizeof(buf2),
                " | mprotects=%llu t(ms): barrier=%.1f fetch=%.1f close=%.1f"
                " metas=%.1f wait=%.1f scan=%.1f",
                static_cast<unsigned long long>(mprotect_calls.get()),
                static_cast<double>(t_barrier_ns.get()) / 1e6,
                static_cast<double>(t_fetch_ns.get()) / 1e6,
                static_cast<double>(t_close_ns.get()) / 1e6,
                static_cast<double>(t_metas_ns.get()) / 1e6,
                static_cast<double>(t_wait_ns.get()) / 1e6,
                static_cast<double>(scan_ns.get()) / 1e6);
  return std::string(buf) + buf2;
}

}  // namespace sdsm
