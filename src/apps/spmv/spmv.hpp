// SPMV: sparse matrix-vector products over a synthetic power-law graph —
// the workload that proves the unified API generalizes beyond the paper's
// two applications.
//
// The matrix is the weighted graph Laplacian of a preferential-attachment
// graph (a few high-degree hubs, a long tail of low-degree vertices — the
// degree skew of the PGAS irregular-application suites PAPERS.md points
// at).  Each step computes y = L x edge-wise and relaxes x += y * dt
// (diffusion toward the weighted mean).  Work items are edges (arity 2)
// with the edge weight as payload, owned by the owner of the lower
// endpoint; the structure is static, so CHAOS pays one inspector run and
// the optimized DSM one Read_indices scan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/api/api.hpp"
#include "src/apps/app_types.hpp"

namespace sdsm::apps::spmv {

struct Params {
  std::int64_t num_rows = 4096;
  int edges_per_vertex = 4;  ///< preferential-attachment edges per vertex
  int num_steps = 8;         ///< timed relaxation steps
  int warmup_steps = 1;      ///< untimed (one-time inspector / list scan)
  double dt = 1e-2;  ///< relaxation step (stable well below 1/max_degree)
  std::uint64_t seed = 7;
  std::uint32_t nprocs = 8;
};

/// One weighted undirected edge, a < b.
struct Edge {
  std::int32_t a = 0;
  std::int32_t b = 0;
  double w = 0;
};

/// Deterministic preferential-attachment graph: vertex t attaches
/// edges_per_vertex edges to earlier vertices drawn degree-proportionally
/// (uniform picks from the running endpoint pool).  Sorted by (a, b).
std::vector<Edge> build_graph(const Params& p);

/// Deterministic initial state in [0, 1).
std::vector<double> initial_state(const Params& p);

/// Max weighted vertex degree of the graph (stability bound: dt must stay
/// below 1 / max_degree for the diffusion not to diverge).
double max_weighted_degree(const Params& p, std::span<const Edge> edges);

/// Order-insensitive digest of the state.
double state_checksum(std::span<const double> x);

/// Sequential reference (no runtime, no communication).
AppRunResult run_seq(const Params& p);

/// The spmv kernel for sdsm::api (edges built once and shared).
api::KernelSpec<double> make_kernel(const Params& p);

/// Backend defaults for spmv: like nbf, one NodeId per row fits a
/// replicated translation table, sparing the inspector lookup traffic.
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::spmv
