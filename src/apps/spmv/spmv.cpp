#include "src/apps/spmv/spmv.hpp"

#include <algorithm>
#include <memory>

#include "src/api/bucketed.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::spmv {

std::vector<Edge> build_graph(const Params& p) {
  SDSM_REQUIRE(p.num_rows > 2 && p.edges_per_vertex > 0);
  const auto m = static_cast<std::int64_t>(p.edges_per_vertex);
  Rng rng(p.seed);

  // Endpoint pool: every edge appends both endpoints, so a uniform pick
  // from the pool is a degree-proportional pick over vertices — the
  // classic preferential-attachment construction.
  std::vector<std::int32_t> pool;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(p.num_rows * m));

  auto add_edge = [&](std::int32_t u, std::int32_t v) {
    const auto [a, b] = std::minmax(u, v);
    edges.push_back(Edge{a, b, 0.5 + 0.5 * rng.next_double()});
    pool.push_back(u);
    pool.push_back(v);
  };

  // Seed clique over the first m+1 vertices.
  const std::int64_t seed_n = std::min<std::int64_t>(m + 1, p.num_rows);
  for (std::int32_t u = 0; u < seed_n; ++u) {
    for (std::int32_t v = u + 1; v < seed_n; ++v) add_edge(u, v);
  }

  for (std::int64_t t = seed_n; t < p.num_rows; ++t) {
    const auto self = static_cast<std::int32_t>(t);
    std::vector<std::int32_t> targets;
    auto unusable = [&](std::int32_t v) {
      return v == self ||  // no self-loops (self enters the pool with its
                           // first edge) and no duplicate parallel edges
             std::find(targets.begin(), targets.end(), v) != targets.end();
    };
    for (int e = 0; e < m; ++e) {
      // Degree-proportional target, with a bounded retry.
      std::int32_t v = pool[rng.next_below(pool.size())];
      for (int retry = 0; retry < 8 && unusable(v); ++retry) {
        v = pool[rng.next_below(pool.size())];
      }
      if (unusable(v)) continue;
      targets.push_back(v);
      add_edge(self, v);
    }
  }

  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return std::tie(x.a, x.b, x.w) < std::tie(y.a, y.b, y.w);
  });
  return edges;
}

std::vector<double> initial_state(const Params& p) {
  std::vector<double> x(static_cast<std::size_t>(p.num_rows));
  for (std::size_t i = 0; i < x.size(); ++i) {
    SplitMix64 sm(p.seed ^ (0x9e3779b9u + i));
    x[i] = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  return x;
}

double max_weighted_degree(const Params& p, std::span<const Edge> edges) {
  std::vector<double> deg(static_cast<std::size_t>(p.num_rows), 0.0);
  for (const Edge& e : edges) {
    deg[static_cast<std::size_t>(e.a)] += e.w;
    deg[static_cast<std::size_t>(e.b)] += e.w;
  }
  return *std::max_element(deg.begin(), deg.end());
}

double state_checksum(std::span<const double> x) {
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + s2;
}

namespace {

/// One edge-wise y = L x accumulation: diffusion flow from the high
/// endpoint to the low one.
inline void apply_edge(double w, double xa, double xb, double& fa,
                       double& fb) {
  const double d = w * (xa - xb);
  fa -= d;
  fb += d;
}

}  // namespace

AppRunResult run_seq(const Params& p) {
  const auto edges = build_graph(p);
  auto x = initial_state(p);
  std::vector<double> f(x.size());

  auto step_fn = [&] {
    std::fill(f.begin(), f.end(), 0.0);
    for (const Edge& e : edges) {
      apply_edge(e.w, x[static_cast<std::size_t>(e.a)],
                 x[static_cast<std::size_t>(e.b)],
                 f[static_cast<std::size_t>(e.a)],
                 f[static_cast<std::size_t>(e.b)]);
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += f[i] * p.dt;
  };

  for (int step = 0; step < p.warmup_steps; ++step) step_fn();
  const Timer wall;
  for (int step = 0; step < p.num_steps; ++step) step_fn();

  AppRunResult r;
  r.seconds = wall.elapsed_s();
  r.checksum = state_checksum(x);
  return r;
}

api::KernelSpec<double> make_kernel(const Params& p) {
  // Built once, shared by every node's build_items closure.
  auto edges = std::make_shared<const std::vector<Edge>>(build_graph(p));

  api::KernelSpec<double> spec;
  spec.name = "spmv";
  spec.num_elements = p.num_rows;
  spec.owner_range = part::block_partition(p.num_rows, p.nprocs);
  spec.initial_state = initial_state(p);
  spec.num_steps = p.num_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;
  spec.rebuild_reads_state = false;
  spec.structure_cacheable = true;  // static matrix structure, pure builder

  const auto owner_range = spec.owner_range;
  std::int64_t max_items = 1;
  {
    std::vector<std::int64_t> per_node(p.nprocs, 0);
    for (const Edge& e : *edges) {
      ++per_node[api::owner_of(owner_range, e.a)];
    }
    for (const std::int64_t c : per_node) max_items = std::max(max_items, c);
  }
  spec.max_items_per_node = max_items;
  spec.max_refs_per_node = 2 * max_items;  // uniform edge rows

  spec.build_items = [edges, owner_range](api::IrregularNode& node,
                                          std::span<const double>) {
    api::WorkItems items;
    for (const Edge& e : *edges) {
      if (api::owner_of(owner_range, e.a) != node.id()) continue;
      items.refs.push_back(e.a);
      items.refs.push_back(e.b);
      items.payload.push_back(e.w);
    }
    items.finish_uniform(2);
    return items;
  };

  // Uniform degree-2 rows land in a single bucket in original order, so
  // the bucketed engine is bit-identical to the rows engine here.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    api::for_each_row(ctx, [&ctx](std::size_t k, auto edge) {
      const auto a = static_cast<std::size_t>(edge[0]);
      const auto b = static_cast<std::size_t>(edge[1]);
      apply_edge(ctx.payload[k], ctx.x[a], ctx.x[b], ctx.f[a], ctx.f[b]);
    });
  };

  spec.update = [dt = p.dt](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += f[i] * dt;
  };

  spec.checksum = [](std::span<const double> x) { return state_checksum(x); };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::spmv
