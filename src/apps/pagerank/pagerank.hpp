// PageRank (push variant) over the synthetic power-law graph — the first
// workload that *requires* variable-arity work items.
//
// Each vertex is one work item: a CSR row naming itself and its neighbours
// in the preferential-attachment graph spmv builds (edges taken in both
// directions).  Per step, vertex v pushes x[v] / degree(v) to every
// neighbour; owners then apply the damped update
// x[v] = (1 - d)/N + d * f[v].  Degrees follow a power law — a few hubs
// with hundreds of neighbours, a long tail of degree-m vertices — so a
// fixed-arity item shape would pad every row to the hub degree.  The
// out-degree is recovered from the row length itself (row_size - 1): no
// payload, no padding, no per-vertex metadata.
//
// This is the PGAS-style graph kernel of Rolinger et al.
// (arXiv:2303.13954) expressed as one KernelSpec; the structure is static,
// so CHAOS pays one inspector run and the optimized DSM one Read_indices
// scan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/api/api.hpp"
#include "src/apps/app_types.hpp"
#include "src/apps/spmv/spmv.hpp"

namespace sdsm::apps::pagerank {

struct Params {
  std::int64_t num_vertices = 4096;
  int edges_per_vertex = 4;  ///< preferential-attachment edges per vertex
  int num_steps = 8;         ///< timed power iterations
  int warmup_steps = 1;      ///< untimed (one-time inspector / list scan)
  double damping = 0.85;
  std::uint64_t seed = 7;
  std::uint32_t nprocs = 8;
};

/// The undirected adjacency of the power-law graph in CSR form:
/// neighbours of v are the values of row v.
using Adjacency = Csr;
Adjacency build_adjacency(const Params& p);

/// Uniform initial mass 1/N per vertex.
std::vector<double> initial_ranks(const Params& p);

/// Order-insensitive digest of the rank vector.
double rank_checksum(std::span<const double> x);

/// Sequential reference (no runtime, no communication).
AppRunResult run_seq(const Params& p);

/// The rank vector run_seq ends with (warmup + timed steps), exposed for
/// property tests (mass conservation, skew).
std::vector<double> seq_ranks(const Params& p);

/// The pagerank kernel for sdsm::api (adjacency built once and shared).
api::KernelSpec<double> make_kernel(const Params& p);

/// Backend defaults: one NodeId per vertex fits a replicated translation
/// table, sparing the inspector lookup traffic.
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::pagerank
