#include "src/apps/pagerank/pagerank.hpp"

#include <algorithm>
#include <memory>

#include "src/api/bucketed.hpp"
#include "src/common/timer.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::pagerank {

Adjacency build_adjacency(const Params& p) {
  spmv::Params gp;
  gp.num_rows = p.num_vertices;
  gp.edges_per_vertex = p.edges_per_vertex;
  gp.seed = p.seed;
  const auto edges = spmv::build_graph(gp);

  Adjacency adj;
  std::vector<std::int64_t> degree(static_cast<std::size_t>(p.num_vertices),
                                   0);
  for (const spmv::Edge& e : edges) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  adj.offsets.resize(static_cast<std::size_t>(p.num_vertices) + 1, 0);
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    adj.offsets[static_cast<std::size_t>(v) + 1] =
        adj.offsets[static_cast<std::size_t>(v)] +
        degree[static_cast<std::size_t>(v)];
  }
  adj.values.resize(static_cast<std::size_t>(adj.offsets.back()));
  std::vector<std::int64_t> fill(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const spmv::Edge& e : edges) {
    adj.values[static_cast<std::size_t>(fill[static_cast<std::size_t>(e.a)]++)] =
        e.b;
    adj.values[static_cast<std::size_t>(fill[static_cast<std::size_t>(e.b)]++)] =
        e.a;
  }
  return adj;
}

std::vector<double> initial_ranks(const Params& p) {
  return std::vector<double>(static_cast<std::size_t>(p.num_vertices),
                             1.0 / static_cast<double>(p.num_vertices));
}

double rank_checksum(std::span<const double> x) {
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + 1e3 * s2;
}

namespace {

/// One push step into a zeroed accumulator: v spreads x[v] evenly over its
/// neighbours.  Degree-0 vertices (possible, if vanishingly rare, in the
/// generator) push nothing.
void push_all(const Adjacency& adj, std::span<const double> x,
              std::span<double> f) {
  for (std::size_t v = 0; v < x.size(); ++v) {
    const auto row = adj.row(v);
    if (row.empty()) continue;
    const double share = x[v] / static_cast<double>(row.size());
    for (const std::int32_t nb : row) {
      f[static_cast<std::size_t>(nb)] += share;
    }
  }
}

/// One damped power-iteration step.
void seq_step(const Adjacency& adj, std::vector<double>& x,
              std::vector<double>& f, double base, double damping) {
  std::fill(f.begin(), f.end(), 0.0);
  push_all(adj, x, f);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = base + damping * f[i];
}

/// The shared sequential iteration; `timed_seconds` (when non-null)
/// receives the wall time of the non-warmup steps.
std::vector<double> iterate(const Params& p, double* timed_seconds) {
  const Adjacency adj = build_adjacency(p);
  auto x = initial_ranks(p);
  std::vector<double> f(x.size());
  const double base = (1.0 - p.damping) / static_cast<double>(p.num_vertices);

  for (int s = 0; s < p.warmup_steps; ++s) {
    seq_step(adj, x, f, base, p.damping);
  }
  const Timer wall;
  for (int s = 0; s < p.num_steps; ++s) {
    seq_step(adj, x, f, base, p.damping);
  }
  if (timed_seconds != nullptr) *timed_seconds = wall.elapsed_s();
  return x;
}

}  // namespace

std::vector<double> seq_ranks(const Params& p) {
  return iterate(p, nullptr);
}

AppRunResult run_seq(const Params& p) {
  AppRunResult r;
  const auto x = iterate(p, &r.seconds);
  r.checksum = rank_checksum(x);
  return r;
}

api::KernelSpec<double> make_kernel(const Params& p) {
  // Built once, shared by every node's build_items closure.
  auto adj = std::make_shared<const Adjacency>(build_adjacency(p));

  api::KernelSpec<double> spec;
  spec.name = "pagerank";
  spec.num_elements = p.num_vertices;
  spec.owner_range = part::block_partition(p.num_vertices, p.nprocs);
  spec.initial_state = initial_ranks(p);
  spec.num_steps = p.num_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;  // static graph
  spec.rebuild_reads_state = false;
  spec.structure_cacheable = true;  // static edge lists, pure builder

  // Capacity: true per-node row/ref counts — hubs make the reference sums
  // wildly uneven across nodes, which is exactly what the CSR shape
  // absorbs without padding.
  std::int64_t max_items = 1, max_refs = 1;
  for (const part::Range& r : spec.owner_range) {
    max_items = std::max(max_items, r.size());
    if (r.size() > 0) {
      const std::int64_t refs =
          r.size() + (adj->offsets[static_cast<std::size_t>(r.end)] -
                      adj->offsets[static_cast<std::size_t>(r.begin)]);
      max_refs = std::max(max_refs, refs);
    }
  }
  spec.max_items_per_node = max_items;
  spec.max_refs_per_node = max_refs;

  const auto owner_range = spec.owner_range;
  spec.build_items = [adj, owner_range](api::IrregularNode& node,
                                        std::span<const double>) {
    const part::Range mine = owner_range[node.id()];
    api::WorkItems items;
    for (std::int64_t v = mine.begin; v < mine.end; ++v) {
      items.refs.push_back(v);
      for (const std::int32_t nb : adj->row(static_cast<std::size_t>(v))) {
        items.refs.push_back(nb);
      }
      items.end_row();
    }
    return items;
  };

  // The push body: out-degree is the row length minus the self reference —
  // no payload needed.  Iterating through for_each_row makes the row span's
  // extent a compile-time constant under the bucketed engine, so the inner
  // accumulation unrolls per degree bucket.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    api::for_each_row(ctx, [&ctx](std::size_t, auto row) {
      if (row.size() < 2) return;  // isolated vertex: nothing to push
      const double share = ctx.x[static_cast<std::size_t>(row[0])] /
                           static_cast<double>(row.size() - 1);
      for (std::size_t j = 1; j < row.size(); ++j) {
        ctx.f[static_cast<std::size_t>(row[j])] += share;
      }
    });
  };

  spec.update = [base = (1.0 - p.damping) / static_cast<double>(p.num_vertices),
                 d = p.damping](std::span<double> x,
                                std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = base + d * f[i];
  };

  spec.checksum = [](std::span<const double> x) { return rank_checksum(x); };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::pagerank
