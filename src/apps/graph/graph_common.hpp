// Shared graph construction for the frontier-driven workloads (BFS,
// connected components).
//
// The generator builds an undirected graph of two parts:
//   - a connected core of `num_vertices - isolated` vertices: a ring (so
//     the graph is connected and has real diameter) plus
//     `chords_per_vertex` random chords per vertex (so the diameter stays
//     small and the reference pattern is irregular);
//   - an optional isolated tail of `isolated` vertices forming their own
//     ring — a second component no core vertex can reach.  BFS from a core
//     source leaves the tail unreached, and once the core is exhausted
//     every remaining step has an EMPTY frontier on every node — the
//     harshest case of the per-node empty-WorkItems contract.  Connected
//     components must find exactly two labels.
//
// Frontier algorithms invert the paper's "work list changes every few
// steps" assumption: the item list is data-dependent and changes at EVERY
// step, which is the access-pattern class Rolinger et al.
// (arXiv:2303.13954) use to stress PGAS compilers.  Here it is the
// harshest test of the rebuild path: per-step inspector runs / allgathers
// on CHAOS, per-step Read_indices refreshes and touch-matrix re-brackets
// on the DSM backends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/api/api.hpp"
#include "src/apps/app_types.hpp"

namespace sdsm::apps::graph {

struct Params {
  std::int64_t num_vertices = 4096;
  int chords_per_vertex = 2;   ///< random extra edges per core vertex
  std::int64_t isolated = 0;   ///< trailing vertices in a separate ring
  std::int64_t source = 0;     ///< BFS source (must be a core vertex)
  int num_steps = 64;          ///< step cap (upper bound when converging)
  int warmup_steps = 0;        ///< rebuild cost is the point: time it
  bool use_convergence = true; ///< converged-early-exit on/off
  std::uint64_t seed = 11;
  std::uint32_t nprocs = 4;
};

/// Undirected adjacency in CSR form (neighbours of v = row v), both
/// directions materialized.  Deterministic in (num_vertices,
/// chords_per_vertex, isolated, seed).
Csr build_graph(const Params& p);

/// The value marking "not reached yet" in the BFS distance array and the
/// min-reduction identity of both workloads: strictly greater than any
/// reachable distance (<= num_vertices - 1) and any label (vertex id).
inline double unreached(const Params& p) {
  return static_cast<double>(p.num_vertices);
}

/// Order- and partition-insensitive digest of a distance/label vector:
/// values are small integers stored in doubles and the digest is an exact
/// integer sum, so the whole-array sequential digest and the sum of
/// per-node digests must match bit for bit on every backend.
double int_vector_checksum(std::span<const double> x);

/// Capacity bounds for a frontier kernel over `adj` under a contiguous
/// partition: in the worst step every owned vertex is in the frontier, so
/// the per-node row bound is the owned count and the ref bound is owned +
/// owned adjacency.
void frontier_capacity(const Csr& adj,
                       const std::vector<part::Range>& owner_range,
                       std::int64_t* max_items, std::int64_t* max_refs);

}  // namespace sdsm::apps::graph
