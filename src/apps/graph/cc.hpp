// Connected components by frontier-driven min-label propagation, with a
// converged-early-exit.
//
// State x is the label array (initially x[v] = v).  At step s the frontier
// is every vertex whose label changed during step s-1 (step 0: all
// vertices); frontier vertices push their label to their neighbours under
// Reduce::kMin and owners keep the minimum, so each component converges to
// its minimum vertex id.  The frontier needs the previous labels, which
// each node stashes at the rebuild — the structure is rebuilt every step
// from the current labels (rebuild_when + rebuild_reads_state), shrinking
// as components settle.  Termination is data-dependent: the DSM-published
// convergence flag ends the loop at the first step in which no label
// changed anywhere, with num_steps only a safety cap.
#pragma once

#include <span>
#include <vector>

#include "src/apps/graph/graph_common.hpp"

namespace sdsm::apps::cc {

using graph::Params;

/// Sequential reference: final labels (per-component minimum vertex id);
/// `steps_run` (when non-null) receives the executed step count.
std::vector<double> seq_labels(const Params& p,
                               std::int64_t* steps_run = nullptr);

/// Sequential reference run (timing + checksum).
AppRunResult run_seq(const Params& p);

/// The label-propagation kernel.  Stateful (per-node previous-label
/// stashes advance at every rebuild): build a fresh spec per run.
api::KernelSpec<double> make_kernel(const Params& p);

/// Backend defaults: replicated translation table, as for the other
/// one-element-per-vertex graph workloads.
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::cc
