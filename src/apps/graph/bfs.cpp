#include "src/apps/graph/bfs.hpp"

#include <algorithm>
#include <memory>

#include "src/common/timer.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::bfs {

namespace {

std::vector<double> initial_distances(const Params& p) {
  std::vector<double> dist(static_cast<std::size_t>(p.num_vertices),
                           graph::unreached(p));
  dist[static_cast<std::size_t>(p.source)] = 0.0;
  return dist;
}

}  // namespace

std::vector<double> seq_distances(const Params& p, std::int64_t* steps_run) {
  const Csr adj = graph::build_graph(p);
  auto dist = initial_distances(p);
  std::vector<double> f(dist.size());
  std::int64_t ran = 0;
  for (int s = 0; s < p.warmup_steps + p.num_steps; ++s) {
    // Mirror the kernel exactly: frontier pushes level s+1 into a
    // min-accumulator seeded with the identity, owners keep the min.
    std::fill(f.begin(), f.end(), graph::unreached(p));
    for (std::int64_t v = 0; v < p.num_vertices; ++v) {
      if (dist[static_cast<std::size_t>(v)] != static_cast<double>(s)) {
        continue;
      }
      for (const std::int32_t nb : adj.row(static_cast<std::size_t>(v))) {
        f[static_cast<std::size_t>(nb)] =
            std::min(f[static_cast<std::size_t>(nb)],
                     static_cast<double>(s) + 1.0);
      }
    }
    for (std::size_t i = 0; i < dist.size(); ++i) {
      dist[i] = std::min(dist[i], f[i]);
    }
    ++ran;
    if (p.use_convergence) {
      bool next_empty = true;
      for (const double d : dist) {
        if (d == static_cast<double>(s) + 1.0) {
          next_empty = false;
          break;
        }
      }
      if (next_empty) break;
    }
  }
  if (steps_run != nullptr) {
    *steps_run = std::max<std::int64_t>(0, ran - p.warmup_steps);
  }
  return dist;
}

AppRunResult run_seq(const Params& p) {
  AppRunResult r;
  const Timer wall;
  const auto dist = seq_distances(p);
  r.seconds = wall.elapsed_s();
  r.checksum = graph::int_vector_checksum(dist);
  return r;
}

api::KernelSpec<double> make_kernel(const Params& p) {
  auto adj = std::make_shared<const Csr>(graph::build_graph(p));

  api::KernelSpec<double> spec;
  spec.name = "bfs";
  spec.num_elements = p.num_vertices;
  spec.owner_range = part::block_partition(p.num_vertices, p.nprocs);
  spec.initial_state = initial_distances(p);
  spec.num_steps = p.num_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;
  spec.rebuild_when = [](int) { return true; };  // the frontier IS the list
  spec.rebuild_reads_state = true;               // ...and it reads distances
  // structure_cacheable stays false: the builder advances a captured level
  // counter across calls, so replaying cached frontiers would desync it.
  spec.reduce = api::Reduce::kMin;
  spec.f_identity = graph::unreached(p);
  graph::frontier_capacity(*adj, spec.owner_range, &spec.max_items_per_node,
                           &spec.max_refs_per_node);

  // The per-node BFS level, advanced at every rebuild; the spec is
  // single-use because of it.
  auto level = std::make_shared<std::vector<std::int64_t>>(p.nprocs, 0);
  const auto owner_range = spec.owner_range;
  spec.build_items = [adj, owner_range, level](api::IrregularNode& node,
                                               std::span<const double> all_x) {
    const std::int64_t l = (*level)[node.id()]++;
    const part::Range mine = owner_range[node.id()];
    api::WorkItems items;
    for (std::int64_t v = mine.begin; v < mine.end; ++v) {
      if (all_x[static_cast<std::size_t>(v)] != static_cast<double>(l)) {
        continue;
      }
      items.refs.push_back(v);
      for (const std::int32_t nb : adj->row(static_cast<std::size_t>(v))) {
        items.refs.push_back(nb);
      }
      items.end_row();
    }
    return items;  // empty when this node owns no frontier vertex
  };

  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    for (std::size_t i = 0; i < ctx.num_items(); ++i) {
      const auto row = ctx.refs_of(i);
      const double d = ctx.x[static_cast<std::size_t>(row[0])] + 1.0;
      for (std::size_t j = 1; j < row.size(); ++j) {
        auto& fq = ctx.f[static_cast<std::size_t>(row[j])];
        fq = std::min(fq, d);
      }
    }
  };

  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], f[i]);
  };

  if (p.use_convergence) {
    // Next frontier empty on this node: no owned vertex sits at the level
    // the next step would expand (the counter already points there).
    spec.converged = [level](api::IrregularNode& node,
                             std::span<const double> x_owned) {
      const auto next = static_cast<double>((*level)[node.id()]);
      for (const double d : x_owned) {
        if (d == next) return false;
      }
      return true;
    };
  }

  spec.checksum = [](std::span<const double> x) {
    return graph::int_vector_checksum(x);
  };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::bfs
