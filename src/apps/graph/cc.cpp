#include "src/apps/graph/cc.hpp"

#include <algorithm>
#include <memory>

#include "src/common/timer.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::cc {

namespace {

std::vector<double> initial_labels(const Params& p) {
  std::vector<double> labels(static_cast<std::size_t>(p.num_vertices));
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    labels[static_cast<std::size_t>(v)] = static_cast<double>(v);
  }
  return labels;
}

}  // namespace

std::vector<double> seq_labels(const Params& p, std::int64_t* steps_run) {
  const Csr adj = graph::build_graph(p);
  auto labels = initial_labels(p);
  std::vector<double> stash;  // labels at the start of the current step
  std::vector<double> prev;   // labels at the start of the previous step
  std::vector<double> f(labels.size());
  std::int64_t ran = 0;
  for (int s = 0; s < p.warmup_steps + p.num_steps; ++s) {
    // Build: frontier = labels that changed during the previous step.
    prev = std::move(stash);
    stash = labels;
    std::fill(f.begin(), f.end(), graph::unreached(p));
    for (std::int64_t v = 0; v < p.num_vertices; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!prev.empty() && labels[vi] == prev[vi]) continue;
      for (const std::int32_t nb : adj.row(vi)) {
        f[static_cast<std::size_t>(nb)] =
            std::min(f[static_cast<std::size_t>(nb)], labels[vi]);
      }
    }
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = std::min(labels[i], f[i]);
    }
    ++ran;
    if (p.use_convergence && labels == stash) break;
  }
  if (steps_run != nullptr) {
    *steps_run = std::max<std::int64_t>(0, ran - p.warmup_steps);
  }
  return labels;
}

AppRunResult run_seq(const Params& p) {
  AppRunResult r;
  const Timer wall;
  const auto labels = seq_labels(p);
  r.seconds = wall.elapsed_s();
  r.checksum = graph::int_vector_checksum(labels);
  return r;
}

api::KernelSpec<double> make_kernel(const Params& p) {
  auto adj = std::make_shared<const Csr>(graph::build_graph(p));

  api::KernelSpec<double> spec;
  spec.name = "cc";
  spec.num_elements = p.num_vertices;
  spec.owner_range = part::block_partition(p.num_vertices, p.nprocs);
  spec.initial_state = initial_labels(p);
  spec.num_steps = p.num_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;
  spec.rebuild_when = [](int) { return true; };  // frontier changes per step
  spec.rebuild_reads_state = true;
  // structure_cacheable stays false: the builder compares against a label
  // stash it mutates per call, so its outputs are not replayable artifacts.
  spec.reduce = api::Reduce::kMin;
  spec.f_identity = graph::unreached(p);
  graph::frontier_capacity(*adj, spec.owner_range, &spec.max_items_per_node,
                           &spec.max_refs_per_node);

  // Per-node label stash from the last rebuild — both the frontier test
  // and the convergence test compare against it.
  auto stash =
      std::make_shared<std::vector<std::vector<double>>>(p.nprocs);
  const auto owner_range = spec.owner_range;
  spec.build_items = [adj, owner_range, stash](api::IrregularNode& node,
                                               std::span<const double> all_x) {
    const part::Range mine = owner_range[node.id()];
    auto& prev = (*stash)[node.id()];
    api::WorkItems items;
    for (std::int64_t v = mine.begin; v < mine.end; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!prev.empty() &&
          all_x[vi] == prev[static_cast<std::size_t>(v - mine.begin)]) {
        continue;  // label settled: not in the frontier
      }
      items.refs.push_back(v);
      for (const std::int32_t nb : adj->row(vi)) items.refs.push_back(nb);
      items.end_row();
    }
    prev.assign(all_x.begin() + mine.begin, all_x.begin() + mine.end);
    return items;
  };

  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    for (std::size_t i = 0; i < ctx.num_items(); ++i) {
      const auto row = ctx.refs_of(i);
      const double l = ctx.x[static_cast<std::size_t>(row[0])];
      for (std::size_t j = 1; j < row.size(); ++j) {
        auto& fq = ctx.f[static_cast<std::size_t>(row[j])];
        fq = std::min(fq, l);
      }
    }
  };

  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], f[i]);
  };

  if (p.use_convergence) {
    // No owned label moved since the stash (= start of this step) on any
    // node: globally converged.
    spec.converged = [stash](api::IrregularNode& node,
                             std::span<const double> x_owned) {
      const auto& prev = (*stash)[node.id()];
      SDSM_REQUIRE(prev.size() == x_owned.size());
      return std::equal(x_owned.begin(), x_owned.end(), prev.begin());
    };
  }

  spec.checksum = [](std::span<const double> x) {
    return graph::int_vector_checksum(x);
  };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::cc
