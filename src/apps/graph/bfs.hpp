// Level-synchronous breadth-first search as a frontier-driven irregular
// kernel — the first workload whose item list is data-dependent and
// changes at EVERY step.
//
// State x is the tentative distance array (unreached = num_vertices, the
// min-reduction identity).  At step s the frontier is {v : x[v] == s};
// each node's WorkItems are the frontier vertices it owns, one CSR row
// [v, neighbours...] per vertex, rebuilt every step via
// rebuild_reads_state from the current distances (rebuild_when, not a
// fixed cadence).  The compute body pushes x[v] + 1 to every neighbour
// under Reduce::kMin; owners keep the minimum.  Termination is the
// DSM-published convergence flag: the loop ends at the first step whose
// next frontier is empty on every node — which also makes the steps AFTER
// a component is exhausted (isolated tail, fixed-step runs) the
// all-empty-frontier stress case of the WorkItems contract.
#pragma once

#include <span>
#include <vector>

#include "src/apps/graph/graph_common.hpp"

namespace sdsm::apps::bfs {

using graph::Params;

/// Sequential reference: final distances; `steps_run` (when non-null)
/// receives the number of steps executed (= the kernel's
/// KernelResult::steps_run).
std::vector<double> seq_distances(const Params& p,
                                  std::int64_t* steps_run = nullptr);

/// Sequential reference run (timing + checksum).
AppRunResult run_seq(const Params& p);

/// The BFS kernel.  Stateful (per-node level counters advance at every
/// rebuild): build a fresh spec per run.
api::KernelSpec<double> make_kernel(const Params& p);

/// Backend defaults: one element per vertex fits a replicated translation
/// table, sparing the inspector lookup traffic.
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::bfs
