#include "src/apps/graph/graph_common.hpp"

#include <algorithm>

#include "src/common/rng.hpp"

namespace sdsm::apps::graph {

Csr build_graph(const Params& p) {
  SDSM_REQUIRE(p.num_vertices >= 2);
  SDSM_REQUIRE(p.isolated >= 0 && p.isolated <= p.num_vertices - 2);
  SDSM_REQUIRE(p.source >= 0 && p.source < p.num_vertices - p.isolated);
  const std::int64_t core = p.num_vertices - p.isolated;

  // Collect undirected edges (a < b), then dedup: ring(s) + random chords.
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  const auto add = [&edges](std::int64_t a, std::int64_t b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    edges.emplace_back(a, b);
  };
  for (std::int64_t v = 0; v < core; ++v) add(v, (v + 1) % core);
  Rng rng(p.seed);
  for (std::int64_t v = 0; v < core; ++v) {
    for (int c = 0; c < p.chords_per_vertex; ++c) {
      add(v, rng.next_in(0, core - 1));
    }
  }
  // The isolated component: its own ring plus chords (a lone pair/vertex
  // degenerates into a single edge or an edgeless vertex, both legal).
  // Chorded like the core so its diameter — and the step count label
  // propagation needs to settle it — stays logarithmic.
  for (std::int64_t v = 0; v + 1 < p.isolated; ++v) {
    add(core + v, core + v + 1);
  }
  if (p.isolated >= 3) {
    add(core, core + p.isolated - 1);
    for (std::int64_t v = 0; v < p.isolated; ++v) {
      for (int c = 0; c < p.chords_per_vertex; ++c) {
        add(core + v, core + rng.next_in(0, p.isolated - 1));
      }
    }
  }

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Csr adj;
  std::vector<std::int64_t> degree(static_cast<std::size_t>(p.num_vertices),
                                   0);
  for (const auto& [a, b] : edges) {
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  adj.offsets.resize(static_cast<std::size_t>(p.num_vertices) + 1, 0);
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    adj.offsets[static_cast<std::size_t>(v) + 1] =
        adj.offsets[static_cast<std::size_t>(v)] +
        degree[static_cast<std::size_t>(v)];
  }
  adj.values.resize(static_cast<std::size_t>(adj.offsets.back()));
  std::vector<std::int64_t> fill(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const auto& [a, b] : edges) {
    adj.values[static_cast<std::size_t>(fill[static_cast<std::size_t>(a)]++)] =
        static_cast<std::int32_t>(b);
    adj.values[static_cast<std::size_t>(fill[static_cast<std::size_t>(b)]++)] =
        static_cast<std::int32_t>(a);
  }
  return adj;
}

double int_vector_checksum(std::span<const double> x) {
  // Values are integers <= num_vertices, so s, s2, and s + s2 are exact
  // integers well below 2^53: every partial sum is exact, which is what
  // makes the digest genuinely order- AND partition-insensitive (backends
  // sum per-node digests; a non-integer weighting would round differently
  // per partition and break the bit-exact cross-backend comparison).
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + s2;
}

void frontier_capacity(const Csr& adj,
                       const std::vector<part::Range>& owner_range,
                       std::int64_t* max_items, std::int64_t* max_refs) {
  *max_items = 1;
  *max_refs = 1;
  for (const part::Range& r : owner_range) {
    *max_items = std::max(*max_items, r.size());
    if (r.size() > 0) {
      const std::int64_t refs =
          r.size() + (adj.offsets[static_cast<std::size_t>(r.end)] -
                      adj.offsets[static_cast<std::size_t>(r.begin)]);
      *max_refs = std::max(*max_refs, refs);
    }
  }
}

}  // namespace sdsm::apps::graph
