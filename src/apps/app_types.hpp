// Shared types for the evaluation applications (moldyn, nbf, spmv,
// pagerank).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/vec.hpp"

namespace sdsm::apps {

using sdsm::double3;

/// A CSR structure over int32 element ids: row i's values are
/// values[offsets[i] .. offsets[i+1]).  The one shape every variable-arity
/// application structure shares (nbf partner lists, pagerank adjacency).
struct Csr {
  std::vector<std::int64_t> offsets;  ///< rows() + 1 entries
  std::vector<std::int32_t> values;

  std::size_t rows() const {
    return offsets.size() <= 1 ? 0 : offsets.size() - 1;
  }
  std::span<const std::int32_t> row(std::size_t i) const {
    const auto lo = static_cast<std::size_t>(offsets[i]);
    return std::span<const std::int32_t>(values).subspan(
        lo, static_cast<std::size_t>(offsets[i + 1]) - lo);
  }
};

/// Result of one sequential reference run; the fields mirror the columns
/// the paper reports plus the checksum used for cross-variant validation.
/// Parallel runs through sdsm::api return the richer api::KernelResult.
struct AppRunResult {
  double checksum = 0;        ///< order-insensitive force/position digest
  double seconds = 0;         ///< timed section (excludes init/partitioning)
  std::uint64_t messages = 0;
  double megabytes = 0;
  /// Tmk: time spent in Validate checking/recomputing the indirection
  /// array; CHAOS: time spent in the inspector (per-node average).
  double overhead_seconds = 0;
};

/// True when two checksums agree to a relative tolerance that absorbs
/// floating-point reassociation across variants.
inline bool checksum_close(double a, double b, double rel = 1e-9) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= rel * scale;
}

}  // namespace sdsm::apps
