// Shared types for the evaluation applications (moldyn, nbf).
#pragma once

#include <cmath>
#include <cstdint>

namespace sdsm::apps {

/// 3-D vector stored inline in shared arrays (24 bytes, trivially
/// copyable).  Moldyn's coordinate and force arrays are arrays of these.
struct double3 {
  double x = 0, y = 0, z = 0;

  double3 operator-(const double3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  double3 operator+(const double3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  double3& operator+=(const double3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  double3& operator-=(const double3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  double3 operator*(double k) const { return {x * k, y * k, z * k}; }

  double norm2() const { return x * x + y * y + z * z; }
};

static_assert(sizeof(double3) == 24);

/// Result of one application run; the fields mirror the columns the paper
/// reports plus the checksum used for cross-variant validation.
struct AppRunResult {
  double checksum = 0;        ///< order-insensitive force/position digest
  double seconds = 0;         ///< timed section (excludes init/partitioning)
  std::uint64_t messages = 0;
  double megabytes = 0;
  /// Tmk: time spent in Validate checking/recomputing the indirection
  /// array; CHAOS: time spent in the inspector (per-node average).
  double overhead_seconds = 0;
};

/// True when two checksums agree to a relative tolerance that absorbs
/// floating-point reassociation across variants.
inline bool checksum_close(double a, double b, double rel = 1e-9) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= rel * scale;
}

}  // namespace sdsm::apps
