#include "src/apps/quickstart/quickstart.hpp"

namespace sdsm::apps::quickstart {

api::KernelSpec<double> make_kernel(const Params& p) {
  const std::int64_t n = p.num_elements;
  const std::uint32_t nprocs = p.nprocs;

  api::KernelSpec<double> spec;
  spec.name = "quickstart";
  spec.num_elements = n;
  spec.owner_range = part::block_partition(n, nprocs);
  spec.initial_state.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    spec.initial_state[static_cast<std::size_t>(i)] =
        static_cast<double>(i % 97);
  }
  spec.num_steps = p.num_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;  // static neighbour structure
  spec.max_items_per_node = (n + nprocs - 1) / nprocs;
  spec.max_refs_per_node =
      static_cast<std::int64_t>(kNeighbors) * spec.max_items_per_node;
  spec.structure_cacheable = true;

  // Each owned element is one work item: a CSR row naming itself plus
  // three scattered neighbours (an irregular, statically known access
  // pattern).  Rows happen to be uniform, so finish_uniform derives the
  // offsets.
  spec.build_items = [n, nprocs](api::IrregularNode& node,
                                 std::span<const double>) {
    const part::Range mine = part::block_partition(n, nprocs)[node.id()];
    api::WorkItems items;
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      items.refs.push_back(i);
      items.refs.push_back((i * 7 + 1) % n);
      items.refs.push_back((i * 13 + 5) % n);
      items.refs.push_back((i + n / 2) % n);
    }
    items.finish_uniform(kNeighbors);
    return items;
  };

  // The per-step body: pairwise exchange between the item's element and
  // each neighbour.  Indices are already localized by the backend.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    for (std::size_t k = 0; k < ctx.num_items(); ++k) {
      const auto row = ctx.refs_of(k);
      const auto self = static_cast<std::size_t>(row[0]);
      for (std::size_t j = 1; j < row.size(); ++j) {
        const auto nb = static_cast<std::size_t>(row[j]);
        const double d = 0.125 * (ctx.x[self] - ctx.x[nb]);
        ctx.f[self] -= d;
        ctx.f[nb] += d;
      }
    }
  };

  // Owner relaxation from the reduced contributions.
  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.5 * f[i];
  };

  spec.checksum = [](std::span<const double> x) {
    double s = 0;
    for (const double v : x) s += v;
    return s;
  };
  return spec;
}

api::BackendOptions default_options() { return api::BackendOptions{}; }

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::quickstart
