// Quickstart: the miniature irregular kernel the README opens with —
// elements hold a value, a static scattered neighbour list says who
// interacts with whom, each step every pair exchanges a contribution and
// owners relax their values.
//
// Extracted from examples/quickstart.cpp into an apps module so the
// serving layer and the process-mode launcher can materialize the same
// kernel from a JobRequest ("quickstart" in serve::prepare_job): the
// example binary, a served job, and a spawned-worker run all execute the
// byte-identical spec, which is what makes "quickstart --mode=processes"
// a meaningful smoke test rather than a separate program.
#pragma once

#include <cstdint>

#include "src/api/api.hpp"

namespace sdsm::apps::quickstart {

struct Params {
  std::int64_t num_elements = 4096;
  int num_steps = 8;     ///< timed steps
  int warmup_steps = 1;  ///< one-time inspector / list scan lands here
  std::uint32_t nprocs = 4;
};

/// Neighbour count per work item (self + three scattered partners).
inline constexpr std::size_t kNeighbors = 4;

/// The quickstart kernel: x[i] starts at i % 97; each item i references
/// {i, (7i+1) % N, (13i+5) % N, (i + N/2) % N}; the step body moves
/// 0.125 * (x[self] - x[nb]) between each pair and owners relax
/// x += 0.5 * f.  Checksum is the plain state sum.
api::KernelSpec<double> make_kernel(const Params& p);

api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::quickstart
