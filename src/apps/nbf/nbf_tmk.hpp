// NBF on the TreadMarks-style DSM (base and compiler-optimized variants).
// Structure per time step, as in Section 5.2 of the paper: Validate at the
// start of the step fetches the updated coordinates (direct for x(i),
// indirect through the partner list for x(q)); forces accumulate in private
// memory; the shared force array is updated in a pipelined fashion in
// nprocs steps; owners then update their coordinates.
#pragma once

#include "src/apps/nbf/nbf_common.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::apps::nbf {

struct TmkResult : AppRunResult {
  double list_scan_seconds = 0;  ///< Read_indices time (first step only —
                                 ///< the partner list is static)
};

TmkResult run_tmk(core::DsmRuntime& rt, const Params& p, bool optimized);

/// Mini-Fortran source of the kernel fed to the compiler front-end.
extern const char* const kNbfKernelSource;

}  // namespace sdsm::apps::nbf
