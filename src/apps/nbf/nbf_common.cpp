#include "src/apps/nbf/nbf_common.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"

namespace sdsm::apps::nbf {

std::int32_t partner_of(const Params& p, std::int64_t i, int j) {
  SDSM_REQUIRE(j >= 0 && j < p.partners);
  // Partners spread evenly over `spread` of the total space; adjacent
  // partners are spread/partners apart (~4% of the molecules for the
  // paper's 100 partners over 2/3 of the space, and scaled equivalently
  // here).
  const double frac = p.spread * static_cast<double>(j + 1) /
                      static_cast<double>(p.partners);
  const auto offset = static_cast<std::int64_t>(
      frac * static_cast<double>(p.molecules));
  return static_cast<std::int32_t>((i + offset) % p.molecules);
}

int partner_count(const Params& p, std::int64_t i) {
  SDSM_REQUIRE(p.min_partners < 0 ||
               (p.min_partners >= 1 && p.min_partners <= p.partners));
  if (p.min_partners < 0 || p.min_partners == p.partners) return p.partners;
  // Deterministic per-molecule degree, decorrelated from the index so
  // block partitions see the full spread.
  SplitMix64 sm(static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull + 1);
  const auto span = static_cast<std::uint64_t>(p.partners - p.min_partners + 1);
  return p.min_partners + static_cast<int>(sm.next() % span);
}

PartnerList build_partner_list(const Params& p) {
  PartnerList list;
  list.offsets.reserve(static_cast<std::size_t>(p.molecules) + 1);
  list.offsets.push_back(0);
  for (std::int64_t i = 0; i < p.molecules; ++i) {
    const int count = partner_count(p, i);
    for (int j = 0; j < count; ++j) {
      list.values.push_back(partner_of(p, i, j));
    }
    list.offsets.push_back(static_cast<std::int64_t>(list.values.size()));
  }
  return list;
}

std::vector<double> initial_coordinates(const Params& p) {
  Rng rng(p.molecules * 31 + 7);
  std::vector<double> x(static_cast<std::size_t>(p.molecules));
  for (auto& v : x) v = rng.next_double();
  return x;
}

double coordinate_checksum(std::span<const double> x) {
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + s2;
}

AppRunResult run_seq(const Params& p) {
  auto x = initial_coordinates(p);
  std::vector<double> forces(x.size());
  const auto list = build_partner_list(p);

  // The uniform configuration keeps the dense i*partners+j indexing: the
  // compiler vectorizes it, and the sequential baseline is the denominator
  // of every reported speedup, so it must not regress when the structure
  // happens to be regular.  Variable-degree lists walk the CSR rows.
  const bool uniform = p.min_partners < 0 || p.min_partners == p.partners;
  auto apply_pair = [&](std::size_t i, std::size_t q) {
    // The GROMOS kernel shape: update both the molecule and its partner
    // from their separation.
    const double d = pair_force(x[i], x[q]);
    forces[i] += d;
    forces[q] -= d;
  };
  auto step_fn = [&] {
    std::fill(forces.begin(), forces.end(), 0.0);
    if (uniform) {
      for (std::int64_t i = 0; i < p.molecules; ++i) {
        for (int j = 0; j < p.partners; ++j) {
          apply_pair(static_cast<std::size_t>(i),
                     static_cast<std::size_t>(
                         list.values[static_cast<std::size_t>(i) * p.partners +
                                     j]));
        }
      }
    } else {
      for (std::int64_t i = 0; i < p.molecules; ++i) {
        for (const std::int32_t q : list.row(static_cast<std::size_t>(i))) {
          apply_pair(static_cast<std::size_t>(i),
                     static_cast<std::size_t>(q));
        }
      }
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += forces[i] * p.dt;
  };

  for (int s = 0; s < p.warmup_steps; ++s) step_fn();
  const Timer timer;
  for (int s = 0; s < p.timed_steps; ++s) step_fn();

  AppRunResult r;
  r.seconds = timer.elapsed_s();
  r.checksum = coordinate_checksum(x);
  return r;
}

}  // namespace sdsm::apps::nbf
