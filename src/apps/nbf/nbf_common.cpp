#include "src/apps/nbf/nbf_common.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"

namespace sdsm::apps::nbf {

std::int32_t partner_of(const Params& p, std::int64_t i, int j) {
  SDSM_REQUIRE(j >= 0 && j < p.partners);
  // Partners spread evenly over `spread` of the total space; adjacent
  // partners are spread/partners apart (~4% of the molecules for the
  // paper's 100 partners over 2/3 of the space, and scaled equivalently
  // here).
  const double frac = p.spread * static_cast<double>(j + 1) /
                      static_cast<double>(p.partners);
  const auto offset = static_cast<std::int64_t>(
      frac * static_cast<double>(p.molecules));
  return static_cast<std::int32_t>((i + offset) % p.molecules);
}

std::vector<std::int32_t> build_partner_list(const Params& p) {
  std::vector<std::int32_t> list(
      static_cast<std::size_t>(p.molecules) * p.partners);
  for (std::int64_t i = 0; i < p.molecules; ++i) {
    for (int j = 0; j < p.partners; ++j) {
      list[static_cast<std::size_t>(i) * p.partners + j] = partner_of(p, i, j);
    }
  }
  return list;
}

std::vector<double> initial_coordinates(const Params& p) {
  Rng rng(p.molecules * 31 + 7);
  std::vector<double> x(static_cast<std::size_t>(p.molecules));
  for (auto& v : x) v = rng.next_double();
  return x;
}

double coordinate_checksum(std::span<const double> x) {
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + s2;
}

AppRunResult run_seq(const Params& p) {
  auto x = initial_coordinates(p);
  std::vector<double> forces(x.size());
  const auto list = build_partner_list(p);

  auto step_fn = [&] {
    std::fill(forces.begin(), forces.end(), 0.0);
    for (std::int64_t i = 0; i < p.molecules; ++i) {
      for (int j = 0; j < p.partners; ++j) {
        const auto q = static_cast<std::size_t>(
            list[static_cast<std::size_t>(i) * p.partners + j]);
        // The GROMOS kernel shape: update both the molecule and its
        // partner from their separation.
        const double d = pair_force(x[static_cast<std::size_t>(i)], x[q]);
        forces[static_cast<std::size_t>(i)] += d;
        forces[q] -= d;
      }
    }
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += forces[i] * p.dt;
  };

  for (int s = 0; s < p.warmup_steps; ++s) step_fn();
  const Timer timer;
  for (int s = 0; s < p.timed_steps; ++s) step_fn();

  AppRunResult r;
  r.seconds = timer.elapsed_s();
  r.checksum = coordinate_checksum(x);
  return r;
}

}  // namespace sdsm::apps::nbf
