// NBF: the non-bonded-force kernel from the GROMOS benchmark (Section 5.2
// of the paper).
//
// Unlike moldyn, each molecule keeps a *static* list of partners,
// concatenated per molecule in CSR form.  Each molecule is a single
// double; partners are spread evenly over about 2/3 of the index space
// with ~4% spacing — the structural parameters the paper states.  The
// paper's configuration gives every molecule the same number of partners
// (the default here); `min_partners` opts into deterministic per-molecule
// counts in [min_partners, partners], the variable-length rows real
// GROMOS neighbour lists have.  A BLOCK partition balances the
// load.  The paper's 64x1000 configuration misaligns the partition
// boundaries with page boundaries to induce false sharing; the `molecules`
// parameter controls that here the same way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/apps/app_types.hpp"
#include "src/common/types.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::nbf {

struct Params {
  std::int64_t molecules = 16384;
  int partners = 32;          ///< max partners per molecule (paper: 100)
  /// Minimum partners per molecule.  Negative (the default) means every
  /// molecule keeps exactly `partners` partners — the paper's uniform
  /// configuration.  A value in [1, partners] makes the per-molecule count
  /// vary deterministically over [min_partners, partners]: the
  /// variable-length partner lists that a fixed-arity item shape could
  /// only express by padding every row to the maximum.
  int min_partners = -1;
  double spread = 2.0 / 3.0;  ///< fraction of index space partners span
  int timed_steps = 10;       ///< paper: last 10 of 11 iterations timed
  int warmup_steps = 1;
  double dt = 1e-6;
  std::uint32_t nprocs = 8;
};

/// Partner force kernel shared by every variant (GROMOS-weight; see the
/// moldyn note — the paper's nbf sequential time of 78 s for 65536x100x10
/// updates implies ~1 us per pair on 1997 hardware).
inline double pair_force(double xi, double xq) {
  const double d = xi - xq;
  const double r2 = d * d + 1.0;
  const double inv = 1.0 / r2;
  const double inv3 = inv * inv * inv;
  return d * (inv3 - 0.3 * inv);
}

/// j-th partner of molecule i (0-based): deterministic, evenly spread.
std::int32_t partner_of(const Params& p, std::int64_t i, int j);

/// Number of partners molecule i keeps: `partners` in the uniform
/// configuration, otherwise deterministic in [min_partners, partners].
int partner_count(const Params& p, std::int64_t i);

/// The concatenated partner lists in CSR form: molecule i's partners are
/// the values of row i.  Uniform configurations yield uniform offsets
/// (offsets[i] = i * partners).
using PartnerList = Csr;
PartnerList build_partner_list(const Params& p);

/// Deterministic initial coordinates.
std::vector<double> initial_coordinates(const Params& p);

/// Order-insensitive digest of the coordinate array.
double coordinate_checksum(std::span<const double> x);

/// Sequential reference.
AppRunResult run_seq(const Params& p);

}  // namespace sdsm::apps::nbf
