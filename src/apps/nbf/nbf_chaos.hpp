// NBF on the CHAOS runtime.  BLOCK partition, replicated translation table
// (it fits: the paper used the non-replicated variant only for moldyn's
// larger footprint), inspector run once before the timed loop — the paper
// excludes it from Table 2 and reports it separately, as does this
// implementation.
#pragma once

#include "src/apps/nbf/nbf_common.hpp"
#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/translation_table.hpp"

namespace sdsm::apps::nbf {

struct ChaosResult : AppRunResult {
  double inspector_seconds = 0;  ///< one-time schedule build (untimed)
};

ChaosResult run_chaos(chaos::ChaosRuntime& rt, const Params& p,
                      chaos::TableKind table_kind = chaos::TableKind::kReplicated);

}  // namespace sdsm::apps::nbf
