#include "src/apps/nbf/nbf_chaos.hpp"

#include <algorithm>
#include <atomic>

#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/common/timer.hpp"

namespace sdsm::apps::nbf {

ChaosResult run_chaos(chaos::ChaosRuntime& rt, const Params& p,
                      chaos::TableKind table_kind) {
  SDSM_REQUIRE(rt.num_nodes() == p.nprocs);
  const std::uint32_t nprocs = p.nprocs;
  const auto blocks = part::block_partition(p.molecules, nprocs);

  std::vector<NodeId> owner(static_cast<std::size_t>(p.molecules));
  for (std::int64_t i = 0; i < p.molecules; ++i) {
    owner[static_cast<std::size_t>(i)] =
        part::block_owner(i, p.molecules, nprocs);
  }
  const auto table = chaos::TranslationTable::build(owner, nprocs, table_kind);

  std::vector<double> inspector_seconds(nprocs, 0.0);
  std::vector<double> partial_sum(nprocs, 0.0);
  std::vector<double> timed_seconds(nprocs, 0.0);
  std::atomic<std::uint64_t> msgs_at_timed_start{0};
  std::atomic<std::uint64_t> bytes_at_timed_start{0};
  std::atomic<std::uint64_t> msgs_at_timed_end{0};
  std::atomic<std::uint64_t> bytes_at_timed_end{0};

  rt.reset_stats();

  rt.run([&](chaos::ChaosNode& node) {
    const NodeId me = node.id();
    const part::Range mine = blocks[me];
    const auto local_n = static_cast<std::size_t>(mine.size());

    const auto x0 = initial_coordinates(p);
    std::vector<double> x_local(
        x0.begin() + mine.begin, x0.begin() + mine.end);
    std::vector<double> f_local(local_n);

    // The inspector runs once, at the beginning of the program (the
    // partner list is static).
    std::vector<std::int64_t> refs;
    refs.reserve(local_n * static_cast<std::size_t>(p.partners + 1));
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      refs.push_back(i);
      for (int j = 0; j < p.partners; ++j) {
        refs.push_back(partner_of(p, i, j));
      }
    }
    chaos::InspectorStats istats;
    chaos::Schedule sched = chaos::build_schedule(node, refs, table, &istats);
    inspector_seconds[me] = istats.seconds;
    const auto localized = chaos::localize_references(me, refs, table, sched);

    std::vector<double> x_ghost(static_cast<std::size_t>(sched.num_ghosts));
    std::vector<double> f_ghost(static_cast<std::size_t>(sched.num_ghosts));

    auto value_at = [&](std::int32_t k) {
      return static_cast<std::size_t>(k) < local_n
                 ? x_local[static_cast<std::size_t>(k)]
                 : x_ghost[static_cast<std::size_t>(k) - local_n];
    };

    auto step_fn = [&] {
      chaos::gather<double>(node, sched, x_local, x_ghost);
      std::fill(f_local.begin(), f_local.end(), 0.0);
      std::fill(f_ghost.begin(), f_ghost.end(), 0.0);
      const std::size_t stride = static_cast<std::size_t>(p.partners) + 1;
      for (std::size_t i = 0; i < local_n; ++i) {
        const std::int32_t li = localized[i * stride];
        const double xi = value_at(li);
        for (int j = 0; j < p.partners; ++j) {
          const std::int32_t lq = localized[i * stride + 1 +
                                            static_cast<std::size_t>(j)];
          const double d = pair_force(xi, value_at(lq));
          f_local[i] += d;
          double& target = static_cast<std::size_t>(lq) < local_n
                               ? f_local[static_cast<std::size_t>(lq)]
                               : f_ghost[static_cast<std::size_t>(lq) - local_n];
          target -= d;
        }
      }
      chaos::scatter<double>(node, sched, std::span<double>(f_local), f_ghost,
                             [](double a, double b) { return a + b; });
      for (std::size_t i = 0; i < local_n; ++i) {
        x_local[i] += f_local[i] * p.dt;
      }
      node.barrier();
    };

    for (int s = 0; s < p.warmup_steps; ++s) step_fn();
    // Quiescent snapshot: taken by node 0 while every other node is blocked
    // inside the barrier, so the count is deterministic.
    node.barrier([&] {
      msgs_at_timed_start = rt.total_messages();
      bytes_at_timed_start =
          static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
    });

    const Timer timer;
    for (int s = 0; s < p.timed_steps; ++s) step_fn();
    timed_seconds[me] = timer.elapsed_s();
    node.barrier([&] {
      msgs_at_timed_end = rt.total_messages();
      bytes_at_timed_end =
          static_cast<std::uint64_t>(rt.total_megabytes() * 1e6);
    });

    partial_sum[me] = coordinate_checksum(x_local);
  });

  ChaosResult r;
  double tmax = 0;
  for (const double t : timed_seconds) tmax = std::max(tmax, t);
  r.seconds = tmax;
  // Between the two quiescent snapshots lie the timed steps plus exactly
  // one barrier release (N-1 messages) and one barrier arrival (N-1).
  r.messages =
      msgs_at_timed_end.load() - msgs_at_timed_start.load() - 2 * (nprocs - 1);
  r.megabytes = static_cast<double>(bytes_at_timed_end.load() -
                                    bytes_at_timed_start.load()) /
                1e6;
  for (const double s : partial_sum) r.checksum += s;
  double insp = 0;
  for (const double s : inspector_seconds) insp += s;
  r.inspector_seconds = insp / nprocs;
  r.overhead_seconds = r.inspector_seconds;
  return r;
}

}  // namespace sdsm::apps::nbf
