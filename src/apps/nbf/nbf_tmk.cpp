#include "src/apps/nbf/nbf_tmk.hpp"

#include <algorithm>

#include "src/common/timer.hpp"
#include "src/compiler/lowering.hpp"
#include "src/compiler/parser.hpp"
#include "src/compiler/transform.hpp"

namespace sdsm::apps::nbf {

const char* const kNbfKernelSource =
    "SUBROUTINE NBFORCES\n"
    "  SHARED REAL X(N), FORCES(N)\n"
    "  SHARED INTEGER PARTNERS(K, N)\n"
    "  INTEGER I, J, Q\n"
    "  REAL D\n"
    "DO I = MY_START, MY_END\n"
    "  DO J = 1, K\n"
    "    Q = PARTNERS(J, I)\n"
    "    D = X(I) - X(Q)\n"
    "    FORCES(I) = FORCES(I) + D\n"
    "    FORCES(Q) = FORCES(Q) - D\n"
    "  ENDDO\n"
    "ENDDO\n"
    "END\n";

TmkResult run_tmk(core::DsmRuntime& rt, const Params& p, bool optimized) {
  SDSM_REQUIRE(rt.num_nodes() == p.nprocs);
  const auto n = static_cast<std::size_t>(p.molecules);
  const std::uint32_t nprocs = p.nprocs;
  const auto blocks = part::block_partition(p.molecules, nprocs);

  auto x = rt.alloc_global<double>(n);
  auto forces = rt.alloc_global<double>(n);
  auto partners = rt.alloc_global<std::int32_t>(n * p.partners);

  // Compile the kernel (Figure 1 -> Figure 2 for nbf).
  const auto compiled = compiler::transform(compiler::parse(kNbfKernelSource));
  SDSM_ASSERT(compiled.validates_inserted == 1);
  const compiler::Stmt& validate_stmt = *compiled.transformed.units[0].body[0];
  compiler::Bindings bindings;
  const rsd::ArrayLayout layout1{{static_cast<std::int64_t>(n)}, true};
  bindings["X"] = compiler::ArrayBinding{x.addr, sizeof(double), layout1};
  bindings["FORCES"] =
      compiler::ArrayBinding{forces.addr, sizeof(double), layout1};
  bindings["PARTNERS"] = compiler::ArrayBinding{
      partners.addr, sizeof(std::int32_t),
      rsd::ArrayLayout{{p.partners, static_cast<std::int64_t>(n)}, true}};

  // Node 0 initializes coordinates; every node fills the partner rows of
  // its own block (the list is a deterministic function, and a node's
  // executor only ever reads its own rows, so list pages never travel).
  rt.run([&](core::DsmNode& self) {
    if (self.id() == 0) {
      const auto x0 = initial_coordinates(p);
      std::copy(x0.begin(), x0.end(), self.ptr(x));
    }
    const part::Range mine = blocks[self.id()];
    std::int32_t* rows = self.ptr(partners);
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      for (int j = 0; j < p.partners; ++j) {
        rows[static_cast<std::size_t>(i) * p.partners + j] = partner_of(p, i, j);
      }
    }
    self.barrier();
  });

  std::vector<double> partial_sum(nprocs, 0.0);
  double wall_seconds = 0;

  auto body = [&](core::DsmNode& self, int steps) {
    const NodeId me = self.id();
    const part::Range mine = blocks[me];
    double* xp = self.ptr(x);
    double* fp = self.ptr(forces);
    const std::int32_t* pp = self.ptr(partners);
    std::vector<double> local_forces(n);

    compiler::Env env{{"K", p.partners},
                      {"MY_START", mine.begin + 1},
                      {"MY_END", mine.end}};

    for (int step = 0; step < steps; ++step) {
      std::fill(local_forces.begin(), local_forces.end(), 0.0);
      if (optimized) {
        self.validate(compiler::lower_validate(validate_stmt, bindings, env));
      }
      for (std::int64_t i = mine.begin; i < mine.end; ++i) {
        for (int j = 0; j < p.partners; ++j) {
          const auto q = static_cast<std::size_t>(
              pp[static_cast<std::size_t>(i) * p.partners + j]);
          const double d = pair_force(xp[i], xp[q]);
          local_forces[static_cast<std::size_t>(i)] += d;
          local_forces[q] -= d;
        }
      }

      // Pipelined shared-force update, nprocs rounds.
      for (std::uint32_t r = 0; r < nprocs; ++r) {
        const NodeId c = (me + r) % nprocs;
        const part::Range chunk = blocks[c];
        if (optimized && chunk.size() > 0) {
          self.validate({core::direct_desc(
              forces.addr, sizeof(double), layout1,
              rsd::RegularSection::dense1d(chunk.begin, chunk.end - 1),
              r == 0 ? core::Access::kWriteAll : core::Access::kReadWriteAll,
              200 + c)});
        }
        if (r == 0) {
          for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
            fp[i] = local_forces[static_cast<std::size_t>(i)];
          }
        } else {
          for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
            fp[i] += local_forces[static_cast<std::size_t>(i)];
          }
        }
        self.barrier();
      }

      // Coordinate update for owned molecules.
      if (optimized && mine.size() > 0) {
        self.validate(
            {core::direct_desc(forces.addr, sizeof(double), layout1,
                               rsd::RegularSection::dense1d(mine.begin,
                                                            mine.end - 1),
                               core::Access::kRead, 300),
             core::direct_desc(x.addr, sizeof(double), layout1,
                               rsd::RegularSection::dense1d(mine.begin,
                                                            mine.end - 1),
                               core::Access::kReadWriteAll, 301)});
      }
      for (std::int64_t i = mine.begin; i < mine.end; ++i) {
        xp[i] += fp[i] * p.dt;
      }
      self.barrier();
    }
  };

  // Warmup (untimed, like the paper's first iteration: pays the one-time
  // Read_indices scan of the static partner list).
  rt.run([&](core::DsmNode& self) { body(self, p.warmup_steps); });

  // One-time Read_indices scan cost (paid during warmup; the paper reports
  // it but keeps it out of the timed iterations).
  const double scan_seconds =
      static_cast<double>(rt.stats().scan_ns.get()) / 1e9 / nprocs;

  rt.reset_stats();
  const Timer wall;
  rt.run([&](core::DsmNode& self) {
    body(self, p.timed_steps);
    const part::Range mine = blocks[self.id()];
    partial_sum[self.id()] = coordinate_checksum(std::span<const double>(
        self.ptr(x) + mine.begin, static_cast<std::size_t>(mine.size())));
  });
  wall_seconds = wall.elapsed_s();

  TmkResult r;
  r.seconds = wall_seconds;
  r.messages = rt.total_messages();
  r.megabytes = rt.total_megabytes();
  r.list_scan_seconds = scan_seconds;
  r.overhead_seconds = r.list_scan_seconds;
  for (const double s : partial_sum) r.checksum += s;
  return r;
}

}  // namespace sdsm::apps::nbf
