#include "src/apps/nbf/nbf_kernel.hpp"

#include <algorithm>

#include "src/api/bucketed.hpp"

namespace sdsm::apps::nbf {

namespace {

/// Shared shape + callbacks; only the row construction differs between the
/// unpadded CSR kernel and the padded fixed-arity emulation.
api::KernelSpec<double> make_base(const Params& p) {
  api::KernelSpec<double> spec;
  spec.name = "nbf";
  spec.num_elements = p.molecules;
  spec.owner_range = part::block_partition(p.molecules, p.nprocs);
  spec.initial_state = initial_coordinates(p);
  spec.num_steps = p.timed_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;  // static partner list
  spec.rebuild_reads_state = false;
  spec.structure_cacheable = true;  // static partner lists, pure builder

  std::int64_t max_block = 0;
  for (const part::Range& r : spec.owner_range) {
    max_block = std::max(max_block, r.size());
  }
  spec.max_items_per_node = std::max<std::int64_t>(max_block, 1);

  // The molecule-vs-partner force exchange, written once against CSR rows:
  // row k is [molecule, partner...] of any length.  Padding rows with the
  // molecule itself is harmless (pair_force(x, x) == 0), which is exactly
  // how the padded variant reuses this body unchanged.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    api::for_each_row(ctx, [&ctx](std::size_t, auto row) {
      if (row.empty()) return;
      const auto li = static_cast<std::size_t>(row[0]);
      const double xi = ctx.x[li];
      for (std::size_t j = 1; j < row.size(); ++j) {
        const auto lq = static_cast<std::size_t>(row[j]);
        const double d = pair_force(xi, ctx.x[lq]);
        ctx.f[li] += d;
        ctx.f[lq] -= d;
      }
    });
  };

  spec.update = [dt = p.dt](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += f[i] * dt;
  };

  spec.checksum = [](std::span<const double> x) {
    return coordinate_checksum(x);
  };
  return spec;
}

}  // namespace

api::KernelSpec<double> make_kernel(const Params& p) {
  api::KernelSpec<double> spec = make_base(p);

  // Unpadded reference capacity: the worst per-node sum of actual row
  // lengths (each molecule contributes 1 + its own partner count).
  {
    std::int64_t worst = 1;
    for (const part::Range& r : spec.owner_range) {
      std::int64_t sum = 0;
      for (std::int64_t i = r.begin; i < r.end; ++i) {
        sum += 1 + partner_count(p, i);
      }
      worst = std::max(worst, sum);
    }
    spec.max_refs_per_node = worst;
  }

  const auto owner_range = spec.owner_range;
  spec.build_items = [p, owner_range](api::IrregularNode& node,
                                      std::span<const double> /*all_x*/) {
    const part::Range mine = owner_range[node.id()];
    api::WorkItems items;
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      items.refs.push_back(i);
      const int count = partner_count(p, i);
      for (int j = 0; j < count; ++j) {
        items.refs.push_back(partner_of(p, i, j));
      }
      items.end_row();
    }
    return items;
  };
  return spec;
}

api::KernelSpec<double> make_padded_kernel(const Params& p) {
  api::KernelSpec<double> spec = make_base(p);
  const auto arity = static_cast<std::size_t>(p.partners) + 1;
  spec.max_refs_per_node =
      spec.max_items_per_node * static_cast<std::int64_t>(arity);

  const auto owner_range = spec.owner_range;
  spec.build_items = [p, owner_range, arity](api::IrregularNode& node,
                                             std::span<const double>) {
    const part::Range mine = owner_range[node.id()];
    api::WorkItems items;
    items.refs.reserve(static_cast<std::size_t>(mine.size()) * arity);
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      items.refs.push_back(i);
      const int count = partner_count(p, i);
      for (int j = 0; j < count; ++j) {
        items.refs.push_back(partner_of(p, i, j));
      }
      // Fixed-arity padding: self-references, zero force contribution.
      for (int j = count; j < p.partners; ++j) items.refs.push_back(i);
    }
    items.finish_uniform(arity);
    return items;
  };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::nbf
