#include "src/apps/nbf/nbf_kernel.hpp"

#include <algorithm>

namespace sdsm::apps::nbf {

api::KernelSpec<double> make_kernel(const Params& p) {
  api::KernelSpec<double> spec;
  spec.name = "nbf";
  spec.num_elements = p.molecules;
  spec.owner_range = part::block_partition(p.molecules, p.nprocs);
  spec.initial_state = initial_coordinates(p);
  spec.num_steps = p.timed_steps;
  spec.warmup_steps = p.warmup_steps;
  spec.update_interval = 0;  // static partner list
  spec.arity = static_cast<std::size_t>(p.partners) + 1;  // self + partners
  spec.rebuild_reads_state = false;

  std::int64_t max_block = 0;
  for (const part::Range& r : spec.owner_range) {
    max_block = std::max(max_block, r.size());
  }
  spec.max_items_per_node = std::max<std::int64_t>(max_block, 1);

  const auto owner_range = spec.owner_range;
  spec.build_items = [p, owner_range](api::IrregularNode& node,
                                      std::span<const double> /*all_x*/) {
    const part::Range mine = owner_range[node.id()];
    api::WorkItems items;
    items.refs.reserve(static_cast<std::size_t>(mine.size()) *
                       (static_cast<std::size_t>(p.partners) + 1));
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      items.refs.push_back(i);
      for (int j = 0; j < p.partners; ++j) {
        items.refs.push_back(partner_of(p, i, j));
      }
    }
    return items;
  };

  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    const std::size_t stride = ctx.arity;
    for (std::size_t i = 0; i < ctx.num_items(); ++i) {
      const auto li = static_cast<std::size_t>(ctx.refs[i * stride]);
      const double xi = ctx.x[li];
      for (std::size_t j = 1; j < stride; ++j) {
        const auto lq = static_cast<std::size_t>(ctx.refs[i * stride + j]);
        const double d = pair_force(xi, ctx.x[lq]);
        ctx.f[li] += d;
        ctx.f[lq] -= d;
      }
    }
  };

  spec.update = [dt = p.dt](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += f[i] * dt;
  };

  spec.checksum = [](std::span<const double> x) {
    return coordinate_checksum(x);
  };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kReplicated;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p), options);
}

}  // namespace sdsm::apps::nbf
