// NBF written once against sdsm::api.
//
// Each owned molecule is one work item referencing itself plus its static
// partner list (arity = partners + 1).  The structure never changes
// (update_interval = 0): CHAOS runs its inspector once, the optimized DSM
// pays one Read_indices scan during the warmup step — the paper's Table 2
// protocol.  Replaces the former nbf_tmk.cpp / nbf_chaos.cpp pair.
#pragma once

#include "src/api/api.hpp"
#include "src/apps/nbf/nbf_common.hpp"

namespace sdsm::apps::nbf {

api::KernelSpec<double> make_kernel(const Params& p);

/// Backend defaults for nbf: the replicated translation table fits (the
/// paper used the non-replicated variant only for moldyn's footprint).
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::nbf
