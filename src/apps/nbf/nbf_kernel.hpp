// NBF written once against sdsm::api.
//
// Each owned molecule is one work item: a CSR row referencing itself plus
// its static partner list (1 + partner_count(i) references, unpadded).
// The structure never changes (update_interval = 0): CHAOS runs its
// inspector once, the optimized DSM pays one Read_indices scan during the
// warmup step — the paper's Table 2 protocol.  Replaces the former
// nbf_tmk.cpp / nbf_chaos.cpp pair.
//
// make_padded_kernel is the regression baseline for the CSR redesign: the
// same physics expressed the only way the former fixed-arity API allowed —
// every row padded to the maximum length with self-references (which
// contribute exactly zero force, pair_force(x, x) == 0).  Checksums are
// identical; the shared index array, and with it the one-time list traffic
// on the DSM backends, is what padding costs.
#pragma once

#include "src/api/api.hpp"
#include "src/apps/nbf/nbf_common.hpp"

namespace sdsm::apps::nbf {

api::KernelSpec<double> make_kernel(const Params& p);

/// The fixed-arity emulation: rows padded to 1 + partners with
/// self-references.  Same checksum as make_kernel; larger index footprint.
api::KernelSpec<double> make_padded_kernel(const Params& p);

/// Backend defaults for nbf: the replicated translation table fits (the
/// paper used the non-replicated variant only for moldyn's footprint).
api::BackendOptions default_options();

api::KernelResult run(api::Backend backend, const Params& p,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::nbf
