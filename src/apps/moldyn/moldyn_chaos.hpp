// Moldyn on the CHAOS inspector/executor runtime (the paper's baseline).
//
// RCB-partitioned molecules, remapped to dense local arrays via the
// translation table (kDistributed, matching the paper: a replicated table
// did not fit on their SP2 nodes).  Every rebuild of the interaction list
// re-runs the inspector; every step gathers x and forces and scatters the
// force contributions per schedule, exactly the structure Section 5.1
// describes.
#pragma once

#include "src/apps/moldyn/moldyn_common.hpp"
#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/translation_table.hpp"

namespace sdsm::apps::moldyn {

struct ChaosResult : AppRunResult {
  double inspector_seconds = 0;  ///< per-node average across the run
  std::int64_t inspector_runs = 0;
};

ChaosResult run_chaos(chaos::ChaosRuntime& rt, const Params& p,
                      const System& sys,
                      chaos::TableKind table_kind = chaos::TableKind::kDistributed);

}  // namespace sdsm::apps::moldyn
