#include "src/apps/moldyn/moldyn_chaos.hpp"

#include <algorithm>

#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/common/timer.hpp"

namespace sdsm::apps::moldyn {

ChaosResult run_chaos(chaos::ChaosRuntime& rt, const Params& p,
                      const System& sys, chaos::TableKind table_kind) {
  SDSM_REQUIRE(rt.num_nodes() == p.nprocs);
  const std::uint32_t nprocs = p.nprocs;

  // Owner map and translation table (remapping: owner-contiguous offsets).
  std::vector<NodeId> owner(static_cast<std::size_t>(p.num_molecules));
  for (std::int64_t i = 0; i < p.num_molecules; ++i) {
    owner[static_cast<std::size_t>(i)] = owner_of(sys, i);
  }
  const auto table = chaos::TranslationTable::build(owner, nprocs, table_kind);

  std::vector<double> inspector_seconds(nprocs, 0.0);
  std::vector<std::int64_t> inspector_runs(nprocs, 0);
  std::vector<double> partial_sum(nprocs, 0.0);

  rt.reset_stats();
  const Timer wall;

  rt.run([&](chaos::ChaosNode& node) {
    const NodeId me = node.id();
    const part::Range mine = sys.owner_range[me];
    const auto local_n = static_cast<std::size_t>(mine.size());

    std::vector<double3> x_local(local_n);
    for (std::size_t i = 0; i < local_n; ++i) {
      x_local[i] = sys.pos0[static_cast<std::size_t>(mine.begin) + i];
    }
    std::vector<double3> f_local(local_n);

    chaos::Schedule sched;
    std::vector<std::int32_t> la, lb;  // localized pair references
    std::vector<double3> x_ghost, f_ghost;
    std::vector<double3> all_pos(static_cast<std::size_t>(p.num_molecules));

    auto value_at = [&](std::int32_t k) -> const double3& {
      return static_cast<std::size_t>(k) < local_n
                 ? x_local[static_cast<std::size_t>(k)]
                 : x_ghost[static_cast<std::size_t>(k) - local_n];
    };

    for (int step = 0; step < p.num_steps; ++step) {
      if (step % p.update_interval == 0) {
        // Rebuild the interaction list: allgather current positions (the
        // list builder needs neighbours), build my pairs, run the
        // inspector to derive a fresh communication schedule.
        std::vector<std::vector<std::uint8_t>> out(nprocs);
        {
          Writer w;
          w.put_span<double3>(std::span<const double3>(x_local));
          for (NodeId q = 0; q < nprocs; ++q) {
            if (q != me) out[q] = w.bytes();
          }
        }
        auto in = node.all_to_all(std::move(out));
        for (NodeId q = 0; q < nprocs; ++q) {
          std::vector<double3> block;
          if (q == me) {
            block = x_local;
          } else {
            Reader r(in[q]);
            block = r.get_vector<double3>();
          }
          std::copy(block.begin(), block.end(),
                    all_pos.begin() + sys.owner_range[q].begin);
        }
        auto groups = build_pairs(p, sys, all_pos);
        const auto& pairs = groups[me];

        // Inspector: schedule from the referenced global molecule ids.
        std::vector<std::int64_t> refs;
        refs.reserve(2 * pairs.size());
        for (const Pair& pr : pairs) {
          refs.push_back(pr.a);
          refs.push_back(pr.b);
        }
        chaos::InspectorStats istats;
        sched = chaos::build_schedule(node, refs, table, &istats);
        inspector_seconds[me] += istats.seconds;
        ++inspector_runs[me];

        const auto localized =
            chaos::localize_references(me, refs, table, sched);
        la.resize(pairs.size());
        lb.resize(pairs.size());
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          la[k] = localized[2 * k];
          lb[k] = localized[2 * k + 1];
        }
        x_ghost.assign(static_cast<std::size_t>(sched.num_ghosts), double3{});
        f_ghost.assign(static_cast<std::size_t>(sched.num_ghosts), double3{});
      }

      // Gather current remote coordinates per schedule.
      chaos::gather<double3>(node, sched, x_local, x_ghost);

      // Force computation over localized pairs.
      std::fill(f_local.begin(), f_local.end(), double3{});
      std::fill(f_ghost.begin(), f_ghost.end(), double3{});
      for (std::size_t k = 0; k < la.size(); ++k) {
        const double3 f = pair_force(value_at(la[k]), value_at(lb[k]));
        auto bump = [&](std::int32_t idx, const double3& v, bool add) {
          double3& target = static_cast<std::size_t>(idx) < local_n
                                ? f_local[static_cast<std::size_t>(idx)]
                                : f_ghost[static_cast<std::size_t>(idx) - local_n];
          if (add) {
            target += v;
          } else {
            target -= v;
          }
        };
        bump(la[k], f, true);
        bump(lb[k], f, false);
      }

      // Scatter ghost contributions back to owners (reduction scatter).
      chaos::scatter<double3>(node, sched, std::span<double3>(f_local),
                              f_ghost,
                              [](double3 a, double3 b) { return a + b; });

      // Position update for owned molecules.
      for (std::size_t i = 0; i < local_n; ++i) {
        x_local[i] += f_local[i] * p.dt;
      }
      node.barrier();
    }

    partial_sum[me] = position_checksum(x_local);
  });

  ChaosResult r;
  r.seconds = wall.elapsed_s();
  r.messages = rt.total_messages();
  r.megabytes = rt.total_megabytes();
  for (const double s : partial_sum) r.checksum += s;
  double insp = 0;
  for (const double s : inspector_seconds) insp += s;
  r.inspector_seconds = insp / nprocs;
  r.overhead_seconds = r.inspector_seconds;
  r.inspector_runs = inspector_runs[0];
  return r;
}

}  // namespace sdsm::apps::moldyn
