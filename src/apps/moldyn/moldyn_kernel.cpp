#include "src/apps/moldyn/moldyn_kernel.hpp"

#include <algorithm>

#include "src/api/bucketed.hpp"

namespace sdsm::apps::moldyn {

api::KernelSpec<double3> make_kernel(const Params& p, const System& sys) {
  api::KernelSpec<double3> spec;
  spec.name = "moldyn";
  spec.num_elements = p.num_molecules;
  spec.owner_range = sys.owner_range;
  spec.initial_state = sys.pos0;
  spec.num_steps = p.num_steps;
  spec.warmup_steps = 0;  // the paper times the rebuilds too (Table 1)
  spec.update_interval = p.update_interval;
  spec.rebuild_reads_state = true;  // pairs come from current positions
  // Pair lists are a pure function of the positions at rebuild time, so a
  // repeat run over the same initial system replays the same structures.
  spec.structure_cacheable = true;

  // Capacity: the initial interaction list plus 25% headroom for drift.
  // Pairs are uniform two-reference rows, so the ref bound is 2x the item
  // bound.
  {
    const auto groups = build_pairs(p, sys, sys.pos0);
    std::size_t max_pairs = 16;
    for (const auto& g : groups) max_pairs = std::max(max_pairs, g.size());
    spec.max_items_per_node =
        static_cast<std::int64_t>(max_pairs + max_pairs / 4);
    spec.max_refs_per_node = 2 * spec.max_items_per_node;
  }

  spec.build_items = [p, sys](api::IrregularNode& node,
                              std::span<const double3> all_x) {
    auto groups = build_pairs(p, sys, all_x);
    const auto& mine = groups[node.id()];
    api::WorkItems items;
    items.refs.reserve(2 * mine.size());
    for (const Pair& pr : mine) {
      items.refs.push_back(pr.a);
      items.refs.push_back(pr.b);
    }
    items.finish_uniform(2);
    return items;
  };

  // Uniform degree-2 rows land in a single bucket in original order, so
  // the bucketed engine is bit-identical to the rows engine here.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double3>& ctx) {
    api::for_each_row(ctx, [&ctx](std::size_t, auto pair) {
      const auto a = static_cast<std::size_t>(pair[0]);
      const auto b = static_cast<std::size_t>(pair[1]);
      const double3 fk = pair_force(ctx.x[a], ctx.x[b]);
      ctx.f[a] += fk;
      ctx.f[b] -= fk;
    });
  };

  spec.update = [dt = p.dt](std::span<double3> x,
                            std::span<const double3> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += f[i] * dt;
  };

  spec.checksum = [](std::span<const double3> x) {
    return position_checksum(x);
  };
  return spec;
}

api::BackendOptions default_options() {
  api::BackendOptions o;
  o.table = chaos::TableKind::kDistributed;
  return o;
}

api::KernelResult run(api::Backend backend, const Params& p, const System& sys,
                      const api::BackendOptions& options) {
  return api::run_kernel(backend, make_kernel(p, sys), options);
}

}  // namespace sdsm::apps::moldyn
