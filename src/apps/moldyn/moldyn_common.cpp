#include "src/apps/moldyn/moldyn_common.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"

namespace sdsm::apps::moldyn {

System make_system(const Params& p) {
  SDSM_REQUIRE(p.num_molecules > 0 && p.nprocs >= 1);
  Rng rng(p.seed);

  // Jittered lattice fill of the box: spatially well-distributed and
  // deterministic.
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::cbrt(static_cast<double>(p.num_molecules))));
  const double spacing = p.box / static_cast<double>(side);
  std::vector<double3> raw;
  raw.reserve(static_cast<std::size_t>(p.num_molecules));
  for (std::int64_t i = 0; i < p.num_molecules; ++i) {
    const std::int64_t cx = i % side;
    const std::int64_t cy = (i / side) % side;
    const std::int64_t cz = i / (side * side);
    double3 q;
    q.x = (static_cast<double>(cx) + 0.2 + 0.6 * rng.next_double()) * spacing;
    q.y = (static_cast<double>(cy) + 0.2 + 0.6 * rng.next_double()) * spacing;
    q.z = (static_cast<double>(cz) + 0.2 + 0.6 * rng.next_double()) * spacing;
    raw.push_back(q);
  }

  // RCB partition, then renumber so each node's molecules are contiguous.
  std::vector<part::Point3> pts(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    pts[i] = part::Point3{raw[i].x, raw[i].y, raw[i].z};
  }
  const auto owner = part::rcb_partition(pts, p.nprocs);
  const auto lists = part::owners_to_lists(owner, p.nprocs);

  System sys;
  sys.pos0.reserve(raw.size());
  sys.owner_range.resize(p.nprocs);
  std::int64_t cursor = 0;
  for (std::uint32_t node = 0; node < p.nprocs; ++node) {
    sys.owner_range[node].begin = cursor;
    for (const std::int64_t orig : lists[node]) {
      sys.pos0.push_back(raw[static_cast<std::size_t>(orig)]);
      ++cursor;
    }
    sys.owner_range[node].end = cursor;
  }
  SDSM_ENSURE(cursor == p.num_molecules);
  return sys;
}

NodeId owner_of(const System& sys, std::int64_t molecule) {
  for (std::size_t n = 0; n < sys.owner_range.size(); ++n) {
    if (sys.owner_range[n].contains(molecule)) return static_cast<NodeId>(n);
  }
  SDSM_UNREACHABLE("molecule out of range");
}

std::vector<std::vector<Pair>> build_pairs(const Params& p, const System& sys,
                                           std::span<const double3> pos) {
  SDSM_REQUIRE(pos.size() == sys.pos0.size());
  const double cut2 = p.cutoff * p.cutoff;
  const auto cells = static_cast<std::int64_t>(
      std::max(1.0, std::floor(p.box / p.cutoff)));
  const double inv_cell = static_cast<double>(cells) / p.box;

  auto cell_of = [&](const double3& q) {
    auto clampc = [&](double v) {
      auto c = static_cast<std::int64_t>(v * inv_cell);
      return std::clamp<std::int64_t>(c, 0, cells - 1);
    };
    return (clampc(q.x) * cells + clampc(q.y)) * cells + clampc(q.z);
  };

  // Bucket molecules into cells.
  std::vector<std::vector<std::int32_t>> bucket(
      static_cast<std::size_t>(cells * cells * cells));
  for (std::size_t i = 0; i < pos.size(); ++i) {
    bucket[static_cast<std::size_t>(cell_of(pos[i]))].push_back(
        static_cast<std::int32_t>(i));
  }

  std::vector<std::vector<Pair>> out(sys.owner_range.size());
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(pos.size()); ++i) {
    const double3& qi = pos[static_cast<std::size_t>(i)];
    auto ci = cell_of(qi);
    const std::int64_t cx = ci / (cells * cells);
    const std::int64_t cy = (ci / cells) % cells;
    const std::int64_t cz = ci % cells;
    const NodeId me = owner_of(sys, i);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const std::int64_t nx = cx + dx, ny = cy + dy, nz = cz + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells ||
              nz >= cells) {
            continue;
          }
          for (const std::int32_t j :
               bucket[static_cast<std::size_t>((nx * cells + ny) * cells + nz)]) {
            if (j <= i) continue;
            const double3 d = qi - pos[static_cast<std::size_t>(j)];
            if (d.norm2() < cut2) {
              out[me].push_back(Pair{static_cast<std::int32_t>(i), j});
            }
          }
        }
      }
    }
  }
  return out;
}

double interacting_fraction(const std::vector<std::vector<Pair>>& pairs,
                            std::int64_t num_molecules) {
  std::vector<bool> seen(static_cast<std::size_t>(num_molecules), false);
  for (const auto& group : pairs) {
    for (const Pair& pr : group) {
      seen[static_cast<std::size_t>(pr.a)] = true;
      seen[static_cast<std::size_t>(pr.b)] = true;
    }
  }
  std::int64_t n = 0;
  for (const bool b : seen) n += b ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(num_molecules);
}

double position_checksum(std::span<const double3> pos) {
  // Order-insensitive: plain sums of components and of squared norms.
  double s = 0, s2 = 0;
  for (const auto& q : pos) {
    s += q.x + q.y + q.z;
    s2 += q.norm2();
  }
  return s + s2;
}

AppRunResult run_seq(const Params& p, const System& sys) {
  std::vector<double3> pos(sys.pos0);
  std::vector<double3> forces(pos.size());
  std::vector<std::vector<Pair>> pairs;

  const Timer timer;
  for (int step = 0; step < p.num_steps; ++step) {
    if (step % p.update_interval == 0) {
      pairs = build_pairs(p, sys, pos);
    }
    std::fill(forces.begin(), forces.end(), double3{});
    for (const auto& group : pairs) {
      for (const Pair& pr : group) {
        // forces(n1) += force; forces(n2) -= force, per Figure 1.
        const double3 f = pair_force(pos[static_cast<std::size_t>(pr.a)],
                                     pos[static_cast<std::size_t>(pr.b)]);
        forces[static_cast<std::size_t>(pr.a)] += f;
        forces[static_cast<std::size_t>(pr.b)] -= f;
      }
    }
    for (std::size_t i = 0; i < pos.size(); ++i) {
      pos[i] += forces[i] * p.dt;
    }
  }

  AppRunResult r;
  r.seconds = timer.elapsed_s();
  r.checksum = position_checksum(pos);
  return r;
}

}  // namespace sdsm::apps::moldyn
