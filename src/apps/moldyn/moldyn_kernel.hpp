// Moldyn written once against sdsm::api.
//
// The kernel definition (make_kernel) replaces the former per-backend
// implementations (moldyn_tmk.cpp / moldyn_chaos.cpp): pairs within the
// cutoff are the work items (arity 2), rebuilt every update_interval steps
// from the current positions; the pair force accumulates into both
// endpoints; owners integrate positions.  Each backend executes that
// description its own way — demand paging, compiler-driven Validate
// aggregation, or inspector/executor ghost exchange.
#pragma once

#include "src/api/api.hpp"
#include "src/apps/moldyn/moldyn_common.hpp"

namespace sdsm::apps::moldyn {

/// The moldyn kernel over `sys` (self-contained: captures copies).
api::KernelSpec<double3> make_kernel(const Params& p, const System& sys);

/// Backend defaults for moldyn: the paper could not fit a replicated
/// translation table for moldyn's footprint and used a distributed one.
api::BackendOptions default_options();

/// Runs moldyn on the given backend.
api::KernelResult run(api::Backend backend, const Params& p, const System& sys,
                      const api::BackendOptions& options = default_options());

}  // namespace sdsm::apps::moldyn
