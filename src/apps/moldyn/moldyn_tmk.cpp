#include "src/apps/moldyn/moldyn_tmk.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/timer.hpp"
#include "src/compiler/lowering.hpp"
#include "src/compiler/parser.hpp"
#include "src/compiler/transform.hpp"

namespace sdsm::apps::moldyn {

const char* const kComputeForcesSource =
    "SUBROUTINE COMPUTEFORCES\n"
    "  SHARED REAL X(N), FORCES(N)\n"
    "  SHARED INTEGER INTERACTION_LIST(2, M)\n"
    "  INTEGER I, N1, N2\n"
    "  REAL FORCE\n"
    "DO I = MY_START, MY_END\n"
    "  N1 = INTERACTION_LIST(1, I)\n"
    "  N2 = INTERACTION_LIST(2, I)\n"
    "  FORCE = X(N1) - X(N2)\n"
    "  FORCES(N1) = FORCES(N1) + FORCE\n"
    "  FORCES(N2) = FORCES(N2) - FORCE\n"
    "ENDDO\n"
    "END\n";

namespace {

/// Pairs computed by one node: i restricted to the node's molecule range,
/// cell-list over all current positions (reading remote position pages
/// through the DSM is exactly the rebuild communication being measured).
std::vector<Pair> build_my_pairs(const Params& p, const System& sys,
                                 const double3* pos, NodeId me) {
  const auto all = std::span<const double3>(
      pos, static_cast<std::size_t>(p.num_molecules));
  auto grouped = build_pairs(p, sys, all);
  return std::move(grouped[me]);
}

}  // namespace

TmkResult run_tmk(core::DsmRuntime& rt, const Params& p, const System& sys,
                  bool optimized) {
  SDSM_REQUIRE(rt.num_nodes() == p.nprocs);
  const auto n = static_cast<std::size_t>(p.num_molecules);
  const std::uint32_t nprocs = p.nprocs;

  // Shared allocations (page aligned).
  auto x = rt.alloc_global<double3>(n);
  auto forces = rt.alloc_global<double3>(n);

  // Per-node interaction-list capacity, page aligned so one node's section
  // never shares a page with a neighbour's: sized from the initial list
  // with headroom for drift.
  auto initial_groups = build_pairs(p, sys, sys.pos0);
  std::size_t max_pairs = 16;
  for (const auto& g : initial_groups) max_pairs = std::max(max_pairs, g.size());
  const std::size_t cap =                // pairs per node; 25% drift headroom,
      (max_pairs + max_pairs / 4 + 511)  // rounded so each node's slice is
      / 512 * 512;                       // page aligned (512 = ints/page/2)
  auto list = rt.alloc_global<std::int32_t>(2 * cap * nprocs);
  const double interacting =
      interacting_fraction(initial_groups, p.num_molecules);
  initial_groups.clear();
  initial_groups.shrink_to_fit();

  // Compile the force kernel: parse, analyze, transform (Figure 1 -> 2).
  const auto compiled = compiler::transform(compiler::parse(kComputeForcesSource));
  SDSM_ASSERT(compiled.validates_inserted == 1);
  const compiler::Stmt& validate_stmt =
      *compiled.transformed.units[0].body[0];
  compiler::Bindings bindings;
  bindings["X"] = compiler::ArrayBinding{
      x.addr, sizeof(double3),
      rsd::ArrayLayout{{static_cast<std::int64_t>(n)}, true}};
  bindings["FORCES"] = compiler::ArrayBinding{
      forces.addr, sizeof(double3),
      rsd::ArrayLayout{{static_cast<std::int64_t>(n)}, true}};
  bindings["INTERACTION_LIST"] = compiler::ArrayBinding{
      list.addr, sizeof(std::int32_t),
      rsd::ArrayLayout{{2, static_cast<std::int64_t>(cap * nprocs)}, true}};

  // Node 0 seeds the shared position array before the timed section.
  rt.run([&](core::DsmNode& self) {
    if (self.id() == 0) {
      double3* xp = self.ptr(x);
      for (std::size_t i = 0; i < n; ++i) xp[i] = sys.pos0[i];
    }
    self.barrier();
  });

  rt.reset_stats();
  std::vector<double> partial_sum(nprocs, 0.0);
  const Timer wall;

  rt.run([&](core::DsmNode& self) {
    const NodeId me = self.id();
    const part::Range mine = sys.owner_range[me];
    const std::size_t my_off = static_cast<std::size_t>(me) * cap;
    double3* xp = self.ptr(x);
    double3* fp = self.ptr(forces);
    std::int32_t* lp = self.ptr(list);

    // Private accumulation array, full problem size (the paper notes this
    // memory cost of the TreadMarks version explicitly).
    std::vector<double3> local_forces(n);
    std::size_t list_n = 0;
    const rsd::ArrayLayout layout1{{static_cast<std::int64_t>(n)}, true};
    // Chunks of the force array this node contributes to.  With RCB
    // locality a node's pairs touch only neighbouring regions, so it skips
    // the pipeline rounds for distant chunks (otherwise every node would
    // rewrite every page of forces every step, which the paper's message
    // counts rule out).  Rebuilt with the interaction list.
    std::vector<bool> touches_chunk(nprocs, false);

    for (int step = 0; step < p.num_steps; ++step) {
      if (step % p.update_interval == 0) {
        // Rebuild the interaction list from current positions.
        if (optimized) {
          self.validate({core::direct_desc(
              x.addr, sizeof(double3), layout1,
              rsd::RegularSection::dense1d(0, p.num_molecules - 1),
              core::Access::kRead, 100)});
        }
        auto pairs = build_my_pairs(p, sys, xp, me);
        SDSM_ASSERT(pairs.size() <= cap);
        if (optimized) {
          self.validate({core::direct_desc(
              list.addr, sizeof(std::int32_t),
              rsd::ArrayLayout{{static_cast<std::int64_t>(2 * cap * nprocs)},
                               true},
              rsd::RegularSection::dense1d(
                  static_cast<std::int64_t>(2 * my_off),
                  static_cast<std::int64_t>(2 * (my_off + cap)) - 1),
              core::Access::kWriteAll, 101)});
        }
        std::fill(touches_chunk.begin(), touches_chunk.end(), false);
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          lp[2 * (my_off + k)] = pairs[k].a;
          lp[2 * (my_off + k) + 1] = pairs[k].b;
          touches_chunk[owner_of(sys, pairs[k].a)] = true;
          touches_chunk[owner_of(sys, pairs[k].b)] = true;
        }
        list_n = pairs.size();
        self.barrier();
      }

      // Force computation (the compiled kernel's loop).
      std::fill(local_forces.begin(), local_forces.end(), double3{});
      if (optimized) {
        compiler::Env env{
            {"MY_START", static_cast<long long>(my_off) + 1},
            {"MY_END", static_cast<long long>(my_off + list_n)}};
        self.validate(
            compiler::lower_validate(validate_stmt, bindings, env));
      }
      for (std::size_t k = 0; k < list_n; ++k) {
        const auto a = static_cast<std::size_t>(lp[2 * (my_off + k)]);
        const auto b = static_cast<std::size_t>(lp[2 * (my_off + k) + 1]);
        const double3 f = pair_force(xp[a], xp[b]);
        local_forces[a] += f;
        local_forces[b] -= f;
      }

      // Pipelined update of the shared forces in nprocs rounds: in round r
      // this node updates chunk (me + r) % nprocs.  Round 0 is the owner
      // initializing its own chunk (WRITE_ALL); later rounds accumulate
      // (READ&WRITE_ALL) and are skipped for chunks this node's pairs never
      // touch — with RCB locality most distant chunks are.
      for (std::uint32_t r = 0; r < nprocs; ++r) {
        const NodeId c = (me + r) % nprocs;
        const part::Range chunk = sys.owner_range[c];
        const bool participate =
            chunk.size() > 0 && (r == 0 || touches_chunk[c]);
        if (participate) {
          if (optimized) {
            self.validate({core::direct_desc(
                forces.addr, sizeof(double3), layout1,
                rsd::RegularSection::dense1d(chunk.begin, chunk.end - 1),
                r == 0 ? core::Access::kWriteAll : core::Access::kReadWriteAll,
                200 + c)});
          }
          if (r == 0) {
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              fp[i] = local_forces[static_cast<std::size_t>(i)];
            }
          } else {
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              fp[i] += local_forces[static_cast<std::size_t>(i)];
            }
          }
        }
        self.barrier();
      }

      // Position update for owned molecules.
      if (optimized && mine.size() > 0) {
        self.validate(
            {core::direct_desc(forces.addr, sizeof(double3), layout1,
                               rsd::RegularSection::dense1d(mine.begin,
                                                            mine.end - 1),
                               core::Access::kRead, 300),
             core::direct_desc(x.addr, sizeof(double3), layout1,
                               rsd::RegularSection::dense1d(mine.begin,
                                                            mine.end - 1),
                               core::Access::kReadWriteAll, 301)});
      }
      for (std::int64_t i = mine.begin; i < mine.end; ++i) {
        xp[i] += fp[i] * p.dt;
      }
      self.barrier();
    }

    // Order-insensitive digest over owned molecules (local pages only).
    partial_sum[me] = position_checksum(std::span<const double3>(
        xp + mine.begin, static_cast<std::size_t>(mine.size())));
  });

  TmkResult r;
  r.seconds = wall.elapsed_s();
  r.messages = rt.total_messages();
  r.megabytes = rt.total_megabytes();
  // The paper's "time spent scanning the indirection list": Read_indices
  // wall time, averaged per node.
  r.list_scan_seconds =
      static_cast<double>(rt.stats().scan_ns.get()) / 1e9 / nprocs;
  r.overhead_seconds = r.list_scan_seconds;
  r.interacting = interacting;
  for (const double s : partial_sum) r.checksum += s;
  return r;
}

}  // namespace sdsm::apps::moldyn
