// Moldyn: CHARMM-like molecular dynamics with a cutoff interaction list
// (Section 5.1 of the paper).
//
// Molecules live in a periodic box.  Every UPDATE_INTERVAL steps the
// interaction list — all pairs within the cutoff radius — is rebuilt from
// current positions; between rebuilds the list is the indirection array of
// the force loop.  As in the paper, molecules are partitioned with RCB; we
// additionally renumber molecules so each processor's molecules are
// contiguous (the spatial locality the paper attributes to RCB, made
// explicit in index space).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/apps/app_types.hpp"
#include "src/common/types.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::apps::moldyn {

struct Params {
  std::int64_t num_molecules = 4096;
  int num_steps = 24;
  int update_interval = 12;  ///< rebuild the list every this many steps
  double box = 16.0;         ///< cubic box edge
  double cutoff = 1.45;      ///< interaction radius
  double dt = 1e-4;          ///< position update scale
  std::uint64_t seed = 42;
  std::uint32_t nprocs = 8;
};

/// Pair force kernel shared by every variant.  The paper's Figure 1 lists
/// the schematic `force = x(n1) - x(n2)`, but its sequential times (267 s
/// for 16384 molecules x 40 steps on an SP2 node) imply a CHARMM-weight
/// non-bonded kernel of a few hundred flops per pair; this Lennard-Jones
/// style force restores that compute/communication ratio.
inline double3 pair_force(const double3& xa, const double3& xb) {
  const double3 d = xa - xb;
  const double r2 = d.norm2() + 1e-2;
  const double inv = 1.0 / r2;
  const double inv3 = inv * inv * inv;
  return d * (inv3 * (inv3 - 0.5));
}

/// One interacting pair (0-based molecule ids; owner of `a` computes it).
struct Pair {
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// Initial conditions after RCB partitioning and renumbering.
struct System {
  std::vector<double3> pos0;             ///< renumbered initial positions
  std::vector<part::Range> owner_range;  ///< contiguous molecules per node
};

/// Deterministic initialization: jittered lattice positions, RCB partition,
/// renumber by owner.
System make_system(const Params& p);

NodeId owner_of(const System& sys, std::int64_t molecule);

/// Builds all interacting pairs via cell lists: (a, b) with a < b and
/// |pos[a]-pos[b]| < cutoff, assigned to the owner of `a`.  Output is
/// grouped by owner (result[p] = pairs computed by node p), each group in
/// deterministic ascending order.
std::vector<std::vector<Pair>> build_pairs(const Params& p, const System& sys,
                                           std::span<const double3> pos);

/// Fraction of molecules that appear in at least one pair (the paper quotes
/// 31-53% for its default set).
double interacting_fraction(const std::vector<std::vector<Pair>>& pairs,
                            std::int64_t num_molecules);

/// Order-insensitive digest of final positions.
double position_checksum(std::span<const double3> pos);

/// Sequential reference (no runtime, no communication).
AppRunResult run_seq(const Params& p, const System& sys);

}  // namespace sdsm::apps::moldyn
