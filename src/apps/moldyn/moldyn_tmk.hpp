// Moldyn on the TreadMarks-style DSM, in the paper's two configurations:
//
//   base      — plain shared-memory program: demand paging does all the
//               communication, one page per fault (Section 5.1's
//               "Tmk base" rows);
//   optimized — compiler-transformed program: Validate aggregates the
//               fetches for the irregular accesses, prefetches the regular
//               ones, and runs the pipelined force reduction with
//               READ&WRITE_ALL whole-page shipping ("Tmk optimized").
//
// The Validate descriptors for the force loop are not hand-written: the
// mini-Fortran ComputeForces kernel is run through the compiler front-end
// (section analysis + transform) and the resulting Validate statement is
// lowered to runtime descriptors with per-node loop bounds — the same
// tool path the paper uses (Parascope -> TreadMarks).
#pragma once

#include "src/apps/moldyn/moldyn_common.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::apps::moldyn {

struct TmkResult : AppRunResult {
  double list_scan_seconds = 0;  ///< Validate time spent in Read_indices
  double interacting = 0;        ///< fraction of molecules interacting
};

/// Runs moldyn on `rt` (which must have p.nprocs nodes).  The runtime's
/// statistics are reset at the start of the timed section.
TmkResult run_tmk(core::DsmRuntime& rt, const Params& p, const System& sys,
                  bool optimized);

/// The mini-Fortran source of the force-computation subroutine fed to the
/// compiler front-end (the repository's Figure 1).
extern const char* const kComputeForcesSource;

}  // namespace sdsm::apps::moldyn
