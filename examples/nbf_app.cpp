// NBF end to end: the GROMOS non-bonded-force kernel with static partner
// lists, across all sdsm::api backends, including the false-sharing
// configuration (the misaligned molecule count).
//
// Build & run:   ./build/nbf_app [--transport=inproc|socket]
//                                [--backend=chaos|tmk-base|tmk-optimized]
#include <cstdio>
#include <iostream>

#include "src/apps/nbf/nbf_kernel.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/options.hpp"

using namespace sdsm;
using namespace sdsm::apps;

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  for (const std::int64_t molecules : {8192, 8000}) {
    nbf::Params p;
    p.molecules = molecules;
    p.partners = 16;
    p.timed_steps = 6;
    p.nprocs = 4;

    std::printf("nbf: %lld molecules (%s blocks), %d partners, %u nodes\n",
                static_cast<long long>(molecules),
                molecules % (512 * p.nprocs) == 0 ? "page-aligned"
                                                  : "misaligned",
                p.partners, p.nprocs);

    const auto seq = nbf::run_seq(p);
    harness::Table table("nbf variants");

    api::BackendOptions opts = nbf::default_options();
    opts.region_bytes = 16u << 20;
    opts.transport = opt.transport;
    for (const api::Backend b : opt.backends) {
      const auto r = nbf::run(b, p, opts);
      table.add(harness::Row{
          "timed steps", api::backend_name(b), r.seconds,
          harness::speedup(seq.seconds, r.seconds), r.messages, r.megabytes,
          r.overhead_seconds,
          checksum_close(r.checksum, seq.checksum) ? "checksum OK"
                                                   : "CHECKSUM MISMATCH",
          seq.seconds});
    }
    table.print(std::cout);
  }
  return 0;
}
