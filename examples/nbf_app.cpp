// NBF end to end: the GROMOS non-bonded-force kernel with static partner
// lists, across all variants, including the false-sharing configuration.
//
// Build & run:   ./build/examples/nbf_app
#include <cstdio>
#include <iostream>

#include "src/apps/nbf/nbf_chaos.hpp"
#include "src/apps/nbf/nbf_common.hpp"
#include "src/apps/nbf/nbf_tmk.hpp"
#include "src/harness/experiment.hpp"

using namespace sdsm;
using namespace sdsm::apps;

int main() {
  for (const std::int64_t molecules : {8192, 8000}) {
    nbf::Params p;
    p.molecules = molecules;
    p.partners = 16;
    p.timed_steps = 6;
    p.nprocs = 4;

    std::printf("nbf: %lld molecules (%s blocks), %d partners, %u nodes\n",
                static_cast<long long>(molecules),
                molecules % (512 * p.nprocs) == 0 ? "page-aligned"
                                                  : "misaligned",
                p.partners, p.nprocs);

    const auto seq = nbf::run_seq(p);
    harness::Table table("nbf variants");

    core::DsmConfig cfg;
    cfg.num_nodes = p.nprocs;
    cfg.region_bytes = 16u << 20;
    for (const bool optimized : {false, true}) {
      core::DsmRuntime rt(cfg);
      const auto r = nbf::run_tmk(rt, p, optimized);
      table.add(harness::Row{
          "timed steps", optimized ? "Tmk optimized" : "Tmk base", r.seconds,
          harness::speedup(seq.seconds, r.seconds), r.messages, r.megabytes,
          r.overhead_seconds,
          checksum_close(r.checksum, seq.checksum) ? "checksum OK"
                                                   : "CHECKSUM MISMATCH"});
    }
    {
      chaos::ChaosRuntime rt(p.nprocs);
      const auto r = nbf::run_chaos(rt, p);
      table.add(harness::Row{
          "timed steps", "CHAOS", r.seconds,
          harness::speedup(seq.seconds, r.seconds), r.messages, r.megabytes,
          r.overhead_seconds,
          checksum_close(r.checksum, seq.checksum) ? "checksum OK"
                                                   : "CHECKSUM MISMATCH"});
    }
    table.print(std::cout);
  }
  return 0;
}
