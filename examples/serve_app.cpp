// serve_app: drive a persistent KernelServer over its socket control
// protocol — the serving layer end to end in one binary.  The app starts a
// server (warm engines, bounded queue, schedule cache), connects a socket
// client to its 127.0.0.1 control port, and pushes a mixed job stream:
// moldyn (structure-cacheable — the second round replays cached inspector
// schedules executor-only) interleaved with bfs (frontier-driven, rebuilt
// every step, never cached), on the Tmk-optimized and CHAOS backends.
//
// Build & run:   ./build/serve_app [--transport=inproc|socket]
//                                  [--schedule=serial|tournament]
//                                  [--coherence=static|adaptive]
//                                  [--nprocs=N] [--smoke]
//
// --smoke is the CI mode: every check (completions, bit-exact repeat
// checksums, hit-path inspector runs = 0, zero queue leaks at shutdown)
// turns into a process exit code instead of a table footnote.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/api/backend.hpp"
#include "src/harness/options.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"

using namespace sdsm;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  const bool smoke = opt.flag("smoke");

  serve::ServerConfig cfg;
  cfg.nprocs = 4;
  if (const auto v = opt.value("nprocs")) {
    cfg.nprocs = static_cast<std::uint32_t>(std::atoi(v->c_str()));
  }
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.listen = true;
  serve::KernelServer server(cfg);
  std::printf("serve_app: %u-node server on 127.0.0.1:%d (%zu workers, "
              "queue %zu)\n\n",
              cfg.nprocs, server.port(), cfg.workers, cfg.queue_capacity);

  serve::Client client = serve::Client::connect_local(server.port());

  // Two rounds of the same four jobs: the second round's moldyn jobs hit
  // the schedule cache; bfs stays executor-fresh every time (its frontier
  // builders are stateful, so it is not structure-cacheable).
  std::vector<serve::JobRequest> stream;
  for (int round = 0; round < 2; ++round) {
    for (const api::Backend b :
         {api::Backend::kTmkOptimized, api::Backend::kChaos}) {
      serve::JobRequest m;
      m.kernel = "moldyn";
      m.graph.num_elements = 512;
      m.graph.num_steps = 8;
      m.graph.update_interval = 4;
      m.backend = b;
      m.schedule = opt.schedule;
      m.coherence = opt.coherence;
      m.transport = opt.transport;
      stream.push_back(m);

      serve::JobRequest g;
      g.kernel = "bfs";
      g.graph.num_elements = 1024;
      g.graph.num_steps = 8;
      g.graph.chords_per_vertex = 2;
      g.backend = b;
      g.coherence = opt.coherence;
      g.transport = opt.transport;
      stream.push_back(g);
    }
  }

  std::vector<std::uint64_t> ids;
  for (const serve::JobRequest& r : stream) {
    const serve::SubmitResult sub = client.submit(r);
    check(sub.accepted, "job admitted");
    if (!sub.accepted) {
      std::printf("  rejected: %s\n", sub.reason.c_str());
      continue;
    }
    ids.push_back(sub.job_id);
  }

  std::vector<serve::JobStats> stats;
  for (const std::uint64_t id : ids) stats.push_back(client.wait(id));

  std::printf("%-4s %-9s %-14s %9s %7s %6s %10s %12s\n", "job", "kernel",
              "backend", "insp.runs", "cache", "ok", "messages", "checksum");
  for (const serve::JobStats& s : stats) {
    std::printf("%-4llu %-9s %-14s %9lld %7s %6s %10llu %12.4f\n",
                static_cast<unsigned long long>(s.job_id), s.kernel.c_str(),
                api::backend_name(s.backend),
                static_cast<long long>(s.inspector_runs),
                s.cache_hit ? "hit" : (s.cache_eligible ? "miss" : "-"),
                s.ok ? "yes" : "NO",
                static_cast<unsigned long long>(s.messages), s.checksum);
    check(s.ok, "job completed ok");
  }

  // Round 2 must reproduce round 1 bit-exactly, job for job, and its
  // moldyn jobs must have run executor-only.
  const std::size_t half = stats.size() / 2;
  for (std::size_t i = 0; i + half < stats.size(); ++i) {
    const serve::JobStats& first = stats[i];
    const serve::JobStats& repeat = stats[i + half];
    check(repeat.checksum == first.checksum, "repeat checksum bit-exact");
    if (repeat.kernel == "moldyn") {
      check(repeat.cache_hit, "repeat moldyn job hit the schedule cache");
      check(repeat.inspector_runs == 0, "hit-path inspector runs == 0");
    } else {
      check(!repeat.cache_eligible, "bfs stays cache-ineligible");
    }
  }

  const serve::ServerStats st = client.server_stats();
  std::printf("\nserver: %llu submitted, %llu completed, %llu failed, "
              "%llu rejected, cache %llu hits / %llu misses\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_misses));
  check(st.completed == stream.size(), "every submitted job completed");
  check(st.failed == 0, "no job failed");
  check(st.queue_depth == 0 && st.in_flight == 0,
        "zero queue leaks after the stream drained");

  if (failures > 0) {
    std::printf("\nserve_app: %d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nserve_app: all checks passed%s\n",
              smoke ? " (smoke mode)" : "");
  return 0;
}
