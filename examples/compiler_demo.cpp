// Compiler demo: reproduces the paper's Figure 1 -> Figure 2 source-to-
// source transformation on the moldyn and nbf kernels.
//
// Build & run:   ./build/compiler_demo
#include <cstdio>

#include "src/compiler/parser.hpp"
#include "src/compiler/pretty.hpp"
#include "src/compiler/section_analysis.hpp"
#include "src/compiler/transform.hpp"

using namespace sdsm::compiler;

namespace {

void demo(const char* title, const char* source) {
  std::printf("=============================================================\n");
  std::printf("%s\n", title);
  std::printf("=============================================================\n");
  std::printf("--- original (Figure 1) ---\n%s\n", source);

  const SourceFile file = parse(source);
  const SymbolTable syms(file.units[0]);
  for (const auto& stmt : file.units[0].body) {
    if (stmt->kind != StmtKind::kDo) continue;
    const LoopSummary summary = analyze_loop(*stmt, syms);
    std::printf("--- access analysis ---\n");
    for (const AccessInfo& a : summary.accesses) {
      std::printf("  %-18s %s%s", a.array.c_str(),
                  a.indirect ? "INDIRECT via " : "DIRECT",
                  a.indirect ? a.ind_array.c_str() : "");
      std::printf("  section=[");
      for (std::size_t d = 0; d < a.section.size(); ++d) {
        if (d > 0) std::printf(", ");
        std::printf("%s:%s", print_expr(*a.section[d].lower).c_str(),
                    print_expr(*a.section[d].upper).c_str());
        if (a.section[d].stride != 1) {
          std::printf(":%lld", static_cast<long long>(a.section[d].stride));
        }
      }
      std::printf("]  access=%s\n", a.access_string().c_str());
    }
  }

  const TransformResult result = transform(file);
  std::printf("--- transformed (Figure 2) ---\n%s\n",
              print_file(result.transformed).c_str());
  for (const auto& red : result.reductions) {
    std::printf("  [reduction privatized: %s -> %s in %s]\n",
                red.shared_array.c_str(), red.private_array.c_str(),
                red.unit.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  demo("moldyn force computation",
       "SUBROUTINE COMPUTEFORCES\n"
       "  SHARED REAL X(16384), FORCES(16384)\n"
       "  SHARED INTEGER INTERACTION_LIST(2, 100000)\n"
       "  INTEGER I, N1, N2\n"
       "  REAL FORCE\n"
       "DO I = 1, NUM_INTERACTIONS\n"
       "  N1 = INTERACTION_LIST(1, I)\n"
       "  N2 = INTERACTION_LIST(2, I)\n"
       "  FORCE = X(N1) - X(N2)\n"
       "  FORCES(N1) = FORCES(N1) + FORCE\n"
       "  FORCES(N2) = FORCES(N2) - FORCE\n"
       "ENDDO\n"
       "END\n");

  demo("nbf partner-list kernel",
       "SUBROUTINE NBFORCES\n"
       "  SHARED REAL X(65536), FORCES(65536)\n"
       "  SHARED INTEGER PARTNERS(100, 65536)\n"
       "  INTEGER I, J, Q\n"
       "  REAL D\n"
       "DO I = MY_START, MY_END\n"
       "  DO J = 1, 100\n"
       "    Q = PARTNERS(J, I)\n"
       "    D = X(I) - X(Q)\n"
       "    FORCES(I) = FORCES(I) + D\n"
       "    FORCES(Q) = FORCES(Q) - D\n"
       "  ENDDO\n"
       "ENDDO\n"
       "END\n");

  demo("dense initialization (WRITE_ALL upgrade)",
       "SUBROUTINE CLEAR\n"
       "  SHARED REAL A(8192)\n"
       "DO I = 1, N\n"
       "  A(I) = 0\n"
       "ENDDO\n"
       "END\n");
  return 0;
}
