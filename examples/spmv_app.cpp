// SPMV end to end, in either deployment mode — and, with --verify, both
// at once: the process-mode run (spawned workers, cross-process page
// faults) is checked bit-exactly against the threaded socket run of the
// identical job, the wire-parity claim of sdsm::proc, with a nonzero
// exit on any mismatch (CI's proc-smoke gate).
//
// Build & run:   ./build/spmv_app [--transport=inproc|socket]
//                                 [--backend=tmk-base|tmk-optimized|chaos]
//                                 [--mode=threads|processes] [--verify]
//                                 [--coherence=static|adaptive]
#include <cmath>
#include <cstdio>

#include "src/api/api.hpp"
#include "src/apps/spmv/spmv.hpp"
#include "src/harness/options.hpp"
#include "src/proc/proc.hpp"
#include "src/serve/workloads.hpp"

using namespace sdsm;

namespace {

constexpr std::uint32_t kNprocs = 4;

serve::JobRequest job_for(api::Backend b, coherence::CoherencePolicy c) {
  serve::JobRequest req;
  req.kernel = "spmv";
  req.graph.num_elements = 2048;
  req.graph.num_steps = 4;
  req.backend = b;
  req.coherence = c;
  req.transport = net::TransportKind::kSocket;
  return req;
}

/// Threaded run of exactly the job the workers execute: same prepare_job
/// materialization, same socket fabric, nodes as threads.
api::KernelResult run_threaded(const serve::JobRequest& req) {
  const serve::PreparedJob prepared = serve::prepare_job(req, kNprocs);
  api::BackendOptions options = prepared.base_options;
  options.transport = net::TransportKind::kSocket;
  options.round_schedule = req.schedule;
  options.cross_step_prefetch = req.cross_step_prefetch;
  options.coherence = req.coherence;
  return api::run_kernel(req.backend, prepared.spec, options);
}

void print_row(const char* label, const api::KernelResult& r) {
  std::printf("%-24s %14.6f %10llu %12llu %8.2f\n", label, r.checksum,
              static_cast<unsigned long long>(r.messages),
              static_cast<unsigned long long>(r.bytes), r.barriers_per_step);
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  const bool verify = opt.flag("verify");

  std::printf("%-24s %14s %10s %12s %8s\n", "run", "checksum", "messages",
              "bytes", "barr/st");
  bool failed = false;
  for (const api::Backend b : opt.backends) {
    if (b == api::Backend::kChaos) continue;  // threads-only backend
    const serve::JobRequest req = job_for(b, opt.coherence);
    char label[64];

    api::KernelResult procr{};
    if (verify || opt.mode == DeployMode::kProcesses) {
      proc::LaunchOptions lopt;
      lopt.nprocs = kNprocs;
      const proc::LaunchResult lr = proc::run_job(req, lopt);
      if (!lr.ok) {
        std::fprintf(stderr, "%s processes: %s\n", api::backend_name(b),
                     lr.error.c_str());
        failed = true;
        continue;
      }
      procr = lr.result;
      std::snprintf(label, sizeof(label), "%s processes",
                    api::backend_name(b));
      print_row(label, procr);
    }
    if (verify || opt.mode == DeployMode::kThreads) {
      const api::KernelResult tr = run_threaded(req);
      std::snprintf(label, sizeof(label), "%s threads",
                    api::backend_name(b));
      print_row(label, tr);
      if (verify) {
        const bool match = procr.checksum == tr.checksum &&
                           procr.messages == tr.messages &&
                           procr.bytes == tr.bytes &&
                           procr.barriers_per_step == tr.barriers_per_step &&
                           procr.steps_run == tr.steps_run &&
                           procr.rebuilds == tr.rebuilds;
        std::printf("%-24s %s\n", "  parity",
                    match ? "exact match" : "MISMATCH");
        if (!match) failed = true;
      }
    }
  }
  return failed ? 1 : 0;
}
