// Quickstart: the smallest useful sdsm program.
//
// Four simulated processors share an array through the TreadMarks-style
// DSM.  Node 0 initializes it; everyone computes a partial sum of the
// whole array (demand paging fetches remote modifications); a lock guards
// a shared accumulator; barriers order the phases.  Finally the optimized
// path is shown: Validate prefetches the whole array in one aggregated
// message exchange instead of one page at a time.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "src/core/dsm.hpp"

using namespace sdsm;
using namespace sdsm::core;

int main() {
  DsmConfig cfg;
  cfg.num_nodes = 4;
  cfg.region_bytes = 8u << 20;
  DsmRuntime rt(cfg);

  constexpr std::size_t kN = 16 * 1024;  // 32 pages of doubles
  auto data = rt.alloc_global<double>(kN);
  auto total = rt.alloc_global<double>(1);

  rt.run([&](DsmNode& self) {
    double* d = self.ptr(data);

    // Phase 1: node 0 initializes the shared array.
    if (self.id() == 0) {
      for (std::size_t i = 0; i < kN; ++i) d[i] = 1.0;
    }
    self.barrier();

    // Phase 2: everyone sums a quarter; a lock guards the accumulator.
    const std::size_t chunk = kN / self.num_nodes();
    const std::size_t lo = self.id() * chunk;
    double partial = 0;
    for (std::size_t i = lo; i < lo + chunk; ++i) partial += d[i];

    self.lock_acquire(0);
    *self.ptr(total) += partial;
    self.lock_release(0);
    self.barrier();

    if (self.id() == 0) {
      std::printf("sum = %.0f (expected %zu)\n", *self.ptr(total), kN);
    }
    self.barrier();

    // Phase 3: the compiler-optimized idiom — prefetch the array with one
    // aggregated request per producer before scanning it.
    self.validate({direct_desc(
        data.addr, sizeof(double),
        rsd::ArrayLayout{{static_cast<std::int64_t>(kN)}, true},
        rsd::RegularSection::dense1d(0, kN - 1), Access::kRead, 0)});
    double check = 0;
    for (std::size_t i = 0; i < kN; ++i) check += d[i];
    self.barrier();
    if (self.id() == 1) {
      std::printf("validated scan on node 1: sum = %.0f\n", check);
    }
  });

  std::printf("messages=%llu data=%.3f MB read_faults=%llu "
              "pages_prefetched=%llu\n",
              static_cast<unsigned long long>(rt.total_messages()),
              rt.total_megabytes(),
              static_cast<unsigned long long>(rt.stats().read_faults.get()),
              static_cast<unsigned long long>(
                  rt.stats().pages_prefetched.get()));
  return 0;
}
