// Quickstart: write an irregular kernel once, run it on every runtime.
//
// The kernel below is a miniature of the paper's applications: elements
// hold a value, an irregular neighbour list says who interacts with whom,
// and each step every pair exchanges a contribution before owners relax
// their values.  Describing it as an api::KernelSpec is all that is
// needed — the CHAOS backend derives the inspector/executor schedules, the
// TreadMarks backends run it over the DSM (base: demand paging; optimized:
// compiler-driven Validate aggregation), and the message counts stay
// comparable because every backend shares one network fabric.
//
// Build & run:   ./build/quickstart [--transport=inproc|socket]
//                                   [--backend=chaos|tmk-base|tmk-optimized]
#include <cstdio>

#include "src/api/api.hpp"
#include "src/harness/options.hpp"

using namespace sdsm;

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  api::BackendOptions options;
  options.transport = opt.transport;

  constexpr std::int64_t kN = 4096;        // elements
  constexpr std::uint32_t kNodes = 4;
  constexpr std::size_t kNeighbors = 4;    // refs per work item

  api::KernelSpec<double> spec;
  spec.name = "quickstart";
  spec.num_elements = kN;
  spec.owner_range = part::block_partition(kN, kNodes);
  spec.initial_state.resize(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    spec.initial_state[static_cast<std::size_t>(i)] =
        static_cast<double>(i % 97);
  }
  spec.num_steps = 8;
  spec.warmup_steps = 1;     // one-time inspector / list scan lands here
  spec.update_interval = 0;  // static neighbour structure
  spec.max_items_per_node = kN / kNodes;
  spec.max_refs_per_node = static_cast<std::int64_t>(kNeighbors) * kN / kNodes;

  // Each owned element is one work item: a CSR row naming itself plus
  // three scattered neighbours (an irregular, statically known access
  // pattern).  Rows may be any length; this kernel's happen to be uniform,
  // so finish_uniform derives the offsets.
  spec.build_items = [](api::IrregularNode& node, std::span<const double>) {
    const part::Range mine = part::block_partition(kN, kNodes)[node.id()];
    api::WorkItems items;
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      items.refs.push_back(i);
      items.refs.push_back((i * 7 + 1) % kN);
      items.refs.push_back((i * 13 + 5) % kN);
      items.refs.push_back((i + kN / 2) % kN);
    }
    items.finish_uniform(kNeighbors);
    return items;
  };

  // The per-step body: pairwise exchange between the item's element and
  // each neighbour.  Indices are already localized by the backend.
  spec.compute = [](api::IrregularNode&, const api::KernelCtx<double>& ctx) {
    for (std::size_t k = 0; k < ctx.num_items(); ++k) {
      const auto row = ctx.refs_of(k);
      const auto self = static_cast<std::size_t>(row[0]);
      for (std::size_t j = 1; j < row.size(); ++j) {
        const auto nb = static_cast<std::size_t>(row[j]);
        const double d = 0.125 * (ctx.x[self] - ctx.x[nb]);
        ctx.f[self] -= d;
        ctx.f[nb] += d;
      }
    }
  };

  // Owner relaxation from the reduced contributions.
  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.5 * f[i];
  };

  spec.checksum = [](std::span<const double> x) {
    double s = 0;
    for (const double v : x) s += v;
    return s;
  };

  std::printf("%-14s %12s %10s %10s %12s\n", "backend", "checksum",
              "messages", "data(MB)", "overhead(s)");
  for (const api::Backend b : opt.backends) {
    const api::KernelResult r = api::run_kernel(b, spec, options);
    std::printf("%-14s %12.3f %10llu %10.3f %12.6f\n", api::backend_name(b),
                r.checksum, static_cast<unsigned long long>(r.messages),
                r.megabytes, r.overhead_seconds);
  }
  std::printf("\nSame kernel, three runtimes; checksums agree, message\n"
              "counts show demand paging vs aggregation vs inspector/"
              "executor.\n");
  return 0;
}
