// Quickstart: write an irregular kernel once, run it on every runtime —
// and in both deployment modes.
//
// The kernel (src/apps/quickstart) is a miniature of the paper's
// applications: elements hold a value, an irregular neighbour list says
// who interacts with whom, and each step every pair exchanges a
// contribution before owners relax their values.  Describing it as an
// api::KernelSpec is all that is needed — the CHAOS backend derives the
// inspector/executor schedules, the TreadMarks backends run it over the
// DSM (base: demand paging; optimized: compiler-driven Validate
// aggregation), and the message counts stay comparable because every
// backend shares one network fabric.
//
// With --mode=processes the Tmk rows run as real spawned worker
// processes (sdsm::proc): one process per node, cross-process page
// faults, results aggregated from the per-worker reports.  CHAOS is
// threads-only and is skipped in that mode.
//
// Build & run:   ./build/quickstart [--transport=inproc|socket]
//                                   [--backend=chaos|tmk-base|tmk-optimized|hybrid]
//                                   [--mode=threads|processes]
//                                   [--coherence=static|adaptive]
#include <cstdio>

#include "src/api/api.hpp"
#include "src/apps/quickstart/quickstart.hpp"
#include "src/harness/options.hpp"
#include "src/proc/proc.hpp"

using namespace sdsm;

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  const apps::quickstart::Params params;  // the defaults: 4096 x 4 nodes

  api::BackendOptions options = apps::quickstart::default_options();
  options.transport = opt.transport;
  options.mode = opt.mode;
  options.coherence = opt.coherence;

  serve::JobRequest req;  // the process-mode job description
  req.kernel = "quickstart";
  req.transport = net::TransportKind::kSocket;
  req.coherence = opt.coherence;

  std::printf("%-14s %12s %10s %10s %12s\n", "backend", "checksum",
              "messages", "data(MB)", "overhead(s)");
  bool failed = false;
  for (const api::Backend b : opt.backends) {
    api::KernelResult r;
    if (options.mode == DeployMode::kProcesses) {
      if (b == api::Backend::kChaos) {
        std::printf("%-14s %12s\n", api::backend_name(b),
                    "(threads-only)");
        continue;
      }
      proc::LaunchOptions lopt;
      lopt.nprocs = params.nprocs;
      req.backend = b;
      const proc::LaunchResult lr = proc::run_job(req, lopt);
      if (!lr.ok) {
        std::fprintf(stderr, "%s: %s\n", api::backend_name(b),
                     lr.error.c_str());
        failed = true;
        continue;
      }
      r = lr.result;
    } else {
      r = apps::quickstart::run(b, params, options);
    }
    std::printf("%-14s %12.3f %10llu %10.3f %12.6f\n", api::backend_name(b),
                r.checksum, static_cast<unsigned long long>(r.messages),
                r.megabytes, r.overhead_seconds);
  }
  if (options.mode == DeployMode::kProcesses) {
    std::printf("\nEach row above ran as %u real worker processes with "
                "cross-process page\nfaults; counts match the threaded "
                "socket run exactly.\n", params.nprocs);
  } else {
    std::printf("\nSame kernel, one spec per runtime; checksums agree, message\n"
                "counts show demand paging vs aggregation vs inspector/"
                "executor.\n");
  }
  return failed ? 1 : 0;
}
