// Moldyn end to end: sequential reference plus every sdsm::api backend on
// one scaled workload — the domain scenario the paper's introduction
// motivates (CHARMM-style non-bonded force computation with a periodically
// rebuilt interaction list), written once and swept over backends.
//
// Build & run:   ./build/moldyn_app [--transport=inproc|socket]
//                                   [--backend=chaos|tmk-base|tmk-optimized]
#include <cstdio>
#include <iostream>

#include "src/apps/moldyn/moldyn_kernel.hpp"
#include "src/harness/experiment.hpp"
#include "src/harness/options.hpp"

using namespace sdsm;
using namespace sdsm::apps;

int main(int argc, char** argv) {
  const harness::Options opt = harness::Options::parse(argc, argv);
  moldyn::Params p;
  p.num_molecules = 2048;
  p.num_steps = 12;
  p.update_interval = 6;
  p.nprocs = 4;

  std::printf("moldyn: %lld molecules, %d steps, list rebuilt every %d, "
              "%u nodes\n\n",
              static_cast<long long>(p.num_molecules), p.num_steps,
              p.update_interval, p.nprocs);

  const moldyn::System sys = moldyn::make_system(p);
  const auto seq = moldyn::run_seq(p, sys);
  std::printf("sequential: %.3f s, checksum %.6f\n\n", seq.seconds,
              seq.checksum);

  harness::Table table("moldyn variants");
  api::BackendOptions opts = moldyn::default_options();
  opts.region_bytes = 16u << 20;
  opts.transport = opt.transport;

  for (const api::Backend b : opt.backends) {
    const auto r = moldyn::run(b, p, sys, opts);
    std::printf("%-14s: checksum %s\n", api::backend_name(b),
                checksum_close(r.checksum, seq.checksum) ? "OK" : "MISMATCH");
    table.add(harness::Row{"2048 molecules", api::backend_name(b), r.seconds,
                           harness::speedup(seq.seconds, r.seconds),
                           r.messages, r.megabytes, r.overhead_seconds, "",
                           seq.seconds});
  }

  std::printf("\n");
  table.print(std::cout);
  return 0;
}
