// Moldyn end to end: sequential reference, base TreadMarks, compiler-
// optimized TreadMarks, and CHAOS, on one scaled workload — the domain
// scenario the paper's introduction motivates (CHARMM-style non-bonded
// force computation with a periodically rebuilt interaction list).
//
// Build & run:   ./build/examples/moldyn_app
#include <cstdio>
#include <iostream>

#include "src/apps/moldyn/moldyn_chaos.hpp"
#include "src/apps/moldyn/moldyn_common.hpp"
#include "src/apps/moldyn/moldyn_tmk.hpp"
#include "src/harness/experiment.hpp"

using namespace sdsm;
using namespace sdsm::apps;

int main() {
  moldyn::Params p;
  p.num_molecules = 2048;
  p.num_steps = 12;
  p.update_interval = 6;
  p.nprocs = 4;

  std::printf("moldyn: %lld molecules, %d steps, list rebuilt every %d, "
              "%u nodes\n\n",
              static_cast<long long>(p.num_molecules), p.num_steps,
              p.update_interval, p.nprocs);

  const moldyn::System sys = moldyn::make_system(p);
  const auto seq = moldyn::run_seq(p, sys);
  std::printf("sequential: %.3f s, checksum %.6f\n", seq.seconds,
              seq.checksum);

  harness::Table table("moldyn variants");

  core::DsmConfig cfg;
  cfg.num_nodes = p.nprocs;
  cfg.region_bytes = 16u << 20;
  {
    core::DsmRuntime rt(cfg);
    const auto r = moldyn::run_tmk(rt, p, sys, /*optimized=*/false);
    std::printf("Tmk base     : checksum %s\n",
                checksum_close(r.checksum, seq.checksum) ? "OK" : "MISMATCH");
    table.add(harness::Row{"2048 molecules", "Tmk base", r.seconds,
                           harness::speedup(seq.seconds, r.seconds),
                           r.messages, r.megabytes, r.overhead_seconds, ""});
  }
  {
    core::DsmRuntime rt(cfg);
    const auto r = moldyn::run_tmk(rt, p, sys, /*optimized=*/true);
    std::printf("Tmk optimized: checksum %s\n",
                checksum_close(r.checksum, seq.checksum) ? "OK" : "MISMATCH");
    table.add(harness::Row{"2048 molecules", "Tmk optimized", r.seconds,
                           harness::speedup(seq.seconds, r.seconds),
                           r.messages, r.megabytes, r.overhead_seconds, ""});
  }
  {
    chaos::ChaosRuntime rt(p.nprocs);
    const auto r = moldyn::run_chaos(rt, p, sys);
    std::printf("CHAOS        : checksum %s\n",
                checksum_close(r.checksum, seq.checksum) ? "OK" : "MISMATCH");
    table.add(harness::Row{"2048 molecules", "CHAOS", r.seconds,
                           harness::speedup(seq.seconds, r.seconds),
                           r.messages, r.megabytes, r.overhead_seconds, ""});
  }

  std::printf("\n");
  table.print(std::cout);
  return 0;
}
