// CHAOS demo: partition -> translation table -> inspector -> executor on a
// synthetic irregular gather/scatter, showing the schedule structure and
// the effect of the translation-table storage policy.
//
// Build & run:   ./build/chaos_demo
#include <cstdio>
#include <numeric>

#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/chaos/translation_table.hpp"
#include "src/common/rng.hpp"
#include "src/partition/partition.hpp"

using namespace sdsm;
using namespace sdsm::chaos;

int main() {
  constexpr std::int64_t kN = 4096;
  constexpr std::uint32_t kProcs = 4;

  std::vector<NodeId> owner(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    owner[static_cast<std::size_t>(i)] = part::block_owner(i, kN, kProcs);
  }

  for (const TableKind kind :
       {TableKind::kReplicated, TableKind::kDistributed, TableKind::kPaged}) {
    const auto table = TranslationTable::build(owner, kProcs, kind);
    const char* kind_name = kind == TableKind::kReplicated ? "replicated"
                            : kind == TableKind::kDistributed ? "distributed"
                                                              : "paged";
    std::printf("--- translation table: %s (%zu bytes/node) ---\n", kind_name,
                table.bytes_per_node(0));

    ChaosRuntime rt(kProcs);
    std::vector<double> node_sum(kProcs, 0.0);
    rt.run([&](ChaosNode& node) {
      const auto range = part::block_partition(kN, kProcs)[node.id()];
      std::vector<double> local(static_cast<std::size_t>(range.size()));
      for (std::int64_t i = 0; i < range.size(); ++i) {
        local[static_cast<std::size_t>(i)] =
            static_cast<double>(range.begin + i);
      }

      // Irregular references: 200 random elements anywhere.
      Rng rng(1234 + node.id());
      std::vector<std::int64_t> refs;
      for (int k = 0; k < 200; ++k) {
        refs.push_back(static_cast<std::int64_t>(rng.next_below(kN)));
      }

      InspectorStats stats;
      const Schedule sched = build_schedule(node, refs, table, &stats);
      if (node.id() == 0) {
        std::printf("  node 0: %lld refs, %lld distinct remote, "
                    "%lld remote table lookups, %d ghosts\n",
                    static_cast<long long>(stats.references),
                    static_cast<long long>(stats.distinct_remote),
                    static_cast<long long>(stats.table_lookups_sent),
                    sched.num_ghosts);
      }

      std::vector<double> ghosts(static_cast<std::size_t>(sched.num_ghosts));
      gather<double>(node, sched, local, ghosts);

      const auto localized =
          localize_references(node.id(), refs, table, sched);
      double sum = 0;
      for (const std::int32_t lr : localized) {
        sum += static_cast<std::size_t>(lr) < local.size()
                   ? local[static_cast<std::size_t>(lr)]
                   : ghosts[static_cast<std::size_t>(lr) - local.size()];
      }
      node_sum[node.id()] = sum;
      node.barrier();
    });

    const double total =
        std::accumulate(node_sum.begin(), node_sum.end(), 0.0);
    std::printf("  gathered-value total: %.0f; fabric: %llu messages, "
                "%.4f MB\n\n",
                total,
                static_cast<unsigned long long>(rt.total_messages()),
                rt.total_megabytes());
  }
  return 0;
}
