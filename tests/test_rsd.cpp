// Tests for regular section descriptors: counting, enumeration order,
// layout flattening, page-set computation, and section algebra.  Includes
// property sweeps over randomly generated sections.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.hpp"
#include "src/rsd/regular_section.hpp"

namespace sdsm::rsd {
namespace {

constexpr std::size_t kPage = 4096;

TEST(Dim, CountAndContains) {
  Dim d{2, 10, 2};
  EXPECT_EQ(d.count(), 5);  // 2 4 6 8 10
  EXPECT_TRUE(d.contains(2));
  EXPECT_TRUE(d.contains(10));
  EXPECT_FALSE(d.contains(3));
  EXPECT_FALSE(d.contains(12));
  EXPECT_FALSE(d.contains(0));
}

TEST(Dim, EmptyWhenUpperBelowLower) {
  Dim d{5, 4, 1};
  EXPECT_EQ(d.count(), 0);
}

TEST(RegularSection, CountMultiDim) {
  RegularSection s({Dim{0, 1, 1}, Dim{0, 9, 1}});
  EXPECT_EQ(s.count(), 20);
}

TEST(RegularSection, Dense1dFactory) {
  auto s = RegularSection::dense1d(3, 7);
  EXPECT_EQ(s.rank(), 1u);
  EXPECT_EQ(s.count(), 5);
}

TEST(RegularSection, ForEachVisitsFortranOrder) {
  // First dimension varies fastest, as in Fortran column-major iteration.
  RegularSection s({Dim{0, 1, 1}, Dim{0, 2, 1}});
  std::vector<std::vector<std::int64_t>> seen;
  s.for_each([&](const std::vector<std::int64_t>& idx) { seen.push_back(idx); });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(seen[2], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(seen[5], (std::vector<std::int64_t>{1, 2}));
}

TEST(ArrayLayout, ColumnMajorFlatten) {
  ArrayLayout l{{2, 100}, true};  // interaction_list(2, n)
  EXPECT_EQ(l.flatten({0, 0}), 0);
  EXPECT_EQ(l.flatten({1, 0}), 1);
  EXPECT_EQ(l.flatten({0, 1}), 2);
  EXPECT_EQ(l.flatten({1, 41}), 83);
}

TEST(ArrayLayout, RowMajorFlatten) {
  ArrayLayout l{{2, 100}, false};
  EXPECT_EQ(l.flatten({0, 0}), 0);
  EXPECT_EQ(l.flatten({0, 1}), 1);
  EXPECT_EQ(l.flatten({1, 0}), 100);
}

TEST(RegularSection, FlatIndicesDense) {
  RegularSection s({Dim{1, 3, 1}});
  ArrayLayout l{{10}, true};
  EXPECT_EQ(s.flat_indices(l), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(RegularSection, PagesOfDoubleArray) {
  // 4096-byte pages hold 512 doubles.  Elements [0, 600) span pages 0-1.
  RegularSection s = RegularSection::dense1d(0, 599);
  ArrayLayout l{{1000}, true};
  auto pages = s.pages(/*base=*/0, sizeof(double), l, kPage);
  EXPECT_EQ(pages, (std::vector<PageId>{0, 1}));
}

TEST(RegularSection, PagesRespectBaseOffset) {
  RegularSection s = RegularSection::dense1d(0, 0);
  ArrayLayout l{{8}, true};
  auto pages = s.pages(/*base=*/3 * kPage + 100, sizeof(double), l, kPage);
  EXPECT_EQ(pages, (std::vector<PageId>{3}));
}

TEST(RegularSection, ElementStraddlingPageBoundaryCountsBothPages) {
  // An 8-byte element starting 4 bytes before a page boundary.
  RegularSection s = RegularSection::dense1d(0, 0);
  ArrayLayout l{{4}, true};
  auto pages = s.pages(/*base=*/kPage - 4, sizeof(double), l, kPage);
  EXPECT_EQ(pages, (std::vector<PageId>{0, 1}));
}

TEST(RegularSection, StridedSectionSkipsWholePages) {
  // Every 1024th double: elements 0, 1024, 2048 -> pages 0, 2, 4.
  RegularSection s({Dim{0, 2048, 1024}});
  ArrayLayout l{{4096}, true};
  auto pages = s.pages(0, sizeof(double), l, kPage);
  EXPECT_EQ(pages, (std::vector<PageId>{0, 2, 4}));
}

TEST(RegularSection, IntersectEqualStrides) {
  RegularSection a({Dim{0, 100, 2}});
  RegularSection b({Dim{50, 150, 2}});
  auto c = a.intersect(b);
  EXPECT_EQ(c.dim(0).lower, 50);
  EXPECT_EQ(c.dim(0).upper, 100);
  EXPECT_EQ(c.dim(0).stride, 2);
}

TEST(RegularSection, IntersectMisalignedLatticesIsEmpty) {
  RegularSection a({Dim{0, 100, 2}});   // evens
  RegularSection b({Dim{1, 101, 2}});   // odds
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(RegularSection, IntersectDisjointRangesIsEmpty) {
  RegularSection a({Dim{0, 10, 1}});
  RegularSection b({Dim{20, 30, 1}});
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(RegularSection, ContainsSectionDense) {
  RegularSection a({Dim{0, 100, 1}});
  RegularSection b({Dim{10, 20, 3}});
  EXPECT_TRUE(a.contains_section(b));
  EXPECT_FALSE(b.contains_section(a));
}

TEST(RegularSection, ContainsSectionRespectsStridePhase) {
  RegularSection evens({Dim{0, 100, 2}});
  RegularSection odds({Dim{1, 99, 2}});
  RegularSection evens_sub({Dim{10, 20, 2}});
  EXPECT_TRUE(evens.contains_section(evens_sub));
  EXPECT_FALSE(evens.contains_section(odds));
}

TEST(RegularSection, ToStringFormat) {
  RegularSection s({Dim{1, 2, 1}, Dim{1, 100, 5}});
  EXPECT_EQ(s.to_string(), "[1:2, 1:100:5]");
}

TEST(PagesOfRange, DenseRange) {
  EXPECT_EQ(pages_of_range(0, 1, kPage), (std::vector<PageId>{0}));
  EXPECT_EQ(pages_of_range(kPage - 1, 2, kPage), (std::vector<PageId>{0, 1}));
  EXPECT_TRUE(pages_of_range(100, 0, kPage).empty());
  EXPECT_EQ(pages_of_range(2 * kPage, 2 * kPage, kPage),
            (std::vector<PageId>{2, 3}));
}

// ---------------------------------------------------------------------------
// Property sweeps: random sections, checked against brute-force enumeration.
// ---------------------------------------------------------------------------

class RsdProperty : public ::testing::TestWithParam<int> {};

TEST_P(RsdProperty, CountMatchesEnumeration) {
  sdsm::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rank = 1 + rng.next_below(3);
    std::vector<Dim> dims;
    for (std::size_t d = 0; d < rank; ++d) {
      const std::int64_t lo = rng.next_in(0, 20);
      const std::int64_t hi = lo + rng.next_in(-1, 30);
      const std::int64_t stride = rng.next_in(1, 5);
      dims.push_back(Dim{lo, hi, stride});
    }
    RegularSection s(dims);
    std::int64_t visited = 0;
    s.for_each([&](const std::vector<std::int64_t>&) { ++visited; });
    EXPECT_EQ(visited, s.count());
  }
}

TEST_P(RsdProperty, PagesCoverExactlyTheTouchedBytes) {
  sdsm::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t lo = rng.next_in(0, 2000);
    const std::int64_t hi = lo + rng.next_in(0, 3000);
    const std::int64_t stride = rng.next_in(1, 7);
    RegularSection s({Dim{lo, hi, stride}});
    ArrayLayout l{{hi + 1}, true};
    const std::size_t elem = 1 + rng.next_below(16);
    const GlobalAddr base = rng.next_below(3 * kPage);

    auto pages = s.pages(base, elem, l, kPage);
    std::set<PageId> expect;
    for (std::int64_t i = lo; i <= hi; i += stride) {
      const GlobalAddr first = base + static_cast<GlobalAddr>(i) * elem;
      for (GlobalAddr b = first; b < first + elem; ++b) {
        expect.insert(static_cast<PageId>(b / kPage));
      }
    }
    EXPECT_EQ(pages, std::vector<PageId>(expect.begin(), expect.end()));
  }
}

TEST_P(RsdProperty, IntersectIsSupersetOfTrueIntersection) {
  sdsm::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto mk = [&] {
      const std::int64_t lo = rng.next_in(0, 30);
      return RegularSection(
          {Dim{lo, lo + rng.next_in(0, 40), rng.next_in(1, 4)}});
    };
    RegularSection a = mk(), b = mk();
    RegularSection c = a.intersect(b);
    for (std::int64_t i = 0; i < 80; ++i) {
      const bool in_both = a.contains({i}) && b.contains({i});
      if (in_both) {
        EXPECT_TRUE(c.contains({i}))
            << "lost " << i << " from " << a.to_string() << " ^ "
            << b.to_string() << " = " << c.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsdProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace sdsm::rsd
