// Tests for the backend-agnostic irregular-kernel API: backend parsing,
// the fluent descriptor builder, and — the core contract — cross-backend
// checksum parity for kernels written once (moldyn and spmv).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/api/api.hpp"
#include "src/apps/moldyn/moldyn_kernel.hpp"
#include "src/apps/pagerank/pagerank.hpp"
#include "src/apps/spmv/spmv.hpp"

namespace sdsm::api {
namespace {

using apps::checksum_close;

TEST(Backend, ParseAndNameRoundTrip) {
  for (const Backend b : kAllBackends) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(parse_backend("chaos"), Backend::kChaos);
  EXPECT_EQ(parse_backend("tmk-base"), Backend::kTmkBase);
  EXPECT_EQ(parse_backend("TMK_OPTIMIZED"), Backend::kTmkOptimized);
  EXPECT_FALSE(parse_backend("mpi").has_value());
}

TEST(Backend, RoundScheduleParseAndNameRoundTrip) {
  for (const RoundSchedule s : kAllSchedules) {
    const auto parsed = parse_round_schedule(round_schedule_name(s));
    ASSERT_TRUE(parsed.has_value()) << round_schedule_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(parse_round_schedule("Tournament"), RoundSchedule::kTournament);
  EXPECT_EQ(parse_round_schedule("SERIAL"), RoundSchedule::kSerial);
  EXPECT_FALSE(parse_round_schedule("bracket").has_value());
}

TEST(Backend, OwnerOfContiguousPartition) {
  const std::vector<part::Range> ranges{{0, 3}, {3, 3}, {3, 10}, {10, 12}};
  EXPECT_EQ(owner_of(ranges, 0), 0u);
  EXPECT_EQ(owner_of(ranges, 2), 0u);
  EXPECT_EQ(owner_of(ranges, 3), 2u);  // node 1 owns an empty range
  EXPECT_EQ(owner_of(ranges, 9), 2u);
  EXPECT_EQ(owner_of(ranges, 11), 3u);
}

TEST(DescriptorBuilder, MatchesDirectShim) {
  const rsd::ArrayLayout layout{{64}, true};
  const auto built = core::DescriptorBuilder::array(0x1000, 8, layout)
                         .elements(4, 31)
                         .schedule(7)
                         .read_write();
  const auto shimmed =
      core::direct_desc(0x1000, 8, layout, rsd::RegularSection::dense1d(4, 31),
                        core::Access::kReadWrite, 7);
  EXPECT_EQ(built.type, shimmed.type);
  EXPECT_EQ(built.access, shimmed.access);
  EXPECT_EQ(built.schedule, shimmed.schedule);
  EXPECT_EQ(built.data_base, shimmed.data_base);
  EXPECT_EQ(built.data_elem_size, shimmed.data_elem_size);
  EXPECT_EQ(built.section, shimmed.section);
}

TEST(DescriptorBuilder, MatchesIndirectShim) {
  const rsd::ArrayLayout ind_layout{{2, 128}, true};
  const auto section = rsd::RegularSection({{0, 1, 1}, {16, 47, 1}});
  const auto built = core::DescriptorBuilder::array(0x2000, 24,
                                                    rsd::ArrayLayout{})
                         .via(0x8000, ind_layout, section)
                         .schedule(3)
                         .read();
  const auto shimmed = core::indirect_desc(0x2000, 24, 0x8000, ind_layout,
                                           section, core::Access::kRead, 3);
  EXPECT_EQ(built.type, core::DescType::kIndirect);
  EXPECT_EQ(built.type, shimmed.type);
  EXPECT_EQ(built.ind_base, shimmed.ind_base);
  EXPECT_EQ(built.section, shimmed.section);
  EXPECT_EQ(built.access, shimmed.access);
}

TEST(SpmvGraph, DeterministicAndPowerLaw) {
  apps::spmv::Params p;
  p.num_rows = 2048;
  p.edges_per_vertex = 4;
  const auto a = apps::spmv::build_graph(p);
  const auto b = apps::spmv::build_graph(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].w, b[i].w);
  }
  for (const auto& e : a) {
    EXPECT_LT(e.a, e.b);
    EXPECT_GE(e.a, 0);
    EXPECT_LT(e.b, p.num_rows);
  }
  // Preferential attachment produces hubs: the max degree must dwarf the
  // mean (a uniform random graph would stay within a small factor).
  const double avg = 2.0 * static_cast<double>(a.size()) /
                     static_cast<double>(p.num_rows);
  std::vector<int> deg(static_cast<std::size_t>(p.num_rows), 0);
  for (const auto& e : a) {
    ++deg[static_cast<std::size_t>(e.a)];
    ++deg[static_cast<std::size_t>(e.b)];
  }
  const int max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * avg);
}

TEST(SpmvSeq, DeterministicAndStable) {
  apps::spmv::Params p;
  p.num_rows = 1024;
  p.nprocs = 2;
  const auto a = apps::spmv::run_seq(p);
  const auto b = apps::spmv::run_seq(p);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_NE(a.checksum, 0.0);
  // Diffusion must not diverge at the default step.
  const auto edges = apps::spmv::build_graph(p);
  EXPECT_LT(p.dt * apps::spmv::max_weighted_degree(p, edges), 1.0);
}

// The cross-backend parity suite runs under BOTH fabrics: identical
// checksums and identical message counts whether the traffic rides the
// in-process channels or real TCP sockets (the transports differ only in
// what a message costs, never in what it carries).
class CrossBackend : public ::testing::TestWithParam<net::TransportKind> {};

INSTANTIATE_TEST_SUITE_P(BothTransports, CrossBackend,
                         ::testing::Values(net::TransportKind::kInProc,
                                           net::TransportKind::kSocket),
                         [](const auto& info) {
                           return std::string(net::transport_name(info.param));
                         });

TEST_P(CrossBackend, SpmvParityOnAllBackends) {
  apps::spmv::Params p;
  p.num_rows = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;
  const auto seq = apps::spmv::run_seq(p);
  api::BackendOptions opts = apps::spmv::default_options();
  opts.transport = GetParam();
  for (const Backend b : kAllBackends) {
    const auto r = apps::spmv::run(b, p, opts);
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << backend_name(b) << ": " << seq.checksum << " vs " << r.checksum;
    EXPECT_GT(r.messages, 0u) << backend_name(b);
    EXPECT_EQ(r.rebuilds, 1) << backend_name(b);
  }
}

TEST_P(CrossBackend, PageRankParityOnAllBackends) {
  // The variable-degree CSR workload: per-vertex adjacency rows over the
  // power-law graph, out-degree recovered from the row length.  Checksums
  // must agree with the sequential reference on every backend; the degree
  // skew must be visible in the audit columns (hub row far above the
  // mean).
  apps::pagerank::Params p;
  p.num_vertices = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;
  const auto seq = apps::pagerank::run_seq(p);
  api::BackendOptions opts = apps::pagerank::default_options();
  opts.transport = GetParam();
  for (const Backend b : kAllBackends) {
    const auto r = apps::pagerank::run(b, p, opts);
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << backend_name(b) << ": " << seq.checksum << " vs " << r.checksum;
    EXPECT_GT(r.messages, 0u) << backend_name(b);
    EXPECT_EQ(r.rebuilds, 1) << backend_name(b);
    // refs = vertices (self refs) + 2 * edges; rows average ~2*m+1 refs
    // but the hubs are far longer.
    EXPECT_GT(r.refs, static_cast<std::uint64_t>(p.num_vertices)) << backend_name(b);
    EXPECT_GT(r.max_row, 5u * (static_cast<std::uint64_t>(p.edges_per_vertex) + 1))
        << backend_name(b);
  }
}

TEST(PageRank, MassIsConservedAndSkewed) {
  apps::pagerank::Params p;
  p.num_vertices = 2048;
  p.nprocs = 2;
  const auto adj = apps::pagerank::build_adjacency(p);
  ASSERT_EQ(adj.offsets.size(), static_cast<std::size_t>(p.num_vertices) + 1);
  EXPECT_EQ(adj.offsets.back(),
            static_cast<std::int64_t>(adj.values.size()));
  // Total rank mass stays 1 under the damped update (no sink loss in the
  // undirected adjacency: every vertex with an edge pushes all its mass).
  const auto ranks = apps::pagerank::seq_ranks(p);
  double mass = 0;
  for (const double r : ranks) mass += r;
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // Power-law skew: the hub degree dwarfs the mean degree.
  std::int64_t max_deg = 0;
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    max_deg = std::max(max_deg, adj.offsets[static_cast<std::size_t>(v) + 1] -
                                    adj.offsets[static_cast<std::size_t>(v)]);
  }
  const double mean_deg = static_cast<double>(adj.values.size()) /
                          static_cast<double>(p.num_vertices);
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * mean_deg);
  // And the hub's rank outruns the uniform share.
  EXPECT_GT(*std::max_element(ranks.begin(), ranks.end()),
            5.0 / static_cast<double>(p.num_vertices));
  const auto seq_a = apps::pagerank::run_seq(p);
  const auto seq_b = apps::pagerank::run_seq(p);
  EXPECT_EQ(seq_a.checksum, seq_b.checksum);  // deterministic
}

TEST_P(CrossBackend, MoldynParityOnAllBackends) {
  apps::moldyn::Params p;
  p.num_molecules = 512;
  p.num_steps = 6;
  p.update_interval = 3;
  p.box = 8.0;
  p.cutoff = 1.4;
  p.nprocs = 4;
  const auto sys = apps::moldyn::make_system(p);
  const auto seq = apps::moldyn::run_seq(p, sys);
  api::BackendOptions opts = apps::moldyn::default_options();
  opts.region_bytes = 8u << 20;
  opts.transport = GetParam();
  for (const Backend b : kAllBackends) {
    const auto r = apps::moldyn::run(b, p, sys, opts);
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << backend_name(b) << ": " << seq.checksum << " vs " << r.checksum;
    EXPECT_EQ(r.rebuilds, 2) << backend_name(b);  // steps=6, interval=3
  }
}

TEST(CrossBackend, MessageCountsAgreeAcrossTransports) {
  // Same kernel, same backend, both fabrics: the traffic must be
  // identical message for message and byte for byte.
  apps::spmv::Params p;
  p.num_rows = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 4;
  p.nprocs = 4;
  for (const Backend b : kAllBackends) {
    api::BackendOptions inproc = apps::spmv::default_options();
    inproc.transport = net::TransportKind::kInProc;
    api::BackendOptions socket = apps::spmv::default_options();
    socket.transport = net::TransportKind::kSocket;
    const auto ri = apps::spmv::run(b, p, inproc);
    const auto rs = apps::spmv::run(b, p, socket);
    EXPECT_EQ(ri.messages, rs.messages) << backend_name(b);
    EXPECT_EQ(ri.megabytes, rs.megabytes) << backend_name(b);
    EXPECT_TRUE(checksum_close(ri.checksum, rs.checksum)) << backend_name(b);
  }
}

TEST(CrossBackend, PageRankMessageCountsAgreeAcrossTransports) {
  // The same exactness for the variable-degree CSR workload: hub-length
  // rows and all, the fabric changes what a message costs, never what it
  // carries.
  apps::pagerank::Params p;
  p.num_vertices = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 4;
  p.nprocs = 4;
  for (const Backend b : kAllBackends) {
    api::BackendOptions inproc = apps::pagerank::default_options();
    inproc.transport = net::TransportKind::kInProc;
    api::BackendOptions socket = apps::pagerank::default_options();
    socket.transport = net::TransportKind::kSocket;
    const auto ri = apps::pagerank::run(b, p, inproc);
    const auto rs = apps::pagerank::run(b, p, socket);
    EXPECT_EQ(ri.messages, rs.messages) << backend_name(b);
    EXPECT_EQ(ri.megabytes, rs.megabytes) << backend_name(b);
    EXPECT_TRUE(checksum_close(ri.checksum, rs.checksum)) << backend_name(b);
  }
}

// The schedule parity suite: the tournament reduction must produce the
// same physics as the serial rotation on every backend (CHAOS ignores the
// knob — its row is the control) over both fabrics.
class ScheduleParity
    : public ::testing::TestWithParam<
          std::tuple<net::TransportKind, RoundSchedule>> {
 public:
  static api::BackendOptions options(api::BackendOptions base) {
    base.transport = std::get<0>(GetParam());
    base.round_schedule = std::get<1>(GetParam());
    return base;
  }
};

INSTANTIATE_TEST_SUITE_P(
    TransportsXSchedules, ScheduleParity,
    ::testing::Combine(::testing::Values(net::TransportKind::kInProc,
                                         net::TransportKind::kSocket),
                       ::testing::Values(RoundSchedule::kSerial,
                                         RoundSchedule::kTournament)),
    [](const auto& info) {
      return std::string(net::transport_name(std::get<0>(info.param))) + "_" +
             round_schedule_name(std::get<1>(info.param));
    });

TEST_P(ScheduleParity, PageRankOnAllBackends) {
  apps::pagerank::Params p;
  p.num_vertices = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;
  const auto seq = apps::pagerank::run_seq(p);
  const auto opts = options(apps::pagerank::default_options());
  for (const Backend b : kAllBackends) {
    const auto r = apps::pagerank::run(b, p, opts);
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << backend_name(b) << ": " << seq.checksum << " vs " << r.checksum;
    EXPECT_GT(r.barriers_per_step, 0.0) << backend_name(b);
  }
}

TEST_P(ScheduleParity, MoldynOnAllBackends) {
  // The rebuilding workload: the tournament pairing is re-derived from the
  // re-published touch matrix at every rebuild, not frozen at step 0.
  apps::moldyn::Params p;
  p.num_molecules = 512;
  p.num_steps = 6;
  p.update_interval = 3;
  p.box = 8.0;
  p.cutoff = 1.4;
  p.nprocs = 4;
  const auto sys = apps::moldyn::make_system(p);
  const auto seq = apps::moldyn::run_seq(p, sys);
  auto opts = options(apps::moldyn::default_options());
  opts.region_bytes = 8u << 20;
  for (const Backend b : kAllBackends) {
    const auto r = apps::moldyn::run(b, p, sys, opts);
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << backend_name(b) << ": " << seq.checksum << " vs " << r.checksum;
    EXPECT_EQ(r.rebuilds, 2) << backend_name(b);
  }
}

TEST(RoundSchedule, TournamentStrictlyFewerBarriersPerStep) {
  // The acceptance metric, in barriers (deterministic), not seconds: at
  // nprocs >= 4 the fused pairing rounds must beat the serial rotation's
  // nprocs barriers per step on both moldyn and pagerank.
  const auto barriers = [](api::Backend b, RoundSchedule s,
                           bool moldyn_workload) {
    api::BackendOptions opts;
    opts.round_schedule = s;
    if (moldyn_workload) {
      apps::moldyn::Params p;
      p.num_molecules = 512;
      p.num_steps = 6;
      p.update_interval = 3;
      p.box = 8.0;
      p.cutoff = 1.4;
      p.nprocs = 4;
      opts.region_bytes = 8u << 20;
      const auto sys = apps::moldyn::make_system(p);
      return apps::moldyn::run(b, p, sys, opts).barriers_per_step;
    }
    apps::pagerank::Params p;
    p.num_vertices = 1024;
    p.edges_per_vertex = 4;
    p.num_steps = 6;
    p.nprocs = 4;
    return apps::pagerank::run(b, p, opts).barriers_per_step;
  };
  for (const bool moldyn_workload : {true, false}) {
    for (const Backend b : {Backend::kTmkBase, Backend::kTmkOptimized}) {
      const double serial = barriers(b, RoundSchedule::kSerial,
                                     moldyn_workload);
      const double tour = barriers(b, RoundSchedule::kTournament,
                                   moldyn_workload);
      // serial: nprocs rounds + step barrier; tournament: at most
      // ceil(log2(nprocs)) fused rounds + step barrier.
      EXPECT_GE(serial, 5.0) << backend_name(b);
      EXPECT_LT(tour, serial)
          << backend_name(b) << (moldyn_workload ? " moldyn" : " pagerank");
      EXPECT_LE(tour, 3.5)
          << backend_name(b) << (moldyn_workload ? " moldyn" : " pagerank");
    }
  }
}

TEST(CrossStepPrefetch, TrafficIsExactlyEqualWithAndWithout) {
  // The prefetch contract: posting the next round's aggregated diff
  // requests from the barrier return path moves the wait, never the
  // traffic.  Message and byte counts must match exactly under both
  // schedules, and the prefetched run must actually have prefetched.
  apps::pagerank::Params p;
  p.num_vertices = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;
  const auto seq = apps::pagerank::run_seq(p);
  for (const RoundSchedule s : kAllSchedules) {
    api::BackendOptions off = apps::pagerank::default_options();
    off.round_schedule = s;
    api::BackendOptions on = off;
    on.cross_step_prefetch = true;
    const auto r_off =
        apps::pagerank::run(Backend::kTmkOptimized, p, off);
    const auto r_on = apps::pagerank::run(Backend::kTmkOptimized, p, on);
    EXPECT_EQ(r_off.messages, r_on.messages) << round_schedule_name(s);
    EXPECT_EQ(r_off.megabytes, r_on.megabytes) << round_schedule_name(s);
    EXPECT_EQ(r_off.barriers_per_step, r_on.barriers_per_step)
        << round_schedule_name(s);
    EXPECT_EQ(r_off.tmk.cross_prefetch_posts, 0u) << round_schedule_name(s);
    EXPECT_GT(r_on.tmk.cross_prefetch_posts, 0u) << round_schedule_name(s);
    EXPECT_TRUE(checksum_close(seq.checksum, r_on.checksum))
        << round_schedule_name(s);
    EXPECT_TRUE(checksum_close(r_off.checksum, r_on.checksum))
        << round_schedule_name(s);
  }
}

TEST(CrossStepPrefetch, IgnoredOnBaseBackend) {
  // Demand paging has no aggregated requests to move early; the option
  // must be inert there so base traffic stays base traffic.
  apps::spmv::Params p;
  p.num_rows = 1024;
  p.edges_per_vertex = 4;
  p.num_steps = 4;
  p.nprocs = 4;
  api::BackendOptions off = apps::spmv::default_options();
  api::BackendOptions on = off;
  on.cross_step_prefetch = true;
  const auto r_off = apps::spmv::run(Backend::kTmkBase, p, off);
  const auto r_on = apps::spmv::run(Backend::kTmkBase, p, on);
  EXPECT_EQ(r_off.messages, r_on.messages);
  EXPECT_EQ(r_off.megabytes, r_on.megabytes);
  EXPECT_EQ(r_on.tmk.cross_prefetch_posts, 0u);
}

// A small deterministic diffusion kernel for exercising the
// data-dependent-iteration contract: fixed scattered rows, state read at
// every rebuild, and hooks for rebuild_when / converged.  State keeps
// changing every step (unlike BFS/CC, which converge "quietly"), so a
// prefetch posted at the final step's barrier exit has real pages in
// flight when an early exit abandons it.
struct IterationCase {
  std::int64_t n = 1024;
  std::uint32_t nprocs = 4;
  int warmup_steps = 0;
  int num_steps = 6;
  int update_interval = 0;
  std::function<bool(int)> rebuild_when;
  int converge_after = 0;  ///< >0: converged flag fires at this step count
};

KernelSpec<double> make_iteration_spec(const IterationCase& c) {
  KernelSpec<double> spec;
  spec.name = "iteration-case";
  spec.num_elements = c.n;
  spec.owner_range = part::block_partition(c.n, c.nprocs);
  spec.initial_state.resize(static_cast<std::size_t>(c.n));
  for (std::int64_t i = 0; i < c.n; ++i) {
    spec.initial_state[static_cast<std::size_t>(i)] =
        static_cast<double>(i % 19) / 7.0;
  }
  spec.num_steps = c.num_steps;
  spec.warmup_steps = c.warmup_steps;
  spec.update_interval = c.update_interval;
  spec.rebuild_when = c.rebuild_when;
  spec.rebuild_reads_state = true;
  spec.max_items_per_node = c.n;
  spec.max_refs_per_node = 3 * c.n;

  const auto ranges = spec.owner_range;
  const std::int64_t n = c.n;
  spec.build_items = [ranges, n](IrregularNode& node, std::span<const double>) {
    const part::Range mine = ranges[node.id()];
    WorkItems items;
    for (std::int64_t i = mine.begin; i < mine.end; i += 2) {
      items.push_row({i, (i * 7 + 11) % n, (i * 3 + 5) % n});
    }
    return items;
  };
  spec.compute = [](IrregularNode&, const KernelCtx<double>& ctx) {
    for (std::size_t k = 0; k < ctx.num_items(); ++k) {
      const auto row = ctx.refs_of(k);
      const double xi = ctx.x[static_cast<std::size_t>(row[0])];
      for (std::size_t j = 1; j < row.size(); ++j) {
        const double d = xi - ctx.x[static_cast<std::size_t>(row[j])];
        ctx.f[static_cast<std::size_t>(row[0])] -= d;
        ctx.f[static_cast<std::size_t>(row[j])] += d;
      }
    }
  };
  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.0625 * f[i];
  };
  if (c.converge_after > 0) {
    // Converges by fiat after a fixed number of steps — deterministic and
    // node-agnostic, while the state is still in motion.
    auto count = std::make_shared<std::vector<int>>(c.nprocs, 0);
    const int after = c.converge_after;
    spec.converged = [count, after](IrregularNode& node,
                                    std::span<const double>) {
      return ++(*count)[node.id()] >= after;
    };
  }
  spec.checksum = [](std::span<const double> x) {
    double s = 0, s2 = 0;
    for (const double v : x) {
      s += v;
      s2 += v * v;
    }
    return s + s2;
  };
  return spec;
}

// Regression (rebuild_needed step-0 semantics): the bootstrap build at
// step 0 is that step's rebuild, exactly once, even when the
// update_interval cadence divides 0 AND rebuild_when(0) fires too.  A
// naive "initial build, then check the cadence" runs the inspector twice
// at step 0 and KernelResult::rebuilds comes out one high.
TEST(RebuildSchedule, StepZeroBuildsExactlyOnce) {
  struct Expect {
    int update_interval;
    std::function<bool(int)> when;
    std::int64_t rebuilds;  // over warmup(1) + timed(5) = global steps 0..5
  };
  const std::vector<Expect> cases = {
      // Cadence divides 0: steps 0,2,4 — not 0 twice.
      {2, nullptr, 3},
      // Cadence AND predicate both fire at 0: still one build there.
      {2, [](int s) { return s % 3 == 0; }, 4},  // 0,2,3,4 (0 once)
      // Predicate-only cadence: 0 (bootstrap), 3.
      {0, [](int s) { return s % 3 == 0; }, 2},
      // Static structure: the bootstrap build alone.
      {0, nullptr, 1},
      // Every step.
      {1, nullptr, 6},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    IterationCase c;
    c.warmup_steps = 1;
    c.num_steps = 5;
    c.update_interval = cases[i].update_interval;
    c.rebuild_when = cases[i].when;
    double checksums[3];
    int bi = 0;
    for (const Backend b : kAllBackends) {
      BackendOptions opts;
      opts.region_bytes = 16u << 20;
      opts.table = chaos::TableKind::kReplicated;
      const auto r = run_kernel(b, make_iteration_spec(c), opts);
      EXPECT_EQ(r.rebuilds, cases[i].rebuilds)
          << "case " << i << " on " << backend_name(b);
      EXPECT_EQ(r.steps_run, c.num_steps)
          << "case " << i << " on " << backend_name(b);
      checksums[bi++] = r.checksum;
    }
    EXPECT_EQ(checksums[0], checksums[1]) << "case " << i;
    EXPECT_EQ(checksums[1], checksums[2]) << "case " << i;
  }
}

// Regression (prefetch leaked on early exit): with cross-step prefetch on,
// the backend posts the next rebuild's whole-state read from the step
// barrier's return path; when the convergence flag then ends the loop
// before the next validate, that post is in flight with nowhere to
// complete.  The teardown drain settles it — pre-fix, the ticket leaked
// (ASan-unhappy on the socket transport) and the accounting below could
// not balance.  Every posted prefetch must end as exactly one consume or
// one drain.
TEST(CrossStepPrefetch, DrainedOnEarlyConvergenceExit) {
  for (const RoundSchedule s : kAllSchedules) {
    IterationCase c;
    // Page-aligned chunks (4096 doubles / 4 nodes = 2 pages each): the
    // final checksum then touches only locally-valid owned pages, so
    // nothing accidentally "first-uses" the abandoned prefetch — it must
    // reach teardown in flight.
    c.n = 4096;
    c.num_steps = 8;
    c.converge_after = 4;  // early exit while the state is still changing
    c.rebuild_when = [](int) { return true; };
    BackendOptions off;
    off.region_bytes = 16u << 20;
    off.round_schedule = s;
    BackendOptions on = off;
    on.cross_step_prefetch = true;
    const auto r_off = run_kernel(Backend::kTmkOptimized,
                                  make_iteration_spec(c), off);
    const auto r_on = run_kernel(Backend::kTmkOptimized,
                                 make_iteration_spec(c), on);
    EXPECT_EQ(r_on.steps_run, 4) << round_schedule_name(s);
    EXPECT_EQ(r_off.checksum, r_on.checksum) << round_schedule_name(s);
    EXPECT_GT(r_on.tmk.cross_prefetch_posts, 0u) << round_schedule_name(s);
    // The early exit abandoned the final step's rebuild prefetch on every
    // node; teardown drained each one, and nothing fell through the
    // accounting.
    EXPECT_GT(r_on.tmk.cross_prefetch_drains, 0u) << round_schedule_name(s);
    EXPECT_EQ(r_on.tmk.cross_prefetch_posts,
              r_on.tmk.cross_prefetch_consumes +
                  r_on.tmk.cross_prefetch_drains)
        << round_schedule_name(s);
    EXPECT_EQ(r_off.tmk.cross_prefetch_posts, 0u) << round_schedule_name(s);
  }
}

// The non-exiting counterpart: when the step loop runs to its cap, no
// prefetch is ever left in flight (the final step posts nothing), so
// drains stay zero and traffic is exactly equal with and without
// prefetching — the original contract, now covering the rebuild-read
// prefetch too.
TEST(CrossStepPrefetch, RebuildReadTrafficEqualWithoutEarlyExit) {
  for (const RoundSchedule s : kAllSchedules) {
    IterationCase c;
    c.num_steps = 6;
    c.rebuild_when = [](int) { return true; };
    BackendOptions off;
    off.region_bytes = 16u << 20;
    off.round_schedule = s;
    BackendOptions on = off;
    on.cross_step_prefetch = true;
    const auto r_off = run_kernel(Backend::kTmkOptimized,
                                  make_iteration_spec(c), off);
    const auto r_on = run_kernel(Backend::kTmkOptimized,
                                 make_iteration_spec(c), on);
    EXPECT_EQ(r_off.messages, r_on.messages) << round_schedule_name(s);
    EXPECT_EQ(r_off.megabytes, r_on.megabytes) << round_schedule_name(s);
    EXPECT_EQ(r_off.checksum, r_on.checksum) << round_schedule_name(s);
    EXPECT_GT(r_on.tmk.cross_prefetch_posts, 0u) << round_schedule_name(s);
    EXPECT_EQ(r_on.tmk.cross_prefetch_drains, 0u) << round_schedule_name(s);
    EXPECT_EQ(r_on.tmk.cross_prefetch_posts,
              r_on.tmk.cross_prefetch_consumes)
        << round_schedule_name(s);
  }
}

TEST(CrossBackend, OptimizedAggregationBeatsDemandPaging) {
  apps::spmv::Params p;
  p.num_rows = 8192;
  p.edges_per_vertex = 4;
  p.num_steps = 4;
  p.nprocs = 4;
  api::BackendOptions opts;
  opts.region_bytes = 16u << 20;
  const auto base = apps::spmv::run(Backend::kTmkBase, p, opts);
  const auto opt = apps::spmv::run(Backend::kTmkOptimized, p, opts);
  EXPECT_TRUE(checksum_close(base.checksum, opt.checksum));
  EXPECT_LT(opt.messages, base.messages);
  EXPECT_GT(opt.tmk.pages_prefetched, 0u);
}

}  // namespace
}  // namespace sdsm::api
