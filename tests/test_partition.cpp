// Tests for BLOCK / CYCLIC / RCB partitioners.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::part {
namespace {

TEST(Block, RangesTileTheIndexSpace) {
  auto ranges = block_partition(100, 8);
  ASSERT_EQ(ranges.size(), 8u);
  std::int64_t cursor = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, cursor);
    cursor = r.end;
  }
  EXPECT_EQ(cursor, 100);
}

TEST(Block, SizesDifferByAtMostOne) {
  auto ranges = block_partition(103, 8);
  std::int64_t lo = 1 << 30, hi = 0;
  for (const auto& r : ranges) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(Block, OwnerMatchesRanges) {
  const std::int64_t n = 1037;
  const std::uint32_t p = 7;
  auto ranges = block_partition(n, p);
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId owner = block_owner(i, n, p);
    EXPECT_TRUE(ranges[owner].contains(i)) << "element " << i;
  }
}

TEST(Block, HandlesFewerElementsThanProcessors) {
  auto ranges = block_partition(3, 8);
  std::int64_t total = 0;
  for (const auto& r : ranges) total += r.size();
  EXPECT_EQ(total, 3);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(ranges[block_owner(i, 3, 8)].contains(i));
  }
}

TEST(Cyclic, RoundRobin) {
  EXPECT_EQ(cyclic_owner(0, 4), 0u);
  EXPECT_EQ(cyclic_owner(5, 4), 1u);
  EXPECT_EQ(cyclic_owner(7, 4), 3u);
}

TEST(OwnersToLists, GroupsAndSorts) {
  std::vector<NodeId> owner{1, 0, 1, 0, 2};
  auto lists = owners_to_lists(owner, 3);
  EXPECT_EQ(lists[0], (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(lists[1], (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(lists[2], (std::vector<std::int64_t>{4}));
}

std::vector<Point3> random_points(std::size_t n, std::uint64_t seed) {
  sdsm::Rng rng(seed);
  std::vector<Point3> pts(n);
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
    p.z = rng.next_double();
  }
  return pts;
}

TEST(Rcb, SinglePartitionOwnsEverything) {
  auto pts = random_points(100, 1);
  auto owner = rcb_partition(pts, 1);
  for (auto o : owner) EXPECT_EQ(o, 0u);
}

TEST(Rcb, BalancedForPowerOfTwo) {
  auto pts = random_points(1024, 2);
  auto owner = rcb_partition(pts, 8);
  std::vector<int> counts(8, 0);
  for (auto o : owner) ++counts[o];
  for (int c : counts) EXPECT_EQ(c, 128);
}

TEST(Rcb, RoughlyBalancedForNonPowerOfTwo) {
  auto pts = random_points(999, 3);
  auto owner = rcb_partition(pts, 5);
  std::vector<int> counts(5, 0);
  for (auto o : owner) ++counts[o];
  for (int c : counts) {
    EXPECT_NEAR(c, 200, 10);
  }
}

TEST(Rcb, Deterministic) {
  auto pts = random_points(512, 4);
  EXPECT_EQ(rcb_partition(pts, 8), rcb_partition(pts, 8));
}

TEST(Rcb, SpatialLocality) {
  // Points on a line: each partition must own a contiguous segment, i.e.
  // average intra-partition distance must be much smaller than global.
  const std::size_t n = 800;
  std::vector<Point3> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i].x = static_cast<double>(i);
  }
  auto owner = rcb_partition(pts, 8);
  for (std::uint32_t p = 0; p < 8; ++p) {
    double lo = 1e18, hi = -1e18;
    for (std::size_t i = 0; i < n; ++i) {
      if (owner[i] == p) {
        lo = std::min(lo, pts[i].x);
        hi = std::max(hi, pts[i].x);
      }
    }
    EXPECT_LE(hi - lo + 1, 100.0 + 1e-9) << "partition " << p << " spans too far";
  }
}

TEST(Rcb, SplitsAlongWidestDimension) {
  // A slab thin in x and z but long in y: the first cut must be in y, so
  // partitions of a 2-way split separate low-y from high-y points.
  std::vector<Point3> pts;
  sdsm::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    pts.push_back(Point3{rng.next_double() * 0.01, rng.next_double() * 100.0,
                         rng.next_double() * 0.01});
  }
  auto owner = rcb_partition(pts, 2);
  double max_y0 = -1e18, min_y1 = 1e18;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (owner[i] == 0) max_y0 = std::max(max_y0, pts[i].y);
    else min_y1 = std::min(min_y1, pts[i].y);
  }
  EXPECT_LE(max_y0, min_y1);
}

class RcbProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RcbProperty, EveryPointAssignedToValidOwner) {
  const std::uint32_t nprocs = GetParam();
  auto pts = random_points(501, 1000 + nprocs);
  auto owner = rcb_partition(pts, nprocs);
  ASSERT_EQ(owner.size(), pts.size());
  std::vector<int> counts(nprocs, 0);
  for (auto o : owner) {
    ASSERT_LT(o, nprocs);
    ++counts[o];
  }
  // No partition may be empty or grossly oversized.
  for (int c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, static_cast<int>(2 * pts.size() / nprocs + 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, RcbProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 16u));

}  // namespace
}  // namespace sdsm::part
