// Integration tests for nbf: backends vs the sequential reference, the
// static-partner-list fast path, and the false-sharing configuration.
#include <gtest/gtest.h>

#include "src/apps/nbf/nbf_common.hpp"
#include "src/apps/nbf/nbf_kernel.hpp"

namespace sdsm::apps::nbf {
namespace {

Params small_params(std::uint32_t nprocs, std::int64_t molecules = 2048) {
  Params p;
  p.molecules = molecules;
  p.partners = 8;
  p.timed_steps = 4;
  p.warmup_steps = 1;
  p.nprocs = nprocs;
  return p;
}

api::BackendOptions small_options() {
  api::BackendOptions o = default_options();
  o.region_bytes = 8u << 20;
  return o;
}

TEST(NbfCommon, PartnersAreSpreadAndInRange) {
  const Params p = small_params(2);
  for (std::int64_t i = 0; i < p.molecules; i += 100) {
    for (int j = 0; j < p.partners; ++j) {
      const auto q = partner_of(p, i, j);
      EXPECT_GE(q, 0);
      EXPECT_LT(q, p.molecules);
      EXPECT_NE(q, i);
    }
  }
  // Adjacent partners are ~ spread/partners apart.
  const auto d = (partner_of(p, 0, 1) - partner_of(p, 0, 0) + p.molecules) %
                 p.molecules;
  EXPECT_NEAR(static_cast<double>(d),
              p.spread * static_cast<double>(p.molecules) / p.partners, 2.0);
}

TEST(NbfCommon, PartnerListMatchesPartnerOf) {
  const Params p = small_params(2, 256);
  const auto list = build_partner_list(p);
  // Uniform configuration: uniform offsets, dense layout preserved.
  ASSERT_EQ(list.offsets.size(), static_cast<std::size_t>(p.molecules) + 1);
  ASSERT_EQ(list.values.size(),
            static_cast<std::size_t>(p.molecules) * p.partners);
  for (std::int64_t i = 0; i < p.molecules; i += 37) {
    EXPECT_EQ(list.offsets[static_cast<std::size_t>(i)],
              i * p.partners);
    for (int j = 0; j < p.partners; ++j) {
      EXPECT_EQ(list.values[static_cast<std::size_t>(i) * p.partners + j],
                partner_of(p, i, j));
    }
  }
}

TEST(NbfCommon, VariablePartnerCountsAreDeterministicAndBounded) {
  Params p = small_params(2, 512);
  p.min_partners = 3;
  const auto a = build_partner_list(p);
  const auto b = build_partner_list(p);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.values, b.values);
  bool any_below_max = false;
  for (std::int64_t i = 0; i < p.molecules; ++i) {
    const int c = partner_count(p, i);
    EXPECT_GE(c, p.min_partners);
    EXPECT_LE(c, p.partners);
    EXPECT_EQ(a.offsets[static_cast<std::size_t>(i) + 1] -
                  a.offsets[static_cast<std::size_t>(i)],
              c);
    any_below_max |= c < p.partners;
  }
  EXPECT_TRUE(any_below_max);  // the spread is actually used
}

TEST(NbfCommon, SequentialDeterministic) {
  const Params p = small_params(2);
  EXPECT_EQ(run_seq(p).checksum, run_seq(p).checksum);
}

TEST(NbfTmk, BaseMatchesSequential) {
  const Params p = small_params(2);
  const auto seq = run_seq(p);
  const auto par = run(api::Backend::kTmkBase, p, small_options());
  EXPECT_TRUE(checksum_close(seq.checksum, par.checksum))
      << seq.checksum << " vs " << par.checksum;
}

TEST(NbfTmk, OptimizedMatchesSequential) {
  const Params p = small_params(4);
  const auto seq = run_seq(p);
  const auto par = run(api::Backend::kTmkOptimized, p, small_options());
  EXPECT_TRUE(checksum_close(seq.checksum, par.checksum))
      << seq.checksum << " vs " << par.checksum;
}

TEST(NbfTmk, StaticListMeansNoRecomputeInTimedSteps) {
  const Params p = small_params(2);
  const auto par = run(api::Backend::kTmkOptimized, p, small_options());
  // The warmup step paid the one-time Read_indices; the timed steps only
  // check the (unchanged) write-protected pages.  The result's counters
  // cover the timed steps.
  EXPECT_EQ(par.tmk.validate_recomputes, 0u);
  EXPECT_GT(par.tmk.validate_calls, 0u);
}

TEST(NbfTmk, OptimizedSendsFewerMessagesThanBase) {
  // Each node must own several pages of x for aggregation to beat
  // page-at-a-time fetching: base pays two messages per fetched page, the
  // optimized version two messages per producer node.
  const Params p = small_params(4, 16384);
  const auto base = run(api::Backend::kTmkBase, p, small_options());
  const auto opt = run(api::Backend::kTmkOptimized, p, small_options());
  EXPECT_LT(opt.messages, base.messages);
}

TEST(NbfTmk, MisalignedBlockBoundariesStillCorrect) {
  // The 64x1000 analogue: molecule count chosen so block boundaries fall
  // inside pages (false sharing at every boundary).
  const Params p = small_params(4, 2040);
  const auto seq = run_seq(p);
  for (const api::Backend b :
       {api::Backend::kTmkBase, api::Backend::kTmkOptimized}) {
    const auto par = run(b, p, small_options());
    EXPECT_TRUE(checksum_close(seq.checksum, par.checksum))
        << api::backend_name(b);
  }
}

TEST(NbfTmk, FalseSharingCostsExtraMessages) {
  const Params aligned = small_params(4, 2048);  // 512 doubles = page-exact
  const Params misaligned = small_params(4, 2040);
  const auto a = run(api::Backend::kTmkOptimized, aligned, small_options());
  const auto m = run(api::Backend::kTmkOptimized, misaligned, small_options());
  // Fewer molecules but more traffic: boundary pages ping-pong.
  EXPECT_GT(m.messages, a.messages);
}

TEST(NbfChaos, MatchesSequential) {
  const Params p = small_params(4);
  const auto seq = run_seq(p);
  const auto par = run(api::Backend::kChaos, p);
  EXPECT_TRUE(checksum_close(seq.checksum, par.checksum))
      << seq.checksum << " vs " << par.checksum;
  EXPECT_GT(par.overhead_seconds, 0.0);  // one-time inspector
  EXPECT_EQ(par.rebuilds, 1);
}

TEST(NbfChaos, MessageCountFollowsScheduleStructure) {
  // Per timed step: one gather exchange + one scatter exchange + one
  // barrier.  With every pair of nodes active that is at most
  // 2 * P*(P-1) + 2*(P-1) messages per step.
  const Params p = small_params(4);
  const auto par = run(api::Backend::kChaos, p);
  const std::uint64_t per_step_max = 2u * 4 * 3 + 2 * 3;
  EXPECT_LE(par.messages,
            per_step_max * static_cast<std::uint64_t>(p.timed_steps));
  EXPECT_GT(par.messages, 0u);
}

TEST(NbfChaos, ChecksumAgreesWithTmkVariants) {
  const Params p = small_params(2);
  const auto ch = run(api::Backend::kChaos, p);
  const auto tk = run(api::Backend::kTmkOptimized, p, small_options());
  EXPECT_TRUE(checksum_close(ch.checksum, tk.checksum));
}

// --- Variable-length rows: the CSR port vs the padded fixed-arity baseline

TEST(NbfCsr, VariableRowsMatchSequentialOnAllBackends) {
  Params p = small_params(4);
  p.min_partners = 2;  // rows vary over [3, 9] references
  const auto seq = run_seq(p);
  for (const api::Backend b : api::kAllBackends) {
    const auto r = run(b, p, small_options());
    EXPECT_TRUE(checksum_close(seq.checksum, r.checksum))
        << api::backend_name(b) << ": " << seq.checksum << " vs "
        << r.checksum;
  }
}

TEST(NbfCsr, PaddedKernelComputesIdenticalChecksum) {
  // Padding rows with self-references is numerically inert
  // (pair_force(x, x) == 0): the padded emulation must agree with the
  // unpadded kernel bit for bit, not just approximately.
  Params p = small_params(2, 1024);
  p.min_partners = 2;
  const auto unpadded =
      api::run_kernel(api::Backend::kChaos, make_kernel(p), small_options());
  const auto padded = api::run_kernel(api::Backend::kChaos,
                                      make_padded_kernel(p), small_options());
  EXPECT_EQ(unpadded.checksum, padded.checksum);
  EXPECT_LT(unpadded.refs, padded.refs);
  EXPECT_EQ(padded.max_row, static_cast<std::uint64_t>(p.partners) + 1);
  EXPECT_LE(unpadded.max_row, padded.max_row);
}

TEST(NbfCsr, UnpaddedListCostsNoMoreThanPaddedOnTmk) {
  // With the one-time list costs in the counted window (warmup_steps = 0),
  // the padded index array can only cost more: every page of it is written
  // at the rebuild and scanned by Read_indices.  The x/f traffic is
  // identical (self-padding adds no remote references), so byte counts
  // must satisfy unpadded <= padded on both DSM backends.
  Params p = small_params(4, 4096);
  p.min_partners = 2;
  p.warmup_steps = 0;
  p.timed_steps = 3;
  for (const api::Backend b :
       {api::Backend::kTmkBase, api::Backend::kTmkOptimized}) {
    const auto unpadded = api::run_kernel(b, make_kernel(p), small_options());
    const auto padded =
        api::run_kernel(b, make_padded_kernel(p), small_options());
    EXPECT_TRUE(checksum_close(unpadded.checksum, padded.checksum))
        << api::backend_name(b);
    EXPECT_LE(unpadded.megabytes, padded.megabytes) << api::backend_name(b);
    EXPECT_LE(unpadded.messages, padded.messages) << api::backend_name(b);
  }
}

}  // namespace
}  // namespace sdsm::apps::nbf
