// Tests for the CHAOS inspector/executor baseline: translation tables,
// schedule construction with duplicate elimination, gather/scatter
// round-trips, and message accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "src/chaos/chaos_runtime.hpp"
#include "src/chaos/executor.hpp"
#include "src/chaos/inspector.hpp"
#include "src/chaos/translation_table.hpp"
#include "src/common/rng.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::chaos {
namespace {

std::vector<NodeId> block_owner_map(std::int64_t n, std::uint32_t p) {
  std::vector<NodeId> owner(n);
  for (std::int64_t i = 0; i < n; ++i) {
    owner[i] = part::block_owner(i, n, p);
  }
  return owner;
}

TEST(TranslationTable, RemapAssignsDenseLocalOffsets) {
  // Interleaved ownership: offsets must still be dense per owner.
  std::vector<NodeId> owner{0, 1, 0, 1, 0, 1};
  auto t = TranslationTable::build(owner, 2, TableKind::kReplicated);
  EXPECT_EQ(t.lookup(0).home, 0u);
  EXPECT_EQ(t.lookup(0).offset, 0);
  EXPECT_EQ(t.lookup(2).offset, 1);
  EXPECT_EQ(t.lookup(4).offset, 2);
  EXPECT_EQ(t.lookup(1).home, 1u);
  EXPECT_EQ(t.lookup(1).offset, 0);
  EXPECT_EQ(t.lookup(5).offset, 2);
  EXPECT_EQ(t.local_count(0), 3);
  EXPECT_EQ(t.local_count(1), 3);
}

TEST(TranslationTable, DistributedEntryHomesFollowBlockPartition) {
  auto owner = block_owner_map(100, 4);
  auto t = TranslationTable::build(owner, 4, TableKind::kDistributed);
  EXPECT_EQ(t.entry_home(0), 0u);
  EXPECT_EQ(t.entry_home(99), 3u);
  // Entry home is about table storage, not data ownership.
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t.entry_home(i), part::block_owner(i, 100, 4));
  }
}

TEST(TranslationTable, PagedEntryHomesRoundRobinByPage) {
  auto owner = block_owner_map(100, 4);
  auto t = TranslationTable::build(owner, 4, TableKind::kPaged, 10);
  EXPECT_EQ(t.entry_home(0), 0u);
  EXPECT_EQ(t.entry_home(9), 0u);
  EXPECT_EQ(t.entry_home(10), 1u);
  EXPECT_EQ(t.entry_home(45), 0u);  // page 4 % 4
}

TEST(TranslationTable, ReplicatedCostsFullTablePerNode) {
  auto owner = block_owner_map(1000, 4);
  auto rep = TranslationTable::build(owner, 4, TableKind::kReplicated);
  auto dist = TranslationTable::build(owner, 4, TableKind::kDistributed);
  EXPECT_EQ(rep.bytes_per_node(0), 1000 * sizeof(TableEntry));
  EXPECT_EQ(dist.bytes_per_node(0), 250 * sizeof(TableEntry));
}

TEST(ChaosRuntime, BarrierSynchronizes) {
  ChaosRuntime rt(4);
  std::atomic<int> phase0{0};
  rt.run([&](ChaosNode& node) {
    phase0.fetch_add(1);
    node.barrier();
    EXPECT_EQ(phase0.load(), 4);
  });
}

TEST(ChaosRuntime, AllToAllDeliversPersonalizedPayloads) {
  ChaosRuntime rt(3);
  rt.run([&](ChaosNode& node) {
    std::vector<std::vector<std::uint8_t>> out(3);
    for (NodeId p = 0; p < 3; ++p) {
      if (p == node.id()) continue;
      out[p] = {static_cast<std::uint8_t>(10 * node.id() + p)};
    }
    auto in = node.all_to_all(std::move(out));
    for (NodeId p = 0; p < 3; ++p) {
      if (p == node.id()) continue;
      ASSERT_EQ(in[p].size(), 1u);
      EXPECT_EQ(in[p][0], 10 * p + node.id());
    }
  });
}

TEST(Inspector, BuildsConsistentScheduleForBlockPartition) {
  // 2 nodes, 20 elements, block partition.  Node 0 references some of node
  // 1's elements and vice versa.
  const std::int64_t n = 20;
  const std::uint32_t nprocs = 2;
  auto owner = block_owner_map(n, nprocs);
  auto table = TranslationTable::build(owner, nprocs, TableKind::kReplicated);
  ChaosRuntime rt(nprocs);
  rt.run([&](ChaosNode& node) {
    // Each node references its own elements plus two remote ones.
    std::vector<std::int64_t> refs;
    const auto range = part::block_partition(n, nprocs)[node.id()];
    for (std::int64_t i = range.begin; i < range.end; ++i) refs.push_back(i);
    refs.push_back((range.end + 1) % n);
    refs.push_back((range.end + 3) % n);

    InspectorStats stats;
    Schedule sched = build_schedule(node, refs, table, &stats);
    EXPECT_EQ(sched.num_ghosts, 2);
    EXPECT_EQ(stats.distinct_remote, 2);
    // The peer must be scheduled to send exactly 2 elements.
    const NodeId peer = 1 - node.id();
    EXPECT_EQ(sched.recv_ghost[peer].size(), 2u);
    EXPECT_EQ(sched.send_elems[peer].size(), 2u);
  });
}

TEST(Inspector, DuplicateReferencesAreEliminated) {
  const std::int64_t n = 16;
  auto owner = block_owner_map(n, 2);
  auto table = TranslationTable::build(owner, 2, TableKind::kReplicated);
  ChaosRuntime rt(2);
  rt.run([&](ChaosNode& node) {
    std::vector<std::int64_t> refs;
    const std::int64_t remote = node.id() == 0 ? 12 : 2;
    for (int i = 0; i < 50; ++i) refs.push_back(remote);  // same element 50x
    InspectorStats stats;
    Schedule sched = build_schedule(node, refs, table, &stats);
    EXPECT_EQ(stats.references, 50);
    EXPECT_EQ(stats.distinct_remote, 1);  // dedup worked
    EXPECT_EQ(sched.num_ghosts, 1);
  });
}

TEST(Inspector, DistributedTableLookupsGenerateMessages) {
  const std::int64_t n = 64;
  auto owner = block_owner_map(n, 4);
  auto rep = TranslationTable::build(owner, 4, TableKind::kReplicated);
  auto dist = TranslationTable::build(owner, 4, TableKind::kDistributed);

  auto run_and_count = [&](const TranslationTable& table) {
    ChaosRuntime rt(4);
    rt.run([&](ChaosNode& node) {
      std::vector<std::int64_t> refs;
      for (std::int64_t i = 0; i < n; i += 3) refs.push_back(i);
      build_schedule(node, refs, table);
    });
    return rt.total_messages();
  };

  // The distributed table needs two extra all-to-all rounds.
  EXPECT_GT(run_and_count(dist), run_and_count(rep));
}

TEST(Executor, GatherBringsCurrentRemoteValues) {
  const std::int64_t n = 24;
  const std::uint32_t nprocs = 3;
  auto owner = block_owner_map(n, nprocs);
  auto table = TranslationTable::build(owner, nprocs, TableKind::kReplicated);
  ChaosRuntime rt(nprocs);
  rt.run([&](ChaosNode& node) {
    const auto range = part::block_partition(n, nprocs)[node.id()];
    std::vector<double> local(static_cast<std::size_t>(range.size()));
    for (std::int64_t i = 0; i < range.size(); ++i) {
      local[static_cast<std::size_t>(i)] =
          static_cast<double>(range.begin + i) * 10.0;
    }
    // Every node wants the first element of each other node's block.
    std::vector<std::int64_t> refs;
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      if (p != node.id()) {
        refs.push_back(part::block_partition(n, nprocs)[p].begin);
      }
    }
    Schedule sched = build_schedule(node, refs, table);
    std::vector<double> ghosts(static_cast<std::size_t>(sched.num_ghosts));
    gather<double>(node, sched, local, ghosts);
    for (const std::int64_t g : refs) {
      const auto slot = sched.ghost_of_global(g);
      EXPECT_EQ(ghosts[static_cast<std::size_t>(slot)],
                static_cast<double>(g) * 10.0);
    }
  });
}

TEST(Executor, ScatterAccumulatesIntoOwners) {
  const std::int64_t n = 8;
  const std::uint32_t nprocs = 2;
  auto owner = block_owner_map(n, nprocs);
  auto table = TranslationTable::build(owner, nprocs, TableKind::kReplicated);
  ChaosRuntime rt(nprocs);
  rt.run([&](ChaosNode& node) {
    const auto range = part::block_partition(n, nprocs)[node.id()];
    std::vector<double> local(static_cast<std::size_t>(range.size()), 1.0);
    // Each node contributes 5.0 to the other's first element.
    const std::int64_t target = node.id() == 0 ? 4 : 0;
    std::vector<std::int64_t> refs{target};
    Schedule sched = build_schedule(node, refs, table);
    std::vector<double> ghosts(static_cast<std::size_t>(sched.num_ghosts), 5.0);
    scatter<double>(node, sched, std::span<double>(local), ghosts,
                    [](double a, double b) { return a + b; });
    // My element 0 (global range.begin) received the remote 5.0.
    EXPECT_EQ(local[0], 6.0);
    EXPECT_EQ(local[1], 1.0);
  });
}

TEST(Executor, GatherScatterRoundTripConservesTotals) {
  // Force-accumulation pattern: gather x, compute, scatter contributions.
  // The sum of all force entries must equal the sum of all contributions.
  const std::int64_t n = 120;
  const std::uint32_t nprocs = 4;
  auto owner = block_owner_map(n, nprocs);
  auto table = TranslationTable::build(owner, nprocs, TableKind::kReplicated);
  ChaosRuntime rt(nprocs);
  std::vector<double> final_sums(nprocs, 0.0);
  rt.run([&](ChaosNode& node) {
    sdsm::Rng rng(1000 + node.id());
    const auto range = part::block_partition(n, nprocs)[node.id()];
    std::vector<double> force(static_cast<std::size_t>(range.size()), 0.0);

    // Reference 30 random elements anywhere.
    std::vector<std::int64_t> refs;
    for (int i = 0; i < 30; ++i) {
      refs.push_back(static_cast<std::int64_t>(rng.next_below(n)));
    }
    Schedule sched = build_schedule(node, refs, table);
    auto local_refs = localize_references(node.id(), refs, table, sched);

    // Contribute 1.0 to every referenced element (local or ghost).
    std::vector<double> ghosts(static_cast<std::size_t>(sched.num_ghosts), 0.0);
    const auto local_n = static_cast<std::int32_t>(range.size());
    for (const std::int32_t lr : local_refs) {
      if (lr < local_n) {
        force[static_cast<std::size_t>(lr)] += 1.0;
      } else {
        ghosts[static_cast<std::size_t>(lr - local_n)] += 1.0;
      }
    }
    scatter<double>(node, sched, std::span<double>(force), ghosts,
                    [](double a, double b) { return a + b; });
    final_sums[node.id()] =
        std::accumulate(force.begin(), force.end(), 0.0);
    node.barrier();
  });
  const double total = std::accumulate(final_sums.begin(), final_sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 4 * 30.0);  // every contribution landed exactly once
}

TEST(Executor, OneMessagePerDirectionPerActivePair) {
  // Run the same program twice, with and without the gather; the message
  // difference is exactly the gather traffic: one direction active -> one
  // data message.
  const std::int64_t n = 40;
  const std::uint32_t nprocs = 2;
  auto owner = block_owner_map(n, nprocs);
  auto table = TranslationTable::build(owner, nprocs, TableKind::kReplicated);

  auto run_once = [&](bool with_gather) {
    ChaosRuntime rt(nprocs);
    rt.run([&](ChaosNode& node) {
      // Node 0 needs 10 elements from node 1; node 1 needs nothing.
      std::vector<std::int64_t> refs;
      if (node.id() == 0) {
        for (std::int64_t i = 20; i < 30; ++i) refs.push_back(i);
      }
      Schedule sched = build_schedule(node, refs, table);
      node.barrier();
      if (with_gather) {
        const auto range = part::block_partition(n, nprocs)[node.id()];
        std::vector<double> local(static_cast<std::size_t>(range.size()), 2.0);
        std::vector<double> ghosts(static_cast<std::size_t>(sched.num_ghosts));
        gather<double>(node, sched, local, ghosts);
      }
      node.barrier();
    });
    return rt.total_messages();
  };

  EXPECT_EQ(run_once(true) - run_once(false), 1u);
}

}  // namespace
}  // namespace sdsm::chaos
