// Tests for the adaptive coherence engine (sdsm::coherence): heat-counter
// epoch decay, the deterministic write census, policy classification
// (replicate after a sustained streak, migrate with hysteresis — an
// epoch-alternating writer pair must NOT ping-pong ownership — and silent
// demotion), the extended write-notice codec (static encoding stays
// byte-identical to the historical wire format), static-mode inertness
// (zero adaptive counters, traffic identical to the baseline), and the
// adaptive end-to-end contract: bit-exact checksums with strictly fewer
// messages on the replicate-friendly workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/api/api.hpp"
#include "src/apps/moldyn/moldyn_kernel.hpp"
#include "src/apps/pagerank/pagerank.hpp"
#include "src/coherence/coherence.hpp"
#include "src/coherence/heat.hpp"
#include "src/coherence/policy.hpp"
#include "src/common/buffer.hpp"
#include "src/common/stats.hpp"
#include "src/core/interval.hpp"
#include "src/harness/options.hpp"

namespace sdsm::coherence {
namespace {

TEST(CoherencePolicyEnum, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_coherence_policy("static"), CoherencePolicy::kStatic);
  EXPECT_EQ(parse_coherence_policy("adaptive"), CoherencePolicy::kAdaptive);
  EXPECT_FALSE(parse_coherence_policy("eager").has_value());
  EXPECT_EQ(coherence_policy_name(CoherencePolicy::kStatic), "static");
  EXPECT_EQ(coherence_policy_name(CoherencePolicy::kAdaptive), "adaptive");
}

TEST(CoherencePolicyEnum, HarnessFlagParses) {
  const char* argv[] = {"prog", "--coherence=adaptive"};
  const harness::Options o =
      harness::Options::parse(2, const_cast<char**>(argv));
  EXPECT_EQ(o.coherence, CoherencePolicy::kAdaptive);

  const char* argv2[] = {"prog"};
  EXPECT_EQ(harness::Options::parse(1, const_cast<char**>(argv2)).coherence,
            CoherencePolicy::kStatic);
}

// --- HeatTracker -----------------------------------------------------------

TEST(HeatTracker, HalvingDecayPerEpoch) {
  EXPECT_EQ(HeatTracker::decayed(0x8000, 0), 0x8000);
  EXPECT_EQ(HeatTracker::decayed(0x8000, 1), 0x4000);
  EXPECT_EQ(HeatTracker::decayed(0x8000, 15), 1);
  EXPECT_EQ(HeatTracker::decayed(0x8000, 16), 0);
  EXPECT_EQ(HeatTracker::decayed(0xffff, 1000), 0);  // no UB on huge gaps
}

TEST(HeatTracker, AdvanceIsLazyAndBumpSaturates) {
  std::uint16_t read = 100, write = 40;
  std::uint32_t epoch = 2;
  HeatTracker::advance(read, write, epoch, 2);  // same epoch: no-op
  EXPECT_EQ(read, 100);
  EXPECT_EQ(write, 40);

  HeatTracker::bump_read(read, write, epoch, 4);  // 2 epochs idle: /4
  EXPECT_EQ(read, 26);                            // 100 >> 2, then +1
  EXPECT_EQ(write, 10);                           // decayed, not bumped
  EXPECT_EQ(epoch, 4u);

  read = HeatTracker::kMax;
  HeatTracker::bump_read(read, write, epoch, 4);
  EXPECT_EQ(read, HeatTracker::kMax);  // saturates, never wraps
}

// --- WriteCensus -----------------------------------------------------------

TEST(WriteCensus, SameEpochFoldsCommute) {
  // Two intervals in one epoch (a GC inner round) add; streak is counted
  // per epoch, not per interval.
  WriteCensus c;
  c.fold(7, 1, 100, 3);
  c.fold(7, 1, 50, 3);
  const WriteCensus::Entry* e = c.find(7);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->writers.size(), 1u);
  EXPECT_EQ(e->writers[0].score, 150u);
  EXPECT_EQ(e->writers[0].streak, 1u);
}

TEST(WriteCensus, StreakCountsConsecutiveEpochsOnly) {
  WriteCensus c;
  c.fold(7, 1, 100, 1);
  c.fold(7, 1, 100, 2);
  EXPECT_EQ(c.find(7)->writers[0].streak, 2u);
  c.fold(7, 1, 100, 5);  // gap: the streak restarts
  EXPECT_EQ(c.find(7)->writers[0].streak, 1u);
  // The carried score decayed by the 3 idle epochs before the add.
  EXPECT_EQ(c.find(7)->writers[0].score, (150u >> 3) + 100u);
}

TEST(WriteCensus, PruneDropsDecayedWritersAndEmptyPages) {
  WriteCensus c;
  c.fold(7, 1, 2, 1);    // tiny score: gone after 2 idle epochs
  c.fold(7, 2, 1 << 20, 1);
  c.fold(9, 3, 4, 1);
  c.prune(4);
  ASSERT_NE(c.find(7), nullptr);
  EXPECT_EQ(c.find(7)->writers.size(), 1u);  // writer 1 decayed out
  EXPECT_EQ(c.find(7)->writers[0].node, 2u);
  EXPECT_EQ(c.find(9), nullptr);  // whole page decayed out
}

// --- PolicyEngine ----------------------------------------------------------

TEST(PolicyEngine, SoleWriterReplicatesAfterStreak) {
  PolicyEngine pe(0, CoherenceTuning{});
  pe.fold_write(7, 1, 1000);
  pe.tick();  // streak 1 < repl_epochs: still unclassified
  EXPECT_EQ(pe.page_class(7), PageClass::kNone);
  EXPECT_FALSE(pe.should_inline(7));

  pe.fold_write(7, 1, 1000);
  const auto tr = pe.tick();  // streak 2: replicate
  EXPECT_EQ(pe.page_class(7), PageClass::kReplicated);
  EXPECT_EQ(pe.owner(7), 1u);
  EXPECT_TRUE(pe.should_inline(7));
  EXPECT_EQ(tr.migrations, 0u);  // replication is not a migration
}

TEST(PolicyEngine, ReplicatedPageStaysThroughIdleEpochsThenDemotes) {
  PolicyEngine pe(0, CoherenceTuning{});
  pe.fold_write(7, 1, 4);
  pe.tick();
  pe.fold_write(7, 1, 4);
  pe.tick();
  EXPECT_EQ(pe.page_class(7), PageClass::kReplicated);
  pe.tick();  // idle epoch: score (6) still nonzero after decay — sticky
  EXPECT_EQ(pe.page_class(7), PageClass::kReplicated);
  pe.tick();  // score decays to zero: silent demotion
  EXPECT_EQ(pe.page_class(7), PageClass::kNone);
  EXPECT_EQ(pe.owner(7), PolicyEngine::kInvalidNode);
}

TEST(PolicyEngine, AlternatingWritersDoNotPingPongOwnership) {
  // Writers A=1 and B=2 alternate epochs on the same page.  With halving
  // decay an alternating challenger peaks below the 3x hysteresis ratio,
  // so ownership must settle after the first assignment and never flap.
  PolicyEngine pe(0, CoherenceTuning{});
  std::uint32_t total_migrations = 0;
  pe.fold_write(7, 1, 1000);
  total_migrations += pe.tick().migrations;  // sole writer so far: none
  for (int e = 1; e <= 10; ++e) {
    pe.fold_write(7, e % 2 == 0 ? 1 : 2, 1000);
    total_migrations += pe.tick().migrations;
  }
  EXPECT_EQ(pe.page_class(7), PageClass::kMigrated);
  EXPECT_EQ(total_migrations, 1u);  // the initial assignment, then stable
}

TEST(PolicyEngine, SustainedHandOffOvercomesHysteresis) {
  // A dominates while it writes; once A stops and B keeps writing, B's
  // steady score must overtake A's decaying one within a few epochs.
  PolicyEngine pe(2, CoherenceTuning{});
  std::uint32_t total_migrations = 0;
  for (int e = 0; e < 3; ++e) {
    pe.fold_write(7, 1, 4000);
    pe.fold_write(7, 2, 2000);
    total_migrations += pe.tick().migrations;
  }
  EXPECT_EQ(pe.page_class(7), PageClass::kMigrated);
  EXPECT_EQ(pe.owner(7), 1u);
  EXPECT_EQ(total_migrations, 1u);

  int epochs_to_flip = 0;
  std::vector<PageId> newly_owned;
  while (pe.owner(7) != 2u) {
    ASSERT_LT(epochs_to_flip, 5) << "hand-off never cleared hysteresis";
    pe.fold_write(7, 2, 2000);
    const auto tr = pe.tick();
    total_migrations += tr.migrations;
    newly_owned.insert(newly_owned.end(), tr.newly_owned.begin(),
                       tr.newly_owned.end());
    ++epochs_to_flip;
  }
  EXPECT_EQ(total_migrations, 2u);
  // self_ == 2 took the page over: exactly one ownership-transfer report.
  ASSERT_EQ(newly_owned.size(), 1u);
  EXPECT_EQ(newly_owned[0], 7u);
}

TEST(PolicyEngine, ResetClearsEverything) {
  PolicyEngine pe(0, CoherenceTuning{});
  pe.fold_write(7, 1, 1000);
  pe.tick();
  pe.fold_write(7, 1, 1000);
  pe.tick();
  ASSERT_EQ(pe.page_class(7), PageClass::kReplicated);
  pe.reset();
  EXPECT_EQ(pe.epoch(), 0u);
  EXPECT_EQ(pe.page_class(7), PageClass::kNone);
  EXPECT_FALSE(pe.should_inline(7));
}

// --- Wire codec ------------------------------------------------------------

TEST(NoticeCodec, StaticEncodingIsByteIdenticalToHistoricalFormat) {
  // Under the static policy every notice has empty inline_diff and
  // diff_bytes 0, and the encoding must be exactly the pre-coherence
  // format: page u32 + a single {0, 1} flag byte.
  core::IntervalMeta m;
  m.id = core::IntervalId{2, 9};
  m.vc = core::VectorClock(4);
  m.vc.set(2, 9);
  m.notices.resize(2);
  m.notices[0].page = 5;
  m.notices[1].page = 17;
  m.notices[1].whole_page = true;
  Writer w;
  m.serialize(w);

  Writer expected;
  expected.put<std::uint32_t>(2);
  expected.put<std::uint32_t>(9);
  m.vc.serialize(expected);
  expected.put<std::uint32_t>(2);  // notice count
  expected.put<std::uint32_t>(5);
  expected.put<std::uint8_t>(0);
  expected.put<std::uint32_t>(17);
  expected.put<std::uint8_t>(1);
  EXPECT_EQ(w.bytes(), expected.bytes());
}

TEST(NoticeCodec, InlineDiffAndCensusSizeRoundTrip) {
  core::IntervalMeta m;
  m.id = core::IntervalId{1, 4};
  m.vc = core::VectorClock(2);
  m.vc.set(1, 4);
  core::WriteNotice inlined;
  inlined.page = 11;
  inlined.whole_page = true;
  inlined.inline_diff = {0xde, 0xad, 0xbe, 0xef};
  core::WriteNotice census_only;
  census_only.page = 12;
  census_only.diff_bytes = 4096;
  m.notices = {inlined, census_only};

  Writer w;
  m.serialize(w);
  auto bytes = w.take();
  Reader r(bytes);
  const core::IntervalMeta out = core::IntervalMeta::deserialize(r);
  ASSERT_EQ(out.notices.size(), 2u);
  EXPECT_TRUE(out.notices[0].whole_page);
  EXPECT_EQ(out.notices[0].inline_diff, inlined.inline_diff);
  EXPECT_EQ(out.notices[0].diff_bytes, 4u);  // recovered from the payload
  EXPECT_TRUE(out.notices[1].inline_diff.empty());
  EXPECT_EQ(out.notices[1].diff_bytes, 4096u);
}

// --- Stats plumbing --------------------------------------------------------

TEST(CoherenceStats, SnapshotDeltasSubtract) {
  DsmStats stats;
  stats.replications.add(3);
  stats.migrations.add(8);
  const DsmStats::Snapshot before = stats.snapshot();
  stats.replications.add(2);
  stats.ghost_promotions.add(5);
  const DsmStats::Snapshot delta = stats.snapshot() - before;
  EXPECT_EQ(delta.replications, 2u);
  EXPECT_EQ(delta.migrations, 0u);
  EXPECT_EQ(delta.ghost_promotions, 5u);
}

// --- End to end ------------------------------------------------------------

using apps::checksum_close;

TEST(CoherenceEndToEnd, StaticModeIsInertAndAdaptiveIsBitExact) {
  // pagerank: block-partitioned rank pages have a single sustained writer
  // each, the replicate-friendly shape.  The adaptive run must reproduce
  // the static checksum BIT-exactly (same arithmetic, different transport
  // mechanism) while eliminating fetch round trips.
  apps::pagerank::Params p;
  p.num_vertices = 2048;
  p.edges_per_vertex = 4;
  p.num_steps = 8;
  p.nprocs = 4;
  const auto seq = apps::pagerank::run_seq(p);

  for (const api::Backend b :
       {api::Backend::kTmkBase, api::Backend::kTmkOptimized}) {
    api::BackendOptions sopts = apps::pagerank::default_options();
    const auto rs = apps::pagerank::run(b, p, sopts);
    // Static mode is inert: no decisions, counters identically zero.
    EXPECT_EQ(rs.tmk.replications, 0u) << api::backend_name(b);
    EXPECT_EQ(rs.tmk.migrations, 0u) << api::backend_name(b);
    EXPECT_EQ(rs.tmk.ghost_promotions, 0u) << api::backend_name(b);
    EXPECT_TRUE(checksum_close(seq.checksum, rs.checksum));

    api::BackendOptions aopts = apps::pagerank::default_options();
    aopts.coherence = CoherencePolicy::kAdaptive;
    const auto ra = apps::pagerank::run(b, p, aopts);
    EXPECT_EQ(ra.checksum, rs.checksum) << api::backend_name(b)
                                        << ": adaptive must be bit-exact";
    EXPECT_EQ(ra.steps_run, rs.steps_run);
    EXPECT_GT(ra.tmk.replications, 0u) << api::backend_name(b);
    EXPECT_LT(ra.messages, rs.messages)
        << api::backend_name(b)
        << ": replication must eliminate fetch round trips";
  }
}

TEST(CoherenceEndToEnd, MoldynAdaptiveBitExactWithMigrations) {
  // moldyn's force chain makes boundary pages genuinely multi-writer:
  // the migrate path with the full diff machinery (twins, inline diffs,
  // eager apply) underneath.  Bit-exactness is the contract; decisions
  // must actually fire.
  apps::moldyn::Params p;
  p.num_molecules = 512;
  p.num_steps = 8;
  p.update_interval = 4;
  p.nprocs = 4;
  const auto sys = apps::moldyn::make_system(p);

  for (const api::Backend b :
       {api::Backend::kTmkBase, api::Backend::kTmkOptimized}) {
    api::BackendOptions sopts = apps::moldyn::default_options();
    const auto rs = apps::moldyn::run(b, p, sys, sopts);
    api::BackendOptions aopts = apps::moldyn::default_options();
    aopts.coherence = CoherencePolicy::kAdaptive;
    const auto ra = apps::moldyn::run(b, p, sys, aopts);
    EXPECT_EQ(ra.checksum, rs.checksum) << api::backend_name(b)
                                        << ": adaptive must be bit-exact";
    EXPECT_GT(ra.tmk.replications + ra.tmk.migrations, 0u)
        << api::backend_name(b);
  }
}

TEST(CoherenceEndToEnd, GhostPromotionFiresOnStableIndirection) {
  // pagerank's CSR structure never changes, so on the optimized backend
  // (compiler-driven Validate) the schedule's indirection pages go stable
  // and must be promoted to a ghost zone after ghost_epochs.
  apps::pagerank::Params p;
  p.num_vertices = 2048;
  p.edges_per_vertex = 4;
  p.num_steps = 8;
  p.nprocs = 4;
  api::BackendOptions opts = apps::pagerank::default_options();
  opts.coherence = CoherencePolicy::kAdaptive;
  const auto r = apps::pagerank::run(api::Backend::kTmkOptimized, p, opts);
  EXPECT_GT(r.tmk.ghost_promotions, 0u);
}

}  // namespace
}  // namespace sdsm::coherence
