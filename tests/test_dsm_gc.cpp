// Diff-store garbage collection: the barrier-piggybacked flush-and-drop
// round (TreadMarks GC).  A tiny threshold forces collections mid-run; the
// tests check that data survives, that the stores actually shrink, and that
// Validate schedules keep working across collections.
#include <gtest/gtest.h>

#include "src/core/dsm.hpp"

namespace sdsm::core {
namespace {

DsmConfig gc_config(std::uint32_t nodes, std::size_t threshold) {
  DsmConfig cfg;
  cfg.num_nodes = nodes;
  cfg.region_bytes = 8u << 20;
  cfg.gc_threshold_bytes = threshold;
  return cfg;
}

TEST(DsmGc, CollectsAndPreservesData) {
  // Each node rewrites its own block every step but only reads its
  // neighbour's block, so distant blocks stay lazily pending — the GC
  // flush round must fetch them.  A 64KB threshold forces several
  // collections; the final audit checks nothing was lost.
  const std::uint32_t nodes = 4;
  const int steps = 12;
  const int per = 4096;  // ints per node block (4 pages)
  DsmRuntime rt(gc_config(nodes, 64 << 10));
  auto arr = rt.alloc_global<int>(nodes * per);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    const int lo = static_cast<int>(self.id()) * per;
    for (int s = 0; s < steps; ++s) {
      for (int i = lo; i < lo + per; ++i) p[i] = s * 1000003 + i;
      self.barrier();
      // Read only the next node's block; other blocks stay pending.
      const int nlo = (static_cast<int>(self.id() + 1) % nodes) * per;
      for (int i = nlo; i < nlo + per; ++i) {
        if (p[i] != s * 1000003 + i) {
          std::fprintf(stderr, "node %u step %d elem %d: got %d\n", self.id(),
                       s, i, p[i]);
          std::abort();
        }
      }
      self.barrier();
    }
    // Final audit: everything, including blocks never read mid-run.
    for (int i = 0; i < static_cast<int>(nodes) * per; ++i) {
      if (p[i] != (steps - 1) * 1000003 + i) {
        std::fprintf(stderr, "node %u final elem %d: got %d\n", self.id(), i,
                     p[i]);
        std::abort();
      }
    }
    self.barrier();
  });
  EXPECT_GT(rt.stats().gc_runs.get(), 0u);
  EXPECT_GT(rt.stats().gc_pages_flushed.get(), 0u);
}

TEST(DsmGc, DisabledWhenThresholdZero) {
  DsmRuntime rt(gc_config(2, 0));
  auto arr = rt.alloc_global<int>(8192);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    for (int s = 0; s < 6; ++s) {
      if (self.id() == 0) {
        for (int i = 0; i < 8192; ++i) p[i] = s + i;
      }
      self.barrier();
      if (self.id() == 1 && p[100] != s + 100) std::abort();
      self.barrier();
    }
  });
  EXPECT_EQ(rt.stats().gc_runs.get(), 0u);
}

TEST(DsmGc, ValidateSchedulesSurviveCollection) {
  // An INDIRECT schedule's cached page set and watch protection must keep
  // detecting indirection changes across GC flush/drop rounds.
  const std::uint32_t nodes = 2;
  DsmRuntime rt(gc_config(nodes, 32 << 10));
  const std::int64_t n = 4096;
  auto data = rt.alloc_global<double>(n);
  auto idx = rt.alloc_global<std::int32_t>(n);
  rt.run([&](DsmNode& self) {
    double* d = self.ptr(data);
    std::int32_t* ix = self.ptr(idx);
    for (int s = 0; s < 8; ++s) {
      if (self.id() == 0) {
        for (std::int64_t i = 0; i < n; ++i) {
          d[i] = s * 10.0 + static_cast<double>(i);
          ix[i] = static_cast<std::int32_t>((i * 7 + s) % n);
        }
      }
      self.barrier();
      if (self.id() == 1) {
        self.validate({indirect_desc(
            data.addr, sizeof(double), idx.addr,
            rsd::ArrayLayout{{n}, true},
            rsd::RegularSection::dense1d(0, n - 1), Access::kRead, 7)});
        double sum = 0;
        for (std::int64_t i = 0; i < n; ++i) sum += d[ix[i]];
        double expect = 0;
        for (std::int64_t i = 0; i < n; ++i) {
          expect += s * 10.0 + static_cast<double>((i * 7 + s) % n);
        }
        if (sum != expect) std::abort();
      }
      self.barrier();
    }
  });
  // The index array changes every step, so every step recomputes.
  EXPECT_GE(rt.stats().validate_recomputes.get(), 8u);
  EXPECT_GT(rt.stats().gc_runs.get(), 0u);
}

TEST(DsmGc, RepeatedCollectionsStayStable) {
  // Many tiny collections in sequence: regression guard for the MetaLog
  // base-offset bookkeeping.
  const std::uint32_t nodes = 3;
  DsmRuntime rt(gc_config(nodes, 8 << 10));
  auto arr = rt.alloc_global<int>(3 * 2048);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    const int lo = static_cast<int>(self.id()) * 2048;
    for (int s = 0; s < 20; ++s) {
      for (int i = lo; i < lo + 2048; ++i) p[i] = s ^ i;
      self.barrier();
      const int peer = (static_cast<int>(self.id()) + 1) % 3;
      for (int i = peer * 2048; i < peer * 2048 + 2048; ++i) {
        if (p[i] != (s ^ i)) std::abort();
      }
      self.barrier();
    }
  });
  EXPECT_GE(rt.stats().gc_runs.get(), 2u);
}

}  // namespace
}  // namespace sdsm::core
