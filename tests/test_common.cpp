// Unit and property tests for the common substrate: RNG, serialization
// buffers, counters.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/buffer.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/common/timer.hpp"

namespace sdsm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(Rng, NextInCoversInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformityRoughCheck) {
  Rng r(5);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[r.next_below(10)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Buffer, PodRoundTrip) {
  Writer w;
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<double>(3.5);
  w.put<std::int8_t>(-7);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<double>(), 3.5);
  EXPECT_EQ(r.get<std::int8_t>(), -7);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, SpanRoundTrip) {
  const std::vector<std::int32_t> in{1, -2, 3, -4, 5};
  Writer w;
  w.put_span<std::int32_t>(in);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.get_vector<std::int32_t>(), in);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, EmptySpanRoundTrip) {
  Writer w;
  w.put_span<std::uint64_t>({});
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_TRUE(r.get_vector<std::uint64_t>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Buffer, StringRoundTrip) {
  Writer w;
  w.put_string("hello irregular world");
  w.put_string("");
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.get_string(), "hello irregular world");
  EXPECT_EQ(r.get_string(), "");
}

TEST(Buffer, RawBytes) {
  const char raw[4] = {'a', 'b', 'c', 'd'};
  Writer w;
  w.put<std::uint32_t>(4);
  w.put_raw(raw, 4);
  auto bytes = w.take();
  Reader r(bytes);
  const auto n = r.get<std::uint32_t>();
  char out[4];
  r.get_raw(out, n);
  EXPECT_EQ(std::memcmp(raw, out, 4), 0);
}

TEST(Buffer, MixedSequenceRoundTripProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Writer w;
    std::vector<std::uint64_t> expect;
    const int n = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < n; ++i) {
      const auto v = rng.next_u64();
      expect.push_back(v);
      w.put<std::uint64_t>(v);
    }
    auto bytes = w.take();
    Reader r(bytes);
    for (const auto v : expect) {
      EXPECT_EQ(r.get<std::uint64_t>(), v);
    }
    EXPECT_TRUE(r.done());
  }
}

TEST(Counter, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.get(), 80000u);
}

TEST(Stats, ResetClearsEverything) {
  DsmStats s;
  s.messages.add(3);
  s.bytes.add(1000);
  s.diffs_created.add(2);
  s.reset();
  EXPECT_EQ(s.messages.get(), 0u);
  EXPECT_EQ(s.bytes.get(), 0u);
  EXPECT_EQ(s.diffs_created.get(), 0u);
}

TEST(Stats, SummaryMentionsCounts) {
  DsmStats s;
  s.messages.add(123);
  const auto text = s.summary();
  EXPECT_NE(text.find("msgs=123"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.elapsed_ms(), 15.0);
  t.reset();
  EXPECT_LT(t.elapsed_ms(), 15.0);
}

}  // namespace
}  // namespace sdsm
