// CSR work-item edge cases through the full backend matrix: empty rows and
// empty nodes, a single giant row spanning many DSM pages, and periodic
// rebuilds that change row lengths — each checked on all three backends
// under both transports, with cross-transport message/byte parity.  Plus
// the contract itself: WorkItems helpers, KernelSpec::require_valid_items
// failure messages naming the violating field, and the owner_of
// empty-range precondition.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/api/api.hpp"
#include "src/apps/app_types.hpp"

namespace sdsm::api {
namespace {

using apps::checksum_close;

// --- WorkItems / KernelSpec contract ---------------------------------------

TEST(WorkItems, UniformOffsetsMatchExplicitRows) {
  WorkItems manual;
  manual.push_row({1, 2, 3});
  manual.push_row({4, 5, 6});
  WorkItems uniform;
  uniform.refs = {1, 2, 3, 4, 5, 6};
  uniform.finish_uniform(3);
  EXPECT_EQ(manual.row_offsets, uniform.row_offsets);
  EXPECT_EQ(manual.refs, uniform.refs);
  EXPECT_EQ(manual.num_items(), 2u);
}

TEST(WorkItems, EmptyRowsAndEmptyItems) {
  WorkItems items;
  items.end_row();            // empty row
  items.push_row({7});        // singleton
  items.end_row();            // empty row again
  EXPECT_EQ(items.num_items(), 3u);
  EXPECT_EQ(items.row_offsets, (std::vector<std::int64_t>{0, 0, 1, 1}));
  EXPECT_EQ(WorkItems{}.num_items(), 0u);
}

KernelSpec<double> tiny_spec() {
  KernelSpec<double> spec;
  spec.num_elements = 16;
  spec.max_items_per_node = 8;
  spec.max_refs_per_node = 32;
  return spec;
}

TEST(KernelSpecItems, ShapeOfValidItems) {
  WorkItems items;
  items.push_row({0, 1, 2});
  items.end_row();
  items.push_row({3});
  const ItemsShape shape = tiny_spec().require_valid_items(items);
  EXPECT_EQ(shape.num_items, 3u);
  EXPECT_EQ(shape.num_refs, 4u);
  EXPECT_EQ(shape.max_row, 3u);
  // Zero items: validation also normalizes empty offsets to {0}, the
  // num_items()+1 shape every KernelCtx promises.
  WorkItems none;
  EXPECT_EQ(tiny_spec().require_valid_items(none).num_items, 0u);
  EXPECT_EQ(none.row_offsets, (std::vector<std::int64_t>{0}));
}

TEST(KernelSpecItemsDeathTest, ViolationsNameTheField) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  WorkItems bad_monotone;
  bad_monotone.refs = {0, 1};
  bad_monotone.row_offsets = {0, 2, 1, 2};
  EXPECT_DEATH(tiny_spec().require_valid_items(bad_monotone),
               "WorkItems.row_offsets: not monotone");

  WorkItems bad_end;
  bad_end.refs = {0, 1, 2};
  bad_end.row_offsets = {0, 2};
  EXPECT_DEATH(tiny_spec().require_valid_items(bad_end),
               "WorkItems.row_offsets: must end at refs.size");

  WorkItems bad_payload;  // payload per ref instead of per item
  bad_payload.push_row({0, 1, 2});
  bad_payload.payload = {1.0, 2.0, 3.0};
  EXPECT_DEATH(tiny_spec().require_valid_items(bad_payload),
               "WorkItems.payload: must be empty or one entry per item");

  WorkItems bad_ref;
  bad_ref.push_row({0, 99});
  EXPECT_DEATH(tiny_spec().require_valid_items(bad_ref),
               "WorkItems.refs: reference outside");

  WorkItems too_many_refs;
  std::vector<std::int64_t> row(40, 1);
  too_many_refs.push_row(std::span<const std::int64_t>(row));
  EXPECT_DEATH(tiny_spec().require_valid_items(too_many_refs),
               "WorkItems.refs: more references than max_refs_per_node");

  WorkItems mixed;  // explicit rows then finish_uniform would silently
                    // recompute their boundaries — must abort instead
  mixed.push_row({0, 1});
  EXPECT_DEATH(mixed.finish_uniform(2),
               "WorkItems.finish_uniform: row_offsets already built");
}

TEST(OwnerOfDeathTest, EmptyOwnerRangeIsAPreconditionFailure) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<part::Range> empty;
  EXPECT_DEATH(owner_of(empty, 0), "owner_of: empty owner_range");
}

// --- The edge-case kernels, swept over backends and transports -------------

// A deterministic synthetic kernel whose rows depend on (element, rebuild
// index).  The same row generator drives both the KernelSpec and the
// sequential reference, so every backend must land on the sequential
// checksum, whatever shape the rows take.
struct Case {
  std::int64_t n = 4096;
  std::uint32_t nprocs = 4;
  int warmup_steps = 1;
  int num_steps = 4;
  int update_interval = 0;
  /// Row generator: references of element i at rebuild r (may be empty).
  std::vector<std::int64_t> (*row_of)(const Case&, std::int64_t i, int r);
  /// Owner ranges; empty means block partition.
  std::vector<part::Range> ranges;
};

std::vector<part::Range> ranges_of(const Case& c) {
  return c.ranges.empty() ? part::block_partition(c.n, c.nprocs) : c.ranges;
}

std::vector<double> initial_state(const Case& c) {
  std::vector<double> x(static_cast<std::size_t>(c.n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i % 23) / 7.0 - 1.0;
  }
  return x;
}

void apply_row(std::span<const double> x, std::span<double> f,
               std::span<const std::int64_t> row) {
  if (row.size() < 2) return;
  const double xi = x[static_cast<std::size_t>(row[0])];
  for (std::size_t j = 1; j < row.size(); ++j) {
    const double d = xi - x[static_cast<std::size_t>(row[j])];
    f[static_cast<std::size_t>(row[0])] -= d;
    f[static_cast<std::size_t>(row[j])] += d;
  }
}

double case_checksum(std::span<const double> x) {
  double s = 0, s2 = 0;
  for (const double v : x) {
    s += v;
    s2 += v * v;
  }
  return s + s2;
}

double run_seq(const Case& c) {
  auto x = initial_state(c);
  std::vector<double> f(x.size());
  std::vector<std::vector<std::int64_t>> rows;
  int rebuild = 0;
  for (int step = 0; step < c.warmup_steps + c.num_steps; ++step) {
    const bool rebuild_now = c.update_interval > 0
                                 ? step % c.update_interval == 0
                                 : step == 0;
    if (rebuild_now) {
      rows.clear();
      for (std::int64_t i = 0; i < c.n; ++i) {
        rows.push_back(c.row_of(c, i, rebuild));
      }
      ++rebuild;
    }
    std::fill(f.begin(), f.end(), 0.0);
    for (const auto& row : rows) apply_row(x, f, row);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.125 * f[i];
  }
  return case_checksum(x);
}

KernelSpec<double> make_spec(const Case& c) {
  KernelSpec<double> spec;
  spec.name = "csr-case";
  spec.num_elements = c.n;
  spec.owner_range = ranges_of(c);
  spec.initial_state = initial_state(c);
  spec.num_steps = c.num_steps;
  spec.warmup_steps = c.warmup_steps;
  spec.update_interval = c.update_interval;
  spec.rebuild_reads_state = false;

  // Capacity: worst case over nodes and rebuild indices actually reached.
  const int total_steps = c.warmup_steps + c.num_steps;
  const int rebuilds =
      c.update_interval > 0 ? (total_steps + c.update_interval - 1) /
                                  c.update_interval
                            : 1;
  std::int64_t max_items = 1, max_refs = 1;
  for (const part::Range& range : spec.owner_range) {
    max_items = std::max(max_items, range.size());
    for (int r = 0; r < rebuilds; ++r) {
      std::int64_t refs = 0;
      for (std::int64_t i = range.begin; i < range.end; ++i) {
        refs += static_cast<std::int64_t>(c.row_of(c, i, r).size());
      }
      max_refs = std::max(max_refs, refs);
    }
  }
  spec.max_items_per_node = max_items;
  spec.max_refs_per_node = max_refs;

  // Per-node rebuild counter so row lengths can change across rebuilds
  // while build_items stays deterministic for a given run.
  auto rebuild_idx = std::make_shared<std::vector<int>>(c.nprocs, 0);
  const auto ranges = spec.owner_range;
  spec.build_items = [c, ranges, rebuild_idx](IrregularNode& node,
                                              std::span<const double>) {
    const int r = (*rebuild_idx)[node.id()]++;
    const part::Range mine = ranges[node.id()];
    WorkItems items;
    for (std::int64_t i = mine.begin; i < mine.end; ++i) {
      const auto row = c.row_of(c, i, r);
      items.push_row(std::span<const std::int64_t>(row));
    }
    return items;
  };

  spec.compute = [](IrregularNode&, const KernelCtx<double>& ctx) {
    for (std::size_t k = 0; k < ctx.num_items(); ++k) {
      const auto row = ctx.refs_of(k);
      if (row.size() < 2) continue;
      const auto self = static_cast<std::size_t>(row[0]);
      for (std::size_t j = 1; j < row.size(); ++j) {
        const auto q = static_cast<std::size_t>(row[j]);
        const double d = ctx.x[self] - ctx.x[q];
        ctx.f[self] -= d;
        ctx.f[q] += d;
      }
    }
  };

  spec.update = [](std::span<double> x, std::span<const double> f) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += 0.125 * f[i];
  };
  spec.checksum = [](std::span<const double> x) { return case_checksum(x); };
  return spec;
}

/// Runs the case on every backend under both transports: every checksum
/// must match the sequential reference, and for each backend the two
/// transports must carry identical traffic, message for message and byte
/// for byte.
void sweep_case(const Case& c) {
  const double seq = run_seq(c);
  BackendOptions opts;
  opts.region_bytes = 16u << 20;
  opts.table = chaos::TableKind::kReplicated;
  for (const Backend b : kAllBackends) {
    KernelResult by_transport[2];
    int t = 0;
    for (const net::TransportKind transport :
         {net::TransportKind::kInProc, net::TransportKind::kSocket}) {
      opts.transport = transport;
      const KernelResult r = run_kernel(b, make_spec(c), opts);
      EXPECT_TRUE(checksum_close(seq, r.checksum))
          << backend_name(b) << "/" << net::transport_name(transport) << ": "
          << seq << " vs " << r.checksum;
      by_transport[t++] = r;
    }
    EXPECT_EQ(by_transport[0].messages, by_transport[1].messages)
        << backend_name(b);
    EXPECT_EQ(by_transport[0].megabytes, by_transport[1].megabytes)
        << backend_name(b);
    EXPECT_EQ(by_transport[0].refs, by_transport[1].refs) << backend_name(b);
    EXPECT_EQ(by_transport[0].max_row, by_transport[1].max_row)
        << backend_name(b);
  }
}

// Two in three rows empty, the rest short scattered rows — plus a node
// that owns nothing at all (empty range, zero items, zero refs).
std::vector<std::int64_t> sparse_rows(const Case& c, std::int64_t i, int) {
  if (i % 3 != 0) return {};
  return {i, (i * 7 + 1) % c.n, (i * 13 + 5) % c.n};
}

TEST(CsrEdgeCases, EmptyRowsAndAnEmptyNode) {
  Case c;
  c.n = 3072;
  c.nprocs = 4;
  c.row_of = sparse_rows;
  // Node 3 owns nothing: its item list is empty and its Validate section
  // degenerate.
  c.ranges = {{0, 1024}, {1024, 2048}, {2048, 3072}, {3072, 3072}};
  sweep_case(c);
}

// No row at all on one node (empty WorkItems, all-zero touch-matrix row)
// under the tournament schedule: the bracket is derived from the shared
// matrix, so the empty node pairs into no chunk but still executes every
// fused-round barrier — nprocs=4 regression for the zero-item pairing
// assumption (the min-reduction flavour lives in test_graph).
TEST(CsrEdgeCases, ZeroItemNodeUnderTournamentSchedule) {
  Case c;
  c.n = 3072;
  c.nprocs = 4;
  c.update_interval = 2;  // the all-zero row is republished at rebuilds
  c.row_of = [](const Case& c2, std::int64_t i, int) {
    // Node 3's elements [2304, 3072) produce nothing; everyone else's
    // rows scatter across all chunks.
    if (i >= 2304) return std::vector<std::int64_t>{};
    return std::vector<std::int64_t>{i, (i * 7 + 1) % c2.n,
                                     (i * 13 + 5) % c2.n};
  };
  const double seq = run_seq(c);
  for (const Backend b : {Backend::kTmkBase, Backend::kTmkOptimized}) {
    BackendOptions opts;
    opts.region_bytes = 16u << 20;
    opts.round_schedule = RoundSchedule::kTournament;
    const KernelResult r = run_kernel(b, make_spec(c), opts);
    EXPECT_TRUE(checksum_close(seq, r.checksum))
        << backend_name(b) << ": " << seq << " vs " << r.checksum;
    EXPECT_GT(r.barriers_per_step, 1.0) << backend_name(b);
  }
}

// Element 0 carries one giant row referencing ~6000 scattered elements —
// dozens of index-array pages and every page of x; every other element
// contributes nothing.  max_row in the result must report it.
std::vector<std::int64_t> giant_row(const Case& c, std::int64_t i, int) {
  if (i != 0) return {};
  std::vector<std::int64_t> row{0};
  for (std::int64_t j = 0; j < 6000; ++j) {
    row.push_back((j * 17 + 3) % c.n);
  }
  return row;
}

TEST(CsrEdgeCases, SingleGiantRowSpanningManyPages) {
  Case c;
  c.n = 8192;  // 16 pages of doubles
  c.nprocs = 4;
  c.row_of = giant_row;
  sweep_case(c);
  // The giant row's span is visible in the audit columns.
  BackendOptions opts;
  opts.region_bytes = 16u << 20;
  opts.table = chaos::TableKind::kReplicated;
  const KernelResult r = run_kernel(Backend::kChaos, make_spec(c), opts);
  EXPECT_EQ(r.max_row, 6001u);
  EXPECT_EQ(r.refs, 6001u);
}

// Row lengths depend on the rebuild index: across rebuilds rows grow,
// shrink, and toggle between empty and non-empty, so cached Read_indices
// page sets and CHAOS schedules must be refreshed (shrinking lists also
// leave stale garbage beyond the live prefix of the shared index array —
// the offset-driven scan must never read it).
std::vector<std::int64_t> shifting_rows(const Case& c, std::int64_t i,
                                        int r) {
  if ((i + r) % 4 == 0) return {};
  const std::int64_t len = 1 + (i * 7 + r * 3) % 5;
  std::vector<std::int64_t> row{i};
  for (std::int64_t j = 1; j < len; ++j) {
    row.push_back((i * 11 + j * 29 + r * 97) % c.n);
  }
  return row;
}

TEST(CsrEdgeCases, RebuildChangesRowLengths) {
  Case c;
  c.n = 4096;
  c.nprocs = 4;
  c.warmup_steps = 1;
  c.num_steps = 5;
  c.update_interval = 2;  // rebuilds at global steps 0, 2, 4
  c.row_of = shifting_rows;
  sweep_case(c);
  BackendOptions opts;
  opts.region_bytes = 16u << 20;
  opts.table = chaos::TableKind::kReplicated;
  const KernelResult r = run_kernel(Backend::kTmkOptimized, make_spec(c), opts);
  EXPECT_EQ(r.rebuilds, 3);
  // Every rebuild lands inside the run, and the timed window contains two
  // of them: the rewritten index array must trigger fresh offset-driven
  // scans (the declared-write notification path), not serve cached pages.
  EXPECT_GE(r.tmk.validate_recomputes, 2u);
}

}  // namespace
}  // namespace sdsm::api
