// Tests for the virtual-memory substrate: page regions, protection
// transitions, and the SIGSEGV dispatcher that drives the DSM protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/vm/fault_dispatcher.hpp"
#include "src/vm/page_region.hpp"

namespace sdsm::vm {
namespace {

TEST(PageRegion, RoundsUpToPageMultiple) {
  PageRegion r(100);
  EXPECT_EQ(r.size(), system_page_size());
  EXPECT_EQ(r.num_pages(), 1u);
}

TEST(PageRegion, StartsZeroFilled) {
  PageRegion r(2 * system_page_size());
  const auto* p = reinterpret_cast<const unsigned char*>(r.base());
  for (std::size_t i = 0; i < r.size(); i += 97) {
    EXPECT_EQ(p[i], 0);
  }
}

TEST(PageRegion, PageOfAndPagePtrAgree) {
  PageRegion r(4 * system_page_size());
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_EQ(r.page_of(r.page_ptr(p)), p);
    EXPECT_EQ(r.page_of(r.page_ptr(p) + system_page_size() - 1), p);
  }
}

TEST(PageRegion, ContainsBounds) {
  PageRegion r(system_page_size());
  EXPECT_TRUE(r.contains(r.base()));
  EXPECT_TRUE(r.contains(r.base() + r.size() - 1));
  EXPECT_FALSE(r.contains(r.base() + r.size()));
}

TEST(PageRegion, ReadWriteAfterProtect) {
  PageRegion r(system_page_size(), Prot::kReadWrite);
  auto* p = reinterpret_cast<int*>(r.base());
  p[0] = 42;
  EXPECT_EQ(p[0], 42);
  r.protect(0, 1, Prot::kRead);
  EXPECT_EQ(p[0], 42);  // reads still fine
}

class FaultDispatcherTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Tests must leave the dispatcher clean for each other.
    EXPECT_EQ(FaultDispatcher::instance().num_regions(), registered_);
  }
  std::size_t registered_ = 0;
};

TEST_F(FaultDispatcherTest, ReadFaultIsResolvedByHandler) {
  PageRegion r(system_page_size(), Prot::kNone);
  std::atomic<int> faults{0};
  FaultDispatcher::instance().register_region(
      r.base(), r.size(), [&](void* addr, FaultAccess) {
        faults.fetch_add(1);
        r.protect(r.page_of(addr), 1, Prot::kReadWrite);
      });
  auto* p = reinterpret_cast<volatile int*>(r.base());
  const int v = p[0];
  EXPECT_EQ(v, 0);
  EXPECT_EQ(faults.load(), 1);
  FaultDispatcher::instance().unregister_region(r.base());
}

TEST_F(FaultDispatcherTest, WriteFaultReportsWriteAccess) {
  PageRegion r(system_page_size(), Prot::kRead);
  // atomic: written inside the signal handler, read after it; a plain local
  // may be register-cached across the faulting instruction.
  std::atomic<FaultAccess> seen{FaultAccess::kUnknown};
  FaultDispatcher::instance().register_region(
      r.base(), r.size(), [&](void* addr, FaultAccess access) {
        seen.store(access);
        r.protect(r.page_of(addr), 1, Prot::kReadWrite);
      });
  auto* p = reinterpret_cast<int*>(r.base());
  p[3] = 5;
  EXPECT_EQ(p[3], 5);
  // Kernels that populate the page-fault error code report kWrite; sandboxed
  // kernels that zero it report kUnknown (never the wrong direction).
  EXPECT_NE(seen.load(), FaultAccess::kRead);
  FaultDispatcher::instance().unregister_region(r.base());
}

TEST_F(FaultDispatcherTest, ReadFaultReportsReadAccess) {
  PageRegion r(system_page_size(), Prot::kNone);
  std::atomic<FaultAccess> seen{FaultAccess::kWrite};
  FaultDispatcher::instance().register_region(
      r.base(), r.size(), [&](void* addr, FaultAccess access) {
        seen.store(access);
        r.protect(r.page_of(addr), 1, Prot::kRead);
      });
  auto* p = reinterpret_cast<volatile int*>(r.base());
  (void)p[0];
  EXPECT_NE(seen.load(), FaultAccess::kWrite);
  FaultDispatcher::instance().unregister_region(r.base());
}

TEST_F(FaultDispatcherTest, RoutesToTheRightRegion) {
  PageRegion a(system_page_size(), Prot::kNone);
  PageRegion b(system_page_size(), Prot::kNone);
  std::atomic<int> a_faults{0}, b_faults{0};
  FaultDispatcher::instance().register_region(
      a.base(), a.size(), [&](void* addr, FaultAccess) {
        a_faults.fetch_add(1);
        a.protect(a.page_of(addr), 1, Prot::kReadWrite);
      });
  FaultDispatcher::instance().register_region(
      b.base(), b.size(), [&](void* addr, FaultAccess) {
        b_faults.fetch_add(1);
        b.protect(b.page_of(addr), 1, Prot::kReadWrite);
      });
  reinterpret_cast<int*>(b.base())[0] = 1;
  reinterpret_cast<int*>(a.base())[0] = 2;
  EXPECT_EQ(a_faults.load(), 1);
  EXPECT_EQ(b_faults.load(), 1);
  FaultDispatcher::instance().unregister_region(a.base());
  FaultDispatcher::instance().unregister_region(b.base());
}

TEST_F(FaultDispatcherTest, NestedFaultFromHandlerIsServed) {
  PageRegion r(2 * system_page_size(), Prot::kNone);
  std::atomic<int> faults{0};
  FaultDispatcher::instance().register_region(
      r.base(), r.size(), [&](void* addr, FaultAccess) {
        faults.fetch_add(1);
        const PageId page = r.page_of(addr);
        if (page == 0) {
          // Touch page 1 from inside the handler: a nested fault.
          auto* other = reinterpret_cast<volatile int*>(r.page_ptr(1));
          (void)other[0];
        }
        r.protect(page, 1, Prot::kReadWrite);
      });
  auto* p = reinterpret_cast<volatile int*>(r.base());
  (void)p[0];
  EXPECT_EQ(faults.load(), 2);
  FaultDispatcher::instance().unregister_region(r.base());
}

TEST_F(FaultDispatcherTest, ConcurrentFaultsOnDistinctRegions) {
  constexpr int kThreads = 8;
  std::vector<std::unique_ptr<PageRegion>> regions;
  std::atomic<int> faults{0};
  for (int i = 0; i < kThreads; ++i) {
    regions.push_back(
        std::make_unique<PageRegion>(4 * system_page_size(), Prot::kNone));
    auto* r = regions.back().get();
    FaultDispatcher::instance().register_region(
        r->base(), r->size(), [&faults, r](void* addr, FaultAccess) {
          faults.fetch_add(1);
          r->protect(r->page_of(addr), 1, Prot::kReadWrite);
        });
  }
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&regions, i] {
      auto* r = regions[static_cast<std::size_t>(i)].get();
      for (PageId p = 0; p < 4; ++p) {
        reinterpret_cast<int*>(r->page_ptr(p))[1] = i;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(faults.load(), kThreads * 4);
  for (auto& r : regions) {
    FaultDispatcher::instance().unregister_region(r->base());
  }
}

TEST_F(FaultDispatcherTest, UnregisterRemovesRegion) {
  PageRegion r(system_page_size(), Prot::kNone);
  const auto before = FaultDispatcher::instance().num_regions();
  FaultDispatcher::instance().register_region(r.base(), r.size(),
                                              [](void*, FaultAccess) {});
  EXPECT_EQ(FaultDispatcher::instance().num_regions(), before + 1);
  FaultDispatcher::instance().unregister_region(r.base());
  EXPECT_EQ(FaultDispatcher::instance().num_regions(), before);
}

}  // namespace
}  // namespace sdsm::vm
