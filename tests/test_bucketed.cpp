// Tests for degree-bucketed execution (src/api/bucketed.hpp): the
// RowBuckets partition invariants, the for_each_row iteration contract
// under both engines, and — the acceptance property of ExecEngine::
// kBucketed — bit-exact checksum parity across all three backends, with
// bit-identity to the rows engine on uniform-degree workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/api/bucketed.hpp"
#include "src/apps/pagerank/pagerank.hpp"
#include "src/apps/spmv/spmv.hpp"

namespace sdsm::api {
namespace {

std::vector<std::int64_t> offsets_for(const std::vector<int>& degrees) {
  std::vector<std::int64_t> off{0};
  for (const int d : degrees) off.push_back(off.back() + d);
  return off;
}

TEST(RowBuckets, PartitionIsCompleteAndOrdered) {
  // One row of every uniform degree, plus tail degrees 0, 3, 5, 33.
  const std::vector<int> degrees = {2, 0, 1, 3, 4, 8, 5, 16, 32, 33, 2};
  const auto off = offsets_for(degrees);
  const RowBuckets rb = RowBuckets::build(off);

  // Every row lands in exactly one bucket; concatenation covers all rows.
  std::vector<std::uint32_t> seen;
  for (std::size_t b = 0; b < RowBuckets::kNumUniform; ++b) {
    for (const std::uint32_t i : rb.uniform[b]) {
      EXPECT_EQ(static_cast<std::size_t>(degrees[i]),
                RowBuckets::bucket_degree(b));
      seen.push_back(i);
    }
    // Ascending original order within each bucket.
    EXPECT_TRUE(std::is_sorted(rb.uniform[b].begin(), rb.uniform[b].end()));
  }
  seen.insert(seen.end(), rb.tail.begin(), rb.tail.end());
  EXPECT_TRUE(std::is_sorted(rb.tail.begin(), rb.tail.end()));
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), degrees.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::uint32_t>(i));
  }

  // Spot-check placements: degree 2 rows in bucket 1, non-powers in tail.
  EXPECT_EQ(rb.uniform[1], (std::vector<std::uint32_t>{0, 10}));
  EXPECT_EQ(rb.tail, (std::vector<std::uint32_t>{1, 3, 6, 9}));
}

TEST(RowBuckets, EmptyOffsetsYieldNoRows) {
  const RowBuckets a = RowBuckets::build({});
  const std::vector<std::int64_t> just_zero{0};
  const RowBuckets b = RowBuckets::build(just_zero);
  for (const RowBuckets* rb : {&a, &b}) {
    for (const auto& bucket : rb->uniform) EXPECT_TRUE(bucket.empty());
    EXPECT_TRUE(rb->tail.empty());
  }
}

TEST(ForEachRow, VisitsEveryRowOnceUnderBothEngines) {
  const std::vector<int> degrees = {1, 2, 3, 2, 4, 0, 7, 8, 2, 32, 31};
  const auto off = offsets_for(degrees);
  std::vector<std::int32_t> refs(static_cast<std::size_t>(off.back()));
  for (std::size_t i = 0; i < refs.size(); ++i) {
    refs[i] = static_cast<std::int32_t>(i);
  }
  const RowBuckets rb = RowBuckets::build(off);

  KernelCtx<double> ctx;
  ctx.row_offsets = off;
  ctx.refs = refs;

  for (const bool bucketed : {false, true}) {
    ctx.buckets = bucketed ? &rb : nullptr;
    std::vector<int> visits(degrees.size(), 0);
    std::int64_t ref_sum = 0;
    for_each_row(ctx, [&](std::size_t i, auto row) {
      ++visits[i];
      EXPECT_EQ(row.size(), static_cast<std::size_t>(degrees[i]));
      // The row content must be the item's actual references, bucketed
      // or not.
      for (std::size_t j = 0; j < row.size(); ++j) {
        EXPECT_EQ(row[j],
                  static_cast<std::int32_t>(off[i] + static_cast<int>(j)));
        ref_sum += row[j];
      }
    });
    EXPECT_TRUE(std::all_of(visits.begin(), visits.end(),
                            [](int v) { return v == 1; }))
        << (bucketed ? "bucketed" : "rows");
    const std::int64_t n = off.back();
    EXPECT_EQ(ref_sum, n * (n - 1) / 2);
  }
}

TEST(ForEachRow, BucketedOrderIsDegreeMajor) {
  const std::vector<int> degrees = {3, 2, 1, 2, 4};
  const auto off = offsets_for(degrees);
  std::vector<std::int32_t> refs(static_cast<std::size_t>(off.back()), 0);
  const RowBuckets rb = RowBuckets::build(off);

  KernelCtx<double> ctx;
  ctx.row_offsets = off;
  ctx.refs = refs;
  ctx.buckets = &rb;

  std::vector<std::size_t> order;
  for_each_row(ctx, [&](std::size_t i, auto) { order.push_back(i); });
  // degree-1 row 2, then degree-2 rows 1 and 3 in original order, then
  // degree-4 row 4, then the tail (degree-3 row 0).
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 1, 3, 4, 0}));
}

// --- Cross-backend parity ----------------------------------------------------

/// Runs `pagerank` (power-law degrees: uniform buckets AND an irregular
/// tail) on all three backends under the bucketed engine.  The bucket
/// order is a pure function of the backend-identical row_offsets, so the
/// reordered FP accumulation must reproduce bit-exactly everywhere.
TEST(BucketedParity, PagerankChecksumBitExactAcrossBackends) {
  apps::pagerank::Params p;
  p.num_vertices = 2048;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;

  BackendOptions opts = apps::pagerank::default_options();
  opts.exec_engine = ExecEngine::kBucketed;

  std::vector<double> checksums;
  for (const Backend b : kAllBackends) {
    const KernelResult r = apps::pagerank::run(b, p, opts);
    checksums.push_back(r.checksum);
  }
  ASSERT_EQ(checksums.size(), 3u);
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);

  // And the bucketed result still solves the same problem: close to the
  // sequential checksum (bit-equality is not expected — the engine
  // reorders a non-associative reduction).
  const auto seq = apps::pagerank::run_seq(p);
  EXPECT_TRUE(apps::checksum_close(seq.checksum, checksums[0]));
}

/// Uniform degree-2 rows (spmv edges) land in one bucket in original
/// order, so the bucketed engine must be bit-identical to the rows engine
/// on every backend — the stronger, exactly-zero-cost guarantee the bench
/// baseline relies on.
TEST(BucketedParity, UniformDegreeMatchesRowsEngineBitExactly) {
  apps::spmv::Params p;
  p.num_rows = 2048;
  p.edges_per_vertex = 4;
  p.num_steps = 6;
  p.nprocs = 4;

  for (const Backend b : kAllBackends) {
    BackendOptions rows = apps::spmv::default_options();
    rows.exec_engine = ExecEngine::kRows;
    BackendOptions bucketed = rows;
    bucketed.exec_engine = ExecEngine::kBucketed;

    const KernelResult rr = apps::spmv::run(b, p, rows);
    const KernelResult br = apps::spmv::run(b, p, bucketed);
    EXPECT_EQ(rr.checksum, br.checksum) << backend_name(b);
    // Traffic untouched: bucketing changes iteration order, not pages.
    EXPECT_EQ(rr.messages, br.messages) << backend_name(b);
    EXPECT_EQ(rr.bytes, br.bytes) << backend_name(b);
  }
}

}  // namespace
}  // namespace sdsm::api
