// Integration tests for the DSM protocol engine: demand paging, lazy
// release consistency through barriers and locks, the multiple-writer
// protocol under false sharing, and message accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "src/core/dsm.hpp"

namespace sdsm::core {
namespace {

DsmConfig small_config(std::uint32_t nodes) {
  DsmConfig cfg;
  cfg.num_nodes = nodes;
  cfg.region_bytes = 1u << 20;  // 1 MB
  return cfg;
}

TEST(Dsm, SingleNodeReadWrite) {
  DsmRuntime rt(small_config(1));
  auto arr = rt.alloc_global<int>(100);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    for (int i = 0; i < 100; ++i) p[i] = i * i;
    self.barrier();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(p[i], i * i);
  });
  // A single node exchanges no messages.
  EXPECT_EQ(rt.total_messages(), 0u);
}

TEST(Dsm, SharedMemoryStartsZeroed) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<double>(64);
  rt.run([&](DsmNode& self) {
    const double* p = self.ptr(arr);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(p[i], 0.0);
  });
}

TEST(Dsm, WritesVisibleAfterBarrier) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(1000);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    if (self.id() == 0) {
      for (int i = 0; i < 1000; ++i) p[i] = 7 * i;
    }
    self.barrier();
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(p[i], 7 * i);
  });
  EXPECT_GT(rt.total_messages(), 0u);
  EXPECT_GT(rt.stats().read_faults.get(), 0u);
  EXPECT_GT(rt.stats().diffs_created.get(), 0u);
}

TEST(Dsm, RepeatedProducerConsumerRounds) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(256);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    for (int round = 1; round <= 5; ++round) {
      if (self.id() == 0) {
        for (int i = 0; i < 256; ++i) p[i] = round * 1000 + i;
      }
      self.barrier();
      for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], round * 1000 + i);
      self.barrier();
    }
  });
}

TEST(Dsm, AlternatingWriters) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(16);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    for (int round = 0; round < 6; ++round) {
      if (self.id() == static_cast<NodeId>(round % 2)) {
        p[0] = round + 1;
      }
      self.barrier();
      EXPECT_EQ(p[0], round + 1);
      self.barrier();
    }
  });
}

TEST(Dsm, FalseSharingMergesThroughMultiWriterProtocol) {
  // Both nodes write disjoint halves of the same page concurrently; after
  // the barrier each must observe both halves (twin+diff merge).
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(1024);  // 4 KB: exactly one page
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    const int lo = self.id() == 0 ? 0 : 512;
    for (int i = lo; i < lo + 512; ++i) p[i] = 100000 * (self.id() + 1) + i;
    self.barrier();
    for (int i = 0; i < 512; ++i) EXPECT_EQ(p[i], 100000 + i);
    for (int i = 512; i < 1024; ++i) EXPECT_EQ(p[i], 200000 + i);
  });
}

TEST(Dsm, FourNodeQuarterPageFalseSharing) {
  DsmRuntime rt(small_config(4));
  auto arr = rt.alloc_global<int>(1024);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    const int lo = static_cast<int>(self.id()) * 256;
    for (int i = lo; i < lo + 256; ++i) p[i] = 1000 * (self.id() + 1) + i;
    self.barrier();
    for (int q = 0; q < 4; ++q) {
      for (int i = q * 256; i < (q + 1) * 256; ++i) {
        EXPECT_EQ(p[i], 1000 * (q + 1) + i);
      }
    }
  });
}

TEST(Dsm, LockProtectedCounter) {
  const std::uint32_t nodes = 4;
  const int rounds = 25;
  DsmRuntime rt(small_config(nodes));
  auto counter = rt.alloc_global<std::int64_t>(1);
  rt.run([&](DsmNode& self) {
    for (int i = 0; i < rounds; ++i) {
      self.lock_acquire(3);
      std::int64_t* c = self.ptr(counter);
      *c = *c + 1;
      self.lock_release(3);
    }
    self.barrier();
    EXPECT_EQ(*self.ptr(counter), static_cast<std::int64_t>(nodes) * rounds);
  });
  EXPECT_EQ(rt.stats().lock_acquires.get(), nodes * rounds);
}

TEST(Dsm, MultipleIndependentLocks) {
  const std::uint32_t nodes = 4;
  DsmRuntime rt(small_config(nodes));
  auto counters = rt.alloc_global<std::int64_t>(8);
  rt.run([&](DsmNode& self) {
    for (int i = 0; i < 10; ++i) {
      for (LockId l = 0; l < 8; ++l) {
        self.lock_acquire(l);
        std::int64_t* c = self.ptr(counters);
        // Each lock guards one slot; slots share pages, exercising
        // twin/diff merges under lock-based synchronization.
        c[l] = c[l] + 1;
        self.lock_release(l);
      }
    }
    self.barrier();
    const std::int64_t* c = self.ptr(counters);
    for (LockId l = 0; l < 8; ++l) EXPECT_EQ(c[l], 40);
  });
}

TEST(Dsm, ReleaseConsistencyThroughLockPair) {
  // Classic message-passing idiom: node 0 writes data then releases; node 1
  // acquires and must observe the data.
  DsmRuntime rt(small_config(2));
  auto data = rt.alloc_global<int>(600);  // spans multiple pages
  auto flag = rt.alloc_global<int>(1);
  rt.run([&](DsmNode& self) {
    if (self.id() == 0) {
      int* p = self.ptr(data);
      for (int i = 0; i < 600; ++i) p[i] = i + 1;
      self.lock_acquire(0);
      *self.ptr(flag) = 1;
      self.lock_release(0);
    } else {
      for (;;) {
        self.lock_acquire(0);
        const int f = *self.ptr(flag);
        self.lock_release(0);
        if (f == 1) break;
      }
      const int* p = self.ptr(data);
      for (int i = 0; i < 600; ++i) EXPECT_EQ(p[i], i + 1);
    }
  });
}

TEST(Dsm, BarrierCountsMatchTopology) {
  const std::uint32_t nodes = 4;
  DsmRuntime rt(small_config(nodes));
  rt.run([&](DsmNode& self) {
    self.barrier();
    self.barrier();
  });
  // Each barrier: (N-1) arrivals + (N-1) releases; the manager's own pair
  // is loopback and uncounted.
  EXPECT_EQ(rt.total_messages(), 2u * 2u * (nodes - 1));
  EXPECT_EQ(rt.stats().barriers.get(), 2u * nodes);
}

TEST(Dsm, DemandPagingFetchesPageByPage) {
  // Base TreadMarks behaviour: reading K untouched remote pages costs one
  // request/reply pair per page.
  const std::size_t ints_per_page = vm::system_page_size() / sizeof(int);
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(8 * ints_per_page);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    if (self.id() == 0) {
      for (std::size_t i = 0; i < 8 * ints_per_page; ++i) {
        p[i] = static_cast<int>(i);
      }
    }
    self.barrier();
    if (self.id() == 1) {
      long long sum = 0;
      for (std::size_t i = 0; i < 8 * ints_per_page; ++i) sum += p[i];
      const long long n = static_cast<long long>(8 * ints_per_page);
      EXPECT_EQ(sum, n * (n - 1) / 2);
    }
    self.barrier();
  });
  EXPECT_EQ(rt.stats().read_faults.get(), 8u);
  // 2 barriers (2 msgs each at N=2) + 8 pages * (request + reply).
  EXPECT_EQ(rt.total_messages(), 4u + 16u);
}

TEST(Dsm, DirtyPageSurvivesRemoteInvalidation) {
  // Node 0 and node 1 write the same page in different ranges; node 1 also
  // synchronizes through a lock mid-interval, which invalidates its dirty
  // copy (the early-diff path).  All writes must survive.
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(1024);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    if (self.id() == 0) {
      for (int i = 0; i < 100; ++i) p[i] = 1000 + i;
      self.lock_acquire(1);
      self.lock_release(1);  // pushes node 0's interval to the home
    } else {
      for (int i = 512; i < 612; ++i) p[i] = 2000 + i;
      // Acquiring the same lock after node 0's release delivers node 0's
      // write notice and invalidates the (dirty) page.
      self.lock_acquire(1);
      self.lock_release(1);
      for (int i = 700; i < 750; ++i) p[i] = 3000 + i;  // write again
    }
    self.barrier();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(p[i], 1000 + i);
    for (int i = 512; i < 612; ++i) EXPECT_EQ(p[i], 2000 + i);
    for (int i = 700; i < 750; ++i) EXPECT_EQ(p[i], 3000 + i);
  });
}

TEST(Dsm, EightNodeBlockSums) {
  const std::uint32_t nodes = 8;
  const int per = 512;
  DsmRuntime rt(small_config(nodes));
  auto arr = rt.alloc_global<int>(nodes * per);
  auto sums = rt.alloc_global<long long>(nodes);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    const int lo = static_cast<int>(self.id()) * per;
    for (int i = lo; i < lo + per; ++i) p[i] = i;
    self.barrier();
    // Everyone sums everyone's block: all-to-all demand fetches.
    long long total = 0;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (int i = 0; i < per; ++i) total += p[n * per + i];
    }
    self.ptr(sums)[self.id()] = total;
    self.barrier();
    const long long expect =
        static_cast<long long>(nodes * per) * (nodes * per - 1) / 2;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      EXPECT_EQ(self.ptr(sums)[n], expect);
    }
  });
}

TEST(Dsm, StatsResetBetweenPhases) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(64);
  rt.run([&](DsmNode& self) {
    if (self.id() == 0) *self.ptr(arr) = 1;
    self.barrier();
    EXPECT_EQ(*self.ptr(arr), 1);
  });
  EXPECT_GT(rt.total_messages(), 0u);
  rt.reset_stats();
  EXPECT_EQ(rt.total_messages(), 0u);
  EXPECT_EQ(rt.stats().read_faults.get(), 0u);
}

TEST(Dsm, GlobalArraySliceAddressing) {
  DsmRuntime rt(small_config(1));
  auto arr = rt.alloc_global<int>(100);
  auto mid = arr.slice(50, 10);
  rt.run([&](DsmNode& self) {
    self.ptr(arr)[50] = 42;
    EXPECT_EQ(self.ptr(mid)[0], 42);
  });
}

TEST(Dsm, SequentialRunsPreserveState) {
  DsmRuntime rt(small_config(2));
  auto arr = rt.alloc_global<int>(10);
  rt.run([&](DsmNode& self) {
    if (self.id() == 0) self.ptr(arr)[0] = 99;
    self.barrier();
  });
  rt.run([&](DsmNode& self) {
    EXPECT_EQ(self.ptr(arr)[0], 99);
  });
}

TEST(Dsm, WireModelRunStillCorrect) {
  DsmConfig cfg = small_config(2);
  cfg.wire.latency_us = 200;
  cfg.wire.us_per_kb = 50;
  DsmRuntime rt(cfg);
  auto arr = rt.alloc_global<int>(2048);
  rt.run([&](DsmNode& self) {
    int* p = self.ptr(arr);
    if (self.id() == 0) {
      for (int i = 0; i < 2048; ++i) p[i] = i ^ 0x55;
    }
    self.barrier();
    for (int i = 0; i < 2048; ++i) EXPECT_EQ(p[i], i ^ 0x55);
  });
}

}  // namespace
}  // namespace sdsm::core
