// Tests for vector clocks and interval metadata.
#include <gtest/gtest.h>

#include "src/core/interval.hpp"
#include "src/core/vector_clock.hpp"

namespace sdsm::core {
namespace {

TEST(VectorClock, StartsAtZero) {
  VectorClock vc(4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(vc.get(n), 0u);
}

TEST(VectorClock, BumpAndCovers) {
  VectorClock vc(2);
  EXPECT_FALSE(vc.covers(0, 1));
  vc.bump(0);
  EXPECT_TRUE(vc.covers(0, 1));
  EXPECT_FALSE(vc.covers(0, 2));
  EXPECT_FALSE(vc.covers(1, 1));
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3), b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 4u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, DominatesIsPartialOrder) {
  VectorClock a(2), b(2);
  a.set(0, 2);
  b.set(1, 3);
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.concurrent_with(b));

  VectorClock c = a;
  c.merge(b);
  EXPECT_TRUE(c.dominates(a));
  EXPECT_TRUE(c.dominates(b));
  EXPECT_TRUE(c.dominates(c));  // reflexive
}

TEST(VectorClock, TotalIsMonotoneUnderHappenedBefore) {
  VectorClock a(3), b(3);
  a.set(0, 1);
  b = a;
  b.set(1, 2);
  EXPECT_TRUE(b.dominates(a));
  EXPECT_GT(b.total(), a.total());
}

TEST(VectorClock, SerializeRoundTrip) {
  VectorClock vc(5);
  vc.set(0, 1);
  vc.set(3, 99);
  Writer w;
  vc.serialize(w);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(VectorClock::deserialize(r), vc);
}

TEST(VectorClock, ToStringShowsComponents) {
  VectorClock vc(3);
  vc.set(1, 7);
  EXPECT_EQ(vc.to_string(), "<0,7,0>");
}

TEST(IntervalMeta, SerializeRoundTrip) {
  IntervalMeta m;
  m.id = IntervalId{2, 9};
  m.vc = VectorClock(4);
  m.vc.set(2, 9);
  m.vc.set(0, 3);
  m.notices.resize(2);
  m.notices[0].page = 5;
  m.notices[1].page = 17;
  m.notices[1].whole_page = true;

  Writer w;
  m.serialize(w);
  auto bytes = w.take();
  Reader r(bytes);
  IntervalMeta out = IntervalMeta::deserialize(r);
  EXPECT_EQ(out.id, m.id);
  EXPECT_EQ(out.vc, m.vc);
  ASSERT_EQ(out.notices.size(), 2u);
  EXPECT_EQ(out.notices[0].page, 5u);
  EXPECT_FALSE(out.notices[0].whole_page);
  EXPECT_EQ(out.notices[1].page, 17u);
  EXPECT_TRUE(out.notices[1].whole_page);
}

TEST(IntervalMeta, BatchSerializeRoundTrip) {
  std::vector<IntervalMeta> metas(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    metas[i].id = IntervalId{i, i + 1};
    metas[i].vc = VectorClock(3);
    metas[i].vc.set(i, i + 1);
    WriteNotice wn;
    wn.page = i * 10;
    wn.whole_page = i % 2 == 0;
    metas[i].notices.push_back(std::move(wn));
  }
  Writer w;
  serialize_metas(w, metas);
  auto bytes = w.take();
  Reader r(bytes);
  auto out = deserialize_metas(r);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].id, metas[i].id);
    EXPECT_EQ(out[i].vc, metas[i].vc);
    EXPECT_EQ(out[i].notices[0].page, metas[i].notices[0].page);
  }
}

TEST(IntervalOrder, KeyRespectsHappenedBefore) {
  IntervalMeta a, b;
  a.id = IntervalId{0, 1};
  a.vc = VectorClock(2);
  a.vc.set(0, 1);
  b.id = IntervalId{1, 1};
  b.vc = a.vc;
  b.vc.set(1, 1);  // b saw a
  EXPECT_LT(order_key(a), order_key(b));
}

TEST(IntervalOrder, ConcurrentIntervalsOrderDeterministically) {
  IntervalMeta a, b;
  a.id = IntervalId{0, 1};
  a.vc = VectorClock(2);
  a.vc.set(0, 1);
  b.id = IntervalId{1, 1};
  b.vc = VectorClock(2);
  b.vc.set(1, 1);
  EXPECT_TRUE(a.vc.concurrent_with(b.vc));
  // Equal totals: tie broken by node id, stable across runs.
  EXPECT_LT(order_key(a), order_key(b));
  EXPECT_FALSE(order_key(b) < order_key(a));
}

}  // namespace
}  // namespace sdsm::core
