// The frontier-driven graph suite: BFS and connected components, whose
// item lists are data-dependent and rebuilt at EVERY step.  The matrix
// here is the acceptance contract: backend-identical distances/labels on
// all three backends x both transports x both round schedules, exact
// cross-transport message/byte parity per (backend, schedule), identical
// early-exit step counts from the DSM-published convergence flag, and the
// empty-WorkItems contract under fire — a permanently-empty node (the
// owner of an unreachable component) and fixed-step runs whose trailing
// steps have an empty frontier on EVERY node.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/graph/bfs.hpp"
#include "src/apps/graph/cc.hpp"

namespace sdsm::api {
namespace {

using apps::checksum_close;
using apps::Csr;

apps::graph::Params small_params() {
  apps::graph::Params p;
  p.num_vertices = 1024;
  p.chords_per_vertex = 2;
  // 1024 / 4 nodes: node 3 owns exactly the isolated tail, so its BFS
  // frontier is empty at every step of the run.
  p.isolated = 256;
  p.num_steps = 32;
  p.nprocs = 4;
  return p;
}

TEST(GraphBuild, DeterministicWithTwoComponents) {
  const auto p = small_params();
  const Csr a = apps::graph::build_graph(p);
  const Csr b = apps::graph::build_graph(p);
  ASSERT_EQ(a.offsets, b.offsets);
  ASSERT_EQ(a.values, b.values);
  ASSERT_EQ(a.rows(), static_cast<std::size_t>(p.num_vertices));
  // No edge crosses the core/tail boundary in either direction.
  const std::int64_t core = p.num_vertices - p.isolated;
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    for (const std::int32_t nb : a.row(static_cast<std::size_t>(v))) {
      EXPECT_EQ(v < core, nb < core) << v << " -> " << nb;
    }
  }
  // BFS leaves exactly the tail unreached; CC finds exactly two labels.
  const auto dist = apps::bfs::seq_distances(p);
  std::int64_t unreached_count = 0;
  for (const double d : dist) {
    if (d == apps::graph::unreached(p)) ++unreached_count;
  }
  EXPECT_EQ(unreached_count, p.isolated);
  const auto labels = apps::cc::seq_labels(p);
  for (std::int64_t v = 0; v < p.num_vertices; ++v) {
    EXPECT_EQ(labels[static_cast<std::size_t>(v)],
              v < core ? 0.0 : static_cast<double>(core));
  }
}

// The full acceptance matrix: transports x schedules, swept over all three
// backends per workload.
class GraphMatrix
    : public ::testing::TestWithParam<
          std::tuple<net::TransportKind, RoundSchedule>> {
 public:
  static BackendOptions options(BackendOptions base) {
    base.transport = std::get<0>(GetParam());
    base.round_schedule = std::get<1>(GetParam());
    base.region_bytes = 16u << 20;
    return base;
  }
};

INSTANTIATE_TEST_SUITE_P(
    TransportsXSchedules, GraphMatrix,
    ::testing::Combine(::testing::Values(net::TransportKind::kInProc,
                                         net::TransportKind::kSocket),
                       ::testing::Values(RoundSchedule::kSerial,
                                         RoundSchedule::kTournament)),
    [](const auto& info) {
      return std::string(net::transport_name(std::get<0>(info.param))) + "_" +
             round_schedule_name(std::get<1>(info.param));
    });

TEST_P(GraphMatrix, BfsBackendIdenticalWithEarlyExit) {
  const auto p = small_params();
  std::int64_t seq_steps = 0;
  const double seq =
      apps::graph::int_vector_checksum(apps::bfs::seq_distances(p, &seq_steps));
  ASSERT_GT(seq_steps, 2);
  ASSERT_LT(seq_steps, p.num_steps);  // the convergence flag must fire early
  const auto opts = options(apps::bfs::default_options());
  for (const Backend b : kAllBackends) {
    const auto r = apps::bfs::run(b, p, opts);
    // Distances are small integers in doubles: sums are exact, so the
    // checksum must match bit for bit, not merely closely.
    EXPECT_EQ(seq, r.checksum) << backend_name(b);
    EXPECT_EQ(r.steps_run, seq_steps) << backend_name(b);
    // Frontier workloads rebuild at every executed step, warmup included.
    EXPECT_EQ(r.rebuilds, seq_steps + p.warmup_steps) << backend_name(b);
    EXPECT_GT(r.messages, 0u) << backend_name(b);
  }
}

TEST_P(GraphMatrix, CcBackendIdenticalWithEarlyExit) {
  const auto p = small_params();
  std::int64_t seq_steps = 0;
  const double seq =
      apps::graph::int_vector_checksum(apps::cc::seq_labels(p, &seq_steps));
  ASSERT_GT(seq_steps, 2);
  ASSERT_LT(seq_steps, p.num_steps);
  const auto opts = options(apps::cc::default_options());
  for (const Backend b : kAllBackends) {
    const auto r = apps::cc::run(b, p, opts);
    EXPECT_EQ(seq, r.checksum) << backend_name(b);
    EXPECT_EQ(r.steps_run, seq_steps) << backend_name(b);
    EXPECT_EQ(r.rebuilds, seq_steps + p.warmup_steps) << backend_name(b);
  }
}

// Exact message/byte parity across transports for every (backend,
// schedule) pair: the fabric changes what a message costs, never what the
// frontier traffic carries — convergence-flag exchanges and per-step
// rebuild allgathers included.
TEST(GraphTraffic, CrossTransportParityPerBackendAndSchedule) {
  const auto p = small_params();
  for (const bool bfs_workload : {true, false}) {
    for (const RoundSchedule s : kAllSchedules) {
      for (const Backend b : kAllBackends) {
        KernelResult by_transport[2];
        int t = 0;
        for (const net::TransportKind transport :
             {net::TransportKind::kInProc, net::TransportKind::kSocket}) {
          BackendOptions opts = apps::bfs::default_options();
          opts.transport = transport;
          opts.round_schedule = s;
          opts.region_bytes = 16u << 20;
          by_transport[t++] = bfs_workload ? apps::bfs::run(b, p, opts)
                                           : apps::cc::run(b, p, opts);
        }
        const char* label = bfs_workload ? "bfs" : "cc";
        EXPECT_EQ(by_transport[0].messages, by_transport[1].messages)
            << label << " " << backend_name(b) << " "
            << round_schedule_name(s);
        EXPECT_EQ(by_transport[0].megabytes, by_transport[1].megabytes)
            << label << " " << backend_name(b) << " "
            << round_schedule_name(s);
        EXPECT_EQ(by_transport[0].checksum, by_transport[1].checksum)
            << label << " " << backend_name(b) << " "
            << round_schedule_name(s);
        EXPECT_EQ(by_transport[0].steps_run, by_transport[1].steps_run)
            << label << " " << backend_name(b) << " "
            << round_schedule_name(s);
      }
    }
  }
}

// Regression (zero-item node under the tournament schedule): node 3 owns
// exactly the unreachable tail, so its frontier — and its touch-matrix row
// — is empty at EVERY step.  The bracket must pair the remaining
// contributors and seed every accumulator with the min-identity; the
// pre-fix backend assumed every node contributes somewhere and seeded
// accumulators with zero, which collapses every distance to 0 and trips a
// bogus instant convergence.
TEST(GraphEmptyFrontier, PermanentlyEmptyNodeUnderTournament) {
  const auto p = small_params();
  std::int64_t seq_steps = 0;
  const double seq =
      apps::graph::int_vector_checksum(apps::bfs::seq_distances(p, &seq_steps));
  for (const Backend b : {Backend::kTmkBase, Backend::kTmkOptimized}) {
    BackendOptions opts = apps::bfs::default_options();
    opts.round_schedule = RoundSchedule::kTournament;
    opts.region_bytes = 16u << 20;
    const auto r = apps::bfs::run(b, p, opts);
    EXPECT_EQ(seq, r.checksum) << backend_name(b);
    EXPECT_EQ(r.steps_run, seq_steps) << backend_name(b);
    // The empty node still pays every fused-round barrier: the round count
    // is derived from the shared touch matrix, not from local work.
    EXPECT_GT(r.barriers_per_step, 1.0) << backend_name(b);
  }
}

// Fixed-step runs (convergence off) keep executing after the reachable
// component is exhausted: the trailing steps have an empty frontier on
// EVERY node — an all-zero touch matrix, zero-item WorkItems everywhere,
// empty CHAOS exchanges — and must neither wedge nor change the answer.
TEST(GraphEmptyFrontier, AllNodesEmptyAfterExhaustionFixedSteps) {
  auto p = small_params();
  p.use_convergence = false;
  p.num_steps = 12;  // > diameter of the reachable component
  std::int64_t seq_steps = 0;
  const double seq =
      apps::graph::int_vector_checksum(apps::bfs::seq_distances(p, &seq_steps));
  ASSERT_EQ(seq_steps, p.num_steps);  // no early exit
  for (const RoundSchedule s : kAllSchedules) {
    for (const Backend b : kAllBackends) {
      BackendOptions opts = apps::bfs::default_options();
      opts.round_schedule = s;
      opts.region_bytes = 16u << 20;
      const auto r = apps::bfs::run(b, p, opts);
      EXPECT_EQ(seq, r.checksum)
          << backend_name(b) << " " << round_schedule_name(s);
      EXPECT_EQ(r.steps_run, p.num_steps)
          << backend_name(b) << " " << round_schedule_name(s);
      EXPECT_EQ(r.rebuilds, p.num_steps)
          << backend_name(b) << " " << round_schedule_name(s);
    }
  }
}

}  // namespace
}  // namespace sdsm::api
