// Tests for the per-region execution-planning layer (sdsm::api::plan):
// the fixed strategy assignment of every backend, the census-driven
// indirection classification the hybrid uses, the DsmExchange adapter
// that runs CHAOS collectives over the DSM fabric, the refactored
// backends' traffic parity against the committed baseline counts, and
// the hybrid backend's bit-exact checksum matrix across both transports
// and both reduction-round schedules on moldyn and pagerank.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/api/api.hpp"
#include "src/api/plan/dsm_exchange.hpp"
#include "src/api/plan/plan.hpp"
#include "src/apps/moldyn/moldyn_kernel.hpp"
#include "src/apps/pagerank/pagerank.hpp"
#include "src/apps/spmv/spmv.hpp"
#include "src/core/dsm.hpp"
#include "src/partition/partition.hpp"

namespace sdsm::api::plan {
namespace {

constexpr std::uint32_t kNodes = 4;

// --- Strategy assignments ---------------------------------------------------

TEST(PlanFor, ClassicBackendsAreFixedAssignments) {
  const ExecutionPlan chaos = plan_for(Backend::kChaos);
  EXPECT_EQ(chaos.state, AccessStrategy::kInspectorGather);
  EXPECT_EQ(chaos.indirection, AccessStrategy::kInspectorGather);
  EXPECT_FALSE(chaos.validate_aggregation);
  EXPECT_FALSE(chaos.uses_dsm());
  EXPECT_FALSE(chaos.mixed());

  const ExecutionPlan base = plan_for(Backend::kTmkBase);
  EXPECT_EQ(base.state, AccessStrategy::kPageDsm);
  EXPECT_EQ(base.indirection, AccessStrategy::kPageDsm);
  EXPECT_FALSE(base.validate_aggregation);
  EXPECT_TRUE(base.uses_dsm());
  EXPECT_FALSE(base.mixed());

  const ExecutionPlan opt = plan_for(Backend::kTmkOptimized);
  EXPECT_EQ(opt.state, AccessStrategy::kPageDsm);
  EXPECT_EQ(opt.indirection, AccessStrategy::kPageDsm);
  EXPECT_TRUE(opt.validate_aggregation);
}

TEST(PlanFor, HybridIsTheMixedAssignment) {
  const ExecutionPlan h = plan_for(Backend::kHybrid);
  EXPECT_EQ(h.of(Region::kState), AccessStrategy::kPageDsm);
  EXPECT_EQ(h.of(Region::kIndirection), AccessStrategy::kInspectorGather);
  EXPECT_TRUE(h.validate_aggregation);
  EXPECT_TRUE(h.uses_dsm());
  EXPECT_TRUE(h.mixed());
}

TEST(PlanFor, StrategyNames) {
  EXPECT_STREQ(access_strategy_name(AccessStrategy::kPageDsm), "page-dsm");
  EXPECT_STREQ(access_strategy_name(AccessStrategy::kInspectorGather),
               "inspector-gather");
}

// --- Census-driven classification -------------------------------------------

TEST(Census, PageAlignedSlicesAreSingleWriter) {
  // An even 4-way partition of 4096 doubles: each owner's slice spans its
  // own pages, so every censused page has exactly one writer and the
  // indirection region goes to the inspector.
  const std::vector<part::Range> owners = part::block_partition(4096, kNodes);
  const coherence::WriteCensus census =
      census_for_layout(owners, sizeof(double), 4096);
  ASSERT_FALSE(census.pages().empty());
  for (const auto& [page, entry] : census.pages()) {
    (void)page;
    EXPECT_EQ(entry.writers.size(), 1u);
  }
  EXPECT_EQ(classify_indirection(census), AccessStrategy::kInspectorGather);
}

TEST(Census, MultiWriterPageFallsBackToPageDsm) {
  // Two writers fold diffs into one page: concurrent writes land in the
  // region the indirection reads flow through, which needs the
  // multiple-writer diff protocol.
  coherence::WriteCensus census;
  census.fold(/*page=*/0, /*writer=*/0, /*bytes=*/4096, /*epoch=*/1);
  census.fold(/*page=*/0, /*writer=*/1, /*bytes=*/64, /*epoch=*/1);
  census.fold(/*page=*/1, /*writer=*/1, /*bytes=*/4096, /*epoch=*/1);
  EXPECT_EQ(classify_indirection(census), AccessStrategy::kPageDsm);
}

TEST(Census, EmptySlicesCensusNoPages) {
  // A partition wider than the element count leaves trailing owners
  // empty; their slices must contribute no pages (and no zero-byte
  // writer entries) to the census.
  std::vector<part::Range> owners = part::block_partition(2, kNodes);
  const coherence::WriteCensus census =
      census_for_layout(owners, sizeof(double), 4096);
  EXPECT_EQ(census.pages().size(), 2u);  // owners 0 and 1 only
  EXPECT_EQ(classify_indirection(census), AccessStrategy::kInspectorGather);
}

// --- DsmExchange: CHAOS collectives over the DSM fabric ----------------------

TEST(DsmExchangeTest, AllToAllRoutesPayloadsLikeAChaosNode) {
  core::DsmConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.region_bytes = 4u << 20;
  core::DsmRuntime rt(cfg);
  std::vector<std::vector<std::vector<std::uint8_t>>> got(kNodes);
  rt.run([&](core::DsmNode& self) {
    DsmExchange ex(self);
    EXPECT_EQ(ex.id(), self.id());
    EXPECT_EQ(ex.num_nodes(), kNodes);
    // Payload p->q = {p, q, p+q}; self slot must come back untouched.
    std::vector<std::vector<std::uint8_t>> out(kNodes);
    for (NodeId q = 0; q < kNodes; ++q) {
      if (q == self.id()) continue;
      out[q] = {static_cast<std::uint8_t>(self.id()),
                static_cast<std::uint8_t>(q),
                static_cast<std::uint8_t>(self.id() + q)};
    }
    got[self.id()] = ex.all_to_all(std::move(out));
    self.barrier();
  });
  for (NodeId q = 0; q < kNodes; ++q) {
    ASSERT_EQ(got[q].size(), kNodes);
    for (NodeId p = 0; p < kNodes; ++p) {
      if (p == q) continue;
      const std::vector<std::uint8_t> want{
          static_cast<std::uint8_t>(p), static_cast<std::uint8_t>(q),
          static_cast<std::uint8_t>(p + q)};
      EXPECT_EQ(got[q][p], want) << "payload " << int(p) << "->" << int(q);
    }
  }
}

TEST(DsmExchangeTest, SparseExchangeSkipsEmptyPairs) {
  core::DsmConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.region_bytes = 4u << 20;
  core::DsmRuntime rt(cfg);
  std::vector<std::vector<std::vector<std::uint8_t>>> got(kNodes);
  rt.run([&](core::DsmNode& self) {
    DsmExchange ex(self);
    // Ring: p sends only to (p+1) % N; everyone receives only from the
    // left neighbour.
    std::vector<std::vector<std::uint8_t>> out(kNodes);
    const NodeId right = (self.id() + 1) % kNodes;
    out[right] = {static_cast<std::uint8_t>(0xA0 + self.id())};
    std::vector<bool> recv_from(kNodes, false);
    recv_from[(self.id() + kNodes - 1) % kNodes] = true;
    got[self.id()] = ex.sparse_exchange(std::move(out), recv_from);
    self.barrier();
  });
  for (NodeId q = 0; q < kNodes; ++q) {
    const NodeId left = (q + kNodes - 1) % kNodes;
    ASSERT_EQ(got[q].size(), kNodes);
    for (NodeId p = 0; p < kNodes; ++p) {
      if (p == left) {
        const std::vector<std::uint8_t> want{
            static_cast<std::uint8_t>(0xA0 + left)};
        EXPECT_EQ(got[q][p], want);
      } else {
        EXPECT_TRUE(got[q][p].empty());
      }
    }
  }
}

// --- Traffic parity: the refactor's exact gate -------------------------------

// The shared StepDriver must reproduce the monolith backends' traffic
// EXACTLY — the counts below are the committed-baseline values for these
// workload shapes (they are deterministic functions of the access pattern
// and the protocol, not of timing), so any drift in the rebuild cadence,
// barrier placement, or Validate aggregation shows up as a hard failure
// here before it shows up in the benches.
struct ExpectedTraffic {
  Backend backend;
  std::uint64_t messages;
};

TEST(TrafficParity, SpmvMatchesCommittedCounts) {
  apps::spmv::Params p;
  p.num_rows = 2048;
  p.num_steps = 6;
  p.edges_per_vertex = 4;
  p.nprocs = kNodes;
  api::BackendOptions opts = apps::spmv::default_options();
  const double chaos_checksum =
      apps::spmv::run(Backend::kChaos, p, opts).checksum;
  const ExpectedTraffic expected[] = {
      {Backend::kChaos, 108u},
      {Backend::kTmkBase, 360u},
      {Backend::kTmkOptimized, 360u},
      {Backend::kHybrid, 108u},
  };
  for (const ExpectedTraffic& e : expected) {
    const api::KernelResult r = apps::spmv::run(e.backend, p, opts);
    EXPECT_EQ(r.messages, e.messages) << backend_name(e.backend);
    EXPECT_EQ(r.checksum, chaos_checksum) << backend_name(e.backend);
  }
}

TEST(TrafficParity, MoldynMatchesCommittedCounts) {
  apps::moldyn::Params p;
  p.num_molecules = 512;
  p.num_steps = 8;
  p.update_interval = 4;
  p.nprocs = kNodes;
  const apps::moldyn::System sys = apps::moldyn::make_system(p);
  api::BackendOptions opts = apps::moldyn::default_options();
  const double chaos_checksum =
      apps::moldyn::run(Backend::kChaos, p, sys, opts).checksum;
  const ExpectedTraffic expected[] = {
      {Backend::kChaos, 208u},
      {Backend::kTmkBase, 670u},
      {Backend::kTmkOptimized, 562u},
      {Backend::kHybrid, 232u},
  };
  for (const ExpectedTraffic& e : expected) {
    const api::KernelResult r = apps::moldyn::run(e.backend, p, sys, opts);
    EXPECT_EQ(r.messages, e.messages) << backend_name(e.backend);
    EXPECT_EQ(r.checksum, chaos_checksum) << backend_name(e.backend);
  }
}

// --- The hybrid checksum matrix ---------------------------------------------

// Bit-exact equality with the all-message CHAOS baseline across both
// transports and both reduction-round schedules: the mixed assignment
// must never change a single bit of the numerics, whatever the fabric or
// the reduction bracket.
class HybridMatrix
    : public ::testing::TestWithParam<
          std::tuple<net::TransportKind, RoundSchedule>> {};

TEST_P(HybridMatrix, MoldynBitExactAgainstChaos) {
  const auto [transport, schedule] = GetParam();
  apps::moldyn::Params p;
  p.num_molecules = 512;
  p.num_steps = 8;
  p.update_interval = 4;
  p.nprocs = kNodes;
  const apps::moldyn::System sys = apps::moldyn::make_system(p);
  api::BackendOptions opts = apps::moldyn::default_options();
  opts.transport = transport;
  opts.round_schedule = schedule;
  const api::KernelResult chaos =
      apps::moldyn::run(Backend::kChaos, p, sys, opts);
  const api::KernelResult hybrid =
      apps::moldyn::run(Backend::kHybrid, p, sys, opts);
  EXPECT_EQ(hybrid.checksum, chaos.checksum);  // bitwise, not approximate
  EXPECT_EQ(hybrid.steps_run, chaos.steps_run);
  EXPECT_EQ(hybrid.refs, chaos.refs);
}

TEST_P(HybridMatrix, PagerankBitExactAgainstChaos) {
  const auto [transport, schedule] = GetParam();
  apps::pagerank::Params p;
  p.num_vertices = 2048;
  p.num_steps = 6;
  p.edges_per_vertex = 4;
  p.nprocs = kNodes;
  api::BackendOptions opts = apps::pagerank::default_options();
  opts.transport = transport;
  opts.round_schedule = schedule;
  const api::KernelResult chaos = apps::pagerank::run(Backend::kChaos, p, opts);
  const api::KernelResult hybrid =
      apps::pagerank::run(Backend::kHybrid, p, opts);
  EXPECT_EQ(hybrid.checksum, chaos.checksum);
  EXPECT_EQ(hybrid.steps_run, chaos.steps_run);
}

std::string hybrid_matrix_name(
    const ::testing::TestParamInfo<
        std::tuple<net::TransportKind, RoundSchedule>>& info) {
  const net::TransportKind t = std::get<0>(info.param);
  const RoundSchedule s = std::get<1>(info.param);
  return std::string(t == net::TransportKind::kSocket ? "socket" : "inproc") +
         "_" + round_schedule_name(s);
}

INSTANTIATE_TEST_SUITE_P(
    BothTransportsBothSchedules, HybridMatrix,
    ::testing::Combine(::testing::Values(net::TransportKind::kInProc,
                                         net::TransportKind::kSocket),
                       ::testing::Values(RoundSchedule::kSerial,
                                         RoundSchedule::kTournament)),
    hybrid_matrix_name);

// --- KernelSpec-declared strategy -------------------------------------------

// A spec may pin the indirection strategy instead of letting the census
// decide: kPageDsm forces the hybrid down the pure page-protocol path,
// which must still be bit-exact (it IS the optimized Tmk execution).
TEST(DeclaredStrategy, PageDsmPinFallsBackToPureProtocol) {
  apps::spmv::Params p;
  p.num_rows = 2048;
  p.num_steps = 6;
  p.edges_per_vertex = 4;
  p.nprocs = kNodes;
  api::BackendOptions opts = apps::spmv::default_options();

  api::KernelSpec<double> pinned = apps::spmv::make_kernel(p);
  pinned.indirection_strategy = AccessStrategy::kPageDsm;
  const api::KernelResult as_dsm =
      api::run_kernel(Backend::kHybrid, pinned, opts);
  const api::KernelResult opt =
      api::run_kernel(Backend::kTmkOptimized, apps::spmv::make_kernel(p), opts);
  EXPECT_EQ(as_dsm.checksum, opt.checksum);
  EXPECT_EQ(as_dsm.messages, opt.messages);

  api::KernelSpec<double> gather = apps::spmv::make_kernel(p);
  gather.indirection_strategy = AccessStrategy::kInspectorGather;
  const api::KernelResult as_hybrid =
      api::run_kernel(Backend::kHybrid, gather, opts);
  EXPECT_EQ(as_hybrid.checksum, opt.checksum);
}

}  // namespace
}  // namespace sdsm::api::plan
