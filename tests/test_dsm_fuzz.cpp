// Randomized data-race-free program generator: the strongest consistency
// check in the suite.  Each seed builds a random schedule of epochs; in
// every epoch each node writes a pseudo-random (but globally disjoint)
// subset of a shared array, synchronizes, and audits a random sample of
// everything written so far against a sequential model.  Lock-protected
// counters interleave with the barrier traffic to exercise the
// lock-grant consistency path, and a small region plus a tiny GC threshold
// keep false sharing and collections in play.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.hpp"
#include "src/core/dsm.hpp"

namespace sdsm::core {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::uint32_t nodes;
  std::size_t gc_threshold;
};

class DsmFuzz : public ::testing::TestWithParam<FuzzCase> {};

/// Reproducer breadcrumb for the nightly CI fuzz job: the case about to
/// run is written to fuzz-repro.txt and erased again on success, so any
/// failure — including the std::abort() consistency paths, which never
/// reach a gtest reporter — leaves behind the exact parameters and a
/// rerun command for the uploaded artifact.
class FuzzRepro {
 public:
  explicit FuzzRepro(const FuzzCase& fc) {
    std::FILE* f = std::fopen(kPath, "w");
    if (f == nullptr) return;
    std::fprintf(
        f,
        "test_dsm_fuzz failure reproducer\n"
        "seed=%llu nodes=%u gc_threshold=%zu\n"
        "rerun: ./test_dsm_fuzz "
        "--gtest_filter='*seed%llu_n%u_gc%zu'\n",
        static_cast<unsigned long long>(fc.seed), fc.nodes, fc.gc_threshold,
        static_cast<unsigned long long>(fc.seed), fc.nodes, fc.gc_threshold);
    std::fclose(f);
  }
  ~FuzzRepro() {
    if (!::testing::Test::HasFailure()) std::remove(kPath);
  }

 private:
  static constexpr const char* kPath = "fuzz-repro.txt";
};

// Owner of element i in epoch e: deterministic pseudo-random partition, so
// writes are disjoint by construction (DRF) yet scatter across pages.
std::uint32_t owner_of(std::uint64_t seed, int epoch, std::int64_t i,
                       std::uint32_t nodes) {
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(epoch) << 32) ^
                    static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>((z ^ (z >> 31)) % nodes);
}

std::int32_t value_of(int epoch, std::int64_t i) {
  return static_cast<std::int32_t>(epoch * 2654435761u + i * 40503u);
}

TEST_P(DsmFuzz, RandomDrfProgramMatchesModel) {
  const FuzzCase fc = GetParam();
  const FuzzRepro repro(fc);
  const std::int64_t kElems = 24 * 1024;  // 96KB of ints, 24 pages
  const int kEpochs = 10;

  DsmConfig cfg;
  cfg.num_nodes = fc.nodes;
  cfg.region_bytes = 4u << 20;
  cfg.gc_threshold_bytes = fc.gc_threshold;
  DsmRuntime rt(cfg);
  auto arr = rt.alloc_global<std::int32_t>(kElems);
  auto counters = rt.alloc_global<std::int64_t>(8);

  // Model: element -> epoch of last write (every element is written every
  // epoch by its owner, so the model is simply "current epoch").
  rt.run([&](DsmNode& self) {
    std::int32_t* a = self.ptr(arr);
    Rng rng(fc.seed ^ (0xabcdu + self.id()));
    for (int e = 0; e < kEpochs; ++e) {
      // Write my share of this epoch.
      for (std::int64_t i = 0; i < kElems; ++i) {
        if (owner_of(fc.seed, e, i, fc.nodes) == self.id()) {
          a[i] = value_of(e, i);
        }
      }
      // Random lock-protected counter bumps (tests grant-carried
      // consistency data interleaved with barrier traffic).
      const int bumps = static_cast<int>(rng.next_u64() % 3);
      for (int b = 0; b < bumps; ++b) {
        const LockId lock = static_cast<LockId>(rng.next_u64() % 4);
        self.lock_acquire(lock);
        self.ptr(counters)[lock] += 1;
        self.lock_release(lock);
      }
      self.barrier();
      // Audit a random sample against the model.
      for (int probe = 0; probe < 2000; ++probe) {
        const auto i = static_cast<std::int64_t>(rng.next_u64() % kElems);
        const std::int32_t want = value_of(e, i);
        if (a[i] != want) {
          std::fprintf(stderr,
                       "fuzz mismatch: node=%u epoch=%d elem=%lld got=%d "
                       "want=%d\n",
                       self.id(), e, static_cast<long long>(i), a[i], want);
          std::abort();
        }
      }
      self.barrier();
    }
  });

  // Lock-counter totals must equal the sum of all bumps (mutual exclusion
  // + grant consistency).  Recompute the expected totals from the RNGs.
  std::vector<std::int64_t> expect(8, 0);
  for (std::uint32_t node = 0; node < fc.nodes; ++node) {
    Rng rng(fc.seed ^ (0xabcdu + node));
    for (int e = 0; e < kEpochs; ++e) {
      const int bumps = static_cast<int>(rng.next_u64() % 3);
      for (int b = 0; b < bumps; ++b) {
        expect[rng.next_u64() % 4] += 1;
      }
      for (int probe = 0; probe < 2000; ++probe) rng.next_u64();
    }
  }
  rt.run([&](DsmNode& self) {
    if (self.id() == 0) {
      for (int l = 0; l < 4; ++l) {
        if (self.ptr(counters)[l] != expect[static_cast<std::size_t>(l)]) {
          std::fprintf(stderr, "lock counter %d: got %lld want %lld\n", l,
                       static_cast<long long>(self.ptr(counters)[l]),
                       static_cast<long long>(expect[static_cast<std::size_t>(l)]));
          std::abort();
        }
      }
    }
    self.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DsmFuzz,
    ::testing::Values(FuzzCase{1, 2, 0}, FuzzCase{2, 4, 0}, FuzzCase{3, 8, 0},
                      FuzzCase{4, 4, 16 << 10}, FuzzCase{5, 8, 64 << 10},
                      FuzzCase{6, 3, 32 << 10}, FuzzCase{7, 5, 0},
                      FuzzCase{8, 8, 16 << 10}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) + "_gc" +
             std::to_string(info.param.gc_threshold);
    });

}  // namespace
}  // namespace sdsm::core
