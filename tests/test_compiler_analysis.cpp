// Tests for regular section analysis, fetch points, the Validate-insertion
// transform (the paper's Figure 1 -> Figure 2), and lowering to runtime
// descriptors.
#include <gtest/gtest.h>

#include "src/compiler/fetch_points.hpp"
#include "src/compiler/lowering.hpp"
#include "src/compiler/parser.hpp"
#include "src/compiler/pretty.hpp"
#include "src/compiler/section_analysis.hpp"
#include "src/compiler/transform.hpp"

namespace sdsm::compiler {
namespace {

const char* kMoldynForces =
    "SUBROUTINE COMPUTEFORCES\n"
    "  SHARED REAL X(16384), FORCES(16384)\n"
    "  SHARED INTEGER INTERACTION_LIST(2, 100000)\n"
    "  INTEGER I, N1, N2\n"
    "  REAL FORCE\n"
    "DO I = 1, NUM_INTERACTIONS\n"
    "  N1 = INTERACTION_LIST(1, I)\n"
    "  N2 = INTERACTION_LIST(2, I)\n"
    "  FORCE = X(N1) - X(N2)\n"
    "  FORCES(N1) = FORCES(N1) + FORCE\n"
    "  FORCES(N2) = FORCES(N2) - FORCE\n"
    "ENDDO\n"
    "END\n";

TEST(SectionAnalysis, RecognizesIndirectReadThroughInteractionList) {
  auto file = parse(kMoldynForces);
  const Unit& u = file.units[0];
  SymbolTable syms(u);
  auto summary = analyze_loop(*u.body[0], syms);

  const AccessInfo* x = summary.find("X");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->indirect);
  EXPECT_EQ(x->ind_array, "INTERACTION_LIST");
  EXPECT_TRUE(x->read);
  EXPECT_FALSE(x->written);
  // Section of the indirection array: [1:2, 1:NUM_INTERACTIONS].
  ASSERT_EQ(x->section.size(), 2u);
  EXPECT_EQ(print_expr(*x->section[0].lower), "1");
  EXPECT_EQ(print_expr(*x->section[0].upper), "2");
  EXPECT_EQ(print_expr(*x->section[1].lower), "1");
  EXPECT_EQ(print_expr(*x->section[1].upper), "NUM_INTERACTIONS");
}

TEST(SectionAnalysis, RecognizesIndirectReduction) {
  auto file = parse(kMoldynForces);
  const Unit& u = file.units[0];
  SymbolTable syms(u);
  auto summary = analyze_loop(*u.body[0], syms);

  const AccessInfo* f = summary.find("FORCES");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->indirect);
  EXPECT_TRUE(f->read);
  EXPECT_TRUE(f->written);
  EXPECT_EQ(f->access_string(), "READ&WRITE");
}

TEST(SectionAnalysis, DirectAffineSection) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  SHARED REAL A(1000)\n"
      "DO I = 1, N\n"
      "  A(I) = 0\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  const AccessInfo* a = summary.find("A");
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->indirect);
  EXPECT_TRUE(a->written);
  EXPECT_FALSE(a->read);
  EXPECT_TRUE(a->covers_section);  // WRITE_ALL candidate
  EXPECT_EQ(a->access_string(), "WRITE_ALL");
  EXPECT_EQ(print_expr(*a->section[0].lower), "1");
  EXPECT_EQ(print_expr(*a->section[0].upper), "N");
  EXPECT_EQ(a->section[0].stride, 1);
}

TEST(SectionAnalysis, DenseReductionIsReadWriteAll) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  SHARED REAL A(1000)\n"
      "DO I = 1, N\n"
      "  A(I) = A(I) + 1\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  const AccessInfo* a = summary.find("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->access_string(), "READ&WRITE_ALL");
}

TEST(SectionAnalysis, StridedAndOffsetSubscripts) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  SHARED REAL A(1000)\n"
      "DO I = 1, N, 2\n"
      "  A(3*I + 10) = 0\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  const AccessInfo* a = summary.find("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(print_expr(*a->section[0].lower), "13");
  EXPECT_EQ(print_expr(*a->section[0].upper), "3*N + 10");
  EXPECT_EQ(a->section[0].stride, 6);  // coeff 3 * step 2
  EXPECT_FALSE(a->covers_section);     // strided writes do not cover
}

TEST(SectionAnalysis, NestedLoopTwoDimensionalSection) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  SHARED REAL A(100, 100)\n"
      "DO J = 1, M\n"
      "  DO I = 1, N\n"
      "    A(I, J) = 0\n"
      "  ENDDO\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  const AccessInfo* a = summary.find("A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->section.size(), 2u);
  EXPECT_EQ(print_expr(*a->section[0].upper), "N");
  EXPECT_EQ(print_expr(*a->section[1].upper), "M");
}

TEST(SectionAnalysis, PrivateArraysAreIgnored) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  REAL LOCAL(100)\n"
      "  SHARED REAL A(100)\n"
      "DO I = 1, N\n"
      "  LOCAL(I) = A(I)\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  EXPECT_EQ(summary.find("LOCAL"), nullptr);
  EXPECT_NE(summary.find("A"), nullptr);
}

TEST(SectionAnalysis, NonAffineSubscriptDefeatsAnalysisSafely) {
  auto file = parse(
      "SUBROUTINE S\n"
      "  SHARED REAL A(100)\n"
      "DO I = 1, N\n"
      "  A(I*I) = 0\n"
      "ENDDO\n"
      "END\n");
  SymbolTable syms(file.units[0]);
  auto summary = analyze_loop(*file.units[0].body[0], syms);
  const AccessInfo* a = summary.find("A");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->section.empty());  // recorded but unqualified
}

TEST(FetchPoints, IncludesEntryLoopsCallsAndSyncs) {
  auto file = parse(
      "PROGRAM P\n"
      "CALL INIT()\n"
      "BARRIER\n"
      "DO I = 1, N\n"
      "  X = I\n"
      "ENDDO\n"
      "IF (N .GT. 0) THEN\n"
      "  X = 0\n"
      "ENDIF\n"
      "END\n");
  auto points = fetch_points(file.units[0]);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points[0].kind, FetchPointKind::kUnitEntry);
  EXPECT_EQ(points[1].kind, FetchPointKind::kCallSite);
  EXPECT_EQ(points[2].kind, FetchPointKind::kSyncPoint);
  EXPECT_EQ(points[3].kind, FetchPointKind::kLoopBoundary);
  EXPECT_EQ(points[4].kind, FetchPointKind::kConditional);
}

TEST(Transform, InsertsValidateAtUnitEntry) {
  auto result = transform(parse(kMoldynForces));
  const Unit& u = result.transformed.units[0];
  ASSERT_FALSE(u.body.empty());
  EXPECT_EQ(u.body[0]->kind, StmtKind::kValidate);
  EXPECT_EQ(result.validates_inserted, 1);
  // X is fetched through the indirection array.
  ASSERT_EQ(u.body[0]->descs.size(), 1u);
  const ValidateDescAst& d = u.body[0]->descs[0];
  EXPECT_TRUE(d.indirect);
  EXPECT_EQ(d.data_array, "X");
  EXPECT_EQ(d.section_array, "INTERACTION_LIST");
  EXPECT_EQ(d.access, "READ");
}

TEST(Transform, PrivatizesIndirectReduction) {
  auto result = transform(parse(kMoldynForces));
  ASSERT_EQ(result.reductions.size(), 1u);
  EXPECT_EQ(result.reductions[0].shared_array, "FORCES");
  EXPECT_EQ(result.reductions[0].private_array, "LOCAL_FORCES");
  // The transformed body uses LOCAL_FORCES, exactly like Figure 2.
  const std::string text = print_unit(result.transformed.units[0]);
  EXPECT_NE(text.find("LOCAL_FORCES(N1) = LOCAL_FORCES(N1) + FORCE"),
            std::string::npos);
  EXPECT_EQ(text.find("FORCES(N1) = FORCES(N1)"), std::string::npos);
  // And LOCAL_FORCES is declared private (no SHARED attribute).
  EXPECT_NE(text.find("  REAL LOCAL_FORCES(16384)"), std::string::npos);
}

TEST(Transform, Figure2ShapeReproduced) {
  auto result = transform(parse(kMoldynForces));
  const std::string text = print_unit(result.transformed.units[0]);
  EXPECT_NE(
      text.find(
          "CALL Validate(1, INDIRECT, X, "
          "INTERACTION_LIST[1:2, 1:NUM_INTERACTIONS], READ, 1)"),
      std::string::npos)
      << text;
}

TEST(Transform, WithoutPrivatizationEmitsIndirectReadWrite) {
  TransformOptions opts;
  opts.privatize_reductions = false;
  auto result = transform(parse(kMoldynForces), opts);
  const Unit& u = result.transformed.units[0];
  ASSERT_EQ(u.body[0]->descs.size(), 2u);
  EXPECT_EQ(u.body[0]->descs[1].data_array, "FORCES");
  EXPECT_EQ(u.body[0]->descs[1].access, "READ&WRITE");
}

TEST(Transform, DirectWriteAllGetsUpgradedAccess) {
  auto result = transform(parse(
      "SUBROUTINE CLEAR\n"
      "  SHARED REAL A(4096)\n"
      "DO I = 1, N\n"
      "  A(I) = 0\n"
      "ENDDO\n"
      "END\n"));
  const Unit& u = result.transformed.units[0];
  ASSERT_EQ(u.body[0]->kind, StmtKind::kValidate);
  EXPECT_EQ(u.body[0]->descs[0].access, "WRITE_ALL");
}

TEST(Transform, UnitsWithoutSharedAccessesAreUntouched) {
  auto result = transform(parse(
      "SUBROUTINE PURE\n"
      "  REAL T(10)\n"
      "DO I = 1, 10\n"
      "  T(I) = I\n"
      "ENDDO\n"
      "END\n"));
  EXPECT_EQ(result.validates_inserted, 0);
  EXPECT_EQ(result.transformed.units[0].body[0]->kind, StmtKind::kDo);
}

TEST(Lowering, SectionBecomesZeroBasedRsd) {
  std::vector<SectionDimAst> section;
  section.push_back(SectionDimAst{Expr::int_lit(1), Expr::var("N"), 1});
  Env env{{"N", 100}};
  auto rsd = lower_section(section, env);
  EXPECT_EQ(rsd.dim(0).lower, 0);
  EXPECT_EQ(rsd.dim(0).upper, 99);
  EXPECT_EQ(rsd.count(), 100);
}

TEST(Lowering, ValidateStatementToRuntimeDescriptors) {
  auto result = transform(parse(kMoldynForces));
  const Stmt& v = *result.transformed.units[0].body[0];

  Bindings arrays;
  arrays["X"] = ArrayBinding{0, sizeof(double), rsd::ArrayLayout{{16384}, true}};
  arrays["INTERACTION_LIST"] =
      ArrayBinding{16384 * sizeof(double), sizeof(std::int32_t),
                   rsd::ArrayLayout{{2, 100000}, true}};
  Env scalars{{"NUM_INTERACTIONS", 5000}};

  auto descs = lower_validate(v, arrays, scalars);
  ASSERT_EQ(descs.size(), 1u);
  EXPECT_EQ(descs[0].type, core::DescType::kIndirect);
  EXPECT_EQ(descs[0].access, core::Access::kRead);
  EXPECT_EQ(descs[0].data_base, 0u);
  EXPECT_EQ(descs[0].data_elem_size, sizeof(double));
  EXPECT_EQ(descs[0].section.dim(0).lower, 0);
  EXPECT_EQ(descs[0].section.dim(0).upper, 1);
  EXPECT_EQ(descs[0].section.dim(1).upper, 4999);
}

TEST(Lowering, AccessStringsMapToRuntimeEnum) {
  EXPECT_EQ(parse_access("READ"), core::Access::kRead);
  EXPECT_EQ(parse_access("WRITE"), core::Access::kWrite);
  EXPECT_EQ(parse_access("READ&WRITE"), core::Access::kReadWrite);
  EXPECT_EQ(parse_access("WRITE_ALL"), core::Access::kWriteAll);
  EXPECT_EQ(parse_access("READ&WRITE_ALL"), core::Access::kReadWriteAll);
}

}  // namespace
}  // namespace sdsm::compiler
